//! No-op `Serialize` / `Deserialize` derives for the offline serde
//! stand-in. The marker traits have no items, so the derives only need
//! to name the type; generics are carried through verbatim.

use proc_macro::{TokenStream, TokenTree};

/// Extract `(name, generics)` from a struct/enum definition, where
/// `generics` is the raw `<...>` parameter list (or empty).
fn parse_item(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes and visibility until the `struct`/`enum` keyword.
    while let Some(tt) = tokens.next() {
        match &tt {
            TokenTree::Ident(id) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    break;
                }
            }
            _ => continue,
        }
    }
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name after struct/enum, got {other:?}"),
    };
    // Collect a generic parameter list if present: `<` ... matching `>`.
    let mut generics = String::new();
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            let mut depth = 0i32;
            for tt in tokens.by_ref() {
                match &tt {
                    TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                    TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                    _ => {}
                }
                generics.push_str(&tt.to_string());
                generics.push(' ');
                if depth == 0 {
                    break;
                }
            }
        }
    }
    (name, generics)
}

/// Strip bounds/defaults from a generic list: `<T: Clone, const N: usize>`
/// -> `<T, N>` for the type-argument position.
fn generic_args(generics: &str) -> String {
    if generics.is_empty() {
        return String::new();
    }
    let inner = generics
        .trim()
        .trim_start_matches('<')
        .trim_end_matches('>');
    let mut args = Vec::new();
    let mut depth = 0i32;
    let mut current = String::new();
    for ch in inner.chars() {
        match ch {
            '<' | '(' | '[' => {
                depth += 1;
                current.push(ch);
            }
            '>' | ')' | ']' => {
                depth -= 1;
                current.push(ch);
            }
            ',' if depth == 0 => {
                args.push(std::mem::take(&mut current));
            }
            _ => current.push(ch),
        }
    }
    if !current.trim().is_empty() {
        args.push(current);
    }
    let names: Vec<String> = args
        .iter()
        .map(|a| {
            let a = a.trim();
            let a = a.strip_prefix("const ").unwrap_or(a).trim();
            // Lifetime or ident up to `:`/`=`.
            a.split([':', '=']).next().unwrap_or(a).trim().to_string()
        })
        .filter(|s| !s.is_empty())
        .collect();
    format!("<{}>", names.join(", "))
}

/// Derive the marker `serde::Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let args = generic_args(&generics);
    format!("impl {generics} ::serde::Serialize for {name} {args} {{}}")
        .parse()
        .expect("generated impl parses")
}

/// Derive the marker `serde::Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, generics) = parse_item(input);
    let args = generic_args(&generics);
    if generics.is_empty() {
        format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
    } else {
        let inner = generics
            .trim()
            .trim_start_matches('<')
            .trim_end_matches('>');
        format!("impl<'de, {inner}> ::serde::Deserialize<'de> for {name} {args} {{}}")
    }
    .parse()
    .expect("generated impl parses")
}
