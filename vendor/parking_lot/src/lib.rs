//! Minimal API-compatible stand-in for `parking_lot`, backed by
//! `std::sync`. Locks are poison-transparent: a panic while holding a
//! guard does not poison the lock for later users, matching parking_lot
//! semantics.

use std::sync::PoisonError;

/// Mutual exclusion primitive with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// RAII guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// RAII guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Try to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable companion to [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Block until notified, releasing `guard` while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        // Safety dance: std's condvar consumes and returns the guard;
        // emulate parking_lot's in-place signature with a take/replace.
        take_mut(guard, |g| {
            self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

fn take_mut<'a, T: ?Sized>(
    guard: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // Replace the guard in place. `std::ptr::read`/`write` keep the
    // borrow checker satisfied without an Option wrapper; `f` never
    // panics here (poison is swallowed).
    unsafe {
        let old = std::ptr::read(guard);
        let new = f(old);
        std::ptr::write(guard, new);
    }
}
