//! Minimal API-compatible stand-in for `rand` 0.9.
//!
//! Provides the exact surface the workspace uses: a deterministic
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], the
//! [`Rng`] extension trait with `random` / `random_range`, and the
//! sequence helpers `SliceRandom::shuffle` / `IndexedRandom::choose`.
//! The generated stream differs from upstream rand (this uses
//! xoshiro256** seeded by SplitMix64) but is fully deterministic per
//! seed, which is what the experiments rely on.

use std::ops::{Range, RangeInclusive};

/// Core trait: a source of random 64-bit words.
pub trait RngCore {
    /// Return the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Return the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the type's full "standard"
/// distribution (unit interval for floats, full range for integers).
pub trait StandardSample: Sized {
    /// Draw one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly; mirrors rand's `SampleRange`.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let width = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if width == 0 {
                    // Full-width inclusive range: every word is valid.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, width) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

/// Uniform value in `[0, width)` (`width == 0` means the full 2^64
/// range), bias removed by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, width: u64) -> u64 {
    if width == 0 {
        return rng.next_u64();
    }
    // Rejection sampling: retry in the biased tail zone.
    let zone = u64::MAX - (u64::MAX - width + 1) % width;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % width;
        }
    }
}

/// Extension trait with the user-facing sampling methods.
pub trait Rng: RngCore {
    /// Sample a value from the type's standard distribution
    /// (`[0, 1)` for floats, full range for integers, fair coin for
    /// `bool`).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`. Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Sample a `bool` that is `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds; only the `u64` entry point is
/// provided.
pub trait SeedableRng: Sized {
    /// Construct deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;

    /// Construct from OS entropy. Deterministic stand-in: derives a
    /// seed from the current time; do not use where reproducibility
    /// matters.
    fn from_os_rng() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5EED);
        Self::seed_from_u64(nanos)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator seeded through SplitMix64.
    /// Not the same stream as upstream rand's `StdRng`, but stable
    /// across platforms and runs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical xoshiro seeding.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** by Blackman & Vigna (public domain).
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffle the slice with Fisher–Yates.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }

    /// Random element selection from slices.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::{IndexedRandom, SliceRandom};
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = r.random_range(-1000..=1000);
            assert!((-1000..=1000).contains(&v));
            let u: u8 = r.random_range(0..26u8);
            assert!(u < 26);
            let f: f64 = r.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: Vec<u32> = vec![];
        assert!(empty.choose(&mut r).is_none());
    }
}
