//! Minimal API-compatible stand-in for the `crossbeam` scoped-thread
//! API, backed by `std::thread::scope`.

/// Scoped threads (`crossbeam::thread`).
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle to a thread scope; lets workers spawn further scoped
    /// threads.
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread. The closure receives the scope, as in
        /// crossbeam, so workers can spawn siblings.
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            self.inner.spawn(move || f(&scope))
        }
    }

    /// Create a scope for spawning borrowing threads. Returns `Err` with
    /// the panic payload if the scope body or any unjoined worker
    /// panicked, matching crossbeam's contract.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let scope = Scope { inner: s };
                f(&scope)
            })
        }))
    }
}
