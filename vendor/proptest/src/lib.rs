//! Minimal API-compatible stand-in for `proptest`.
//!
//! Implements the subset the workspace uses: the [`proptest!`] test
//! macro, [`prop_oneof!`] weighted unions, `prop_assert*` macros,
//! the [`strategy::Strategy`] trait with `prop_map`, [`arbitrary::any`],
//! range / tuple / collection / option / string strategies, and
//! [`test_runner::ProptestConfig`]. Cases are generated from a
//! deterministic per-test seed; there is no shrinking — on failure the
//! offending inputs are printed verbatim.

pub mod test_runner {
    //! Test-runner configuration and RNG.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Configuration for a `proptest!` block; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
        /// Accepted for compatibility; unused (no shrinking here).
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_shrink_iters: 0,
            }
        }
    }

    impl ProptestConfig {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Derive a per-test deterministic RNG from the test name.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h = 0xcbf29ce484222325u64;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value. (Stand-in: no value tree / shrinking.)
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// Object-safe view of a strategy, for unions and boxing.
    pub trait DynStrategy {
        /// The type of generated values.
        type Value;

        /// Generate one value through the erased object.
        fn dyn_generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn DynStrategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            self.as_ref().dyn_generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted union of strategies, as built by `prop_oneof!`.
    pub struct Union<V> {
        branches: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` pairs. Panics if empty or if
        /// all weights are zero.
        pub fn new_weighted(branches: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = branches.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! requires a positive total weight");
            Union { branches, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.random_range(0..self.total);
            for (w, s) in &self.branches {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    /// String strategies: a `&str` literal is treated as a generator of
    /// short strings over a printable palette (regex classes are not
    /// interpreted beyond "printable chars, any length").
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            const PALETTE: &[char] = &[
                'a', 'b', 'c', 'x', 'y', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', '!',
                '?', '/', '\\', '\'', '"', 'é', 'ß', 'π', '日', '本', '語', '→', '🐚', '𝕏',
            ];
            let len = rng.random_range(0..16usize);
            (0..len)
                .map(|_| PALETTE[rng.random_range(0..PALETTE.len())])
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Strategy for [`crate::arbitrary::any`]: full-range primitives.
    pub struct Any<T>(pub(crate) PhantomData<T>);

    macro_rules! any_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    any_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f64);
}

pub mod arbitrary {
    //! The `any` entry point.

    use crate::strategy::Any;
    use std::marker::PhantomData;

    /// Strategy generating any value of a primitive type.
    pub fn any<T>() -> Any<T>
    where
        Any<T>: crate::strategy::Strategy,
    {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with random length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate vectors of `elem` with length drawn from `size`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with *up to* `size.end - 1` elements
    /// (duplicates collapse, as in real proptest).
    pub struct BTreeSetStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    /// Generate ordered sets of `elem` with target size drawn from `size`.
    pub fn btree_set<S>(elem: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { elem, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let len = rng.random_range(self.size.clone());
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! Optional-value strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Option<S::Value>`, `None` with probability 1/4.
    pub struct OptionStrategy<S>(S);

    /// Generate `Some` from `elem` most of the time, `None` otherwise.
    pub fn of<S: Strategy>(elem: S) -> OptionStrategy<S> {
        OptionStrategy(elem)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.random_range(0..4u32) == 0 {
                None
            } else {
                Some(self.0.generate(rng))
            }
        }
    }
}

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted (or unweighted) union of strategies with a common value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert inside a proptest body (stand-in: plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a proptest body (stand-in: `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality inside a proptest body (stand-in: `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` random cases; on failure the
/// generated inputs are printed (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: emits one test fn per
/// `fn name(args..) { body }` item.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let mut __inputs: Vec<String> = Vec::new();
                $crate::__proptest_bind! { __rng, __inputs; $($params)* }
                let __outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| $body));
                if let Err(panic) = __outcome {
                    eprintln!(
                        "proptest case {}/{} of {} failed with inputs:\n  {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __inputs.join("\n  ")
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `arg in strategy`
/// parameters one at a time, recording debug renderings for failure
/// reports.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident, $inputs:ident;) => {};
    ($rng:ident, $inputs:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
        $crate::__proptest_bind! { $rng, $inputs; $($rest)* }
    };
    ($rng:ident, $inputs:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $inputs.push(format!(concat!(stringify!($arg), " = {:?}"), &$arg));
    };
}
