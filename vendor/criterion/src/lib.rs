//! Minimal API-compatible stand-in for `criterion`.
//!
//! Runs each benchmark in a warmup-then-measure loop and prints mean
//! and best iteration times (plus throughput when configured) to
//! stdout. No statistical analysis, HTML reports, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time spent measuring each benchmark.
const MEASURE_TARGET: Duration = Duration::from_millis(300);
/// Target wall-clock time spent warming up each benchmark.
const WARMUP_TARGET: Duration = Duration::from_millis(50);

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// How much setup output to batch per timing in
/// [`Bencher::iter_batched`].
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs; batch many per setup.
    SmallInput,
    /// Large per-iteration inputs; batch few per setup.
    LargeInput,
    /// Exactly one input per setup.
    PerIteration,
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Build an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new() -> Self {
        Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
        }
    }

    /// Benchmark `routine` by running it repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup and calibration: find an iteration count that takes a
        // measurable slice of time.
        let mut iters: u64 = 1;
        let warmup_start = Instant::now();
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if warmup_start.elapsed() >= WARMUP_TARGET {
                // Aim each sample at ~1/10 of the measurement budget.
                let per_iter = elapsed.as_secs_f64() / iters as f64;
                let target = MEASURE_TARGET.as_secs_f64() / 10.0;
                iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
                break;
            }
            iters = (iters * 2).min(1 << 24);
        }
        self.iters_per_sample = iters;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_TARGET || self.samples.len() < 2 {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    /// Benchmark `routine` on inputs produced by `setup`, excluding
    /// setup time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // One input per timed iteration; setup runs outside the timer.
        let warmup_start = Instant::now();
        while warmup_start.elapsed() < WARMUP_TARGET {
            let input = setup();
            black_box(routine(input));
        }
        self.iters_per_sample = 1;
        let measure_start = Instant::now();
        while measure_start.elapsed() < MEASURE_TARGET || self.samples.len() < 2 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if self.samples.len() >= 5000 {
                break;
            }
        }
    }

    fn report(&self, label: &str, throughput: Option<Throughput>) {
        if self.samples.is_empty() {
            println!("{label:<40} (no samples)");
            return;
        }
        let per_iter = |d: &Duration| d.as_secs_f64() / self.iters_per_sample as f64;
        let mean: f64 = self.samples.iter().map(per_iter).sum::<f64>() / self.samples.len() as f64;
        let best = self
            .samples
            .iter()
            .map(per_iter)
            .fold(f64::INFINITY, f64::min);
        let thr = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12} elem/s", format_rate(n as f64 / mean))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12} B/s", format_rate(n as f64 / mean))
            }
            None => String::new(),
        };
        println!(
            "{label:<40} mean {:>12}  best {:>12}{thr}",
            format_time(mean),
            format_time(best)
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn format_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.2}G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.2}K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput figure.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Benchmark a closure parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id), self.throughput);
        self
    }

    /// Finish the group (separator line).
    pub fn finish(self) {
        println!();
    }
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone closure.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new();
        f(&mut b);
        b.report(&id.to_string(), None);
        self
    }

    /// Accept (and ignore) CLI configuration, for compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
