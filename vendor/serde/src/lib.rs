//! Minimal stand-in for `serde`: the `Serialize` / `Deserialize` traits
//! exist as markers (no serializer backends are present in this
//! offline environment), and the derives expand to empty impls. Code
//! can derive and bound on these traits; actual serialization requires
//! restoring the real crate (see vendor/README.md).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

pub use serde_derive::{Deserialize, Serialize};
