//! # cor — Complex Object Representation, reproduced
//!
//! Umbrella crate for the reproduction of **Jhingran & Stonebraker,
//! "Alternatives in Complex Object Representation: A Performance
//! Perspective"** (UCB/ERL M89/18, ICDE 1990).
//!
//! Re-exports the workspace crates under one roof and hosts the
//! cross-crate integration tests (`tests/`) and runnable examples
//! (`examples/`). See `README.md` for the tour, `DESIGN.md` for the
//! system inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! Layering, bottom up:
//!
//! 1. [`pagestore`] — 2 KB slotted pages, disk managers, the 100-page LRU
//!    buffer pool, and the I/O counters that are the paper's yardstick;
//! 2. [`relational`] — OIDs, values, schemas, tuples, predicates;
//! 3. [`access`] — heap files, B-trees, static ISAM indexes, static hash
//!    files, external sort, merge join / iterative substitution;
//! 4. [`complexobj`] — the paper's contribution: the representation
//!    matrix, units, the clustered representation, the I-lock-invalidated
//!    unit cache, and the DFS / BFS / BFSNODUP / DFSCACHE / DFSCLUST /
//!    SMART strategies;
//! 5. [`workload`] — the parameterized generator, sequence driver and
//!    experiment sweeps behind the figure reproductions in `cor-bench`.
//!
//! Orthogonal to the stack, [`obs`] is the zero-dependency metrics layer
//! (counters, streaming histograms, span ring, Prometheus/JSON export)
//! that the pool, caches and `Engine` report into — see
//! `docs/observability.md`.

#![warn(missing_docs)]

pub use complexobj;
pub use cor_access as access;
pub use cor_obs as obs;
pub use cor_pagestore as pagestore;
pub use cor_relational as relational;
pub use cor_workload as workload;

pub use complexobj::ExecOptions;
pub use cor_pagestore::{BufferPool, BufferPoolBuilder, ReplacementPolicy};
pub use cor_workload::{Engine, EngineBuilder, MetricsReport};
