#!/usr/bin/env bash
# Full local gate: formatting, lints, and the whole test suite.
# CI runs exactly this script; run it before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo test (io_uring feature: raw-syscall aio backend + runtime fallback)"
cargo test -p cor-pagestore --features io_uring -q

echo "==> corstat smoke (observability gate)"
cargo run -q -p cor-bench --bin corstat -- --smoke

echo "==> corstat heat smoke (heat-map skew-detection gate)"
cargo run -q -p cor-bench --bin corstat -- --heat --smoke

echo "==> corstat trace smoke (causal trace trees vs the phase ledger)"
cargo run -q -p cor-bench --bin corstat -- --trace --smoke --json results/trace/smoke_trace.json

echo "==> explain smoke (phase-attribution + cost-model gate)"
cargo run -q -p cor-bench --bin explain -- --smoke --jsonl results/explain/smoke.jsonl

echo "==> explain replay (deterministic I/O regression gate)"
cargo run -q -p cor-bench --bin explain -- --replay results/explain/smoke.jsonl

echo "==> crashtest smoke (durability gate: crash, recover, verify vs oracle)"
cargo run -q --release -p cor-bench --bin crashtest -- --smoke

echo "==> crashtest --logical smoke (lifecycle gate: crash, reopen via catalog, verify answers)"
cargo run -q --release -p cor-bench --bin crashtest -- --logical --smoke

echo "==> iobench smoke (batched-I/O + queue-depth sweep gate: depth-1 identity, checksums, submission bounds)"
cargo run -q --release -p cor-bench --bin iobench -- --smoke --json results/iobench/smoke.json

echo "==> corperf smoke x2 (perf observatory: exact-I/O baseline + wall gate on the 2nd run)"
cargo run -q --release -p cor-bench --bin corperf -- --smoke --json results/corperf/smoke_core.json
cargo run -q --release -p cor-bench --bin corperf -- --smoke --json results/corperf/smoke_core.json

echo "==> poolbench smoke (replacement-policy gate: scan-flood retention, miss-model error, results identity)"
cargo run -q --release -p cor-bench --bin poolbench -- --smoke --json results/poolbench/smoke.json

echo "All checks passed."
