//! The paper's running example (Sec. 2): groups of persons as complex
//! objects.
//!
//! ```text
//! group (name, members, ...)        elders:   persons with age >= 60
//! person (name, age, ...)           children: persons with age <= 15
//!                                   cyclists: persons with cycling hobby
//! ```
//!
//! Shows the OID representation with shared subobjects (Mary is both an
//! elder and a cyclist), unit caching with I-lock invalidation when a
//! person is updated, and the representation matrix classification.
//!
//! ```text
//! cargo run --release --example scientists
//! ```

use complexobj::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
use complexobj::strategies::execute_retrieve;
use complexobj::{
    apply_update, CacheConfig, ExecOptions, ReprPoint, RetAttr, RetrieveQuery, Strategy,
    UpdateQuery,
};
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use std::sync::Arc;

// The persons of Sec. 2.3's example, ages stored in ret1.
const PERSONS: &[(&str, i64)] = &[
    ("John", 62),
    ("Mary", 62),
    ("Paul", 68),
    ("Jill", 8),
    ("Bill", 12),
    ("Mike", 44),
];

fn person_oid(i: usize) -> Oid {
    Oid::new(CHILD_REL_BASE, i as u64)
}

fn main() {
    // Groups: elders = {John, Mary, Paul}, children = {Jill, Bill},
    // cyclists = {Mary, Mike}. Mary is shared (OverlapFactor > 1 in the
    // paper's terms: the elders and cyclists units overlap).
    let groups: &[(&str, &[usize])] = &[
        ("elders", &[0, 1, 2]),
        ("children", &[3, 4]),
        ("cyclists", &[1, 5]),
    ];

    let spec = DatabaseSpec {
        parents: groups
            .iter()
            .enumerate()
            .map(|(g, (name, members))| ObjectSpec {
                key: g as u64,
                rets: [g as i64, 0, 0],
                dummy: name.to_string(),
                children: members.iter().map(|&m| person_oid(m)).collect(),
            })
            .collect(),
        child_rels: vec![PERSONS
            .iter()
            .enumerate()
            .map(|(i, (name, age))| SubobjectSpec {
                oid: person_oid(i),
                rets: [*age, i as i64, 0],
                dummy: name.to_string(),
            })
            .collect()],
    };

    let pool = Arc::new(BufferPool::builder().capacity(16).build());
    let db = CorDatabase::build_standard(
        pool,
        &spec,
        Some(CacheConfig {
            capacity: 8,
            ..CacheConfig::default()
        }),
    )
    .expect("database builds");

    // The paper's example query:
    //   retrieve (group.members.age) where group.name = "elders"
    //                                   or group.name = "children"
    // Groups 0..1 are exactly elders and children.
    let query = RetrieveQuery {
        lo: 0,
        hi: 1,
        attr: RetAttr::Ret1,
    };
    let opts = ExecOptions::default();

    println!("retrieve (group.members.age) where group is elders or children:\n");
    let out = execute_retrieve(&db, Strategy::DfsCache, &query, &opts).expect("query runs");
    let mut ages = out.values.clone();
    ages.sort_unstable();
    println!(
        "  ages = {ages:?}  ({} page I/Os, cold cache)\n",
        out.total_io()
    );
    assert_eq!(ages, vec![8, 12, 62, 62, 68]);

    // Run again: both units are now cached.
    let out2 = execute_retrieve(&db, Strategy::DfsCache, &query, &opts).expect("query runs");
    println!(
        "  repeated with warm cache: {} page I/Os (cache hits: {})\n",
        out2.total_io(),
        db.cache_mut().unwrap().counters().hits
    );
    assert!(out2.total_io() <= out.total_io());

    // Mary has a birthday: update her age in place. The I-lock she holds
    // for the cached elders unit (and the cyclists unit, were it cached)
    // invalidates them.
    println!("update person Mary: age 62 -> 63 (I-lock invalidation follows)");
    let update = UpdateQuery {
        targets: vec![person_oid(1)],
        new_ret1: 63,
    };
    apply_update(&db, &update, true).expect("update applies");
    let counters = db.cache_mut().unwrap().counters();
    println!("  invalidated cached units: {}\n", counters.invalidations);
    assert!(counters.invalidations >= 1);

    // The next query must see the new age — no stale cache reads.
    let out3 = execute_retrieve(&db, Strategy::DfsCache, &query, &opts).expect("query runs");
    let mut ages3 = out3.values.clone();
    ages3.sort_unstable();
    println!("  ages after update = {ages3:?}");
    assert_eq!(ages3, vec![8, 12, 62, 63, 68]);

    // Where this database sits in the representation matrix.
    let point = Strategy::DfsCache.repr_point();
    println!(
        "\nrepresentation matrix point: primary = {:?}, cached = {:?}, clustered = {}",
        point.primary, point.cached, point.clustered
    );
    println!(
        "meaningful matrix points (Fig. 1): {}",
        ReprPoint::all_meaningful().len()
    );
}
