//! Durable storage: build the paper's relations on a real file, exit,
//! reopen, and query again — the access layer's catalog (page 0) carries
//! the structural metadata across restarts.
//!
//! ```text
//! cargo run --release --example persistence
//! ```

use cor_access::{encode, scan_where, BTreeFile, Catalog, HashFile, DEFAULT_FILL};
use cor_pagestore::{BufferPool, FileDisk};
use cor_relational::{CmpOp, Oid, Predicate, Schema, Tuple, Value, ValueType};
use std::sync::Arc;

fn person_schema() -> Schema {
    Schema::new(&[
        ("oid", ValueType::Oid),
        ("name", ValueType::Str),
        ("age", ValueType::Int),
    ])
}

fn main() {
    let dir = std::env::temp_dir().join("cor-persistence-example");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("people.pages");
    std::fs::remove_file(&path).ok();

    let schema = person_schema();
    let people = [
        ("John", 62i64),
        ("Mary", 62),
        ("Paul", 68),
        ("Jill", 8),
        ("Bill", 12),
        ("Mike", 44),
    ];

    // --- session 1: create, load, persist -------------------------------
    {
        let disk = FileDisk::open(&path).expect("open page file");
        let pool = Arc::new(
            BufferPool::builder()
                .disk(Box::new(disk))
                .capacity(100)
                .build(),
        );
        let catalog = Catalog::create(Arc::clone(&pool)).expect("catalog on page 0");

        let entries: Vec<(Vec<u8>, Vec<u8>)> = people
            .iter()
            .enumerate()
            .map(|(i, (name, age))| {
                let oid = Oid::new(10, i as u64);
                let t = Tuple::new(vec![Value::Oid(oid), Value::from(*name), Value::Int(*age)]);
                (
                    oid.to_key_bytes().to_vec(),
                    encode(&schema, &t).expect("encode"),
                )
            })
            .collect();
        let person =
            BTreeFile::bulk_load(Arc::clone(&pool), 10, entries, DEFAULT_FILL).expect("bulk load");
        catalog
            .save_btree("person", &person)
            .expect("catalog entry");

        // A hash relation on the side (the Cache relation's machinery).
        let notes = HashFile::create(Arc::clone(&pool), 4).expect("hash file");
        notes
            .put(b"elders", b"persons with age >= 60")
            .expect("put");
        catalog.save_hash("notes", &notes).expect("catalog entry");

        pool.flush_all().expect("make everything durable");
        println!(
            "session 1: loaded {} persons into {} ({} pages), catalog saved",
            person.len(),
            path.display(),
            pool.num_pages()
        );
    } // everything dropped — "process exit"

    // --- session 2: reopen and query -------------------------------------
    {
        let disk = FileDisk::open(&path).expect("reopen page file");
        let pool = Arc::new(
            BufferPool::builder()
                .disk(Box::new(disk))
                .capacity(100)
                .build(),
        );
        let catalog = Catalog::open(Arc::clone(&pool)).expect("catalog present");
        let mut names = catalog.names().expect("listable");
        names.sort();
        println!("session 2: catalog entries {names:?}");

        let person = catalog.open_btree("person").expect("reattach");
        println!(
            "  person relation: {} tuples, height {}",
            person.len(),
            person.height()
        );

        // retrieve (person.name, person.age) where person.age >= 60
        let is_elder = Predicate::cmp(2, CmpOp::Ge, 60);
        let elders: Vec<(String, i64)> = scan_where(&person, &schema, &is_elder)
            .map(|t| {
                let t = t.expect("decode");
                (
                    t.get(1).as_str().expect("name").to_string(),
                    t.get(2).as_int().expect("age"),
                )
            })
            .collect();
        println!("  elders (age >= 60): {elders:?}");
        assert_eq!(elders.len(), 3);

        let notes = catalog.open_hash("notes").expect("reattach hash");
        let definition = notes.get(b"elders").expect("get").expect("present");
        println!(
            "  notes[elders] = {:?}",
            String::from_utf8_lossy(&definition)
        );
    }

    std::fs::remove_file(&path).ok();
    println!("done — the database survived the restart.");
}
