//! Quickstart: build a small complex-object database, run the same query
//! under every strategy of the paper, and compare I/O costs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use complexobj::strategies::run_all_supported;
use complexobj::{ExecOptions, RetAttr, RetrieveQuery, Strategy};
use cor_workload::{build_for_strategy, generate, Params};

fn main() {
    // A 1/10-scale paper database: 1,000 complex objects, each referencing
    // a unit of 5 subobjects; ShareFactor 5.
    let params = Params {
        use_factor: 5,
        overlap_factor: 1,
        ..Params::scaled(0.1)
    };
    let generated = generate(&params);
    println!(
        "database: {} objects, {} subobjects, {} distinct units (ShareFactor {})\n",
        generated.spec.parents.len(),
        generated
            .spec
            .child_rels
            .iter()
            .map(|r| r.len())
            .sum::<usize>(),
        generated.units.len(),
        params.share_factor(),
    );

    // The paper's query: retrieve (ParentRel.children.ret1)
    //                    where 100 <= ParentRel.OID <= 149
    let query = RetrieveQuery {
        lo: 100,
        hi: 149,
        attr: RetAttr::Ret1,
    };
    println!(
        "query: retrieve (ParentRel.children.ret1) where {} <= OID <= {}  (NumTop = {})\n",
        query.lo,
        query.hi,
        query.num_top()
    );

    println!(
        "{:<10} {:>8} {:>8} {:>8}  values",
        "strategy", "ParCost", "ChildCost", "total"
    );
    for strategy in Strategy::ALL {
        // Each strategy runs on a fresh physical database in the
        // representation it needs (clustered for DFSCLUST, cache-attached
        // for DFSCACHE/SMART), built from the same logical contents.
        let db = build_for_strategy(&params, &generated, strategy).expect("database builds");
        db.pool().flush_and_clear().expect("cold start");
        let results = run_all_supported(&db, &query, &ExecOptions::default());
        for (s, out) in results {
            if s != strategy {
                continue;
            }
            let out = out.expect("query runs");
            println!(
                "{:<10} {:>8} {:>8} {:>8}  {}",
                s.name(),
                out.par_io.total(),
                out.child_io.total(),
                out.total_io(),
                out.values.len()
            );
        }
    }

    println!(
        "\nEvery strategy returns the same multiset of values (BFSNODUP returns\n\
         each shared subobject once); they differ only in page I/O — the\n\
         tradeoff the paper's Figures 3-7 map out. Run the figure benches:\n\
         cargo run -p cor-bench --release --bin fig3"
    );
}
