//! The paper's motivating CAD scenario (Sec. 1): VLSI cells are complex
//! objects made of paths, and paths are made of rectangles:
//!
//! ```text
//! cells -> paths -> rectangles
//! ```
//!
//! This example models a cell library with the OID representation, runs
//! the two-level retrieval ("all rectangles of the paths of these cells")
//! by composing single-level strategies, and contrasts two access
//! patterns:
//!
//! * a **designer** repeatedly opening the handful of cells they are
//!   editing — the paper's low-NumTop, low-Pr(UPDATE) region, where unit
//!   caching pays;
//! * a **DRC batch job** sweeping the whole library — the large-NumTop
//!   region, where breadth-first processing pays.
//!
//! ```text
//! cargo run --release --example vlsi_cells
//! ```

use complexobj::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
use complexobj::strategies::execute_retrieve;
use complexobj::{CacheConfig, ExecOptions, RetAttr, RetrieveQuery, Strategy};
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const NUM_CELLS: u64 = 2000;
const PATHS_PER_CELL: u64 = 4;
const RECTS_PER_PATH: u64 = 6;
/// Standard-cell libraries share sub-layouts: several cells instantiate
/// the same path (e.g. a common power rail) — UseFactor 2 in paper terms.
const CELLS_PER_PATH: u64 = 2;
/// A designer concentrates on a small working set of cells.
const ACTIVE_CELLS: u64 = 30;

fn main() {
    let mut rng = StdRng::seed_from_u64(1989);

    // Level 2: rectangles (width stored in ret1, layer in ret2).
    let num_paths = NUM_CELLS * PATHS_PER_CELL / CELLS_PER_PATH;
    let num_rects = num_paths * RECTS_PER_PATH;
    let rect_oid = |k: u64| Oid::new(CHILD_REL_BASE, k);
    let rects: Vec<SubobjectSpec> = (0..num_rects)
        .map(|k| SubobjectSpec {
            oid: rect_oid(k),
            rets: [rng.random_range(1..=100), rng.random_range(1..=5), 0],
            dummy: "x".repeat(60), // realistic geometry payload
        })
        .collect();

    // Level 1: paths. They appear twice: as objects of the
    // paths->rectangles database and as subobjects of cells->paths.
    // Rectangles are dealt to paths in shuffled order: geometry ends up
    // scattered across the rectangle relation, as it does in real layout
    // databases where rectangles are created in edit order, not grouped
    // by path.
    let mut rect_deal: Vec<u64> = (0..num_rects).collect();
    {
        use rand::seq::SliceRandom;
        rect_deal.shuffle(&mut rng);
    }
    let path_children: Vec<Vec<Oid>> = (0..num_paths)
        .map(|p| {
            (0..RECTS_PER_PATH)
                .map(|r| rect_oid(rect_deal[(p * RECTS_PER_PATH + r) as usize]))
                .collect()
        })
        .collect();
    let paths_db_spec = DatabaseSpec {
        parents: (0..num_paths)
            .map(|p| ObjectSpec {
                key: p,
                rets: [p as i64, 0, 0],
                dummy: "x".repeat(80),
                children: path_children[p as usize].clone(),
            })
            .collect(),
        child_rels: vec![rects],
    };

    let path_oid = |k: u64| Oid::new(CHILD_REL_BASE, k);
    let paths_as_subobjects: Vec<SubobjectSpec> = (0..num_paths)
        .map(|p| SubobjectSpec {
            oid: path_oid(p),
            rets: [p as i64, 0, 0],
            dummy: "x".repeat(80),
        })
        .collect();
    let cells_db_spec = DatabaseSpec {
        parents: (0..NUM_CELLS)
            .map(|c| ObjectSpec {
                key: c,
                rets: [c as i64, 0, 0],
                dummy: "x".repeat(100),
                // Cell c uses PATHS_PER_CELL paths, shared pairwise.
                children: (0..PATHS_PER_CELL)
                    .map(|i| path_oid((c / CELLS_PER_PATH) * PATHS_PER_CELL + i))
                    .collect(),
            })
            .collect(),
        child_rels: vec![paths_as_subobjects],
    };

    // One 100-page buffer pool per database ("INGRES instance").
    let pool = |pages| Arc::new(BufferPool::builder().capacity(pages).build());
    let cells_db = CorDatabase::build_standard(
        pool(100),
        &cells_db_spec,
        Some(CacheConfig {
            capacity: 300,
            ..CacheConfig::default()
        }),
    )
    .expect("cells database builds");
    let paths_db = CorDatabase::build_standard(
        pool(100),
        &paths_db_spec,
        Some(CacheConfig {
            capacity: 600,
            ..CacheConfig::default()
        }),
    )
    .expect("paths database builds");

    println!(
        "cell library: {} cells / {} shared paths / {} rectangles\n",
        NUM_CELLS, num_paths, num_rects
    );

    // --- Designer workload: open cells from a small working set. ---
    // Two-level retrieval: cells.paths -> paths.rectangles, composed from
    // single-level strategies (the paper's multi-dot queries "require
    // more levels of relationships to be explored").
    let opts = ExecOptions::default();
    let designer = |strategy: Strategy| -> u64 {
        cells_db.pool().flush_and_clear().unwrap();
        paths_db.pool().flush_and_clear().unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let mut io = 0;
        for _ in 0..150 {
            let cell = rng.random_range(0..ACTIVE_CELLS) * (NUM_CELLS / ACTIVE_CELLS);
            let q1 = RetrieveQuery {
                lo: cell,
                hi: cell,
                attr: RetAttr::Ret1,
            };
            let paths = execute_retrieve(&cells_db, strategy, &q1, &opts).expect("level 1");
            io += paths.total_io();
            for pid in paths.values {
                let q2 = RetrieveQuery {
                    lo: pid as u64,
                    hi: pid as u64,
                    attr: RetAttr::Ret1,
                };
                let rects = execute_retrieve(&paths_db, strategy, &q2, &opts).expect("level 2");
                io += rects.total_io();
            }
        }
        io
    };

    // --- DRC batch job: sweep the whole library once. ---
    let batch = |strategy: Strategy| -> u64 {
        cells_db.pool().flush_and_clear().unwrap();
        paths_db.pool().flush_and_clear().unwrap();
        let q1 = RetrieveQuery {
            lo: 0,
            hi: NUM_CELLS - 1,
            attr: RetAttr::Ret1,
        };
        let paths = execute_retrieve(&cells_db, strategy, &q1, &opts).expect("level 1");
        let q2 = RetrieveQuery {
            lo: 0,
            hi: num_paths - 1,
            attr: RetAttr::Ret1,
        };
        let rects = execute_retrieve(&paths_db, strategy, &q2, &opts).expect("level 2");
        paths.total_io() + rects.total_io()
    };

    println!(
        "{:<10} {:>18} {:>16}",
        "strategy", "designer (150 ops)", "DRC batch scan"
    );
    let mut designer_costs = Vec::new();
    let mut batch_costs = Vec::new();
    for s in [
        Strategy::Dfs,
        Strategy::Bfs,
        Strategy::DfsCache,
        Strategy::Smart,
    ] {
        let d = designer(s);
        let b = batch(s);
        designer_costs.push((s, d));
        batch_costs.push((s, b));
        println!("{:<10} {:>18} {:>16}", s.name(), d, b);
    }

    let best_designer = designer_costs.iter().min_by_key(|(_, c)| *c).unwrap().0;
    let best_batch = batch_costs.iter().min_by_key(|(_, c)| *c).unwrap().0;
    println!(
        "\nbest for the designer: {} | best for the batch job: {}",
        best_designer.name(),
        best_batch.name()
    );
    println!(
        "The designer's repeated point fetches of a working set sit in the paper's\n\
         low-NumTop, low-Pr(UPDATE) region where unit caching wins; the DRC sweep\n\
         is the large-NumTop region where breadth-first processing wins — no\n\
         single strategy dominates, which is the paper's case for SMART."
    );
}
