//! An OO7-flavoured design-library workload on a three-level hierarchy
//! (assemblies → composite parts → atomic parts), queried through the QUEL
//! front-end and the multi-level executors.
//!
//! The paper's CAD motivation (Sec. 1) is exactly this shape; OO7 — the
//! complex-object benchmark that followed it — standardized the
//! traversal-vs-query distinction this example shows:
//!
//! * **T1-style full traversal** — visit every atomic part reachable from
//!   a range of assemblies (a three-dot query over the whole library);
//! * **Q1-style point lookups** — fetch the parts of a single assembly.
//!
//! ```text
//! cargo run --release --example design_library
//! ```

use complexobj::multilevel::{execute_multilevel, MultiDotQuery};
use complexobj::{parse_quel, ExecOptions, QuelStatement, Strategy};
use cor_workload::{build_hierarchy, snapshot_hierarchy, total_hierarchy_io, HierarchyParams};

fn main() {
    // 500 assemblies, each using 4 shared composite parts, each composite
    // made of 4 shared atomic parts.
    let hp = HierarchyParams {
        levels: 2,
        top_card: 500,
        fan_out: 4,
        use_factor: 2,
        buffer_pages: 100,
        seed: 2007,
        ..HierarchyParams::default()
    };
    let library = build_hierarchy(&hp).expect("library builds");
    println!(
        "design library: {} assemblies -> {} composite parts -> {} atomic parts\n",
        hp.card_at(0),
        hp.card_at(1),
        hp.card_at(2)
    );

    // The three-dot query, written in QUEL and parsed by the front-end.
    let quel = format!(
        "retrieve (ParentRel.children.children.ret1) where 0 <= ParentRel.OID <= {}",
        hp.card_at(0) - 1
    );
    println!("T1 traversal: {quel}\n");
    let Ok(QuelStatement::RetrieveMulti { query, depth }) = parse_quel(&quel) else {
        panic!("three-dot query must parse as a multi-level retrieve");
    };
    assert_eq!(depth, 2, "two 'children' hops need a two-database chain");

    let opts = ExecOptions::default();
    println!(
        "{:<10} {:>12} {:>12}",
        "strategy", "page I/O", "parts visited"
    );
    for s in [Strategy::Dfs, Strategy::Bfs, Strategy::BfsNoDup] {
        for db in &library {
            db.pool().flush_and_clear().expect("cold start");
        }
        let before = snapshot_hierarchy(&library);
        let out = execute_multilevel(&library, s, &query, &opts).expect("traversal runs");
        let io = total_hierarchy_io(&library, &before);
        println!("{:<10} {:>12} {:>12}", s.name(), io, out.values.len());
    }

    // Q1-style: open one assembly's parts, repeatedly (a designer's loop).
    println!("\nQ1 lookups: one assembly at a time, 100 times");
    for s in [Strategy::Dfs, Strategy::Bfs] {
        for db in &library {
            db.pool().flush_and_clear().expect("cold start");
        }
        let before = snapshot_hierarchy(&library);
        let mut visited = 0usize;
        for i in 0..100u64 {
            let a = (i * 37) % hp.card_at(0);
            let q = MultiDotQuery {
                lo: a,
                hi: a,
                attr: query.attr,
            };
            visited += execute_multilevel(&library, s, &q, &opts)
                .expect("lookup runs")
                .values
                .len();
        }
        let io = total_hierarchy_io(&library, &before);
        println!("{:<10} {:>12} {:>12}", s.name(), io, visited);
    }

    println!(
        "\nThe traversal favours breadth-first processing (level-at-a-time joins);\n\
         the designer's point lookups favour depth-first probing — the same\n\
         NumTop tradeoff the paper maps for two-dot queries, compounded per level."
    );
}
