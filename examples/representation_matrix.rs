//! A tour of the whole representation matrix (paper Fig. 1) on one logical
//! database: the same complex objects stored procedurally, as OID lists,
//! and value-based — with the meaningful caching variants of each column —
//! answering the same query at different costs.
//!
//! ```text
//! cargo run --release --example representation_matrix
//! ```

use complexobj::{PrimaryRepr, ReprPoint};
use cor_workload::{fnum, format_table, generate_matrix, run_matrix_point, MatrixSystem, Params};

fn main() {
    // Which matrix points are meaningful (the unshaded cells of Fig. 1)?
    println!("Fig. 1 representation matrix — meaningful points:\n");
    for point in ReprPoint::all_meaningful() {
        let col = match point.primary {
            PrimaryRepr::Procedural => "procedural",
            PrimaryRepr::Oid => "OID",
            PrimaryRepr::ValueBased => "value-based",
        };
        println!(
            "  primary: {:<12} cached: {:<8} clustered: {}",
            col,
            format!("{:?}", point.cached),
            point.clustered
        );
    }

    // One logical database, three primary representations, measured on
    // identical query sequences.
    let params = Params {
        num_top: 10,
        pr_update: 0.1,
        sequence_len: 60,
        ..Params::scaled(0.1)
    };
    let spec = generate_matrix(&params);
    println!(
        "\nmeasuring {} objects x {} subobjects, NumTop={}, Pr(UPDATE)={}:\n",
        params.parent_card,
        params.child_card(),
        params.num_top,
        params.pr_update
    );

    let mut rows = Vec::new();
    for system in MatrixSystem::ALL {
        let r = run_matrix_point(&params, &spec, system).expect("system runs");
        rows.push(vec![
            system.name().to_string(),
            fnum(r.avg_io_per_query()),
            fnum(r.avg_retrieve_io()),
            fnum(r.avg_update_io()),
        ]);
    }
    println!(
        "{}",
        format_table(&["system", "avg I/O", "per retrieve", "per update"], &rows)
    );

    println!(
        "Reading the table against the paper:\n\
         - VALUE reads are almost free (subobjects travel with the object) but\n\
           updates replicate across every sharing object (Sec. 2.2.1);\n\
         - PROC/exec(scan) pays a relation scan per object — the case caching\n\
           was invented for ([JHIN88]); its cached variants tame it;\n\
         - the OID column is the paper's main act: run the fig3/fig4/fig5/fig7\n\
           benches for its full story."
    );
}
