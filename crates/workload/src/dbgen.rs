//! Seeded database generation (paper Sec. 4).
//!
//! "The tuples of ParentRel and ChildRel were assigned unique OID's and
//! random values for ret1, ret2, ret3 and dummy. ... From |ChildRel|
//! subobjects, NumUnits units were randomly generated. These units were
//! then randomly assigned to the objects in ParentRel."
//!
//! Uniform unit membership makes the *expected* number of units sharing a
//! subobject equal `OverlapFactor`, and assigning each unit to exactly
//! `UseFactor` objects realizes `UseFactor`, so the generated database hits
//! `ShareFactor = UseFactor × OverlapFactor` by construction (verified by
//! the property tests).

use crate::params::Params;
use complexobj::database::{CHILD_REL_BASE, PARENT_REL};
use complexobj::{
    CacheConfig, ClusterAssignment, CorDatabase, CorError, DatabaseSpec, ObjectSpec, Strategy,
    SubobjectSpec, Unit,
};
use cor_pagestore::{BufferPool, ReplacementPolicy};
use cor_relational::Oid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A generated logical database plus the unit structure behind it.
#[derive(Debug, Clone)]
pub struct GeneratedDb {
    /// The logical tuples.
    pub spec: DatabaseSpec,
    /// All distinct units.
    pub units: Vec<Unit>,
    /// `assignment[i]` = index of the unit object `i` references.
    pub assignment: Vec<usize>,
}

/// Derived RNG streams so database contents, query sequences and
/// clustering assignments are independently reproducible.
#[derive(Debug, Clone, Copy)]
pub enum SeedStream {
    /// Database contents.
    Spec,
    /// Query sequence.
    Sequence,
    /// Clustering assignment.
    Cluster,
}

/// The RNG for one derived stream of a master seed.
pub fn rng_for(seed: u64, stream: SeedStream) -> StdRng {
    let offset = match stream {
        SeedStream::Spec => 0,
        SeedStream::Sequence => 1,
        SeedStream::Cluster => 2,
    };
    StdRng::seed_from_u64(seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(offset))
}

/// Make every `size`-chunk of `memberships` duplicate-free by swapping a
/// duplicated element with one from a later chunk that keeps both chunks
/// valid. Only chunks straddling permutation boundaries can contain
/// duplicates, so this touches a handful of positions.
pub(crate) fn repair_duplicate_chunks(memberships: &mut [Oid], size: usize) {
    use std::collections::HashSet;
    let n_chunks = memberships.len() / size;
    for c in 0..n_chunks {
        let start = c * size;
        loop {
            let chunk = &memberships[start..start + size];
            let mut seen = HashSet::with_capacity(size);
            let dup_pos = chunk.iter().position(|o| !seen.insert(*o));
            let Some(dup_pos) = dup_pos else { break };
            let dup = chunk[dup_pos];
            let chunk_set: HashSet<Oid> = chunk.iter().copied().collect();
            // Find a swap partner outside this chunk whose chunk does not
            // contain `dup` and whose value is not already in this chunk.
            let mut swapped = false;
            for other in (0..memberships.len()).filter(|i| !(start..start + size).contains(i)) {
                let cand = memberships[other];
                if chunk_set.contains(&cand) {
                    continue;
                }
                let oc = other / size;
                let ostart = oc * size;
                let oend = (ostart + size).min(memberships.len());
                if memberships[ostart..oend].contains(&dup) {
                    continue;
                }
                memberships.swap(start + dup_pos, other);
                swapped = true;
                break;
            }
            assert!(
                swapped,
                "duplicate repair must find a partner (population too small?)"
            );
        }
    }
}

/// Reorder per-relation unit blocks into round-robin order so unit `u`
/// belongs to relation `u % n_rels`.
fn interleave_units(units: Vec<Unit>, num_units: usize, n_rels: usize) -> Vec<Unit> {
    // `units` holds relation 0's units first, then relation 1's, ...
    let mut per_rel: Vec<std::collections::VecDeque<Unit>> = (0..n_rels)
        .map(|_| std::collections::VecDeque::new())
        .collect();
    let mut iter = units.into_iter();
    for (r, bucket) in per_rel.iter_mut().enumerate() {
        let count = (num_units + n_rels - 1 - r) / n_rels;
        for _ in 0..count {
            if let Some(u) = iter.next() {
                bucket.push_back(u);
            }
        }
    }
    let mut out = Vec::with_capacity(num_units);
    for u in 0..num_units {
        if let Some(unit) = per_rel[u % n_rels].pop_front() {
            out.push(unit);
        }
    }
    out
}

fn random_dummy(rng: &mut StdRng, len: usize) -> String {
    (0..len)
        .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
        .collect()
}

/// Generate the logical database for `params` (deterministic in
/// `params.seed`).
pub fn generate(params: &Params) -> GeneratedDb {
    params.validate().expect("invalid parameters");
    let mut rng = rng_for(params.seed, SeedStream::Spec);

    // --- subobjects, split across NumChildRel relations ---
    let total_children = params.child_card();
    let n_rels = params.num_child_rels as u64;
    let base = total_children / n_rels;
    let extra = total_children % n_rels;
    let mut child_rels: Vec<Vec<SubobjectSpec>> = Vec::with_capacity(params.num_child_rels);
    for r in 0..n_rels {
        let card = base + if r < extra { 1 } else { 0 };
        let rel_id = CHILD_REL_BASE + r as u16;
        let rel: Vec<SubobjectSpec> = (0..card)
            .map(|k| SubobjectSpec {
                oid: Oid::new(rel_id, k),
                rets: [
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                ],
                dummy: random_dummy(&mut rng, params.child_dummy_len),
            })
            .collect();
        child_rels.push(rel);
    }

    // --- units: each drawn from a single relation ---
    //
    // The factors must hold *exactly* where the paper relies on it: with
    // OverlapFactor = 1 and UseFactor = 1 clustering must be ideal
    // (ShareFactor exactly 1, C = S). We therefore deal each subobject into
    // exactly OverlapFactor units: concatenate OverlapFactor shuffled
    // permutations of the relation's subobjects and chunk into units of
    // SizeUnit. Chunks inside one permutation are automatically
    // duplicate-free; the few chunks straddling permutation boundaries are
    // repaired by swapping.
    let num_units = params.num_units() as usize;
    let mut units: Vec<Unit> = Vec::with_capacity(num_units);
    for (rel_idx, rel) in child_rels.iter().enumerate() {
        // Units are assigned to relations round-robin: unit u lives in
        // relation u % num_child_rels.
        let units_here = (num_units + params.num_child_rels - 1 - rel_idx) / params.num_child_rels;
        let needed = units_here * params.size_unit;
        let rel_oids: Vec<Oid> = rel.iter().map(|s| s.oid).collect();
        let mut memberships: Vec<Oid> = Vec::with_capacity(needed + rel_oids.len());
        while memberships.len() < needed {
            let mut perm = rel_oids.clone();
            perm.shuffle(&mut rng);
            memberships.extend(perm);
        }
        memberships.truncate(needed);
        repair_duplicate_chunks(&mut memberships, params.size_unit);
        for chunk in memberships.chunks(params.size_unit) {
            units.push(Unit::new(chunk.to_vec()));
        }
    }
    // Interleave so unit u sits at index u with relation u % num_child_rels
    // (matches the round-robin layout produced above for one relation; for
    // several relations, reorder).
    if params.num_child_rels > 1 {
        units = interleave_units(units, num_units, params.num_child_rels);
    }
    units.truncate(num_units);

    // --- assignment: each unit used by (about) UseFactor objects ---
    let mut assignment: Vec<usize> = Vec::with_capacity(params.parent_card as usize);
    'fill: loop {
        for u in 0..num_units {
            for _ in 0..params.use_factor {
                assignment.push(u);
                if assignment.len() == params.parent_card as usize {
                    break 'fill;
                }
            }
        }
        if num_units == 0 {
            break;
        }
    }
    assignment.shuffle(&mut rng);

    // --- objects ---
    let parents: Vec<ObjectSpec> = (0..params.parent_card)
        .map(|key| ObjectSpec {
            key,
            rets: [
                rng.random_range(-1000..=1000),
                rng.random_range(-1000..=1000),
                rng.random_range(-1000..=1000),
            ],
            dummy: random_dummy(&mut rng, params.parent_dummy_len),
            children: units[assignment[key as usize]].oids().to_vec(),
        })
        .collect();

    GeneratedDb {
        spec: DatabaseSpec {
            parents,
            child_rels,
        },
        units,
        assignment,
    }
}

/// A buffer pool sized by `params` over a fresh in-memory disk.
pub fn make_pool(params: &Params) -> Arc<BufferPool> {
    make_pool_telemetry(params, false)
}

/// Like [`make_pool`], but optionally enabling per-shard telemetry
/// counters. I/O accounting is identical either way; telemetry only adds
/// separate hit/miss/eviction counters readable via
/// [`BufferPool::telemetry`].
pub fn make_pool_telemetry(params: &Params, telemetry: bool) -> Arc<BufferPool> {
    make_pool_async(params, telemetry, 1)
}

/// Like [`make_pool_telemetry`], with an async submission queue depth:
/// `queue_depth > 1` builds a `cor-aio` engine into the pool, 1 is the
/// synchronous byte-identical default.
pub fn make_pool_async(params: &Params, telemetry: bool, queue_depth: usize) -> Arc<BufferPool> {
    make_pool_policy(params, telemetry, queue_depth, ReplacementPolicy::default())
}

/// Like [`make_pool_async`], with an explicit replacement policy — the
/// poolbench entry point. The default (LRU) reproduces every other
/// helper's pool byte for byte.
pub fn make_pool_policy(
    params: &Params,
    telemetry: bool,
    queue_depth: usize,
    policy: ReplacementPolicy,
) -> Arc<BufferPool> {
    Arc::new(
        BufferPool::builder()
            .capacity(params.buffer_pages)
            .shards(params.shards)
            .policy(policy)
            .telemetry(telemetry)
            .queue_depth(queue_depth)
            .build(),
    )
}

/// Build the physical database a strategy needs: clustered for DFSCLUST,
/// cache-attached for DFSCACHE/SMART, plain standard otherwise. Each build
/// gets its own pool (its own "INGRES instance").
pub fn build_for_strategy(
    params: &Params,
    generated: &GeneratedDb,
    strategy: Strategy,
) -> Result<CorDatabase, CorError> {
    build_for_strategy_on(make_pool(params), params, generated, strategy)
}

/// [`build_for_strategy`] on a caller-supplied pool, so drivers can attach
/// a telemetry-enabled pool (see [`make_pool_telemetry`]) or share a disk.
pub fn build_for_strategy_on(
    pool: Arc<BufferPool>,
    params: &Params,
    generated: &GeneratedDb,
    strategy: Strategy,
) -> Result<CorDatabase, CorError> {
    if strategy.needs_cluster() {
        let parents: Vec<(u64, Vec<Oid>)> = generated
            .spec
            .parents
            .iter()
            .map(|o| (o.key, o.children.clone()))
            .collect();
        let mut rng = rng_for(params.seed, SeedStream::Cluster);
        let assignment = ClusterAssignment::random(&parents, &mut rng);
        return CorDatabase::build_clustered(pool, &generated.spec, &assignment);
    }
    let cache = strategy.needs_cache().then(|| CacheConfig {
        capacity: params.size_cache,
        ..CacheConfig::default()
    });
    CorDatabase::build_standard(pool, &generated.spec, cache)
}

/// Expected OID of a uniformly random subobject, for update generation.
pub fn random_child_oid(params: &Params, rng: &mut StdRng) -> Oid {
    let total = params.child_card();
    let n_rels = params.num_child_rels as u64;
    let base = total / n_rels;
    let extra = total % n_rels;
    let r = rng.random_range(0..n_rels);
    let card = base + if r < extra { 1 } else { 0 };
    Oid::new(CHILD_REL_BASE + r as u16, rng.random_range(0..card))
}

/// The OID of parent `key` (convenience).
pub fn parent_oid(key: u64) -> Oid {
    Oid::new(PARENT_REL, key)
}

#[cfg(test)]
mod tests {
    use super::*;
    use complexobj::measure_sharing;

    fn tiny() -> Params {
        Params {
            parent_card: 200,
            size_cache: 20,
            buffer_pages: 16,
            sequence_len: 20,
            num_top: 10,
            ..Params::paper_default()
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = tiny();
        let a = generate(&p);
        let b = generate(&p);
        assert_eq!(a.spec.parents, b.spec.parents);
        assert_eq!(a.spec.child_rels, b.spec.child_rels);
        assert_eq!(a.assignment, b.assignment);
        let mut p2 = tiny();
        p2.seed ^= 1;
        let c = generate(&p2);
        assert_ne!(
            a.spec.parents, c.spec.parents,
            "different seed, different data"
        );
    }

    #[test]
    fn cardinalities_follow_equation_one() {
        for uf in [1u32, 2, 5, 10] {
            let p = Params {
                use_factor: uf,
                ..tiny()
            };
            let g = generate(&p);
            assert_eq!(g.spec.parents.len() as u64, p.parent_card);
            let total: usize = g.spec.child_rels.iter().map(|r| r.len()).sum();
            assert_eq!(total as u64, p.child_card(), "uf={uf}");
            assert_eq!(g.units.len() as u64, p.num_units());
        }
    }

    #[test]
    fn observed_use_factor_matches_request() {
        let p = Params {
            use_factor: 5,
            ..tiny()
        };
        let g = generate(&p);
        let f = measure_sharing(&g.assignment, &g.units);
        assert!(
            (f.use_factor - 5.0).abs() < 0.3,
            "use_factor = {}",
            f.use_factor
        );
        assert!(
            (f.overlap_factor - 1.0).abs() < 0.3,
            "overlap = {}",
            f.overlap_factor
        );
    }

    #[test]
    fn observed_overlap_factor_matches_request() {
        // OverlapFactor 5 with UseFactor 1: 200 units of 5 drawn from 40
        // subobjects -> each subobject in ~25 units? No: child_card =
        // 200*5/5 = 200... use parent 1000 for clearer statistics.
        let p = Params {
            parent_card: 1000,
            use_factor: 1,
            overlap_factor: 5,
            size_cache: 20,
            buffer_pages: 16,
            sequence_len: 10,
            num_top: 10,
            ..Params::paper_default()
        };
        let g = generate(&p);
        let f = measure_sharing(&g.assignment, &g.units);
        assert!(
            (f.use_factor - 1.0).abs() < 0.05,
            "use_factor = {}",
            f.use_factor
        );
        assert!(
            (f.overlap_factor - 5.0).abs() < 0.8,
            "overlap = {}",
            f.overlap_factor
        );
    }

    #[test]
    fn units_are_single_relation_and_within_cardinality() {
        let p = Params {
            num_child_rels: 3,
            ..tiny()
        };
        let g = generate(&p);
        assert_eq!(g.spec.child_rels.len(), 3);
        for u in &g.units {
            let rel = u.relation().unwrap();
            let rel_idx = (rel - CHILD_REL_BASE) as usize;
            let card = g.spec.child_rels[rel_idx].len() as u64;
            for oid in u.oids() {
                assert_eq!(oid.rel, rel);
                assert!(oid.key < card);
            }
        }
    }

    #[test]
    fn units_have_distinct_members() {
        let g = generate(&tiny());
        for u in &g.units {
            let mut seen = u.oids().to_vec();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), u.len(), "unit members must be distinct");
        }
    }

    #[test]
    fn builds_for_every_strategy() {
        let p = tiny();
        let g = generate(&p);
        for s in Strategy::ALL {
            let db = build_for_strategy(&p, &g, s).unwrap();
            assert_eq!(db.parent_count(), p.parent_card);
            assert_eq!(db.has_cache(), s.needs_cache());
            assert_eq!(
                matches!(db.storage(), complexobj::Storage::Clustered { .. }),
                s.needs_cluster()
            );
        }
    }

    #[test]
    fn random_child_oid_stays_in_range() {
        let p = Params {
            num_child_rels: 3,
            ..tiny()
        };
        let g = generate(&p);
        let mut rng = rng_for(7, SeedStream::Sequence);
        for _ in 0..200 {
            let oid = random_child_oid(&p, &mut rng);
            let rel_idx = (oid.rel - CHILD_REL_BASE) as usize;
            assert!(oid.key < g.spec.child_rels[rel_idx].len() as u64);
        }
    }
}
