//! The `Engine` facade — one session object over the paper's machinery.
//!
//! Historically each representation had its own free-function entry point
//! (`strategies::run_retrieve`, `multilevel::run_multilevel`,
//! `procedural::exec::run_proc_retrieve`) and every caller assembled its
//! own pool + database + cache. The engine owns that assembly behind a
//! builder and exposes uniform `retrieve` / `update` / `run_sequence`
//! calls, plus the concurrent driver for multi-stream serving:
//!
//! ```
//! use cor_workload::Engine;
//! use complexobj::{DatabaseSpec, RetAttr, RetrieveQuery, Strategy};
//! use cor_pagestore::ReplacementPolicy;
//!
//! let spec = DatabaseSpec::tiny(); // 4 objects over 6 shared subobjects
//! let engine = Engine::builder()
//!     .pool_pages(100)
//!     .shards(8)
//!     .policy(ReplacementPolicy::Clock)
//!     .build(&spec)
//!     .unwrap();
//! let q = RetrieveQuery { lo: 0, hi: 3, attr: RetAttr::Ret1 };
//! let out = engine.retrieve(Strategy::Dfs, &q).unwrap();
//! assert_eq!(out.values.len(), 8);
//! ```

use crate::catalog::{EngineCatalog, SavedBackend, ENGINE_BLOB};
use crate::concurrent::{
    run_concurrent_streams, run_concurrent_streams_observed, ConcurrentRunResult, LiveTick,
};
use crate::dbgen::{build_for_strategy_on, make_pool_policy, GeneratedDb};
use crate::driver::{run_sequence, RunResult};
use crate::explain::ExplainReport;
use crate::metrics::{build_report, strategy_tag, EngineMetrics, MetricsReport};
use crate::params::Params;
use complexobj::multilevel::{execute_multilevel, MultiDotQuery};
use complexobj::procedural::{
    apply_proc_update, execute_proc_retrieve, ProcCaching, ProcDatabase, ProcDatabaseSpec,
};
use complexobj::strategies::execute_retrieve;
use complexobj::{
    apply_update, CacheConfig, ClusterAssignment, CorDatabase, CorError, DatabaseSpec, ExecOptions,
    Query, RetrieveQuery, Strategy, StrategyOutput, UpdateQuery,
};
use cor_access::{Catalog, CatalogError};
use cor_obs::{flight, heat, tracetree, wait, TraceTree};
use cor_pagestore::{
    BufferPool, DiskManager, FileDisk, IoDelta, ReplacementPolicy, DEFAULT_POOL_PAGES,
};
use cor_wal::{CheckpointInfo, FileLogStore, LogStore, Wal, WalConfig};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Pages in the throwaway pool used to read the engine catalog before the
/// real pool's geometry is known. Reads only; dropped after decoding.
const BOOTSTRAP_POOL_PAGES: usize = 16;

/// What [`EngineBuilder::create`] populates a fresh store with. `create`
/// is the only place a spec is needed: after that the persistent catalog
/// — not the caller — records which backend the store holds, and
/// [`EngineBuilder::open`] reconstructs it with no spec at all.
#[derive(Debug, Clone)]
pub enum EngineSpec {
    /// Standard OID representation (attach a cache via
    /// [`EngineBuilder::cache`] for DFSCACHE / SMART).
    Standard(DatabaseSpec),
    /// Clustered OID representation (DFSCLUST).
    Clustered(DatabaseSpec, ClusterAssignment),
    /// Multi-level hierarchy, level 0 first. Durable hierarchies share
    /// one buffer pool (one store), unlike the legacy
    /// [`EngineBuilder::build_levels`] pool-per-level arrangement.
    Levels(Vec<DatabaseSpec>),
    /// Procedural representation with the given caching mode.
    Procedural(ProcDatabaseSpec, ProcCaching),
}

/// The persistent-catalog half of a lifecycle-built engine: the page-0
/// catalog handle plus the pool geometry recorded in every snapshot.
struct CatalogState {
    catalog: Catalog,
    pool_pages: usize,
    shards: usize,
    policy: ReplacementPolicy,
}

/// Map a bootstrap-read catalog error: a store whose page 0 does not
/// parse as a catalog (or has no `"engine"` blob) was not created by the
/// lifecycle API; real storage failures pass through.
fn catalog_probe_err(e: CatalogError) -> CorError {
    match e {
        CatalogError::Access(a) => CorError::Access(a),
        _ => CorError::CatalogMissing,
    }
}

/// What the engine is serving queries against.
enum Backend {
    /// A single OID-representation database (standard or clustered,
    /// optionally cache-attached).
    Oid(CorDatabase),
    /// A multi-level hierarchy chain (level 0 first).
    Levels(Vec<CorDatabase>),
    /// A procedural-representation database.
    Proc(ProcDatabase),
}

/// A query-serving session: pool + database + optional cache behind one
/// object. Build with [`Engine::builder`].
pub struct Engine {
    backend: Backend,
    opts: ExecOptions,
    metrics: Option<Arc<EngineMetrics>>,
    wal: Option<Arc<Wal>>,
    catalog: Option<CatalogState>,
    slow: Option<Arc<SlowQueryHook>>,
}

/// Retained slow-query captures before new ones are dropped (a
/// diagnostic buffer, not a log shipper).
const SLOW_QUERY_CAP: usize = 64;

/// Latency-threshold slow-query hook: retrieves whose wall time crosses
/// the threshold are recorded in the flight recorder and automatically
/// re-run under [`Engine::explain`] to capture a full phase/model
/// breakdown of what the query was doing.
struct SlowQueryHook {
    threshold: Duration,
    entries: Mutex<Vec<SlowQueryEntry>>,
    /// One capture at a time: a concurrent breach while an explain
    /// capture is running is recorded in the flight journal only.
    capturing: AtomicBool,
}

/// One captured slow query: what ran, how long it took, and the
/// [`ExplainReport`] of its automatic re-execution.
#[derive(Debug, Clone)]
pub struct SlowQueryEntry {
    /// The retrieve that crossed the threshold.
    pub query: RetrieveQuery,
    /// The strategy it ran under.
    pub strategy: Strategy,
    /// Wall time of the original (slow) execution.
    pub wall: Duration,
    /// Phase/model breakdown from re-running the query under explain.
    pub report: ExplainReport,
    /// Causal trace of the explain re-execution. Its id is journaled as
    /// a `trace_link` flight event, so crashtest black boxes can be
    /// joined with the tree. `None` only when another trace was already
    /// active on the capturing thread.
    pub trace: Option<TraceTree>,
}

/// Configures and builds an [`Engine`].
#[derive(Clone)]
pub struct EngineBuilder {
    pool_pages: usize,
    shards: usize,
    policy: ReplacementPolicy,
    cache: Option<CacheConfig>,
    opts: ExecOptions,
    metrics: bool,
    disk: Option<Arc<dyn DiskManager>>,
    wal: Option<Arc<Wal>>,
    wal_config: WalConfig,
}

impl std::fmt::Debug for EngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineBuilder")
            .field("pool_pages", &self.pool_pages)
            .field("shards", &self.shards)
            .field("policy", &self.policy)
            .field("cache", &self.cache)
            .field("opts", &self.opts)
            .field("metrics", &self.metrics)
            .field("disk", &self.disk.is_some())
            .field("wal", &self.wal.is_some())
            .field("wal_config", &self.wal_config)
            .finish()
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            pool_pages: DEFAULT_POOL_PAGES,
            shards: 1,
            policy: ReplacementPolicy::default(),
            cache: None,
            opts: ExecOptions::default(),
            metrics: false,
            disk: None,
            wal: None,
            wal_config: WalConfig::default(),
        }
    }
}

impl EngineBuilder {
    /// Buffer pool capacity in pages (default: the paper's 100).
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.pool_pages = pages;
        self
    }

    /// Lock-striped shards in the pool (default 1 — the paper's single
    /// global buffer, with exact I/O counts).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Replacement policy (default LRU). Kept in sync with
    /// `ExecOptions::pool_policy` — the two are one knob; the last
    /// setter called wins.
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self.opts.pool_policy = policy;
        self
    }

    /// Attach a unit-value cache (DFSCACHE / SMART need one).
    pub fn cache(mut self, cfg: CacheConfig) -> Self {
        self.cache = Some(cfg);
        self
    }

    /// Execution options used by every query this engine runs. The
    /// `pool_policy` carried in the options also configures the pool
    /// this builder constructs (same knob as [`policy`](Self::policy)).
    pub fn exec_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self.policy = opts.pool_policy;
        self
    }

    /// Back the pool with an explicit page store instead of the default
    /// private [`MemDisk`](cor_pagestore::MemDisk) — a
    /// [`FileDisk`](cor_pagestore::FileDisk), a crash-test
    /// [`FaultyDisk`](cor_pagestore::FaultyDisk), or a shared handle the
    /// caller keeps for post-crash inspection.
    pub fn disk(mut self, disk: Arc<dyn DiskManager>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Attach a write-ahead log: every page mutation is logged before the
    /// page can reach the disk, and [`Engine::checkpoint`] becomes
    /// available. [`IoStats`](cor_pagestore::IoStats) totals — the
    /// paper's cost metric — are identical with or without a WAL; log
    /// I/O is accounted by the WAL's own counters.
    pub fn wal(mut self, wal: Arc<Wal>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// WAL configuration used when the lifecycle API
    /// ([`create`](Self::create) / [`open`](Self::open)) constructs the
    /// log itself (default: fsync always, 1 MiB segments). Ignored when
    /// an explicit [`wal`](Self::wal) handle is attached.
    pub fn wal_config(mut self, config: WalConfig) -> Self {
        self.wal_config = config;
        self
    }

    /// Enable the observability layer: per-shard pool telemetry, per-query
    /// spans and streaming latency histograms, readable via
    /// [`Engine::metrics`]. Disabled by default; when disabled no counters
    /// are allocated and the hot paths skip instrumentation entirely.
    /// [`IoStats`](cor_pagestore::IoStats) totals — the paper's cost
    /// metric — are identical either way.
    pub fn metrics(mut self, enabled: bool) -> Self {
        self.metrics = enabled;
        self
    }

    fn make_pool(&self) -> Arc<BufferPool> {
        let mut b = BufferPool::builder()
            .capacity(self.pool_pages)
            .shards(self.shards)
            .policy(self.policy)
            .queue_depth(self.opts.io.queue_depth)
            .telemetry(self.metrics);
        if let Some(disk) = &self.disk {
            b = b.disk(Box::new(disk.clone()));
        }
        if let Some(wal) = &self.wal {
            b = b.wal(wal.clone());
        }
        Arc::new(b.build())
    }

    fn make_metrics(&self) -> Option<Arc<EngineMetrics>> {
        self.metrics.then(|| Arc::new(EngineMetrics::new()))
    }

    /// Build the spec's backend on `pool`. Hierarchy levels share the one
    /// pool — the store is one file, so durable levels are one "INGRES
    /// instance" rather than the legacy pool-per-level arrangement.
    fn backend_for_spec(
        pool: &Arc<BufferPool>,
        cache: Option<CacheConfig>,
        spec: &EngineSpec,
    ) -> Result<Backend, CorError> {
        Ok(match spec {
            EngineSpec::Standard(s) => {
                Backend::Oid(CorDatabase::build_standard(Arc::clone(pool), s, cache)?)
            }
            EngineSpec::Clustered(s, assignment) => Backend::Oid(CorDatabase::build_clustered(
                Arc::clone(pool),
                s,
                assignment,
            )?),
            EngineSpec::Levels(specs) => {
                assert!(!specs.is_empty(), "at least one level");
                Backend::Levels(
                    specs
                        .iter()
                        .map(|s| CorDatabase::build_standard(Arc::clone(pool), s, cache))
                        .collect::<Result<_, _>>()?,
                )
            }
            EngineSpec::Procedural(s, caching) => {
                Backend::Proc(ProcDatabase::build(Arc::clone(pool), s, *caching)?)
            }
        })
    }

    /// Create a durable engine in directory `path` (page store
    /// `path/db.pages`, log segments under `path/wal/`), populated from
    /// `spec`. The persistent catalog is written before this returns, so
    /// the store is reopenable — via [`open`](Self::open), spec-free —
    /// from any point after `create`, crash included.
    pub fn create(self, path: &Path, spec: &EngineSpec) -> Result<Engine, CorError> {
        let (disk, store) = Self::open_files(path)?;
        self.create_on(disk, store, spec)
    }

    /// Reopen the engine stored in directory `path`: replay the log,
    /// read the recovered catalog, and reconstruct the backend it
    /// records. No spec: the catalog is the source of truth.
    pub fn open(self, path: &Path) -> Result<Engine, CorError> {
        let (disk, store) = Self::open_files(path)?;
        self.open_on(disk, store)
    }

    #[allow(clippy::type_complexity)]
    fn open_files(path: &Path) -> Result<(Arc<dyn DiskManager>, Arc<dyn LogStore>), CorError> {
        std::fs::create_dir_all(path)
            .map_err(|e| CorError::Durability(format!("creating {}: {e}", path.display())))?;
        let disk = FileDisk::open(&path.join("db.pages"))
            .map_err(|e| CorError::Durability(format!("opening page store: {e}")))?;
        let store = FileLogStore::open(&path.join("wal"))
            .map_err(|e| CorError::Durability(format!("opening log store: {e}")))?;
        Ok((Arc::new(disk), Arc::new(store)))
    }

    /// [`create`](Self::create) over explicit disk and log stores —
    /// the crash-test entry point ([`MemDisk`](cor_pagestore::MemDisk),
    /// [`FaultyDisk`](cor_pagestore::FaultyDisk),
    /// [`MemLogStore`](cor_wal::MemLogStore)). Both must be empty.
    pub fn create_on(
        mut self,
        disk: Arc<dyn DiskManager>,
        store: Arc<dyn LogStore>,
        spec: &EngineSpec,
    ) -> Result<Engine, CorError> {
        if disk.num_pages() != 0 {
            return Err(CorError::Durability(format!(
                "create requires a fresh store, found {} existing pages; \
                 reopen existing stores with EngineBuilder::open",
                disk.num_pages()
            )));
        }
        let wal = Arc::new(Wal::new(store, self.wal_config));
        self.disk = Some(disk);
        self.wal = Some(Arc::clone(&wal));
        let pool = self.make_pool();
        // Page 0, allocated before any relation, holds the catalog.
        let catalog = Catalog::create(Arc::clone(&pool))
            .map_err(|e| CorError::Durability(format!("creating catalog: {e}")))?;
        let backend = Self::backend_for_spec(&pool, self.cache, spec)?;
        let engine = Engine {
            backend,
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: Some(wal),
            catalog: Some(CatalogState {
                catalog,
                pool_pages: self.pool_pages,
                shards: self.shards,
                policy: self.policy,
            }),
        };
        engine.save_catalog(false)?;
        flight::record(flight::FlightKind::EngineOpen, self.pool_pages as u64, 1, 0);
        Ok(engine)
    }

    /// [`open`](Self::open) over explicit disk and log stores.
    ///
    /// Runs crash recovery, then reads the engine catalog through a
    /// throwaway bootstrap pool (the real pool's geometry is *in* the
    /// catalog), rebuilds the pool and backend, and marks the store
    /// in-use. Typed failures: [`CorError::CatalogMissing`] when the
    /// store was not created by this API, [`CorError::CatalogVersion`]
    /// when it was written by an incompatible layout.
    ///
    /// The builder's pool geometry is ignored — the catalog's recorded
    /// geometry wins, so every reopen serves queries with the same
    /// buffer economics the store was created with. `metrics` and
    /// `exec_options` overrides still apply ([`Engine::with_options`]).
    pub fn open_on(
        mut self,
        disk: Arc<dyn DiskManager>,
        store: Arc<dyn LogStore>,
    ) -> Result<Engine, CorError> {
        cor_wal::recover(disk.as_ref(), store.as_ref())
            .map_err(|e| CorError::Durability(format!("recovery failed: {e}")))?;
        if disk.num_pages() == 0 {
            return Err(CorError::CatalogMissing);
        }
        let saved = {
            let boot = Arc::new(
                BufferPool::builder()
                    .capacity(BOOTSTRAP_POOL_PAGES)
                    .disk(Box::new(Arc::clone(&disk)))
                    .build(),
            );
            let cat = Catalog::open(boot).map_err(catalog_probe_err)?;
            let bytes = cat.get_blob(ENGINE_BLOB).map_err(catalog_probe_err)?;
            EngineCatalog::decode(&bytes)?
        };
        let wal = Arc::new(
            Wal::attach(store, self.wal_config)
                .map_err(|e| CorError::Durability(format!("attaching WAL: {e}")))?,
        );
        self.pool_pages = saved.pool_pages;
        self.shards = saved.shards;
        self.policy = saved.policy;
        // The pool's async submission depth is part of the recorded
        // execution options, so a reopened store keeps the queue depth
        // it was created with.
        self.opts = saved.opts;
        self.disk = Some(disk);
        self.wal = Some(Arc::clone(&wal));
        let pool = self.make_pool();
        if saved.clean_shutdown {
            // The free list is trustworthy only when nothing ran after it
            // was saved. After a crash it is discarded: a page freed (or
            // un-freed) post-snapshot could otherwise be handed out while
            // live data sits on it. Leaked pages are bounded and inert.
            for &pid in &saved.free_pages {
                pool.free_page(pid)?;
            }
        }
        let catalog = Catalog::open(Arc::clone(&pool))
            .map_err(|e| CorError::Durability(format!("reopening catalog: {e}")))?;
        let backend = match &saved.backend {
            SavedBackend::Oid(s) => Backend::Oid(CorDatabase::open_state(Arc::clone(&pool), s)?),
            SavedBackend::Levels(ls) => Backend::Levels(
                ls.iter()
                    .map(|s| CorDatabase::open_state(Arc::clone(&pool), s))
                    .collect::<Result<_, _>>()?,
            ),
            SavedBackend::Proc(s) => Backend::Proc(ProcDatabase::open_state(Arc::clone(&pool), s)?),
        };
        let engine = Engine {
            backend,
            opts: saved.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: Some(wal),
            catalog: Some(CatalogState {
                catalog,
                pool_pages: saved.pool_pages,
                shards: saved.shards,
                policy: saved.policy,
            }),
        };
        // Mark in-use (clears clean_shutdown) and persist the reconciled
        // cache directories in one stroke.
        engine.save_catalog(false)?;
        flight::record(flight::FlightKind::EngineOpen, self.pool_pages as u64, 0, 0);
        Ok(engine)
    }

    /// Build the engine a workload point needs under `strategy`
    /// (clustered for DFSCLUST, cache-attached for DFSCACHE / SMART,
    /// plain standard otherwise), using the params' pool geometry. With
    /// [`metrics(true)`](Self::metrics) the pool carries telemetry and
    /// the engine records spans — the replacement for the deprecated
    /// `Engine::for_strategy_observed`.
    pub fn build_workload(
        self,
        params: &Params,
        generated: &GeneratedDb,
        strategy: Strategy,
    ) -> Result<Engine, CorError> {
        let pool = make_pool_policy(params, self.metrics, self.opts.io.queue_depth, self.policy);
        let db = build_for_strategy_on(pool, params, generated, strategy)?;
        Ok(Engine {
            backend: Backend::Oid(db),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: None,
            catalog: None,
        })
    }

    /// Wrap an already-built OID database (standard or clustered),
    /// honouring this builder's options and metrics flag.
    pub fn wrap_database(self, db: CorDatabase) -> Engine {
        Engine {
            backend: Backend::Oid(db),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: None,
            catalog: None,
        }
    }

    /// Wrap an already-built hierarchy chain (level 0 first), e.g. from
    /// [`crate::hierarchy::build_hierarchy`].
    pub fn wrap_levels(self, levels: Vec<CorDatabase>) -> Engine {
        assert!(!levels.is_empty(), "at least one level");
        Engine {
            backend: Backend::Levels(levels),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: None,
            catalog: None,
        }
    }

    /// Build a standard-representation engine.
    pub fn build(self, spec: &DatabaseSpec) -> Result<Engine, CorError> {
        let db = CorDatabase::build_standard(self.make_pool(), spec, self.cache)?;
        Ok(Engine {
            backend: Backend::Oid(db),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: self.wal,
            catalog: None,
        })
    }

    /// Build a clustered-representation engine (DFSCLUST).
    pub fn build_clustered(
        self,
        spec: &DatabaseSpec,
        assignment: &ClusterAssignment,
    ) -> Result<Engine, CorError> {
        let db = CorDatabase::build_clustered(self.make_pool(), spec, assignment)?;
        Ok(Engine {
            backend: Backend::Oid(db),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: self.wal,
            catalog: None,
        })
    }

    /// Build a multi-level hierarchy engine; each level gets its own pool
    /// with this builder's settings (its own "INGRES instance").
    pub fn build_levels(self, specs: &[DatabaseSpec]) -> Result<Engine, CorError> {
        assert!(!specs.is_empty(), "at least one level");
        let levels: Vec<CorDatabase> = specs
            .iter()
            .map(|spec| CorDatabase::build_standard(self.make_pool(), spec, self.cache))
            .collect::<Result<_, _>>()?;
        Ok(Engine {
            backend: Backend::Levels(levels),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: self.wal,
            catalog: None,
        })
    }

    /// Build a procedural-representation engine with the given caching
    /// mode.
    pub fn build_procedural(
        self,
        spec: &ProcDatabaseSpec,
        caching: ProcCaching,
    ) -> Result<Engine, CorError> {
        let db = ProcDatabase::build(self.make_pool(), spec, caching)?;
        Ok(Engine {
            backend: Backend::Proc(db),
            opts: self.opts,
            metrics: self.make_metrics(),
            slow: None,
            wal: self.wal,
            catalog: None,
        })
    }
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Build the engine a workload point needs under `strategy`.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::builder().build_workload(params, generated, strategy)"
    )]
    pub fn for_strategy(
        params: &Params,
        generated: &GeneratedDb,
        strategy: Strategy,
    ) -> Result<Engine, CorError> {
        Engine::builder().build_workload(params, generated, strategy)
    }

    /// [`EngineBuilder::build_workload`] with the observability layer on.
    #[deprecated(
        since = "0.1.0",
        note = "use Engine::builder().metrics(true).build_workload(params, generated, strategy)"
    )]
    pub fn for_strategy_observed(
        params: &Params,
        generated: &GeneratedDb,
        strategy: Strategy,
    ) -> Result<Engine, CorError> {
        Engine::builder()
            .metrics(true)
            .build_workload(params, generated, strategy)
    }

    /// Wrap an already-built OID database (standard or clustered).
    #[deprecated(since = "0.1.0", note = "use Engine::builder().wrap_database(db)")]
    pub fn from_database(db: CorDatabase) -> Engine {
        Engine::builder().wrap_database(db)
    }

    /// Wrap an already-built hierarchy chain (level 0 first).
    #[deprecated(since = "0.1.0", note = "use Engine::builder().wrap_levels(levels)")]
    pub fn from_levels(levels: Vec<CorDatabase>) -> Engine {
        Engine::builder().wrap_levels(levels)
    }

    /// Replace the engine's execution options.
    ///
    /// One caveat: `io.queue_depth` configures the buffer pool's async
    /// submission engine, which is constructed when the pool is built.
    /// Set it through [`EngineBuilder::exec_options`] (or inherit it
    /// from the store's catalog on reopen); changing it here after the
    /// pool exists does not alter the pool's I/O path.
    pub fn with_options(mut self, opts: ExecOptions) -> Self {
        self.opts = opts;
        self
    }

    /// Arm the slow-query hook: any [`retrieve`](Self::retrieve) whose
    /// wall time reaches `threshold` is recorded in the flight journal
    /// and automatically re-run under [`Engine::explain`] to capture a
    /// phase breakdown (see [`slow_queries`](Self::slow_queries)).
    ///
    /// **Intrusive by design**: the explain capture flushes the buffer
    /// pool and re-executes the query, so arming the hook perturbs I/O
    /// accounting and timing *after* a breach. Leave it off (the default)
    /// for paper-figure measurement runs; the repo's byte-identity
    /// invariant covers exactly that disabled state.
    pub fn with_slow_query_threshold(mut self, threshold: Duration) -> Self {
        self.slow = Some(Arc::new(SlowQueryHook {
            threshold,
            entries: Mutex::new(Vec::new()),
            capturing: AtomicBool::new(false),
        }));
        self
    }

    /// Slow queries captured so far (empty when the hook is not armed).
    /// At most [`SLOW_QUERY_CAP`] entries are retained.
    pub fn slow_queries(&self) -> Vec<SlowQueryEntry> {
        self.slow
            .as_ref()
            .map(|h| h.entries.lock().expect("slow-query lock").clone())
            .unwrap_or_default()
    }

    /// Handle a retrieve that crossed the slow-query threshold: journal
    /// it, then (one capture at a time) re-run it under explain.
    fn capture_slow_query(
        &self,
        hook: &SlowQueryHook,
        strategy: Strategy,
        query: &RetrieveQuery,
        wall: Duration,
        values: u64,
    ) {
        flight::record(
            flight::FlightKind::SlowQuery,
            strategy_tag(strategy),
            wall.as_nanos() as u64,
            values,
        );
        if hook.capturing.swap(true, Ordering::Acquire) {
            return; // a concurrent breach is already capturing
        }
        // Trace the explain re-execution and journal the trace id, so the
        // black box carries a join key to the tree.
        let guard = tracetree::start(&format!("slow {strategy} {}..={}", query.lo, query.hi));
        let report = self.explain(strategy, &[Query::Retrieve(*query)], None);
        let trace = guard.finish();
        if let Some(t) = &trace {
            flight::record(
                flight::FlightKind::TraceLink,
                t.id,
                strategy_tag(strategy),
                wall.as_nanos() as u64,
            );
        }
        if let Ok(report) = report {
            let mut entries = hook.entries.lock().expect("slow-query lock");
            if entries.len() < SLOW_QUERY_CAP {
                entries.push(SlowQueryEntry {
                    query: *query,
                    strategy,
                    wall,
                    report,
                    trace,
                });
            }
        }
        hook.capturing.store(false, Ordering::Release);
    }

    /// The execution options every query runs with.
    pub fn options(&self) -> &ExecOptions {
        &self.opts
    }

    /// The underlying OID database (level 0 for hierarchies).
    ///
    /// Errors on procedural engines, which have no `CorDatabase`.
    pub fn database(&self) -> Result<&CorDatabase, CorError> {
        match &self.backend {
            Backend::Oid(db) => Ok(db),
            Backend::Levels(levels) => Ok(&levels[0]),
            Backend::Proc(_) => Err(CorError::WrongRepresentation("OID representation")),
        }
    }

    /// Every level's database, level 0 first (a single OID database is a
    /// one-level hierarchy; empty for procedural engines).
    pub fn levels(&self) -> &[CorDatabase] {
        match &self.backend {
            Backend::Oid(db) => std::slice::from_ref(db),
            Backend::Levels(levels) => levels,
            Backend::Proc(_) => &[],
        }
    }

    /// The buffer pool (level 0's for hierarchies).
    pub fn pool(&self) -> &Arc<BufferPool> {
        match &self.backend {
            Backend::Oid(db) => db.pool(),
            Backend::Levels(levels) => levels[0].pool(),
            Backend::Proc(db) => db.pool(),
        }
    }

    /// Build a durable standard-representation engine over a **fresh**
    /// (empty) store: the builder must carry both a
    /// [`disk`](EngineBuilder::disk) and a [`wal`](EngineBuilder::wal).
    ///
    /// This is the pre-catalog entry point, kept for rigs that manage
    /// their own WAL handle; note it writes no persistent catalog, so
    /// the store it produces is *not* reopenable by
    /// [`EngineBuilder::open`]. Prefer [`EngineBuilder::create`].
    ///
    /// A non-empty store is never silently rebuilt. The error says what
    /// the store actually holds: [`CorError::CatalogMissing`] when no
    /// engine catalog is present (a pre-catalog or foreign store),
    /// [`CorError::CatalogVersion`] when a catalog exists but was
    /// written by an incompatible layout, and a
    /// [`CorError::Durability`] pointing at [`EngineBuilder::open`]
    /// when the store holds a valid catalog and should simply be
    /// reopened.
    pub fn open_durable(spec: &DatabaseSpec, builder: EngineBuilder) -> Result<Engine, CorError> {
        let disk = builder.disk.as_ref().ok_or_else(|| {
            CorError::Durability("open_durable needs an explicit disk (EngineBuilder::disk)".into())
        })?;
        if builder.wal.is_none() {
            return Err(CorError::Durability(
                "open_durable needs a WAL (EngineBuilder::wal)".into(),
            ));
        }
        if disk.num_pages() != 0 {
            let boot = Arc::new(
                BufferPool::builder()
                    .capacity(BOOTSTRAP_POOL_PAGES)
                    .disk(Box::new(Arc::clone(disk)))
                    .build(),
            );
            let probe = Catalog::open(boot)
                .map_err(catalog_probe_err)
                .and_then(|c| c.get_blob(ENGINE_BLOB).map_err(catalog_probe_err))
                .and_then(|bytes| EngineCatalog::decode(&bytes));
            return Err(match probe {
                Ok(_) => CorError::Durability(
                    "store holds a valid engine catalog; reopen it with EngineBuilder::open".into(),
                ),
                Err(e) => e,
            });
        }
        builder.build(spec)
    }

    /// Re-snapshot the engine into its persistent catalog: backend file
    /// roots, OID allocators, cache directories, pool geometry, options,
    /// and the free-page list, with `clean` as the shutdown flag.
    /// Errors on engines not built by the lifecycle API.
    fn save_catalog(&self, clean: bool) -> Result<(), CorError> {
        let cs = self.catalog.as_ref().ok_or_else(|| {
            CorError::Durability(
                "engine has no persistent catalog (not built by create/open)".into(),
            )
        })?;
        let backend = match &self.backend {
            Backend::Oid(db) => SavedBackend::Oid(db.save_state()),
            Backend::Levels(levels) => {
                SavedBackend::Levels(levels.iter().map(CorDatabase::save_state).collect())
            }
            Backend::Proc(db) => SavedBackend::Proc(db.save_state()),
        };
        // The pool was built with `cs.policy`; force the ExecOptions
        // mirror to match so the blob cannot record a policy the pool
        // is not actually running.
        let mut opts = self.opts;
        opts.pool_policy = cs.policy;
        let cat = EngineCatalog {
            clean_shutdown: clean,
            pool_pages: cs.pool_pages,
            shards: cs.shards,
            policy: cs.policy,
            opts,
            free_pages: self.pool().free_page_ids(),
            backend,
        };
        cs.catalog
            .save_blob(ENGINE_BLOB, &cat.encode())
            .map_err(|e| CorError::Durability(format!("saving engine catalog: {e}")))
    }

    /// Shut the engine down cleanly: persist the catalog with the
    /// `clean_shutdown` flag set, flush every dirty page, and checkpoint
    /// so the next [`EngineBuilder::open`] replays (almost) nothing and
    /// may trust the saved free-page list. Consumes the engine.
    pub fn close(self) -> Result<(), CorError> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| CorError::Durability("close needs a WAL attached".into()))?
            .clone();
        self.save_catalog(true)?;
        self.pool().flush_all()?;
        wal.checkpoint(|| self.pool().dirty_page_table())
            .map_err(|e| CorError::Durability(format!("close checkpoint failed: {e}")))?;
        flight::record(flight::FlightKind::EngineClose, 0, 0, 0);
        Ok(())
    }

    /// The attached write-ahead log, if this engine runs durable.
    pub fn wal(&self) -> Option<&Arc<Wal>> {
        self.wal.as_ref()
    }

    /// Take a checkpoint: log the pool's dirty-page table, fsync, and
    /// garbage-collect log segments below the new redo horizon. Bounds
    /// both recovery time and log size. Errors on engines without a WAL.
    ///
    /// Safe against queries running concurrently on other threads: the
    /// WAL captures its begin LSN before pulling the dirty-page table
    /// (the closure below), so a page write logged while the table is
    /// being assembled stays above the recorded redo horizon even when
    /// the table misses it.
    /// Lifecycle-built engines re-save their persistent catalog first, so
    /// a post-checkpoint crash recovers allocator counters and cache
    /// directories no staler than this checkpoint.
    pub fn checkpoint(&self) -> Result<CheckpointInfo, CorError> {
        let wal = self
            .wal
            .as_ref()
            .ok_or_else(|| CorError::Durability("checkpoint needs a WAL attached".into()))?;
        if self.catalog.is_some() {
            self.save_catalog(false)?;
        }
        wal.checkpoint(|| self.pool().dirty_page_table())
            .map_err(|e| CorError::Durability(format!("checkpoint failed: {e}")))
    }

    /// A span start, if this engine records metrics: the handle, the I/O
    /// counters at entry, and the wall clock at entry.
    fn span_start(&self) -> Option<(&Arc<EngineMetrics>, cor_pagestore::IoSnapshot, Instant)> {
        self.metrics
            .as_ref()
            .map(|m| (m, self.pool().stats().snapshot(), Instant::now()))
    }

    /// Run one retrieve. On OID engines this dispatches to the strategy;
    /// on procedural engines the caching mode is a property of the build,
    /// so `strategy` is ignored.
    pub fn retrieve(
        &self,
        strategy: Strategy,
        query: &RetrieveQuery,
    ) -> Result<StrategyOutput, CorError> {
        // The hook times the call even when metrics are off; `None` keeps
        // the un-instrumented path clock-free.
        let slow_t0 = self.slow.as_ref().map(|_| Instant::now());
        let obs = self.span_start();
        let out = match &self.backend {
            Backend::Oid(db) => execute_retrieve(db, strategy, query, &self.opts),
            Backend::Levels(levels) => execute_retrieve(&levels[0], strategy, query, &self.opts),
            Backend::Proc(db) => execute_proc_retrieve(db, query),
        }?;
        if let Some((m, before, t0)) = obs {
            let delta = self.pool().stats().snapshot().since(&before);
            m.record_retrieve(strategy, delta, t0.elapsed(), out.values.len() as u64);
        }
        if let (Some(hook), Some(t0)) = (self.slow.as_deref(), slow_t0) {
            let wall = t0.elapsed();
            if wall >= hook.threshold {
                self.capture_slow_query(hook, strategy, query, wall, out.values.len() as u64);
            }
        }
        Ok(out)
    }

    /// Run one retrieve while collecting a causal trace tree: every
    /// phase transition becomes a parent/child node carrying its wall
    /// time and the page I/O charged while it was innermost (see
    /// [`cor_obs::tracetree`]). Render the tree with
    /// [`TraceTree::to_chrome_json`] and load it in Perfetto.
    ///
    /// Tracing rides the query without changing it: the same
    /// [`retrieve`](Self::retrieve) path runs, [`IoStats`] counts are
    /// identical traced or not, and per-phase node sums equal the
    /// query's `PhaseProfile` deltas exactly (the collector and the
    /// profile are fed by the same calls). The tree is `None` only when
    /// another trace was already active on this thread.
    ///
    /// [`IoStats`]: cor_pagestore::IoStats
    pub fn trace_query(
        &self,
        strategy: Strategy,
        query: &RetrieveQuery,
    ) -> Result<(StrategyOutput, Option<TraceTree>), CorError> {
        let guard = tracetree::start(&format!("{strategy} {}..={}", query.lo, query.hi));
        let out = match self.retrieve(strategy, query) {
            Ok(out) => out,
            Err(e) => {
                drop(guard);
                return Err(e);
            }
        };
        Ok((out, guard.finish()))
    }

    /// Run one multi-dot retrieve across the hierarchy (single-database
    /// engines behave as one-level hierarchies).
    pub fn retrieve_multilevel(
        &self,
        strategy: Strategy,
        query: &MultiDotQuery,
    ) -> Result<StrategyOutput, CorError> {
        match &self.backend {
            Backend::Oid(db) => {
                execute_multilevel(std::slice::from_ref(db), strategy, query, &self.opts)
            }
            Backend::Levels(levels) => execute_multilevel(levels, strategy, query, &self.opts),
            Backend::Proc(_) => Err(CorError::WrongRepresentation("OID representation")),
        }
    }

    /// Apply one update (with whatever cache maintenance the build
    /// requires), returning the I/O spent.
    pub fn update(&self, update: &UpdateQuery) -> Result<IoDelta, CorError> {
        let obs = self.metrics.as_ref().map(|m| (m, Instant::now()));
        let delta = match &self.backend {
            Backend::Oid(db) => apply_update(db, update, db.has_cache()),
            Backend::Levels(levels) => apply_update(&levels[0], update, levels[0].has_cache()),
            Backend::Proc(db) => apply_proc_update(db, update),
        }?;
        if let Some((m, t0)) = obs {
            m.record_update(delta, t0.elapsed());
        }
        Ok(delta)
    }

    /// Run a measured query sequence from a cold buffer — the paper's
    /// experiment step, identical to the sequential driver's numbers.
    pub fn run_sequence(
        &self,
        strategy: Strategy,
        sequence: &[Query],
    ) -> Result<RunResult, CorError> {
        let obs = self.span_start();
        let result = self.run_sequence_inner(strategy, sequence)?;
        if let Some((m, before, t0)) = obs {
            let delta = self.pool().stats().snapshot().since(&before);
            m.record_sequence(strategy, delta, t0.elapsed(), result.queries as u64);
        }
        Ok(result)
    }

    fn run_sequence_inner(
        &self,
        strategy: Strategy,
        sequence: &[Query],
    ) -> Result<RunResult, CorError> {
        match &self.backend {
            Backend::Oid(db) => run_sequence(db, strategy, sequence, &self.opts),
            Backend::Levels(levels) => run_sequence(&levels[0], strategy, sequence, &self.opts),
            Backend::Proc(db) => {
                db.pool().flush_and_clear()?;
                let stats = db.pool().stats().clone();
                let start = stats.snapshot();
                let mut result = RunResult {
                    strategy,
                    queries: sequence.len(),
                    retrieves: 0,
                    updates: 0,
                    total_io: 0,
                    par_io: 0,
                    child_io: 0,
                    update_io: 0,
                    values_returned: 0,
                    cache: None,
                };
                for q in sequence {
                    match q {
                        Query::Retrieve(r) => {
                            let out = execute_proc_retrieve(db, r)?;
                            result.retrieves += 1;
                            result.par_io += out.par_io.total();
                            result.child_io += out.child_io.total();
                            result.values_returned += out.values.len() as u64;
                        }
                        Query::Update(u) => {
                            let delta = apply_proc_update(db, u)?;
                            result.updates += 1;
                            result.update_io += delta.total();
                        }
                    }
                }
                result.total_io = stats.snapshot().since(&start).total();
                result.cache = Some(db.cache_counters());
                Ok(result)
            }
        }
    }

    /// [`Engine::run_sequence`] with a per-query trace (OID engines only),
    /// for benches that bucket I/O by query shape.
    pub fn run_sequence_trace(
        &self,
        strategy: Strategy,
        sequence: &[Query],
    ) -> Result<(RunResult, Vec<crate::driver::QueryTrace>), CorError> {
        let db = self.database()?;
        crate::driver::run_sequence_trace(db, strategy, sequence, &self.opts)
    }

    /// Run M concurrent query streams against the shared database (OID
    /// engines only), reporting throughput and latency along with the
    /// aggregate average I/O.
    pub fn run_concurrent(
        &self,
        strategy: Strategy,
        sequences: &[Vec<Query>],
    ) -> Result<ConcurrentRunResult, CorError> {
        let db = self.database()?;
        run_concurrent_streams(db, strategy, sequences, &self.opts)
    }

    /// [`Engine::run_concurrent`] with a live progress reporter invoked
    /// every `interval` from a monitor thread (see
    /// [`crate::concurrent::stderr_reporter`] for a ready-made one).
    pub fn run_concurrent_observed(
        &self,
        strategy: Strategy,
        sequences: &[Vec<Query>],
        interval: Duration,
        reporter: &(dyn Fn(LiveTick) + Sync),
    ) -> Result<ConcurrentRunResult, CorError> {
        let db = self.database()?;
        run_concurrent_streams_observed(
            db,
            strategy,
            sequences,
            &self.opts,
            Some((interval, reporter)),
        )
    }

    /// The engine-level instruments, if built with metrics enabled
    /// ([`EngineBuilder::metrics`] or [`Engine::for_strategy_observed`]).
    pub fn engine_metrics(&self) -> Option<&Arc<EngineMetrics>> {
        self.metrics.as_ref()
    }

    /// A complete observability report: engine spans and histograms,
    /// per-shard pool telemetry (when the pool was built with telemetry),
    /// and cache counters (when a cache is attached). `None` unless the
    /// engine was built with metrics enabled.
    pub fn metrics(&self) -> Option<MetricsReport> {
        let m = self.metrics.as_ref()?;
        let cache = match &self.backend {
            Backend::Oid(db) => db.cache_counters(),
            Backend::Levels(levels) => levels[0].cache_counters(),
            Backend::Proc(db) => Some(db.cache_counters()),
        };
        let mut report = build_report(
            m,
            self.pool()
                .telemetry()
                .map(|shards| (self.pool().policy(), shards)),
            self.pool().stats().batch_snapshot(),
            cache,
            self.wal.as_ref().map(|w| w.stats()),
        );
        // Fold the process-global heat map in when collection is on; the
        // cor_heat_* families are absent otherwise, keeping disabled-state
        // reports byte-identical to pre-heat ones.
        if heat::enabled() {
            heat::global()
                .report()
                .push_to(&mut report.snapshot, 5, heat::DEFAULT_ALPHA_Q16);
        }
        // Same contract for the wait profile: cor_wait_* families appear
        // only while wait profiling is on.
        if wait::enabled() {
            wait::report().push_to(&mut report.snapshot);
        }
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{build_for_strategy, generate};
    use crate::seqgen::generate_sequence;
    use complexobj::RetAttr;

    fn tiny() -> Params {
        Params {
            parent_card: 200,
            num_top: 5,
            sequence_len: 20,
            buffer_pages: 16,
            size_cache: 20,
            ..Params::paper_default()
        }
    }

    #[test]
    fn engine_matches_free_function_results() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        for strategy in [
            Strategy::Dfs,
            Strategy::Bfs,
            Strategy::DfsCache,
            Strategy::DfsClust,
        ] {
            let db = build_for_strategy(&p, &generated, strategy).unwrap();
            let expected = run_sequence(&db, strategy, &sequence, &ExecOptions::default()).unwrap();
            let engine = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .unwrap();
            let got = engine.run_sequence(strategy, &sequence).unwrap();
            assert_eq!(got.total_io, expected.total_io, "{strategy}");
            assert_eq!(got.values_returned, expected.values_returned, "{strategy}");
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_delegate_to_the_builder() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        let old = Engine::for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let new = Engine::builder()
            .build_workload(&p, &generated, Strategy::Dfs)
            .unwrap();
        let a = old.run_sequence(Strategy::Dfs, &sequence).unwrap();
        let b = new.run_sequence(Strategy::Dfs, &sequence).unwrap();
        assert_eq!(a.total_io, b.total_io);
        assert_eq!(a.values_returned, b.values_returned);
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let wrapped = Engine::from_database(db);
        assert!(wrapped.database().is_ok());
        assert!(Engine::for_strategy_observed(&p, &generated, Strategy::Dfs)
            .unwrap()
            .metrics()
            .is_some());
    }

    #[test]
    fn metrics_do_not_change_io_accounting() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        for strategy in [Strategy::Dfs, Strategy::DfsCache] {
            let plain = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .unwrap();
            let observed = Engine::builder()
                .metrics(true)
                .build_workload(&p, &generated, strategy)
                .unwrap();
            assert!(plain.metrics().is_none());
            let a = plain.run_sequence(strategy, &sequence).unwrap();
            let b = observed.run_sequence(strategy, &sequence).unwrap();
            assert_eq!(a.total_io, b.total_io, "{strategy}");
            assert_eq!(a.values_returned, b.values_returned, "{strategy}");
        }
    }

    #[test]
    fn observed_engine_reports_spans_pool_and_cache() {
        use crate::metrics::span_op;
        let p = Params {
            shards: 2,
            ..tiny()
        };
        let generated = generate(&p);
        let engine = Engine::builder()
            .metrics(true)
            .build_workload(&p, &generated, Strategy::DfsCache)
            .unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let out = engine.retrieve(Strategy::DfsCache, &q).unwrap();
        let target = generated.spec.child_rels[0][0].oid;
        engine
            .update(&UpdateQuery {
                targets: vec![target],
                new_ret1: 1,
            })
            .unwrap();
        let m = engine.engine_metrics().unwrap();
        let spans = m.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].op, span_op::RETRIEVE);
        assert_eq!(spans[0].payload, out.values.len() as u64);
        assert_eq!(spans[1].op, span_op::UPDATE);
        let report = engine.metrics().unwrap();
        report.validate().unwrap();
        let pool = &report.pool;
        assert_eq!(pool.len(), 2, "one telemetry stripe per shard");
        assert!(pool.iter().any(|s| s.probes() > 0));
        let cache = report.cache.expect("DFSCACHE engine has a cache");
        assert!(cache.probes() > 0);
        let prom = report.to_prometheus();
        assert!(prom.contains("cor_query_total"), "{prom}");
        assert!(prom.contains("cor_pool_hit_ratio"), "{prom}");
        let json = report.to_json();
        assert!(json.contains("\"cor_query_latency_ns\""), "{json}");
    }

    #[test]
    fn builder_metrics_cover_every_backend() {
        let p = tiny();
        let generated = generate(&p);
        let engine = Engine::builder()
            .pool_pages(16)
            .metrics(true)
            .build(&generated.spec)
            .unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 4,
            attr: RetAttr::Ret1,
        };
        engine.retrieve(Strategy::Dfs, &q).unwrap();
        let report = engine.metrics().unwrap();
        report.validate().unwrap();
        assert_eq!(report.pool.len(), 1);
        assert!(report.cache.is_none(), "no cache attached");
    }

    #[test]
    fn builder_wires_pool_shape() {
        let p = tiny();
        let generated = generate(&p);
        let engine = Engine::builder()
            .pool_pages(32)
            .shards(4)
            .policy(ReplacementPolicy::Clock)
            .build(&generated.spec)
            .unwrap();
        assert_eq!(engine.pool().capacity(), 32);
        assert_eq!(engine.pool().shards(), 4);
        assert_eq!(engine.pool().policy(), ReplacementPolicy::Clock);
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let out = engine.retrieve(Strategy::Dfs, &q).unwrap();
        assert!(!out.values.is_empty());
    }

    #[test]
    fn engine_update_applies_and_costs_io() {
        let p = tiny();
        let generated = generate(&p);
        let engine = Engine::builder()
            .pool_pages(16)
            .build(&generated.spec)
            .unwrap();
        // Cold buffer: the update must fetch the target's page from disk.
        engine.pool().flush_and_clear().unwrap();
        let target = generated.spec.child_rels[0][0].oid;
        let delta = engine
            .update(&UpdateQuery {
                targets: vec![target],
                new_ret1: 4242,
            })
            .unwrap();
        assert!(delta.total() > 0);
        let db = engine.database().unwrap();
        let rec = db.fetch_child_record(target).unwrap().unwrap();
        let t = cor_access::decode(db.child_schema(), &rec).unwrap();
        assert_eq!(t.get(1).as_int(), Some(4242));
    }

    #[test]
    fn procedural_engine_serves_the_same_interface() {
        use complexobj::database::{SubobjectSpec, CHILD_REL_BASE};
        use complexobj::procedural::{ProcObjectSpec, StoredQuery};
        use cor_relational::Oid;
        // 4 parents over one ChildRel of 8 subobjects, stored as key-range
        // queries (two parents sharing a range).
        let spec = ProcDatabaseSpec {
            parents: (0..4u64)
                .map(|key| ProcObjectSpec {
                    key,
                    rets: [key as i64; 3],
                    dummy: "p".repeat(10),
                    members: StoredQuery::KeyRange {
                        rel: CHILD_REL_BASE,
                        lo: (key / 2) * 4,
                        hi: (key / 2) * 4 + 3,
                    },
                })
                .collect(),
            child_rels: vec![(0..8u64)
                .map(|k| SubobjectSpec {
                    oid: Oid::new(CHILD_REL_BASE, k),
                    rets: [10 * k as i64, 0, 0],
                    dummy: "c".repeat(10),
                })
                .collect()],
        };
        let engine = Engine::builder()
            .pool_pages(32)
            .build_procedural(&spec, ProcCaching::OutsideValues(8))
            .unwrap();
        let q = RetrieveQuery {
            lo: 0,
            hi: 3,
            attr: RetAttr::Ret1,
        };
        let cold = engine.retrieve(Strategy::Dfs, &q).unwrap();
        let warm = engine.retrieve(Strategy::Dfs, &q).unwrap();
        let mut a = cold.values.clone();
        let mut b = warm.values.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "cache warm-up must not change answers");
        assert!(engine.database().is_err(), "no CorDatabase behind proc");
        let r = engine
            .run_sequence(Strategy::Dfs, &[Query::Retrieve(q)])
            .unwrap();
        assert_eq!(r.retrieves, 1);
    }

    fn durable_rig() -> (
        Arc<cor_pagestore::MemDisk>,
        Arc<cor_wal::MemLogStore>,
        Arc<Wal>,
        EngineBuilder,
    ) {
        let disk = Arc::new(cor_pagestore::MemDisk::new());
        let store = Arc::new(cor_wal::MemLogStore::new());
        let wal = Arc::new(Wal::new(store.clone(), cor_wal::WalConfig::default()));
        let builder = Engine::builder()
            .pool_pages(16)
            .cache(CacheConfig::default())
            .disk(disk.clone())
            .wal(wal.clone());
        (disk, store, wal, builder)
    }

    /// A mixed workload covering ChildRel updates plus cache unit
    /// insertion (retrieve materializes) and invalidation (update).
    fn durable_workload(engine: &Engine, generated: &crate::dbgen::GeneratedDb) {
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        engine.retrieve(Strategy::DfsCache, &q).unwrap();
        for (i, sub) in generated.spec.child_rels[0].iter().take(6).enumerate() {
            engine
                .update(&UpdateQuery {
                    targets: vec![sub.oid],
                    new_ret1: 1000 + i as i64,
                })
                .unwrap();
            if i == 2 {
                engine.checkpoint().unwrap();
            }
            engine.retrieve(Strategy::DfsCache, &q).unwrap();
        }
    }

    #[test]
    fn wal_attachment_leaves_io_stats_identical() {
        // The paper's cost metric must not move when durability is on:
        // log I/O bypasses the pool counters entirely.
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        let plain = Engine::builder()
            .pool_pages(16)
            .cache(CacheConfig::default())
            .build(&generated.spec)
            .unwrap();
        let expected = plain.run_sequence(Strategy::DfsCache, &sequence).unwrap();

        let (_, _, wal, builder) = durable_rig();
        let durable = builder.build(&generated.spec).unwrap();
        let got = durable.run_sequence(Strategy::DfsCache, &sequence).unwrap();
        assert_eq!(got.total_io, expected.total_io);
        assert_eq!(got.par_io, expected.par_io);
        assert_eq!(got.child_io, expected.child_io);
        assert_eq!(got.update_io, expected.update_io);
        assert_eq!(got.values_returned, expected.values_returned);
        assert!(wal.stats().appends > 0, "the run was actually logged");
    }

    #[test]
    fn crashed_engine_recovers_byte_identically_to_an_uncrashed_run() {
        let p = tiny();
        let generated = generate(&p);

        // Oracle: identical run, no crash, everything flushed.
        let (oracle_disk, _, _, oracle_builder) = durable_rig();
        let oracle = Engine::open_durable(&generated.spec, oracle_builder).unwrap();
        durable_workload(&oracle, &generated);
        let freed = oracle.pool().free_page_ids();
        oracle.pool().flush_all().unwrap();

        // Crashing run: same ops, then the pool dies with its dirty
        // frames and only the durable log + flushed pages survive.
        let (disk, store, _, builder) = durable_rig();
        let engine = Engine::open_durable(&generated.spec, builder).unwrap();
        durable_workload(&engine, &generated);
        drop(engine);
        store.crash();

        let stats = cor_wal::recover(disk.as_ref(), store.as_ref()).unwrap();
        assert!(stats.records_scanned > 0);
        assert!(stats.checkpoint_lsn.is_some());

        use cor_pagestore::DiskManager;
        assert_eq!(disk.num_pages(), oracle_disk.num_pages());
        let mut compared = 0;
        for pid in 0..disk.num_pages() {
            // Pages on the free list at crash time hold garbage by
            // definition; every live page must match exactly.
            if freed.contains(&pid) {
                continue;
            }
            let mut a = [0u8; cor_pagestore::PAGE_SIZE];
            let mut b = [0u8; cor_pagestore::PAGE_SIZE];
            disk.read_page(pid, &mut a).unwrap();
            oracle_disk.read_page(pid, &mut b).unwrap();
            assert_eq!(a, b, "page {pid} differs from the uncrashed oracle");
            compared += 1;
        }
        assert!(compared > 0);
    }

    #[test]
    fn open_durable_rejects_missing_pieces_and_used_stores() {
        let p = tiny();
        let generated = generate(&p);
        let err = Engine::open_durable(&generated.spec, Engine::builder())
            .err()
            .expect("no disk/wal must be rejected");
        assert!(matches!(err, CorError::Durability(_)), "{err}");

        // A used store with no engine catalog gets the typed error, not a
        // silent rebuild.
        let (disk, _, _, builder) = durable_rig();
        use cor_pagestore::DiskManager;
        disk.allocate_page().unwrap(); // not fresh any more, page 0 is garbage
        let err = Engine::open_durable(&generated.spec, builder)
            .err()
            .expect("non-empty store must be rejected");
        assert!(matches!(err, CorError::CatalogMissing), "{err}");

        // A store created by the lifecycle API reports a version mismatch
        // when its header says a different layout...
        let (disk, store, _, builder) = durable_rig();
        let engine = builder
            .clone()
            .create_on(
                disk.clone(),
                store.clone(),
                &EngineSpec::Standard(generated.spec.clone()),
            )
            .unwrap();
        engine.pool().flush_all().unwrap();
        {
            let boot = Arc::new(
                BufferPool::builder()
                    .capacity(8)
                    .disk(Box::new(disk.clone()))
                    .build(),
            );
            let cat = Catalog::open(Arc::clone(&boot)).unwrap();
            let mut blob = cat.get_blob(ENGINE_BLOB).unwrap();
            blob[8] = 9; // version byte
            cat.save_blob(ENGINE_BLOB, &blob).unwrap();
            boot.flush_all().unwrap();
        }
        let (_, _, wal2, _) = durable_rig();
        let builder2 = Engine::builder().disk(disk.clone()).wal(wal2);
        let err = Engine::open_durable(&generated.spec, builder2)
            .err()
            .expect("catalog version mismatch must surface");
        assert!(
            matches!(err, CorError::CatalogVersion { found: 9, .. }),
            "{err}"
        );

        // ...and a valid catalog directs the caller to open.
        let (disk, store, _, builder) = durable_rig();
        let engine = builder
            .clone()
            .create_on(
                disk.clone(),
                store.clone(),
                &EngineSpec::Standard(generated.spec.clone()),
            )
            .unwrap();
        engine.pool().flush_all().unwrap();
        drop(engine);
        let (_, _, wal3, _) = durable_rig();
        let err = Engine::open_durable(&generated.spec, Engine::builder().disk(disk).wal(wal3))
            .err()
            .expect("valid catalog must direct to open");
        assert!(err.to_string().contains("EngineBuilder::open"), "{err}");

        // A plain engine has no checkpoint.
        let engine = Engine::builder()
            .pool_pages(16)
            .build(&generated.spec)
            .unwrap();
        assert!(engine.wal().is_none());
        assert!(matches!(engine.checkpoint(), Err(CorError::Durability(_))));
    }

    #[test]
    fn durable_engine_reports_wal_metrics() {
        let p = tiny();
        let generated = generate(&p);
        let (_, _, _, builder) = durable_rig();
        let engine = builder.metrics(true).build(&generated.spec).unwrap();
        durable_workload(&engine, &generated);
        let report = engine.metrics().unwrap();
        report.validate().unwrap();
        let w = report.wal.as_ref().expect("wal section present");
        assert!(w.appends > 0 && w.images > 0 && w.checkpoints > 0);
        let prom = report.to_prometheus();
        assert!(prom.contains("cor_wal_appends_total"), "{prom}");
        assert!(prom.contains("cor_wal_durable_lsn"), "{prom}");
        assert!(report.to_json().contains("cor_wal_fsyncs_total"));
    }

    fn mem_stores() -> (Arc<cor_pagestore::MemDisk>, Arc<cor_wal::MemLogStore>) {
        (
            Arc::new(cor_pagestore::MemDisk::new()),
            Arc::new(cor_wal::MemLogStore::new()),
        )
    }

    fn test_assignment(p: &Params, generated: &crate::dbgen::GeneratedDb) -> ClusterAssignment {
        use crate::dbgen::{rng_for, SeedStream};
        use cor_relational::Oid;
        let parents: Vec<(u64, Vec<Oid>)> = generated
            .spec
            .parents
            .iter()
            .map(|o| (o.key, o.children.clone()))
            .collect();
        let mut rng = rng_for(p.seed, SeedStream::Cluster);
        ClusterAssignment::random(&parents, &mut rng)
    }

    fn test_proc_spec() -> ProcDatabaseSpec {
        use complexobj::database::{SubobjectSpec, CHILD_REL_BASE};
        use complexobj::procedural::{ProcObjectSpec, StoredQuery};
        use cor_relational::Oid;
        ProcDatabaseSpec {
            parents: (0..4u64)
                .map(|key| ProcObjectSpec {
                    key,
                    rets: [key as i64; 3],
                    dummy: "p".repeat(10),
                    members: StoredQuery::KeyRange {
                        rel: CHILD_REL_BASE,
                        lo: (key / 2) * 4,
                        hi: (key / 2) * 4 + 3,
                    },
                })
                .collect(),
            child_rels: vec![(0..8u64)
                .map(|k| SubobjectSpec {
                    oid: Oid::new(CHILD_REL_BASE, k),
                    rets: [10 * k as i64, 0, 0],
                    dummy: "c".repeat(10),
                })
                .collect()],
        }
    }

    fn sorted_values(engine: &Engine, q: &RetrieveQuery) -> Vec<i64> {
        let mut v = engine.retrieve(Strategy::Dfs, q).unwrap().values;
        v.sort_unstable();
        v
    }

    #[test]
    fn lifecycle_create_close_open_roundtrips_every_backend() {
        let p = tiny();
        let generated = generate(&p);
        let specs: Vec<(&str, EngineSpec)> = vec![
            ("standard", EngineSpec::Standard(generated.spec.clone())),
            (
                "clustered",
                EngineSpec::Clustered(generated.spec.clone(), test_assignment(&p, &generated)),
            ),
            (
                "levels",
                EngineSpec::Levels(vec![generated.spec.clone(), generated.spec.clone()]),
            ),
            (
                "proc",
                EngineSpec::Procedural(test_proc_spec(), ProcCaching::OutsideValues(8)),
            ),
        ];
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        for (name, spec) in specs {
            let (disk, store) = mem_stores();
            let engine = Engine::builder()
                .pool_pages(16)
                .cache(CacheConfig::default())
                .create_on(disk.clone(), store.clone(), &spec)
                .unwrap_or_else(|e| panic!("{name}: create failed: {e}"));
            if let Backend::Oid(_) | Backend::Levels(_) = engine.backend {
                let target = generated.spec.child_rels[0][0].oid;
                engine
                    .update(&UpdateQuery {
                        targets: vec![target],
                        new_ret1: 777,
                    })
                    .unwrap();
            }
            let expected_values = sorted_values(&engine, &q);
            let expected_state = engine
                .levels()
                .iter()
                .map(CorDatabase::save_state)
                .collect::<Vec<_>>();
            engine
                .close()
                .unwrap_or_else(|e| panic!("{name}: close failed: {e}"));

            // The builder's (default) geometry must NOT win: the catalog's
            // recorded 16-page pool does.
            let reopened = Engine::builder()
                .open_on(disk, store)
                .unwrap_or_else(|e| panic!("{name}: open failed: {e}"));
            assert_eq!(reopened.pool().capacity(), 16, "{name}");
            assert_eq!(sorted_values(&reopened, &q), expected_values, "{name}");
            let reopened_state = reopened
                .levels()
                .iter()
                .map(CorDatabase::save_state)
                .collect::<Vec<_>>();
            assert_eq!(reopened_state.len(), expected_state.len(), "{name}");
            for (a, b) in expected_state.iter().zip(&reopened_state) {
                assert_eq!(a.parent_count, b.parent_count, "{name}");
                assert_eq!(a.child_counts, b.child_counts, "{name}");
                assert_eq!(a.parent_schema, b.parent_schema, "{name}");
                assert_eq!(a.child_schema, b.child_schema, "{name}");
            }
        }
    }

    #[test]
    fn crash_open_recovers_and_serves_identical_answers() {
        let p = tiny();
        let generated = generate(&p);
        let (disk, store) = mem_stores();
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let engine = Engine::builder()
            .pool_pages(16)
            .cache(CacheConfig::default())
            .create_on(
                disk.clone(),
                store.clone(),
                &EngineSpec::Standard(generated.spec.clone()),
            )
            .unwrap();
        for (i, sub) in generated.spec.child_rels[0].iter().take(4).enumerate() {
            engine
                .update(&UpdateQuery {
                    targets: vec![sub.oid],
                    new_ret1: 2000 + i as i64,
                })
                .unwrap();
            if i == 1 {
                engine.checkpoint().unwrap();
            }
        }
        let expected = sorted_values(&engine, &q);
        let allocators = engine.database().unwrap().save_state().parent_count;
        drop(engine); // dirty frames die with the pool
        store.crash(); // unsynced log tail gone too (FsyncPolicy::Always ⇒ none)

        let reopened = Engine::builder().open_on(disk, store).unwrap();
        assert_eq!(sorted_values(&reopened, &q), expected);
        assert_eq!(
            reopened.database().unwrap().save_state().parent_count,
            allocators
        );
    }

    #[test]
    fn scan_resistant_policy_survives_reopen() {
        let p = tiny();
        let generated = generate(&p);
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        for policy in [ReplacementPolicy::Sieve, ReplacementPolicy::TwoQ] {
            let (disk, store) = mem_stores();
            let engine = Engine::builder()
                .pool_pages(16)
                .policy(policy)
                .create_on(
                    disk.clone(),
                    store.clone(),
                    &EngineSpec::Standard(generated.spec.clone()),
                )
                .unwrap();
            assert_eq!(engine.pool().policy(), policy);
            let expected = sorted_values(&engine, &q);
            engine.close().unwrap();
            // The builder asks for nothing: the catalog's policy wins.
            let reopened = Engine::builder().open_on(disk, store).unwrap();
            assert_eq!(reopened.pool().policy(), policy, "{policy:?}");
            assert_eq!(reopened.options().pool_policy, policy, "{policy:?}");
            assert_eq!(sorted_values(&reopened, &q), expected);
        }
    }

    #[test]
    fn open_reports_typed_catalog_errors() {
        let (disk, store) = mem_stores();
        let err = Engine::builder()
            .open_on(disk, store)
            .err()
            .expect("empty store must not open");
        assert!(matches!(err, CorError::CatalogMissing), "{err}");
    }

    #[test]
    fn create_and_open_on_a_real_path() {
        let p = tiny();
        let generated = generate(&p);
        let dir = std::env::temp_dir().join(format!("cor-engine-lifecycle-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let q = RetrieveQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let engine = Engine::builder()
            .pool_pages(16)
            .create(&dir, &EngineSpec::Standard(generated.spec.clone()))
            .unwrap();
        let expected = sorted_values(&engine, &q);
        engine.close().unwrap();
        let reopened = Engine::builder().open(&dir).unwrap();
        assert_eq!(sorted_values(&reopened, &q), expected);
        drop(reopened);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn levels_engine_answers_multidot() {
        use crate::hierarchy::{generate_hierarchy_specs, HierarchyParams};
        let hp = HierarchyParams {
            levels: 2,
            top_card: 40,
            fan_out: 3,
            use_factor: 3,
            buffer_pages: 16,
            ..HierarchyParams::default()
        };
        let specs = generate_hierarchy_specs(&hp);
        let engine = Engine::builder()
            .pool_pages(16)
            .build_levels(&specs)
            .unwrap();
        let q = MultiDotQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        let d = engine.retrieve_multilevel(Strategy::Dfs, &q).unwrap();
        let b = engine.retrieve_multilevel(Strategy::Bfs, &q).unwrap();
        let mut dv = d.values;
        let mut bv = b.values;
        dv.sort_unstable();
        bv.sort_unstable();
        assert_eq!(dv, bv);
    }
}
