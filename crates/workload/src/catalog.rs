//! The persistent **engine catalog** — everything `Engine::open` needs to
//! reconstruct a running engine from a store, with no spec from the
//! caller.
//!
//! The catalog is one CRC-framed byte blob stored under the name
//! `"engine"` in the access-layer [`Catalog`](cor_access::Catalog) on
//! page 0, so it travels through the same WAL-before-data path as every
//! other page. It records:
//!
//! * a magic + version header ([`ENGINE_CATALOG_VERSION`]) so foreign or
//!   future stores fail loudly with
//!   [`CorError::CatalogMissing`] / [`CorError::CatalogVersion`];
//! * a `clean_shutdown` flag — `true` only between [`Engine::close`]
//!   (crate::Engine::close) and the next open;
//! * the pool geometry (`pool_pages`, `shards`, replacement policy) and
//!   the [`ExecOptions`] the engine ran with — `open` rebuilds the pool
//!   from the catalog, not from the caller's builder;
//! * the buffer pool's free-page list, reused only after a **clean**
//!   shutdown (after a crash the list may predate logged allocations, so
//!   it is discarded and those pages leak — bounded, and safe);
//! * the backend snapshot ([`SavedBackend`]): strategy kind plus the
//!   per-strategy file roots, schemas, OID allocators and cache
//!   directories from [`complexobj::persist`].

use complexobj::persist::{Dec, Enc};
use complexobj::{CorError, ExecOptions, IoOptions, JoinChoice, SavedOidDb, SavedProcDb};
use cor_pagestore::{PageId, ReplacementPolicy};
use cor_wal::crc::crc32;

/// On-disk layout version this build writes.
///
/// * v1 — the PR 6 layout.
/// * v2 — appends `io.queue_depth` to the [`IoOptions`] block. v1 blobs
///   are still decoded (the missing knob defaults to 1, the synchronous
///   behaviour every v1 store actually had), so existing stores reopen
///   with identical semantics and silently upgrade on their next save.
/// * v3 — widens the replacement-policy byte's value range with the
///   scan-resistant policies (`Sieve` = 3, `TwoQ` = 4). The layout is
///   unchanged; the bump exists so a v2 build that cannot *run* those
///   policies refuses the store loudly with
///   [`CorError::CatalogVersion`] instead of failing on an "unknown
///   policy tag". v1/v2 blobs (tags 0–2, LRU by default) decode as
///   before and silently upgrade on their next save.
pub const ENGINE_CATALOG_VERSION: u32 = 3;

/// Oldest on-disk layout version this build still decodes.
pub const ENGINE_CATALOG_MIN_VERSION: u32 = 1;

/// Name of the blob entry holding the engine catalog on page 0.
pub const ENGINE_BLOB: &str = "engine";

const MAGIC: &[u8; 8] = b"CORENGIN";

/// Which strategy backend the store holds, with its full snapshot.
#[derive(Debug, Clone)]
pub enum SavedBackend {
    /// A single OID-representation database — standard or clustered is
    /// recorded inside [`SavedOidDb::storage`].
    Oid(SavedOidDb),
    /// A multi-level hierarchy chain (level 0 first) sharing one pool.
    Levels(Vec<SavedOidDb>),
    /// A procedural-representation database.
    Proc(SavedProcDb),
}

/// The decoded engine catalog. See the module docs for field semantics.
#[derive(Debug, Clone)]
pub struct EngineCatalog {
    /// `true` only when the engine was shut down via `Engine::close`.
    pub clean_shutdown: bool,
    /// Buffer pool capacity, in pages.
    pub pool_pages: usize,
    /// Lock-striped pool shards.
    pub shards: usize,
    /// Pool replacement policy.
    pub policy: ReplacementPolicy,
    /// Execution options every query runs with.
    pub opts: ExecOptions,
    /// Free-page list at save time (valid only under `clean_shutdown`).
    pub free_pages: Vec<PageId>,
    /// The strategy backend snapshot.
    pub backend: SavedBackend,
}

impl EngineCatalog {
    /// Serialize: `MAGIC ∥ version ∥ crc32(payload) ∥ payload`.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Enc::default();
        e.u8(self.clean_shutdown as u8);
        e.u64(self.pool_pages as u64);
        e.u32(self.shards as u32);
        e.u8(match self.policy {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::Fifo => 1,
            ReplacementPolicy::Clock => 2,
            ReplacementPolicy::Sieve => 3,
            ReplacementPolicy::TwoQ => 4,
        });
        e.u64(self.opts.smart_threshold);
        e.u8(match self.opts.join {
            JoinChoice::Auto => 0,
            JoinChoice::ForceMerge => 1,
            JoinChoice::ForceIterative => 2,
        });
        e.u64(self.opts.sort_work_mem as u64);
        e.u64(self.opts.io.batch as u64);
        e.u64(self.opts.io.readahead as u64);
        e.u64(self.opts.io.queue_depth as u64);
        e.u32(self.free_pages.len() as u32);
        for &pid in &self.free_pages {
            e.u32(pid);
        }
        match &self.backend {
            SavedBackend::Oid(db) => {
                e.u8(0);
                db.encode(&mut e);
            }
            SavedBackend::Levels(levels) => {
                e.u8(1);
                e.u32(levels.len() as u32);
                for l in levels {
                    l.encode(&mut e);
                }
            }
            SavedBackend::Proc(db) => {
                e.u8(2);
                db.encode(&mut e);
            }
        }
        let mut out = Vec::with_capacity(16 + e.0.len());
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&ENGINE_CATALOG_VERSION.to_le_bytes());
        out.extend_from_slice(&crc32(&e.0).to_le_bytes());
        out.extend_from_slice(&e.0);
        out
    }

    /// Decode a blob written by [`encode`](Self::encode).
    ///
    /// * no/garbled header → [`CorError::CatalogMissing`];
    /// * wrong version → [`CorError::CatalogVersion`];
    /// * CRC mismatch or truncated payload → [`CorError::Durability`]
    ///   (the blob sits under the WAL, so this indicates a bug, not a
    ///   torn write).
    pub fn decode(bytes: &[u8]) -> Result<Self, CorError> {
        if bytes.len() < 16 || &bytes[..8] != MAGIC {
            return Err(CorError::CatalogMissing);
        }
        let found = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        if !(ENGINE_CATALOG_MIN_VERSION..=ENGINE_CATALOG_VERSION).contains(&found) {
            return Err(CorError::CatalogVersion {
                found,
                expected: ENGINE_CATALOG_VERSION,
            });
        }
        let crc = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]);
        let payload = &bytes[16..];
        if crc32(payload) != crc {
            return Err(CorError::Durability("engine catalog CRC mismatch".into()));
        }
        let mut d = Dec(payload);
        let clean_shutdown = d.u8()? != 0;
        let pool_pages = d.u64()? as usize;
        let shards = d.u32()? as usize;
        let policy = match d.u8()? {
            0 => ReplacementPolicy::Lru,
            1 => ReplacementPolicy::Fifo,
            2 => ReplacementPolicy::Clock,
            // v3 tags; a v1/v2 writer could not have produced these.
            3 => ReplacementPolicy::Sieve,
            4 => ReplacementPolicy::TwoQ,
            _ => return Err(CorError::Durability("unknown policy tag".into())),
        };
        let smart_threshold = d.u64()?;
        let join = match d.u8()? {
            0 => JoinChoice::Auto,
            1 => JoinChoice::ForceMerge,
            2 => JoinChoice::ForceIterative,
            _ => return Err(CorError::Durability("unknown join tag".into())),
        };
        let sort_work_mem = d.u64()? as usize;
        let io = IoOptions {
            batch: d.u64()? as usize,
            readahead: d.u64()? as usize,
            // v1 predates the knob; those stores ran synchronously.
            queue_depth: if found >= 2 { d.u64()? as usize } else { 1 },
        };
        let n = d.u32()? as usize;
        let mut free_pages = Vec::with_capacity(n);
        for _ in 0..n {
            free_pages.push(d.u32()?);
        }
        let backend = match d.u8()? {
            0 => SavedBackend::Oid(SavedOidDb::decode(&mut d)?),
            1 => {
                let n = d.u32()? as usize;
                let mut levels = Vec::with_capacity(n);
                for _ in 0..n {
                    levels.push(SavedOidDb::decode(&mut d)?);
                }
                SavedBackend::Levels(levels)
            }
            2 => SavedBackend::Proc(SavedProcDb::decode(&mut d)?),
            _ => return Err(CorError::Durability("unknown backend tag".into())),
        };
        if !d.is_empty() {
            return Err(CorError::Durability(
                "trailing bytes after engine catalog".into(),
            ));
        }
        Ok(EngineCatalog {
            clean_shutdown,
            pool_pages,
            shards,
            policy,
            opts: ExecOptions {
                smart_threshold,
                join,
                sort_work_mem,
                io,
                // One byte on disk is authoritative for the policy; the
                // ExecOptions mirror is re-synced here so readers of
                // either field agree.
                pool_policy: policy,
            },
            free_pages,
            backend,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use complexobj::persist::SavedStorage;
    use cor_access::BTreeMeta;

    fn sample() -> EngineCatalog {
        EngineCatalog {
            clean_shutdown: true,
            pool_pages: 100,
            shards: 4,
            policy: ReplacementPolicy::Clock,
            opts: ExecOptions {
                smart_threshold: 123,
                join: JoinChoice::ForceMerge,
                sort_work_mem: 4096,
                io: IoOptions {
                    batch: 8,
                    readahead: 2,
                    queue_depth: 4,
                },
                pool_policy: ReplacementPolicy::Clock,
            },
            free_pages: vec![7, 9, 30],
            backend: SavedBackend::Oid(SavedOidDb {
                storage: SavedStorage::Standard {
                    parent: BTreeMeta {
                        key_len: 8,
                        root: 1,
                        first_leaf: 2,
                        len: 10,
                        height: 1,
                        leaf_pages: 3,
                    },
                    children: vec![],
                },
                parent_schema: complexobj::database::parent_schema(),
                child_schema: complexobj::database::child_schema(),
                parent_count: 10,
                child_counts: vec![],
                cache: None,
            }),
        }
    }

    #[test]
    fn roundtrip() {
        let cat = sample();
        let bytes = cat.encode();
        let back = EngineCatalog::decode(&bytes).unwrap();
        assert!(back.clean_shutdown);
        assert_eq!(back.pool_pages, 100);
        assert_eq!(back.shards, 4);
        assert_eq!(back.policy, ReplacementPolicy::Clock);
        assert_eq!(back.opts, cat.opts);
        assert_eq!(back.free_pages, vec![7, 9, 30]);
        assert!(matches!(back.backend, SavedBackend::Oid(_)));
    }

    #[test]
    fn v1_blob_decodes_with_synchronous_queue_depth() {
        let mut cat = sample();
        cat.opts.io.queue_depth = 1;
        let v2 = cat.encode();
        // Rebuild the same blob in the v1 layout: drop the queue_depth
        // word — 8 bytes at payload offset 47 (after clean_shutdown,
        // pool_pages, shards, policy, smart_threshold, join,
        // sort_work_mem, batch, readahead) — and restamp version + CRC.
        let mut payload = v2[16..].to_vec();
        payload.drain(47..55);
        let mut v1 = Vec::with_capacity(16 + payload.len());
        v1.extend_from_slice(&v2[..8]);
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&crc32(&payload).to_le_bytes());
        v1.extend_from_slice(&payload);
        let back = EngineCatalog::decode(&v1).unwrap();
        assert_eq!(back.opts.io.queue_depth, 1, "v1 stores ran synchronously");
        assert_eq!(back.opts, cat.opts);
        assert_eq!(back.free_pages, cat.free_pages);
    }

    #[test]
    fn scan_resistant_policies_roundtrip() {
        for p in [ReplacementPolicy::Sieve, ReplacementPolicy::TwoQ] {
            let mut cat = sample();
            cat.policy = p;
            cat.opts.pool_policy = p;
            let back = EngineCatalog::decode(&cat.encode()).unwrap();
            assert_eq!(back.policy, p);
            assert_eq!(back.opts.pool_policy, p, "decode re-syncs the mirror");
        }
    }

    /// Restamp `blob`'s version header as `version` (layout is shared
    /// across v2/v3, so only the header and CRC change).
    fn restamp(blob: &[u8], version: u32) -> Vec<u8> {
        let payload = &blob[16..];
        let mut out = Vec::with_capacity(blob.len());
        out.extend_from_slice(&blob[..8]);
        out.extend_from_slice(&version.to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        out.extend_from_slice(payload);
        out
    }

    #[test]
    fn v2_blob_decodes_and_upgrades_to_v3() {
        // A default v2 store: LRU (policy tag 0), the only policies v2
        // could write being tags 0–2.
        let mut cat = sample();
        cat.policy = ReplacementPolicy::Lru;
        cat.opts.pool_policy = ReplacementPolicy::Lru;
        let v2 = restamp(&cat.encode(), 2);
        let back = EngineCatalog::decode(&v2).unwrap();
        assert_eq!(back.policy, ReplacementPolicy::Lru, "v2 stores open LRU");
        assert_eq!(back.opts.pool_policy, ReplacementPolicy::Lru);
        assert_eq!(back.opts, cat.opts);
        // The next save upgrades the header to v3 with the same payload.
        let resaved = back.encode();
        assert_eq!(&resaved[8..12], &3u32.to_le_bytes());
        assert_eq!(&resaved[16..], &v2[16..]);
        // A non-default v2 policy (Clock) survives too.
        let clocked = restamp(&sample().encode(), 2);
        let back = EngineCatalog::decode(&clocked).unwrap();
        assert_eq!(back.policy, ReplacementPolicy::Clock);
    }

    #[test]
    fn typed_header_errors() {
        assert!(matches!(
            EngineCatalog::decode(b"short"),
            Err(CorError::CatalogMissing)
        ));
        assert!(matches!(
            EngineCatalog::decode(&[0u8; 64]),
            Err(CorError::CatalogMissing)
        ));
        let mut bytes = sample().encode();
        bytes[8] = 99; // version field
        assert!(matches!(
            EngineCatalog::decode(&bytes),
            Err(CorError::CatalogVersion {
                found: 99,
                expected: ENGINE_CATALOG_VERSION
            })
        ));
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // payload corruption under a stale CRC
        assert!(matches!(
            EngineCatalog::decode(&bytes),
            Err(CorError::Durability(_))
        ));
    }
}
