//! Experiment parameters (paper Sec. 4).
//!
//! Defaults reproduce the paper's setup: 10,000 ParentRel tuples of ~200
//! bytes, `SizeUnit = 5`, `|ChildRel| = 50,000 / ShareFactor` (eqn. 1),
//! `NumUnits = 10,000 / UseFactor`, a 100-page buffer, `SizeCache = 1000`
//! units (~10% of the database) and sequences of ~1000 retrieve queries.
//!
//! Experiments can run at a reduced [`Params::scaled`] size: the paper
//! itself notes "the results for larger database sizes can be obtained
//! from scaling ... provided a proportionally larger cache and main memory
//! buffer is used", and the scaling here shrinks ParentRel, SizeCache and
//! the buffer by the same factor.

use serde::{Deserialize, Serialize};

/// All knobs of one experiment point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Params {
    /// |ParentRel| — fixed at 10,000 in the paper.
    pub parent_card: u64,
    /// Expected subobjects per unit (fixed at 5).
    pub size_unit: usize,
    /// Expected objects sharing a unit (1..50, default 5).
    pub use_factor: u32,
    /// Expected units sharing a subobject (1 except in Sec. 6.1).
    pub overlap_factor: u32,
    /// Number of ChildRel relations (1 except in Sec. 6.2).
    pub num_child_rels: usize,
    /// Probability that a query in the sequence is an update.
    pub pr_update: f64,
    /// ParentRel tuples selected per retrieve (`val2 - val1 + 1`).
    pub num_top: u64,
    /// Maximum cached units.
    pub size_cache: usize,
    /// Buffer pool size in pages.
    pub buffer_pages: usize,
    /// Lock-striped shards in the buffer pool. The paper's single global
    /// buffer is `1` (the default); concurrent-stream runs raise it.
    pub shards: usize,
    /// Queries per measured sequence.
    pub sequence_len: usize,
    /// ChildRel tuples modified per update query.
    pub update_batch: usize,
    /// Pad length making ParentRel tuples ~200 bytes.
    pub parent_dummy_len: usize,
    /// Pad length making ChildRel tuples ~100 bytes.
    pub child_dummy_len: usize,
    /// Master RNG seed (database, sequence and clustering derive from it).
    pub seed: u64,
}

impl Params {
    /// The paper's full-scale defaults.
    pub fn paper_default() -> Self {
        Params {
            parent_card: 10_000,
            size_unit: 5,
            use_factor: 5,
            overlap_factor: 1,
            num_child_rels: 1,
            pr_update: 0.0,
            num_top: 100,
            size_cache: 1000,
            buffer_pages: 100,
            shards: 1,
            sequence_len: 1000,
            update_batch: 10,
            // oid(10) + 3*8 + (2 + len) + children(2 + 5*10) => ~200 B.
            parent_dummy_len: 110,
            // oid(10) + 3*8 + (2 + len) => ~100 B.
            child_dummy_len: 64,
            seed: 0xC0FFEE,
        }
    }

    /// A proportionally scaled-down configuration: ParentRel, SizeCache,
    /// the buffer and the sequence length shrink together so the relative
    /// behaviour of the strategies is preserved.
    pub fn scaled(factor: f64) -> Self {
        let p = Self::paper_default();
        assert!(factor > 0.0 && factor <= 1.0, "scale factor in (0, 1]");
        let scale_u64 = |v: u64| ((v as f64 * factor).round() as u64).max(1);
        let scale_usize = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        Params {
            parent_card: scale_u64(p.parent_card),
            size_cache: scale_usize(p.size_cache),
            buffer_pages: scale_usize(p.buffer_pages).max(8),
            sequence_len: scale_usize(p.sequence_len).max(20),
            num_top: scale_u64(p.num_top),
            ..p
        }
    }

    /// `ShareFactor = UseFactor × OverlapFactor`.
    pub fn share_factor(&self) -> u32 {
        self.use_factor * self.overlap_factor
    }

    /// Eqn. (1): `|ChildRel| = |ParentRel| × SizeUnit / ShareFactor`
    /// (summed across the `NumChildRel` relations).
    pub fn child_card(&self) -> u64 {
        (self.parent_card * self.size_unit as u64 / self.share_factor() as u64).max(1)
    }

    /// `NumUnits = |ParentRel| / UseFactor`.
    pub fn num_units(&self) -> u64 {
        (self.parent_card / self.use_factor as u64).max(1)
    }

    /// Largest admissible `lo` for a retrieve with this `num_top`.
    pub fn max_lo(&self) -> u64 {
        self.parent_card.saturating_sub(self.num_top)
    }

    /// Validate internal consistency; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.parent_card == 0 {
            return Err("parent_card must be positive".into());
        }
        if self.size_unit == 0 {
            return Err("size_unit must be positive".into());
        }
        if self.use_factor == 0 || self.overlap_factor == 0 {
            return Err("sharing factors must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.pr_update) {
            return Err(format!("pr_update {} outside [0,1]", self.pr_update));
        }
        if self.num_top == 0 || self.num_top > self.parent_card {
            return Err(format!(
                "num_top {} outside 1..={}",
                self.num_top, self.parent_card
            ));
        }
        if self.num_child_rels == 0 {
            return Err("num_child_rels must be positive".into());
        }
        if self.shards == 0 || self.shards > self.buffer_pages {
            return Err(format!(
                "shards {} outside 1..={} (buffer_pages)",
                self.shards, self.buffer_pages
            ));
        }
        let per_rel = self.child_card() / self.num_child_rels as u64;
        if (per_rel as usize) < self.size_unit {
            return Err(format!(
                "each ChildRel holds {per_rel} subobjects; units of {} cannot be drawn",
                self.size_unit
            ));
        }
        Ok(())
    }
}

impl Default for Params {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_match_section_4() {
        let p = Params::paper_default();
        assert_eq!(p.parent_card, 10_000);
        assert_eq!(p.size_unit, 5);
        assert_eq!(p.size_cache, 1000);
        assert_eq!(p.buffer_pages, 100);
        assert_eq!(p.share_factor(), 5);
        assert_eq!(p.child_card(), 10_000); // 50,000 / 5
        assert_eq!(p.num_units(), 2_000);
        p.validate().unwrap();
    }

    #[test]
    fn equation_one_holds_across_share_factors() {
        for (uf, of) in [(1, 1), (5, 1), (1, 5), (5, 5), (50, 1)] {
            let p = Params {
                use_factor: uf,
                overlap_factor: of,
                ..Params::paper_default()
            };
            assert_eq!(
                p.child_card(),
                50_000 / (uf as u64 * of as u64),
                "uf={uf} of={of}"
            );
        }
    }

    #[test]
    fn scaling_preserves_proportions() {
        let p = Params::scaled(0.2);
        assert_eq!(p.parent_card, 2000);
        assert_eq!(p.size_cache, 200);
        assert_eq!(p.buffer_pages, 20);
        assert_eq!(p.child_card(), 2000);
        p.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut p = Params::paper_default();
        p.num_top = 0;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.num_top = p.parent_card + 1;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.pr_update = 1.5;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.num_child_rels = 100_000;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.shards = 0;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.shards = p.buffer_pages + 1;
        assert!(p.validate().is_err());
        let mut p = Params::paper_default();
        p.shards = 8;
        p.validate().unwrap();
    }

    #[test]
    fn max_lo_bounds_query_generation() {
        let p = Params {
            num_top: 10_000,
            ..Params::paper_default()
        };
        assert_eq!(p.max_lo(), 0);
        let p = Params {
            num_top: 1,
            ..Params::paper_default()
        };
        assert_eq!(p.max_lo(), 9_999);
    }
}
