//! # cor-workload
//!
//! The experiment harness of the reproduction: paper-parameterized database
//! generation ([`dbgen`]), query-sequence generation ([`seqgen`]), the
//! measuring driver ([`driver`]), experiment-point runners and parallel
//! sweeps ([`experiment`]), plain-text reporting ([`report`]), and the
//! engine-level observability layer ([`metrics`]).
//!
//! The defaults in [`Params::paper_default`] reproduce Sec. 4 of the paper;
//! [`Params::scaled`] shrinks everything proportionally for quick runs.
//!
//! ```
//! use complexobj::Strategy;
//! use cor_workload::{run_point, Params};
//!
//! let params = Params {
//!     parent_card: 200,
//!     num_top: 10,
//!     sequence_len: 8,
//!     size_cache: 20,
//!     buffer_pages: 16,
//!     ..Params::paper_default()
//! };
//! let result = run_point(&params, Strategy::Bfs).unwrap();
//! assert_eq!(result.retrieves, 8);
//! assert!(result.avg_io_per_query() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod concurrent;
pub mod dbgen;
pub mod driver;
pub mod engine;
pub mod experiment;
pub mod explain;
pub mod hierarchy;
pub mod matrix;
pub mod metrics;
pub mod params;
pub mod report;
pub mod seqgen;

pub use catalog::{EngineCatalog, SavedBackend, ENGINE_BLOB, ENGINE_CATALOG_VERSION};
pub use concurrent::{
    generate_stream_sequences, run_concurrent_streams, run_concurrent_streams_observed,
    stderr_reporter, ConcurrentRunResult, LatencySummary, LiveTick,
};
pub use dbgen::{
    build_for_strategy, build_for_strategy_on, generate, make_pool, make_pool_async,
    make_pool_policy, make_pool_telemetry, rng_for, GeneratedDb, SeedStream,
};
pub use driver::{run_sequence, run_sequence_trace, QueryTrace, RunResult};
pub use engine::{Engine, EngineBuilder, EngineSpec, SlowQueryEntry};
pub use experiment::{
    best_strategy, compare_strategies, default_threads, parallel_map, run_point, run_point_with,
};
pub use explain::{measure_geometry, workload_from_params, ExplainReport, PhaseRow};
pub use hierarchy::{
    build_hierarchy, generate_hierarchy_specs, snapshot_hierarchy, total_hierarchy_io,
    HierarchyParams,
};
pub use matrix::{generate_matrix, run_matrix_point, MatrixRunResult, MatrixSpec, MatrixSystem};
pub use metrics::{
    build_report, strategy_from_tag, strategy_tag, EngineMetrics, MetricsReport,
    METRICS_SCHEMA_VERSION, REQUIRED_METRICS,
};
pub use params::Params;
pub use report::{fnum, format_ascii_plot, format_region_map, format_table, write_csv};
pub use seqgen::{
    generate_mixed_sequence, generate_sequence, generate_sequence_with, generate_zipf_sequence,
    random_retrieve, random_update,
};
