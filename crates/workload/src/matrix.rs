//! Cross-column comparison of the representation matrix.
//!
//! The paper studies the OID column and defers the rest: "In a future
//! study we will discuss the performance consequence of the other points
//! in the matrix; as well as compare points across the columns"
//! (Sec. 2.4). This module is that study's harness.
//!
//! To compare columns fairly, every representation must express the *same*
//! logical objects. Arbitrary random units cannot be written as a stored
//! query, so the matrix workload defines each object's subobjects as a
//! **key range** over ChildRel: unit `u` covers subobject keys
//! `[u*step, u*step + SizeUnit)` with `step = SizeUnit / OverlapFactor`
//! (consecutive units overlap when `OverlapFactor > 1`). The same range is
//!
//! * an OID list for the OID representation,
//! * `retrieve (child.all) where lo <= child.OID <= hi` (or an equivalent
//!   non-indexable `ret3` predicate) for the procedural representation,
//! * an inlined record list for the value-based representation.

use crate::dbgen::{random_child_oid, rng_for, SeedStream};
use crate::params::Params;
use crate::seqgen::generate_sequence;
use complexobj::database::CHILD_REL_BASE;
use complexobj::procedural::{
    apply_proc_update, execute_proc_retrieve, ProcCaching, ProcDatabase, ProcDatabaseSpec,
    ProcObjectSpec, StoredQuery,
};
use complexobj::strategies::execute_retrieve;
use complexobj::{
    apply_update, CacheConfig, CacheCounters, CorDatabase, CorError, DatabaseSpec, ExecOptions,
    ObjectSpec, Query, Strategy, SubobjectSpec, ValueDatabase,
};
use cor_relational::Oid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// The same logical database in every representation's spec form.
#[derive(Debug, Clone)]
pub struct MatrixSpec {
    /// OID representation (also feeds the value-based build).
    pub oid_spec: DatabaseSpec,
    /// Procedural representation with indexable key-range queries.
    pub proc_spec: ProcDatabaseSpec,
    /// Procedural representation with non-indexable `ret3` predicates
    /// (same results: `ret3` mirrors the subobject key).
    pub proc_scan_spec: ProcDatabaseSpec,
}

/// Generate the matrix workload database (deterministic in `params.seed`).
pub fn generate_matrix(params: &Params) -> MatrixSpec {
    params.validate().expect("invalid parameters");
    assert_eq!(
        params.num_child_rels, 1,
        "the matrix comparison uses a single ChildRel"
    );
    let mut rng = rng_for(params.seed, SeedStream::Spec);
    let child_card = params.child_card();
    let num_units = params.num_units();
    let step = (params.size_unit / params.overlap_factor as usize).max(1);

    // Subobjects; ret3 mirrors the key so a ret3 range predicate denotes
    // the same set as the key range (membership never changes: updates
    // touch ret1 only).
    let dummy = |rng: &mut StdRng, len: usize| -> String {
        (0..len)
            .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
            .collect()
    };
    let children: Vec<SubobjectSpec> = (0..child_card)
        .map(|k| SubobjectSpec {
            oid: Oid::new(CHILD_REL_BASE, k),
            rets: [
                rng.random_range(-1000..=1000),
                rng.random_range(-1000..=1000),
                k as i64,
            ],
            dummy: dummy(&mut rng, params.child_dummy_len),
        })
        .collect();

    // Unit u = keys [u*step, u*step + size_unit), clamped at the tail.
    let unit_range = |u: u64| -> (u64, u64) {
        let lo = u * step as u64;
        let hi = (lo + params.size_unit as u64 - 1).min(child_card - 1);
        (lo, hi)
    };

    // Assignment: unit u used by ~UseFactor objects, shuffled.
    let mut assignment: Vec<u64> = Vec::with_capacity(params.parent_card as usize);
    'fill: loop {
        for u in 0..num_units {
            for _ in 0..params.use_factor {
                assignment.push(u);
                if assignment.len() == params.parent_card as usize {
                    break 'fill;
                }
            }
        }
    }
    assignment.shuffle(&mut rng);

    let mut oid_parents = Vec::with_capacity(params.parent_card as usize);
    let mut proc_parents = Vec::with_capacity(params.parent_card as usize);
    let mut proc_scan_parents = Vec::with_capacity(params.parent_card as usize);
    for key in 0..params.parent_card {
        let (lo, hi) = unit_range(assignment[key as usize]);
        let rets = [
            rng.random_range(-1000..=1000),
            rng.random_range(-1000..=1000),
            rng.random_range(-1000..=1000),
        ];
        let d = dummy(&mut rng, params.parent_dummy_len);
        oid_parents.push(ObjectSpec {
            key,
            rets,
            dummy: d.clone(),
            children: (lo..=hi).map(|k| Oid::new(CHILD_REL_BASE, k)).collect(),
        });
        proc_parents.push(ProcObjectSpec {
            key,
            rets,
            dummy: d.clone(),
            members: StoredQuery::KeyRange {
                rel: CHILD_REL_BASE,
                lo,
                hi,
            },
        });
        proc_scan_parents.push(ProcObjectSpec {
            key,
            rets,
            dummy: d,
            members: StoredQuery::RetRange {
                rel: CHILD_REL_BASE,
                ret_idx: 2,
                lo: lo as i64,
                hi: hi as i64,
            },
        });
    }

    MatrixSpec {
        oid_spec: DatabaseSpec {
            parents: oid_parents,
            child_rels: vec![children.clone()],
        },
        proc_spec: ProcDatabaseSpec {
            parents: proc_parents,
            child_rels: vec![children.clone()],
        },
        proc_scan_spec: ProcDatabaseSpec {
            parents: proc_scan_parents,
            child_rels: vec![children],
        },
    }
}

/// One system under comparison: a representation plus its query-processing
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatrixSystem {
    /// OID representation, competitive BFS, no cache.
    OidBfs,
    /// OID representation, DFSCACHE with the paper's SizeCache.
    OidCached,
    /// OID representation, DFSCACHE with *inside* cache placement
    /// (the Sec. 3.2 road not taken).
    OidCachedInside,
    /// Procedural, indexable queries, executed every time.
    ProcExecute,
    /// Procedural, non-indexable (`ret3`) queries, executed every time.
    ProcExecuteScan,
    /// Procedural with an outside value cache.
    ProcOutsideValues,
    /// Procedural with an outside OID cache.
    ProcOutsideOids,
    /// Procedural (non-indexable queries) with an outside value cache —
    /// the configuration where caching pays most.
    ProcScanOutsideValues,
    /// Procedural (non-indexable queries) with an outside OID cache.
    ProcScanOutsideOids,
    /// Procedural (non-indexable queries) with inside caching.
    ProcScanInsideValues,
    /// Procedural with inside caching.
    ProcInsideValues,
    /// Value-based: subobjects inlined and replicated.
    ValueBased,
}

impl MatrixSystem {
    /// All systems, in presentation order.
    pub const ALL: [MatrixSystem; 12] = [
        MatrixSystem::OidBfs,
        MatrixSystem::OidCached,
        MatrixSystem::OidCachedInside,
        MatrixSystem::ProcExecute,
        MatrixSystem::ProcExecuteScan,
        MatrixSystem::ProcOutsideValues,
        MatrixSystem::ProcOutsideOids,
        MatrixSystem::ProcScanOutsideValues,
        MatrixSystem::ProcScanOutsideOids,
        MatrixSystem::ProcScanInsideValues,
        MatrixSystem::ProcInsideValues,
        MatrixSystem::ValueBased,
    ];

    /// Display label.
    pub fn name(&self) -> &'static str {
        match self {
            MatrixSystem::OidBfs => "OID/BFS",
            MatrixSystem::OidCached => "OID/DFSCACHE",
            MatrixSystem::OidCachedInside => "OID/in-val",
            MatrixSystem::ProcExecute => "PROC/exec(idx)",
            MatrixSystem::ProcExecuteScan => "PROC/exec(scan)",
            MatrixSystem::ProcOutsideValues => "PROC/out-val",
            MatrixSystem::ProcOutsideOids => "PROC/out-oid",
            MatrixSystem::ProcScanOutsideValues => "PROC/scan+out-val",
            MatrixSystem::ProcScanOutsideOids => "PROC/scan+out-oid",
            MatrixSystem::ProcScanInsideValues => "PROC/scan+in-val",
            MatrixSystem::ProcInsideValues => "PROC/in-val",
            MatrixSystem::ValueBased => "VALUE",
        }
    }
}

/// Result of measuring one system on one sequence.
#[derive(Debug, Clone)]
pub struct MatrixRunResult {
    /// Which system ran.
    pub system: MatrixSystem,
    /// Queries executed.
    pub queries: usize,
    /// Retrieves among them.
    pub retrieves: usize,
    /// Total I/O.
    pub total_io: u64,
    /// I/O spent in retrieves.
    pub retrieve_io: u64,
    /// I/O spent in updates.
    pub update_io: u64,
    /// Values returned (for cross-checking equivalence).
    pub values_returned: u64,
    /// Cache counters where applicable.
    pub cache: Option<CacheCounters>,
}

impl MatrixRunResult {
    /// The paper's yardstick.
    pub fn avg_io_per_query(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.total_io as f64 / self.queries as f64
        }
    }

    /// Average I/O per retrieve.
    pub fn avg_retrieve_io(&self) -> f64 {
        if self.retrieves == 0 {
            0.0
        } else {
            self.retrieve_io as f64 / self.retrieves as f64
        }
    }

    /// Average I/O per update.
    pub fn avg_update_io(&self) -> f64 {
        let updates = self.queries - self.retrieves;
        if updates == 0 {
            0.0
        } else {
            self.update_io as f64 / updates as f64
        }
    }
}

/// Build, run and measure one system on the standard sequence for
/// `params`. Every system sees the same queries and updates.
pub fn run_matrix_point(
    params: &Params,
    spec: &MatrixSpec,
    system: MatrixSystem,
) -> Result<MatrixRunResult, CorError> {
    let sequence = generate_sequence(params);
    let pool = crate::dbgen::make_pool(params);
    let mut result = MatrixRunResult {
        system,
        queries: sequence.len(),
        retrieves: 0,
        total_io: 0,
        retrieve_io: 0,
        update_io: 0,
        values_returned: 0,
        cache: None,
    };

    enum Db {
        Oid(CorDatabase, Strategy),
        Proc(ProcDatabase),
        Value(ValueDatabase),
    }

    let db = match system {
        MatrixSystem::OidBfs => Db::Oid(
            CorDatabase::build_standard(Arc::clone(&pool), &spec.oid_spec, None)?,
            Strategy::Bfs,
        ),
        MatrixSystem::OidCached => Db::Oid(
            CorDatabase::build_standard(
                Arc::clone(&pool),
                &spec.oid_spec,
                Some(CacheConfig {
                    capacity: params.size_cache,
                    ..CacheConfig::default()
                }),
            )?,
            Strategy::DfsCache,
        ),
        MatrixSystem::OidCachedInside => Db::Oid(
            CorDatabase::build_standard(
                Arc::clone(&pool),
                &spec.oid_spec,
                Some(CacheConfig {
                    capacity: params.size_cache,
                    placement: complexobj::CachePlacement::Inside,
                    ..CacheConfig::default()
                }),
            )?,
            Strategy::DfsCache,
        ),
        MatrixSystem::ProcExecute => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_spec,
            ProcCaching::None,
        )?),
        MatrixSystem::ProcExecuteScan => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_scan_spec,
            ProcCaching::None,
        )?),
        MatrixSystem::ProcOutsideValues => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_spec,
            ProcCaching::OutsideValues(params.size_cache),
        )?),
        MatrixSystem::ProcOutsideOids => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_spec,
            ProcCaching::OutsideOids(params.size_cache),
        )?),
        MatrixSystem::ProcScanOutsideValues => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_scan_spec,
            ProcCaching::OutsideValues(params.size_cache),
        )?),
        MatrixSystem::ProcScanOutsideOids => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_scan_spec,
            ProcCaching::OutsideOids(params.size_cache),
        )?),
        MatrixSystem::ProcScanInsideValues => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_scan_spec,
            ProcCaching::InsideValues(params.size_cache),
        )?),
        MatrixSystem::ProcInsideValues => Db::Proc(ProcDatabase::build(
            Arc::clone(&pool),
            &spec.proc_spec,
            ProcCaching::InsideValues(params.size_cache),
        )?),
        MatrixSystem::ValueBased => {
            Db::Value(ValueDatabase::build(Arc::clone(&pool), &spec.oid_spec)?)
        }
    };

    pool.flush_and_clear()?;
    let stats = pool.stats().clone();
    let start = stats.snapshot();
    let opts = ExecOptions::default();

    for q in &sequence {
        match q {
            Query::Retrieve(r) => {
                let out = match &db {
                    Db::Oid(d, s) => execute_retrieve(d, *s, r, &opts)?,
                    Db::Proc(d) => execute_proc_retrieve(d, r)?,
                    Db::Value(d) => d.run_retrieve(r)?,
                };
                result.retrieves += 1;
                result.retrieve_io += out.total_io();
                result.values_returned += out.values.len() as u64;
            }
            Query::Update(u) => {
                let delta = match &db {
                    Db::Oid(d, _) => apply_update(d, u, d.has_cache())?,
                    Db::Proc(d) => apply_proc_update(d, u)?,
                    Db::Value(d) => d.apply_update(u)?,
                };
                result.update_io += delta.total();
            }
        }
    }
    result.total_io = stats.snapshot().since(&start).total();
    result.cache = match &db {
        Db::Oid(d, _) => d.cache_counters(),
        Db::Proc(d) if d.caching() != ProcCaching::None => Some(d.cache_counters()),
        _ => None,
    };
    Ok(result)
}

/// Random-update helper reused by tests: an update targeting subobjects
/// valid for the matrix workload.
pub fn matrix_random_update(params: &Params, rng: &mut StdRng) -> complexobj::UpdateQuery {
    complexobj::UpdateQuery {
        targets: (0..params.update_batch)
            .map(|_| random_child_oid(params, rng))
            .collect(),
        new_ret1: rng.random_range(-1000..=1000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pr_update: f64) -> Params {
        Params {
            parent_card: 200,
            use_factor: 4,
            overlap_factor: 1,
            size_cache: 24,
            buffer_pages: 16,
            sequence_len: 24,
            num_top: 10,
            pr_update,
            ..Params::paper_default()
        }
    }

    #[test]
    fn matrix_spec_is_consistent_across_representations() {
        let p = tiny(0.0);
        let m = generate_matrix(&p);
        assert_eq!(m.oid_spec.parents.len(), 200);
        assert_eq!(m.proc_spec.parents.len(), 200);
        for ((o, pr), ps) in m
            .oid_spec
            .parents
            .iter()
            .zip(&m.proc_spec.parents)
            .zip(&m.proc_scan_spec.parents)
        {
            // The OID list must be exactly the key range of the stored query.
            let StoredQuery::KeyRange { lo, hi, .. } = pr.members else {
                panic!("proc spec must use key ranges")
            };
            let expect: Vec<Oid> = (lo..=hi).map(|k| Oid::new(CHILD_REL_BASE, k)).collect();
            assert_eq!(o.children, expect);
            // And the scan variant denotes the same set through ret3.
            let StoredQuery::RetRange {
                ret_idx,
                lo: rlo,
                hi: rhi,
                ..
            } = ps.members
            else {
                panic!("scan spec must use ret ranges")
            };
            assert_eq!(ret_idx, 2);
            assert_eq!((rlo as u64, rhi as u64), (lo, hi));
        }
    }

    #[test]
    fn overlap_factor_creates_overlapping_ranges() {
        let p = Params {
            overlap_factor: 5,
            use_factor: 1,
            ..tiny(0.0)
        };
        let m = generate_matrix(&p);
        // step = 1: consecutive units share size_unit - 1 subobjects.
        let mut ranges: Vec<(u64, u64)> = m
            .proc_spec
            .parents
            .iter()
            .map(|pr| match pr.members {
                StoredQuery::KeyRange { lo, hi, .. } => (lo, hi),
                _ => unreachable!(),
            })
            .collect();
        ranges.sort_unstable();
        ranges.dedup();
        assert!(
            ranges.windows(2).any(|w| w[1].0 <= w[0].1),
            "ranges must overlap"
        );
    }

    #[test]
    fn all_systems_return_the_same_values_on_retrieve_only_sequences() {
        let p = tiny(0.0);
        let spec = generate_matrix(&p);
        let mut counts = Vec::new();
        for system in MatrixSystem::ALL {
            let r = run_matrix_point(&p, &spec, system).unwrap();
            counts.push((system, r.values_returned));
        }
        let expect = counts[0].1;
        for (system, n) in counts {
            assert_eq!(
                n,
                expect,
                "{} returned a different result size",
                system.name()
            );
        }
    }

    #[test]
    fn all_systems_survive_update_heavy_sequences() {
        let p = tiny(0.5);
        let spec = generate_matrix(&p);
        for system in MatrixSystem::ALL {
            let r = run_matrix_point(&p, &spec, system).unwrap();
            assert!(r.total_io > 0, "{} did no I/O", system.name());
            assert_eq!(r.queries, p.sequence_len);
        }
    }

    #[test]
    fn value_based_pays_most_for_updates_under_sharing() {
        let p = Params {
            pr_update: 1.0,
            use_factor: 8,
            ..tiny(1.0)
        };
        let spec = generate_matrix(&p);
        let value = run_matrix_point(&p, &spec, MatrixSystem::ValueBased).unwrap();
        let oid = run_matrix_point(&p, &spec, MatrixSystem::OidBfs).unwrap();
        assert!(
            value.avg_update_io() > oid.avg_update_io(),
            "replica maintenance ({}) must exceed single-copy update ({})",
            value.avg_update_io(),
            oid.avg_update_io()
        );
    }

    #[test]
    fn value_based_retrieves_cheapest_without_updates() {
        let p = tiny(0.0);
        let spec = generate_matrix(&p);
        let value = run_matrix_point(&p, &spec, MatrixSystem::ValueBased).unwrap();
        let oid = run_matrix_point(&p, &spec, MatrixSystem::OidBfs).unwrap();
        assert!(
            value.avg_retrieve_io() < oid.avg_retrieve_io(),
            "inlined subobjects ({}) must beat OID fetching ({})",
            value.avg_retrieve_io(),
            oid.avg_retrieve_io()
        );
    }
}
