//! Sequence driver (paper Sec. 4, step \[3\]).
//!
//! "Run a sequence of queries (containing a mix of retrieves and updates,
//! satisfying some parameters) on the database and note the average I/O
//! traffic. This average I/O cost was the performance yardstick."
//!
//! Each run starts cold (empty buffer; the cache, if any, warms during the
//! sequence) and reports averages per query along with the paper's
//! `ParCost`/`ChildCost` split for the retrieves.

use complexobj::strategies::execute_retrieve;
use complexobj::{
    apply_update, CacheCounters, CorDatabase, CorError, ExecOptions, Query, Strategy,
};

/// Aggregated result of one measured sequence.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Queries executed.
    pub queries: usize,
    /// Retrieves among them.
    pub retrieves: usize,
    /// Updates among them.
    pub updates: usize,
    /// Total page I/O over the sequence.
    pub total_io: u64,
    /// I/O charged to object access across retrieves (`ParCost` sum).
    pub par_io: u64,
    /// I/O charged to subobject fetching across retrieves (`ChildCost` sum).
    pub child_io: u64,
    /// I/O spent in updates (including cache invalidation).
    pub update_io: u64,
    /// Attribute values returned by the retrieves.
    pub values_returned: u64,
    /// Cache counters at the end of the run, if the database has a cache.
    pub cache: Option<CacheCounters>,
}

impl RunResult {
    /// The paper's yardstick: average I/O per query.
    pub fn avg_io_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_io as f64 / self.queries as f64
    }

    /// Average I/O per retrieve query.
    pub fn avg_retrieve_io(&self) -> f64 {
        if self.retrieves == 0 {
            return 0.0;
        }
        (self.par_io + self.child_io) as f64 / self.retrieves as f64
    }

    /// Average `ParCost` per retrieve (Fig. 5).
    pub fn avg_par_cost(&self) -> f64 {
        if self.retrieves == 0 {
            return 0.0;
        }
        self.par_io as f64 / self.retrieves as f64
    }

    /// Average `ChildCost` per retrieve (Fig. 5).
    pub fn avg_child_cost(&self) -> f64 {
        if self.retrieves == 0 {
            return 0.0;
        }
        self.child_io as f64 / self.retrieves as f64
    }

    /// Average I/O per update query.
    pub fn avg_update_io(&self) -> f64 {
        if self.updates == 0 {
            return 0.0;
        }
        self.update_io as f64 / self.updates as f64
    }
}

/// Run `sequence` under `strategy`, starting from a cold buffer.
pub fn run_sequence(
    db: &CorDatabase,
    strategy: Strategy,
    sequence: &[Query],
    opts: &ExecOptions,
) -> Result<RunResult, CorError> {
    db.pool().flush_and_clear()?;
    let stats = db.pool().stats().clone();
    let start = stats.snapshot();

    let mut result = RunResult {
        strategy,
        queries: sequence.len(),
        retrieves: 0,
        updates: 0,
        total_io: 0,
        par_io: 0,
        child_io: 0,
        update_io: 0,
        values_returned: 0,
        cache: None,
    };

    for q in sequence {
        match q {
            Query::Retrieve(r) => {
                let out = execute_retrieve(db, strategy, r, opts)?;
                result.retrieves += 1;
                result.par_io += out.par_io.total();
                result.child_io += out.child_io.total();
                result.values_returned += out.values.len() as u64;
            }
            Query::Update(u) => {
                // Cache maintenance (I-lock invalidation) applies whenever
                // the database carries a cache — Sec. 3.2.
                let delta = apply_update(db, u, db.has_cache())?;
                result.updates += 1;
                result.update_io += delta.total();
            }
        }
    }

    result.total_io = stats.snapshot().since(&start).total();
    result.cache = db.cache_counters();
    Ok(result)
}

/// Per-query record from [`run_sequence_trace`].
#[derive(Debug, Clone, Copy)]
pub struct QueryTrace {
    /// NumTop for retrieves, 0 for updates.
    pub num_top: u64,
    /// Total I/O of this query.
    pub io: u64,
    /// Was this an update?
    pub is_update: bool,
}

/// Like [`run_sequence`] but additionally returns one trace entry per
/// query, for experiments that bucket costs by per-query NumTop (the SMART
/// query-mix study).
pub fn run_sequence_trace(
    db: &CorDatabase,
    strategy: Strategy,
    sequence: &[Query],
    opts: &ExecOptions,
) -> Result<(RunResult, Vec<QueryTrace>), CorError> {
    db.pool().flush_and_clear()?;
    let stats = db.pool().stats().clone();
    let start = stats.snapshot();

    let mut result = RunResult {
        strategy,
        queries: sequence.len(),
        retrieves: 0,
        updates: 0,
        total_io: 0,
        par_io: 0,
        child_io: 0,
        update_io: 0,
        values_returned: 0,
        cache: None,
    };
    let mut trace = Vec::with_capacity(sequence.len());

    for q in sequence {
        match q {
            Query::Retrieve(r) => {
                let out = execute_retrieve(db, strategy, r, opts)?;
                result.retrieves += 1;
                result.par_io += out.par_io.total();
                result.child_io += out.child_io.total();
                result.values_returned += out.values.len() as u64;
                trace.push(QueryTrace {
                    num_top: r.num_top(),
                    io: out.total_io(),
                    is_update: false,
                });
            }
            Query::Update(u) => {
                let delta = apply_update(db, u, db.has_cache())?;
                result.updates += 1;
                result.update_io += delta.total();
                trace.push(QueryTrace {
                    num_top: 0,
                    io: delta.total(),
                    is_update: true,
                });
            }
        }
    }

    result.total_io = stats.snapshot().since(&start).total();
    result.cache = db.cache_counters();
    Ok((result, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{build_for_strategy, generate};
    use crate::params::Params;
    use crate::seqgen::generate_sequence;

    fn tiny(pr_update: f64, num_top: u64) -> Params {
        Params {
            parent_card: 300,
            num_top,
            pr_update,
            sequence_len: 30,
            size_cache: 30,
            buffer_pages: 16,
            ..Params::paper_default()
        }
    }

    #[test]
    fn pure_retrieve_run_accounts_io() {
        let p = tiny(0.0, 20);
        let g = generate(&p);
        let db = build_for_strategy(&p, &g, Strategy::Dfs).unwrap();
        let seq = generate_sequence(&p);
        let r = run_sequence(&db, Strategy::Dfs, &seq, &ExecOptions::default()).unwrap();
        assert_eq!(r.retrieves, 30);
        assert_eq!(r.updates, 0);
        assert!(r.total_io > 0);
        assert_eq!(
            r.total_io,
            r.par_io + r.child_io,
            "retrieve-only: split must cover total"
        );
        // Each retrieve returns NumTop * SizeUnit values.
        assert_eq!(r.values_returned, 30 * 20 * 5);
        assert!(r.avg_io_per_query() > 0.0);
    }

    #[test]
    fn update_heavy_run_counts_update_io() {
        let p = tiny(1.0, 20);
        let g = generate(&p);
        let db = build_for_strategy(&p, &g, Strategy::Bfs).unwrap();
        let seq = generate_sequence(&p);
        let r = run_sequence(&db, Strategy::Bfs, &seq, &ExecOptions::default()).unwrap();
        assert_eq!(r.updates, 30);
        assert!(r.update_io > 0);
        assert_eq!(r.values_returned, 0);
        assert!(r.avg_update_io() > 0.0);
    }

    #[test]
    fn cache_counters_surface_in_result() {
        let p = tiny(0.0, 10);
        let g = generate(&p);
        let db = build_for_strategy(&p, &g, Strategy::DfsCache).unwrap();
        let seq = generate_sequence(&p);
        let r = run_sequence(&db, Strategy::DfsCache, &seq, &ExecOptions::default()).unwrap();
        let c = r.cache.expect("cache counters present");
        assert!(c.insertions > 0, "cold cache must be filled");
        assert!(c.hits + c.misses > 0);
    }

    #[test]
    fn trace_matches_aggregate() {
        let p = tiny(0.3, 10);
        let g = generate(&p);
        let db = build_for_strategy(&p, &g, Strategy::DfsCache).unwrap();
        let seq = generate_sequence(&p);
        let (r, trace) =
            run_sequence_trace(&db, Strategy::DfsCache, &seq, &ExecOptions::default()).unwrap();
        assert_eq!(trace.len(), seq.len());
        let traced_io: u64 = trace.iter().map(|t| t.io).sum();
        assert_eq!(traced_io, r.total_io);
        assert_eq!(trace.iter().filter(|t| t.is_update).count(), r.updates);
        assert!(trace
            .iter()
            .filter(|t| !t.is_update)
            .all(|t| t.num_top == p.num_top));
    }

    #[test]
    fn mixed_sequence_varies_num_top() {
        let p = tiny(0.0, 10);
        let seq = crate::seqgen::generate_mixed_sequence(&p, &[1, 50, 200]);
        let mut seen = std::collections::HashSet::new();
        for q in &seq {
            if let Query::Retrieve(r) = q {
                seen.insert(r.num_top());
                assert!(r.hi < p.parent_card);
            }
        }
        assert_eq!(seen.len(), 3, "all NumTop values appear: {seen:?}");
    }

    #[test]
    fn runs_are_reproducible() {
        let p = tiny(0.3, 15);
        let g = generate(&p);
        let seq = generate_sequence(&p);
        let r1 = {
            let db = build_for_strategy(&p, &g, Strategy::Bfs).unwrap();
            run_sequence(&db, Strategy::Bfs, &seq, &ExecOptions::default()).unwrap()
        };
        let r2 = {
            let db = build_for_strategy(&p, &g, Strategy::Bfs).unwrap();
            run_sequence(&db, Strategy::Bfs, &seq, &ExecOptions::default()).unwrap()
        };
        assert_eq!(r1.total_io, r2.total_io);
        assert_eq!(r1.values_returned, r2.values_returned);
    }
}
