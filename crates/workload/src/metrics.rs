//! Engine observability: per-strategy query metrics, spans, and the
//! folded report.
//!
//! [`EngineMetrics`] owns the engine-level instruments — per-strategy
//! query counters, I/O-delta counters, latency and I/O histograms, and a
//! bounded lock-free span ring — all resolved from a
//! [`MetricsRegistry`] once at construction so the hot path touches only
//! relaxed atomics. [`MetricsReport`] folds those engine metrics together
//! with the buffer pool's per-shard telemetry and the unit/procedural
//! cache counters into one [`MetricsSnapshot`] that the Prometheus and
//! JSON exporters render.
//!
//! Everything here *reads* [`IoStats`](cor_pagestore::IoStats) snapshots;
//! nothing writes them. The paper's I/O counts are identical with metrics
//! on or off.

use complexobj::{CacheCounters, Strategy};
use cor_obs::{labels, Counter, Histogram, MetricsRegistry, MetricsSnapshot, Span, TraceRing};
use cor_pagestore::{BatchIoSnapshot, IoDelta, ReplacementPolicy, ShardTelemetrySnapshot};
use cor_wal::WalStatsSnapshot;
use std::sync::Arc;
use std::time::Duration;

/// Default capacity of the engine's span ring.
pub const DEFAULT_TRACE_SPANS: usize = 1024;

/// Version of the exported metrics layout, stamped into every rendered
/// report (matches the `schema_version` corstat.json carries).
pub const METRICS_SCHEMA_VERSION: u32 = 1;

/// Metric families every [`MetricsReport`] must carry; the `corstat`
/// smoke gate fails if any is missing or non-finite.
pub const REQUIRED_METRICS: &[&str] = &[
    "cor_query_total",
    "cor_query_reads_total",
    "cor_query_writes_total",
    "cor_query_latency_ns",
    "cor_query_io_pages",
    "cor_trace_spans_dropped_total",
    "cor_io_batch_reads_total",
    "cor_io_coalesced_runs_total",
    "cor_prefetch_issued_total",
    "cor_prefetch_hits_total",
];

/// Span `op` codes pushed by the engine (the [`Span::op`] field).
pub mod span_op {
    /// One [`Engine::retrieve`](crate::Engine::retrieve) call.
    pub const RETRIEVE: u64 = 1;
    /// One [`Engine::update`](crate::Engine::update) call.
    pub const UPDATE: u64 = 2;
    /// One whole [`Engine::run_sequence`](crate::Engine::run_sequence)
    /// call.
    pub const SEQUENCE: u64 = 3;
}

/// The [`Span::tag`] value for `strategy` (its index in
/// [`Strategy::ALL`]).
pub fn strategy_tag(strategy: Strategy) -> u64 {
    Strategy::ALL
        .iter()
        .position(|s| *s == strategy)
        .expect("every strategy is in ALL") as u64
}

/// Invert [`strategy_tag`].
pub fn strategy_from_tag(tag: u64) -> Option<Strategy> {
    Strategy::ALL.get(tag as usize).copied()
}

/// Handles for one (strategy, op) cell.
struct OpHandles {
    queries: Arc<Counter>,
    reads: Arc<Counter>,
    writes: Arc<Counter>,
    latency_ns: Arc<Histogram>,
    io_pages: Arc<Histogram>,
}

impl OpHandles {
    fn register(reg: &MetricsRegistry, strategy: Option<Strategy>, op: &str) -> OpHandles {
        let lbls = match strategy {
            Some(s) => labels(&[("strategy", s.name()), ("op", op)]),
            None => labels(&[("op", op)]),
        };
        OpHandles {
            queries: reg.counter(
                "cor_query_total",
                "queries served by the engine",
                lbls.clone(),
            ),
            reads: reg.counter(
                "cor_query_reads_total",
                "physical page reads attributed to queries",
                lbls.clone(),
            ),
            writes: reg.counter(
                "cor_query_writes_total",
                "physical page writes attributed to queries",
                lbls.clone(),
            ),
            latency_ns: reg.histogram(
                "cor_query_latency_ns",
                "per-call wall time in nanoseconds",
                lbls.clone(),
            ),
            io_pages: reg.histogram(
                "cor_query_io_pages",
                "per-call physical page transfers",
                lbls,
            ),
        }
    }

    fn record(&self, delta: IoDelta, wall: Duration) {
        self.queries.inc();
        self.reads.add(delta.reads);
        self.writes.add(delta.writes);
        self.latency_ns.record(duration_ns(wall));
        self.io_pages.record(delta.total());
    }
}

/// Clamp a [`Duration`] to nanoseconds in `u64` (saturating — a span
/// longer than ~584 years is not worth a panic).
pub fn duration_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The engine's live instruments. Enabled at construction via
/// [`EngineBuilder::metrics`](crate::EngineBuilder::metrics); an engine
/// built without it holds no `EngineMetrics` and pays nothing.
pub struct EngineMetrics {
    registry: MetricsRegistry,
    retrieve: Vec<OpHandles>,
    sequence: Vec<OpHandles>,
    update: OpHandles,
    trace: TraceRing,
}

impl std::fmt::Debug for EngineMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineMetrics")
            .field("trace", &self.trace)
            .finish_non_exhaustive()
    }
}

impl Default for EngineMetrics {
    fn default() -> Self {
        Self::new()
    }
}

impl EngineMetrics {
    /// Instruments with the default span-ring capacity.
    pub fn new() -> Self {
        Self::with_trace_capacity(DEFAULT_TRACE_SPANS)
    }

    /// Instruments remembering the last `trace_capacity` spans.
    pub fn with_trace_capacity(trace_capacity: usize) -> Self {
        let registry = MetricsRegistry::new();
        let retrieve = Strategy::ALL
            .iter()
            .map(|s| OpHandles::register(&registry, Some(*s), "retrieve"))
            .collect();
        let sequence = Strategy::ALL
            .iter()
            .map(|s| OpHandles::register(&registry, Some(*s), "sequence"))
            .collect();
        let update = OpHandles::register(&registry, None, "update");
        EngineMetrics {
            registry,
            retrieve,
            sequence,
            update,
            trace: TraceRing::new(trace_capacity),
        }
    }

    /// Record one retrieve: its I/O delta, wall time, and values returned.
    pub fn record_retrieve(&self, strategy: Strategy, delta: IoDelta, wall: Duration, values: u64) {
        self.retrieve[strategy_tag(strategy) as usize].record(delta, wall);
        self.trace.push(Span {
            op: span_op::RETRIEVE,
            tag: strategy_tag(strategy),
            reads: delta.reads,
            writes: delta.writes,
            wall_ns: duration_ns(wall),
            payload: values,
        });
    }

    /// Record one update.
    pub fn record_update(&self, delta: IoDelta, wall: Duration) {
        self.update.record(delta, wall);
        self.trace.push(Span {
            op: span_op::UPDATE,
            tag: 0,
            reads: delta.reads,
            writes: delta.writes,
            wall_ns: duration_ns(wall),
            payload: 0,
        });
    }

    /// Record one whole measured sequence (`queries` individual queries).
    pub fn record_sequence(
        &self,
        strategy: Strategy,
        delta: IoDelta,
        wall: Duration,
        queries: u64,
    ) {
        self.sequence[strategy_tag(strategy) as usize].record(delta, wall);
        self.trace.push(Span {
            op: span_op::SEQUENCE,
            tag: strategy_tag(strategy),
            reads: delta.reads,
            writes: delta.writes,
            wall_ns: duration_ns(wall),
            payload: queries,
        });
    }

    /// The retained spans, oldest first (best-effort under concurrency).
    pub fn spans(&self) -> Vec<Span> {
        self.trace.snapshot()
    }

    /// Spans pushed over the engine's lifetime.
    pub fn spans_pushed(&self) -> u64 {
        self.trace.pushed()
    }

    /// Spans lost to observation: ring overwrite plus snapshot/writer
    /// race skips. Distinguishes "no queries ran" from "spans dropped".
    pub fn spans_dropped(&self) -> u64 {
        self.trace.dropped()
    }

    /// Snapshot of the engine-level metrics only (no pool or cache
    /// sections — [`build_report`] folds those in).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

/// A complete observability report for one engine.
#[derive(Debug, Clone)]
pub struct MetricsReport {
    /// Every metric — engine, pool, cache — in exporter-ready form.
    pub snapshot: MetricsSnapshot,
    /// The most recent query spans.
    pub spans: Vec<Span>,
    /// Spans lost to ring overwrite or reader/writer races by the time
    /// this report was assembled (tracing is best-effort; this makes the
    /// loss visible instead of silent).
    pub spans_dropped: u64,
    /// Per-shard pool telemetry (empty when the pool was built without
    /// telemetry).
    pub pool: Vec<ShardTelemetrySnapshot>,
    /// Cache counters, when the engine carries a unit or procedural
    /// cache.
    pub cache: Option<CacheCounters>,
    /// Write-ahead-log counters, when the engine runs durable.
    pub wal: Option<WalStatsSnapshot>,
}

impl MetricsReport {
    /// Render the report in Prometheus text exposition format, prefixed
    /// by a `# cor_meta` comment stamping the metrics schema and engine
    /// catalog versions (comment lines are ignored by Prometheus parsers,
    /// including [`cor_obs::parse_prometheus`]).
    pub fn to_prometheus(&self) -> String {
        format!(
            "# cor_meta schema_version={} catalog_version={}\n{}",
            METRICS_SCHEMA_VERSION,
            crate::catalog::ENGINE_CATALOG_VERSION,
            cor_obs::to_prometheus(&self.snapshot)
        )
    }

    /// Render the report as JSON, wrapped with the same
    /// `schema_version` / `catalog_version` stamps corstat.json carries.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"schema_version\":{},\"catalog_version\":{},\"metrics\":{}}}",
            METRICS_SCHEMA_VERSION,
            crate::catalog::ENGINE_CATALOG_VERSION,
            cor_obs::to_json(&self.snapshot)
        )
    }

    /// Structural health check: all [`REQUIRED_METRICS`] present, every
    /// gauge finite, histogram buckets consistent.
    pub fn validate(&self) -> Result<(), String> {
        self.snapshot.validate(REQUIRED_METRICS)
    }

    /// Whole-pool roll-up of the per-shard telemetry (all-zero when the
    /// pool ran without telemetry).
    pub fn pool_total(&self) -> ShardTelemetrySnapshot {
        let mut total = ShardTelemetrySnapshot::default();
        for s in &self.pool {
            total.merge(s);
        }
        total
    }
}

/// Fold engine metrics, pool telemetry, batched-I/O counters, cache
/// counters, and WAL counters into one report.
///
/// `io` is the pool's cumulative [`BatchIoSnapshot`]; its four batching
/// families are always exported (all-zero on a pool that never
/// batched), so both exporters and the `corstat` smoke gate see them
/// unconditionally. The `cor_aio_*` families are exported only when the
/// async submission counters are nonzero, keeping a synchronous pool's
/// export byte-identical to the pre-aio layout.
pub fn build_report(
    metrics: &EngineMetrics,
    pool: Option<(ReplacementPolicy, Vec<ShardTelemetrySnapshot>)>,
    io: BatchIoSnapshot,
    cache: Option<CacheCounters>,
    wal: Option<WalStatsSnapshot>,
) -> MetricsReport {
    let mut snapshot = metrics.snapshot();
    {
        let lbls = labels(&[]);
        snapshot.push_counter(
            "cor_io_batch_reads_total",
            "pages transferred through batched multi-page reads",
            lbls.clone(),
            io.batch_reads,
        );
        snapshot.push_counter(
            "cor_io_coalesced_runs_total",
            "physical submissions the batched pages collapsed into",
            lbls.clone(),
            io.coalesced_runs,
        );
        snapshot.push_counter(
            "cor_prefetch_issued_total",
            "pages named by readahead/prefetch hints",
            lbls.clone(),
            io.prefetch_issued,
        );
        snapshot.push_counter(
            "cor_prefetch_hits_total",
            "demand accesses served by a prefetch-loaded frame",
            lbls.clone(),
            io.prefetch_hits,
        );
        snapshot.push_gauge(
            "cor_io_coalescing_factor",
            "batched pages per physical submission",
            lbls.clone(),
            io.coalescing_factor(),
        );
        // Async-submission families appear only once the pool has
        // actually run with queue_depth > 1 — a synchronous pool's
        // export stays byte-identical to the pre-aio layout (hence
        // these are not in REQUIRED_METRICS).
        if io.aio_submitted != 0 || io.aio_completed != 0 || io.aio_in_flight_peak != 0 {
            snapshot.push_counter(
                "cor_aio_submitted_total",
                "coalesced runs handed to the async submission engine",
                lbls.clone(),
                io.aio_submitted,
            );
            snapshot.push_counter(
                "cor_aio_completed_total",
                "async submissions harvested to completion",
                lbls.clone(),
                io.aio_completed,
            );
            snapshot.push_gauge(
                "cor_aio_in_flight_peak",
                "high-water mark of concurrently in-flight async submissions",
                lbls,
                io.aio_in_flight_peak as f64,
            );
        }
    }
    if let Some((policy, shards)) = &pool {
        // Info-style metric: the constant value 1 carries the active
        // replacement policy in its label, the Prometheus idiom for
        // configuration facts. Follows the telemetry gating so a
        // metrics-off engine's export stays byte-identical.
        snapshot.push_gauge(
            "cor_pool_policy",
            "active buffer replacement policy (info metric, value is always 1)",
            labels(&[("policy", policy.name())]),
            1.0,
        );
        for s in shards {
            let lbls = labels(&[("shard", &s.shard.to_string())]);
            snapshot.push_counter(
                "cor_pool_hits_total",
                "buffer pool page-table hits",
                lbls.clone(),
                s.hits,
            );
            snapshot.push_counter(
                "cor_pool_misses_total",
                "buffer pool page faults",
                lbls.clone(),
                s.misses,
            );
            snapshot.push_counter(
                "cor_pool_evictions_total",
                "buffer pool evictions",
                lbls.clone(),
                s.evictions,
            );
            snapshot.push_counter(
                "cor_pool_writebacks_total",
                "dirty pages written back",
                lbls.clone(),
                s.writebacks,
            );
            snapshot.push_counter(
                "cor_pool_pin_waits_total",
                "pin attempts that found every frame pinned",
                lbls.clone(),
                s.pin_waits,
            );
            snapshot.push_gauge(
                "cor_pool_hit_ratio",
                "pool hit fraction per shard",
                lbls,
                s.hit_ratio(),
            );
        }
    }
    if let Some(c) = &cache {
        let lbls = labels(&[]);
        snapshot.push_counter(
            "cor_cache_hits_total",
            "cache probe hits",
            lbls.clone(),
            c.hits,
        );
        snapshot.push_counter(
            "cor_cache_misses_total",
            "cache probe misses",
            lbls.clone(),
            c.misses,
        );
        snapshot.push_counter(
            "cor_cache_insertions_total",
            "units materialized into the cache",
            lbls.clone(),
            c.insertions,
        );
        snapshot.push_counter(
            "cor_cache_invalidations_total",
            "units invalidated by updates",
            lbls.clone(),
            c.invalidations,
        );
        snapshot.push_counter(
            "cor_cache_evictions_total",
            "units evicted for room",
            lbls.clone(),
            c.evictions,
        );
        snapshot.push_gauge(
            "cor_cache_hit_ratio",
            "cache hit fraction",
            lbls,
            c.hit_ratio(),
        );
    }
    if let Some(w) = &wal {
        let lbls = labels(&[]);
        snapshot.push_counter(
            "cor_wal_appends_total",
            "log records appended",
            lbls.clone(),
            w.appends,
        );
        snapshot.push_counter(
            "cor_wal_fsyncs_total",
            "physical log syncs issued",
            lbls.clone(),
            w.fsyncs,
        );
        snapshot.push_counter(
            "cor_wal_bytes_total",
            "serialized log bytes appended",
            lbls.clone(),
            w.bytes,
        );
        snapshot.push_counter(
            "cor_wal_images_total",
            "full-page-image records appended",
            lbls.clone(),
            w.images,
        );
        snapshot.push_counter(
            "cor_wal_deltas_total",
            "byte-range delta records appended",
            lbls.clone(),
            w.deltas,
        );
        snapshot.push_counter(
            "cor_wal_checkpoints_total",
            "checkpoint records appended",
            lbls.clone(),
            w.checkpoints,
        );
        snapshot.push_gauge(
            "cor_wal_appended_lsn",
            "highest LSN appended to the log",
            lbls.clone(),
            w.appended_lsn as f64,
        );
        snapshot.push_gauge(
            "cor_wal_durable_lsn",
            "highest LSN known durable",
            lbls,
            w.durable_lsn as f64,
        );
    }
    // Snapshot the ring before reading the drop count, so losses caused
    // by this very snapshot are included in the figure it reports.
    let spans = metrics.spans();
    let spans_dropped = metrics.spans_dropped();
    snapshot.push_counter(
        "cor_trace_spans_dropped_total",
        "query spans lost to ring overwrite or snapshot races",
        labels(&[]),
        spans_dropped,
    );
    MetricsReport {
        snapshot,
        spans,
        spans_dropped,
        pool: pool.map(|(_, shards)| shards).unwrap_or_default(),
        cache,
        wal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_stamp_schema_and_catalog_versions() {
        let m = EngineMetrics::new();
        let report = build_report(&m, None, BatchIoSnapshot::default(), None, None);
        let meta = format!(
            "schema_version={} catalog_version={}",
            METRICS_SCHEMA_VERSION,
            crate::catalog::ENGINE_CATALOG_VERSION
        );
        let prom = report.to_prometheus();
        assert!(prom.starts_with(&format!("# cor_meta {meta}\n")), "{prom}");
        cor_obs::parse_prometheus(&prom).expect("meta comment is parser-safe");
        let json = report.to_json();
        assert!(
            json.starts_with(&format!(
                "{{\"schema_version\":{},\"catalog_version\":{},\"metrics\":",
                METRICS_SCHEMA_VERSION,
                crate::catalog::ENGINE_CATALOG_VERSION
            )),
            "{json}"
        );
        assert!(json.ends_with('}'));
    }

    #[test]
    fn strategy_tags_roundtrip() {
        for s in Strategy::ALL {
            assert_eq!(strategy_from_tag(strategy_tag(s)), Some(s));
        }
        assert_eq!(strategy_from_tag(99), None);
    }

    #[test]
    fn recorded_queries_surface_in_snapshot() {
        let m = EngineMetrics::with_trace_capacity(8);
        let delta = IoDelta {
            reads: 10,
            writes: 2,
        };
        m.record_retrieve(Strategy::Dfs, delta, Duration::from_micros(5), 40);
        m.record_retrieve(Strategy::Dfs, delta, Duration::from_micros(7), 40);
        m.record_update(
            IoDelta {
                reads: 1,
                writes: 1,
            },
            Duration::from_micros(3),
        );
        let report = build_report(&m, None, BatchIoSnapshot::default(), None, None);
        report.validate().expect("complete report");
        let totals = report.snapshot.family("cor_query_total").unwrap();
        // 6 strategies x {retrieve, sequence} + update.
        assert_eq!(totals.samples.len(), 13);
        let spans = report.spans;
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].op, span_op::RETRIEVE);
        assert_eq!(spans[0].reads, 10);
        assert_eq!(spans[2].op, span_op::UPDATE);
    }

    #[test]
    fn report_surfaces_span_drops_in_both_exporters() {
        let m = EngineMetrics::with_trace_capacity(2);
        let delta = IoDelta {
            reads: 1,
            writes: 0,
        };
        for _ in 0..5 {
            m.record_retrieve(Strategy::Dfs, delta, Duration::from_micros(1), 1);
        }
        assert_eq!(m.spans_pushed(), 5);
        assert_eq!(m.spans_dropped(), 3, "ring of 2 overwrote 3 spans");
        let report = build_report(&m, None, BatchIoSnapshot::default(), None, None);
        report.validate().expect("complete report");
        assert_eq!(report.spans_dropped, 3);
        assert_eq!(report.spans.len(), 2);
        let fam = report
            .snapshot
            .family("cor_trace_spans_dropped_total")
            .expect("drop counter exported");
        assert_eq!(fam.samples.len(), 1);
        assert!(report
            .to_prometheus()
            .contains("cor_trace_spans_dropped_total 3"));
        assert!(report.to_json().contains("cor_trace_spans_dropped_total"));
    }

    #[test]
    fn report_folds_pool_and_cache_sections() {
        let m = EngineMetrics::new();
        m.record_sequence(
            Strategy::Bfs,
            IoDelta {
                reads: 5,
                writes: 5,
            },
            Duration::from_millis(1),
            20,
        );
        let pool = vec![
            ShardTelemetrySnapshot {
                shard: 0,
                hits: 30,
                misses: 10,
                ..Default::default()
            },
            ShardTelemetrySnapshot {
                shard: 1,
                hits: 5,
                misses: 5,
                ..Default::default()
            },
        ];
        let cache = CacheCounters {
            hits: 8,
            misses: 2,
            insertions: 2,
            invalidations: 1,
            evictions: 0,
        };
        let report = build_report(
            &m,
            Some((ReplacementPolicy::TwoQ, pool)),
            BatchIoSnapshot::default(),
            Some(cache),
            None,
        );
        report.validate().expect("complete report");
        assert!(
            report
                .to_prometheus()
                .contains("cor_pool_policy{policy=\"2q\"} 1"),
            "policy info metric rides with the pool section"
        );
        assert!(report.to_json().contains("cor_pool_policy"));
        assert_eq!(
            report
                .snapshot
                .family("cor_pool_hits_total")
                .unwrap()
                .samples
                .len(),
            2
        );
        assert!(report.snapshot.family("cor_cache_hit_ratio").is_some());
        let total = report.pool_total();
        assert_eq!(total.hits, 35);
        assert_eq!(total.probes(), 50);
        let text = report.to_prometheus();
        assert!(text.contains("cor_pool_hit_ratio{shard=\"0\"} 0.75"));
        let json = report.to_json();
        assert!(json.contains("cor_cache_hits_total"));
    }
}
