//! Multi-level hierarchy generation (the paper's multi-dot queries).
//!
//! The paper's VLSI motivation — cells made of paths made of rectangles —
//! is a chain of complex-object databases where each level's subobjects
//! are the next level's objects. This generator builds such chains with a
//! per-level fan-out and UseFactor, using the same exact-dealing approach
//! as [`crate::dbgen`]: every child of level `i` is referenced by exactly
//! `use_factor` parents (up to rounding), so duplicate references — the
//! food of multi-level BFSNODUP — are controlled.

use crate::dbgen::{repair_duplicate_chunks, rng_for, SeedStream};
use complexobj::database::{CorDatabase, DatabaseSpec, ObjectSpec, SubobjectSpec, CHILD_REL_BASE};
use complexobj::CorError;
use cor_pagestore::BufferPool;
use cor_relational::Oid;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::sync::Arc;

/// Parameters of a hierarchy.
#[derive(Debug, Clone)]
pub struct HierarchyParams {
    /// Number of databases in the chain (query depth = levels + 1 dots).
    pub levels: usize,
    /// Objects at the top level.
    pub top_card: u64,
    /// Children referenced per object, at every level.
    pub fan_out: usize,
    /// Objects sharing each child, at every level.
    pub use_factor: u32,
    /// Pad length for object tuples.
    pub parent_dummy_len: usize,
    /// Pad length for the final level's subobject tuples.
    pub child_dummy_len: usize,
    /// Buffer pages per level database.
    pub buffer_pages: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for HierarchyParams {
    fn default() -> Self {
        HierarchyParams {
            levels: 2,
            top_card: 1000,
            fan_out: 5,
            use_factor: 5,
            parent_dummy_len: 110,
            child_dummy_len: 64,
            buffer_pages: 100,
            seed: 0xBEEF,
        }
    }
}

impl HierarchyParams {
    /// Cardinality of level `i`'s objects (level 0 = `top_card`; each
    /// deeper level shrinks/grows by `fan_out / use_factor`).
    pub fn card_at(&self, level: usize) -> u64 {
        let mut card = self.top_card;
        for _ in 0..level {
            card = (card * self.fan_out as u64 / self.use_factor as u64).max(1);
        }
        card
    }
}

/// Deal `parents * fan` references so each of `children` child keys is
/// referenced about `use_factor` times, duplicate-free per parent.
fn deal_children(parents: u64, children: u64, fan: usize, rng: &mut StdRng) -> Vec<Vec<Oid>> {
    let needed = parents as usize * fan;
    let child_oids: Vec<Oid> = (0..children).map(|k| Oid::new(CHILD_REL_BASE, k)).collect();
    let mut memberships: Vec<Oid> = Vec::with_capacity(needed + child_oids.len());
    while memberships.len() < needed {
        let mut perm = child_oids.clone();
        perm.shuffle(rng);
        memberships.extend(perm);
    }
    memberships.truncate(needed);
    repair_duplicate_chunks(&mut memberships, fan);
    memberships.chunks(fan).map(|c| c.to_vec()).collect()
}

/// Generate the chain of logical database specs.
pub fn generate_hierarchy_specs(hp: &HierarchyParams) -> Vec<DatabaseSpec> {
    assert!(hp.levels >= 1);
    assert!(hp.fan_out >= 1 && hp.use_factor >= 1);
    let mut rng = rng_for(hp.seed, SeedStream::Spec);
    let dummy = |rng: &mut StdRng, len: usize| -> String {
        (0..len)
            .map(|_| (b'a' + rng.random_range(0..26u8)) as char)
            .collect()
    };

    let mut specs = Vec::with_capacity(hp.levels);
    for level in 0..hp.levels {
        let parents = hp.card_at(level);
        let children = hp.card_at(level + 1);
        let assignments = deal_children(parents, children, hp.fan_out, &mut rng);
        let parents_spec: Vec<ObjectSpec> = (0..parents)
            .map(|key| ObjectSpec {
                key,
                rets: [
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                ],
                dummy: dummy(&mut rng, hp.parent_dummy_len),
                children: assignments[key as usize].clone(),
            })
            .collect();
        let child_rels: Vec<Vec<SubobjectSpec>> = vec![(0..children)
            .map(|k| SubobjectSpec {
                oid: Oid::new(CHILD_REL_BASE, k),
                rets: [
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                    rng.random_range(-1000..=1000),
                ],
                dummy: dummy(&mut rng, hp.child_dummy_len),
            })
            .collect()];
        specs.push(DatabaseSpec {
            parents: parents_spec,
            child_rels,
        });
    }
    specs
}

/// Build the chain as standard-representation databases, each on its own
/// buffer pool.
pub fn build_hierarchy(hp: &HierarchyParams) -> Result<Vec<CorDatabase>, CorError> {
    generate_hierarchy_specs(hp)
        .iter()
        .map(|spec| {
            let pool = Arc::new(BufferPool::builder().capacity(hp.buffer_pages).build());
            CorDatabase::build_standard(pool, spec, None)
        })
        .collect()
}

/// Total I/O across every level's pool since the given snapshots.
pub fn total_hierarchy_io(levels: &[CorDatabase], before: &[cor_pagestore::IoSnapshot]) -> u64 {
    levels
        .iter()
        .zip(before)
        .map(|(db, b)| db.pool().stats().snapshot().since(b).total())
        .sum()
}

/// Snapshot every level's counters.
pub fn snapshot_hierarchy(levels: &[CorDatabase]) -> Vec<cor_pagestore::IoSnapshot> {
    levels
        .iter()
        .map(|db| db.pool().stats().snapshot())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use complexobj::multilevel::{bfs_multilevel, dfs_multilevel, MultiDotQuery};
    use complexobj::{ExecOptions, RetAttr};

    fn tiny() -> HierarchyParams {
        HierarchyParams {
            levels: 2,
            top_card: 60,
            fan_out: 3,
            use_factor: 3,
            parent_dummy_len: 10,
            child_dummy_len: 10,
            buffer_pages: 16,
            seed: 42,
        }
    }

    #[test]
    fn cardinalities_follow_fan_over_use() {
        let hp = HierarchyParams {
            top_card: 100,
            fan_out: 6,
            use_factor: 2,
            ..tiny()
        };
        assert_eq!(hp.card_at(0), 100);
        assert_eq!(hp.card_at(1), 300);
        assert_eq!(hp.card_at(2), 900);
    }

    #[test]
    fn specs_reference_only_existing_next_level_objects() {
        let hp = tiny();
        let specs = generate_hierarchy_specs(&hp);
        assert_eq!(specs.len(), 2);
        for (level, spec) in specs.iter().enumerate() {
            let child_card = hp.card_at(level + 1);
            for p in &spec.parents {
                assert_eq!(p.children.len(), hp.fan_out);
                let mut distinct = p.children.clone();
                distinct.sort_unstable();
                distinct.dedup();
                assert_eq!(distinct.len(), hp.fan_out, "duplicate child refs");
                for c in &p.children {
                    assert!(c.key < child_card, "dangling reference at level {level}");
                }
            }
        }
    }

    #[test]
    fn sharing_is_dealt_evenly() {
        let hp = tiny();
        let specs = generate_hierarchy_specs(&hp);
        let mut counts = std::collections::HashMap::new();
        for p in &specs[0].parents {
            for c in &p.children {
                *counts.entry(c.key).or_insert(0u32) += 1;
            }
        }
        // 60 parents x 3 refs over 60 children -> exactly 3 each.
        assert!(counts.values().all(|&n| n == hp.use_factor), "{counts:?}");
    }

    #[test]
    fn built_hierarchy_answers_multidot_queries() {
        let levels = build_hierarchy(&tiny()).unwrap();
        let q = MultiDotQuery {
            lo: 0,
            hi: 19,
            attr: RetAttr::Ret1,
        };
        let mut d = dfs_multilevel(&levels, &q).unwrap().values;
        let mut b = bfs_multilevel(&levels, &q, false, &ExecOptions::default())
            .unwrap()
            .values;
        // 20 objects x 3 x 3 paths.
        assert_eq!(d.len(), 180);
        d.sort_unstable();
        b.sort_unstable();
        assert_eq!(d, b);
    }

    #[test]
    fn io_snapshots_cover_all_levels() {
        let levels = build_hierarchy(&tiny()).unwrap();
        for db in &levels {
            db.pool().flush_and_clear().unwrap();
        }
        let before = snapshot_hierarchy(&levels);
        let q = MultiDotQuery {
            lo: 0,
            hi: 9,
            attr: RetAttr::Ret1,
        };
        dfs_multilevel(&levels, &q).unwrap();
        let total = total_hierarchy_io(&levels, &before);
        assert!(total > 0);
    }
}
