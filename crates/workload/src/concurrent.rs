//! Concurrent multi-stream driver (beyond the paper).
//!
//! The paper's yardstick is single-stream average I/O; the ROADMAP's
//! north star adds *serving*: many clients running query sequences
//! against one shared database. This driver runs M streams on scoped
//! threads over one [`CorDatabase`] (whose sharded buffer pool they
//! contend on) and reports both the paper's average-I/O metric and
//! wall-clock throughput/latency (queries/sec, mean and p99 per-op
//! latency).
//!
//! With `streams = 1` the driver degenerates to [`run_sequence`]'s
//! execution order, so single-stream results remain comparable to the
//! sequential driver; I/O counters are exact in that case. With several
//! streams the total I/O is still exact (the pool's counters are atomic)
//! but depends on the interleaving, so it is reported as an aggregate,
//! not per stream.
//!
//! [`run_sequence`]: crate::driver::run_sequence

use crate::metrics::duration_ns;
use crate::params::Params;
use complexobj::strategies::execute_retrieve;
use complexobj::{apply_update, CorDatabase, CorError, ExecOptions, Query, Strategy};
use cor_obs::{HistSnapshot, Histogram};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Latency summary over a set of per-operation samples.
///
/// Derived from a streaming [`Histogram`], not a sorted sample vector:
/// quantiles are the containing bucket's upper edge (within 25% above the
/// true order statistic, never below it), the mean is exact, and
/// summaries from different threads merge by bucket addition.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Mean per-operation latency (exact).
    pub mean: Duration,
    /// Median per-operation latency.
    pub p50: Duration,
    /// 99th-percentile per-operation latency.
    pub p99: Duration,
    /// Slowest single operation (exact).
    pub max: Duration,
}

impl LatencySummary {
    /// Summarize a set of samples (empty input gives all-zero).
    pub fn from_samples(samples: &[Duration]) -> Self {
        let h = Histogram::new();
        for d in samples {
            h.record(duration_ns(*d));
        }
        Self::from_histogram(&h.snapshot())
    }

    /// Summarize an already-collected nanosecond histogram.
    pub fn from_histogram(h: &HistSnapshot) -> Self {
        if h.is_empty() {
            return LatencySummary::default();
        }
        LatencySummary {
            mean: Duration::from_nanos(h.mean().round() as u64),
            p50: Duration::from_nanos(h.quantile(0.5)),
            p99: Duration::from_nanos(h.quantile(0.99)),
            max: Duration::from_nanos(h.max()),
        }
    }
}

/// Aggregated result of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentRunResult {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Streams that ran.
    pub streams: usize,
    /// Queries executed across all streams.
    pub queries: usize,
    /// Retrieves among them.
    pub retrieves: usize,
    /// Updates among them.
    pub updates: usize,
    /// Total page I/O across all streams (exact; atomically counted).
    pub total_io: u64,
    /// Attribute values returned by the retrieves.
    pub values_returned: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-operation latency summary across all streams.
    pub latency: LatencySummary,
    /// The full per-operation latency histogram (nanoseconds) behind
    /// [`Self::latency`], mergeable across runs.
    pub latency_hist: HistSnapshot,
}

impl ConcurrentRunResult {
    /// The paper's yardstick, aggregated: average I/O per query.
    pub fn avg_io_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_io as f64 / self.queries as f64
    }

    /// Wall-clock throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }
}

/// Per-stream tally collected on the worker thread.
struct StreamTally {
    retrieves: usize,
    updates: usize,
    values_returned: u64,
}

/// One observation delivered to a live reporter while a concurrent run is
/// in flight.
#[derive(Debug, Clone)]
pub struct LiveTick {
    /// Queries completed so far, across all streams.
    pub queries_done: u64,
    /// Wall-clock time since the run started.
    pub elapsed: Duration,
    /// Latency summary over the operations completed so far.
    pub latency: LatencySummary,
    /// Cumulative latency histogram behind the summary — feed it to a
    /// `cor_obs::SlidingWindow` for trailing-window rates/percentiles
    /// (what `corstat --watch` renders).
    pub latency_hist: HistSnapshot,
}

impl LiveTick {
    /// Throughput so far in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.queries_done as f64 / secs
    }
}

/// Run each of `sequences` as its own stream over scoped threads sharing
/// `db`, starting from a cold buffer. Returns the aggregate metrics.
///
/// Retrieves are read-only and freely concurrent. Updates mutate
/// subobjects in place; with `pr_update > 0` and several streams the
/// *interleaving* of updates and retrieves is nondeterministic, so
/// returned values (and I/O) can differ run to run — exactly the
/// behaviour a multi-client server exhibits.
pub fn run_concurrent_streams(
    db: &CorDatabase,
    strategy: Strategy,
    sequences: &[Vec<Query>],
    opts: &ExecOptions,
) -> Result<ConcurrentRunResult, CorError> {
    run_concurrent_streams_observed(db, strategy, sequences, opts, None)
}

/// [`run_concurrent_streams`] with an optional live reporter: every
/// `interval`, a monitor thread reads the shared latency histogram and
/// progress counter (both lock-free; workers are never paused) and hands
/// the callback a [`LiveTick`]. Use [`stderr_reporter`] for the standard
/// progress line.
pub fn run_concurrent_streams_observed(
    db: &CorDatabase,
    strategy: Strategy,
    sequences: &[Vec<Query>],
    opts: &ExecOptions,
    reporter: Option<(Duration, &(dyn Fn(LiveTick) + Sync))>,
) -> Result<ConcurrentRunResult, CorError> {
    assert!(!sequences.is_empty(), "at least one stream");
    db.pool().flush_and_clear()?;
    let stats = db.pool().stats().clone();
    let start_snap = stats.snapshot();
    let started = Instant::now();

    let latency_hist = Histogram::new();
    let done = AtomicU64::new(0);
    let stop = AtomicBool::new(false);

    let tallies: Vec<Result<StreamTally, CorError>> = std::thread::scope(|scope| {
        if let Some((interval, callback)) = reporter {
            let latency_hist = &latency_hist;
            let done = &done;
            let stop = &stop;
            scope.spawn(move || {
                let tick = || {
                    let hist = latency_hist.snapshot();
                    LiveTick {
                        queries_done: done.load(Ordering::Relaxed),
                        elapsed: started.elapsed(),
                        latency: LatencySummary::from_histogram(&hist),
                        latency_hist: hist,
                    }
                };
                let mut next = Instant::now() + interval;
                while !stop.load(Ordering::Acquire) {
                    // Short sleeps so the monitor exits promptly once the
                    // workers finish, whatever the reporting interval.
                    std::thread::sleep(interval.min(Duration::from_millis(5)));
                    if Instant::now() < next {
                        continue;
                    }
                    next += interval;
                    callback(tick());
                }
                // Always flush one final tick: a run shorter than the
                // interval would otherwise finish without the reporter
                // ever firing, losing the closing progress line.
                callback(tick());
            });
        }
        let handles: Vec<_> = sequences
            .iter()
            .map(|sequence| {
                let latency_hist = &latency_hist;
                let done = &done;
                scope.spawn(move || {
                    let mut tally = StreamTally {
                        retrieves: 0,
                        updates: 0,
                        values_returned: 0,
                    };
                    for q in sequence {
                        let t0 = Instant::now();
                        match q {
                            Query::Retrieve(r) => {
                                let out = execute_retrieve(db, strategy, r, opts)?;
                                tally.retrieves += 1;
                                tally.values_returned += out.values.len() as u64;
                            }
                            Query::Update(u) => {
                                apply_update(db, u, db.has_cache())?;
                                tally.updates += 1;
                            }
                        }
                        latency_hist.record(duration_ns(t0.elapsed()));
                        done.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(tally)
                })
            })
            .collect();
        let tallies = handles
            .into_iter()
            .map(|h| h.join().expect("stream thread panicked"))
            .collect();
        stop.store(true, Ordering::Release);
        tallies
    });

    let elapsed = started.elapsed();
    let total_io = stats.snapshot().since(&start_snap).total();
    let hist = latency_hist.snapshot();

    let mut result = ConcurrentRunResult {
        strategy,
        streams: sequences.len(),
        queries: sequences.iter().map(Vec::len).sum(),
        retrieves: 0,
        updates: 0,
        total_io,
        values_returned: 0,
        elapsed,
        latency: LatencySummary::from_histogram(&hist),
        latency_hist: hist,
    };
    for tally in tallies {
        let tally = tally?;
        result.retrieves += tally.retrieves;
        result.updates += tally.updates;
        result.values_returned += tally.values_returned;
    }
    Ok(result)
}

/// The standard live reporter: one progress line per tick on stderr
/// (`[strategy] N queries, X q/s, p50 .., p99 ..`).
pub fn stderr_reporter(strategy: Strategy) -> impl Fn(LiveTick) + Sync {
    move |tick: LiveTick| {
        eprintln!(
            "[{strategy}] {} queries, {:.0} q/s, p50 {:?}, p99 {:?}",
            tick.queries_done,
            tick.queries_per_sec(),
            tick.latency.p50,
            tick.latency.p99,
        );
    }
}

/// Generate one query sequence per stream, each from its own derived
/// seed so streams don't replay each other (stream 0 replays the
/// sequential [`crate::seqgen::generate_sequence`] stream exactly).
pub fn generate_stream_sequences(params: &Params, streams: usize) -> Vec<Vec<Query>> {
    assert!(streams >= 1, "at least one stream");
    (0..streams as u64)
        .map(|i| {
            let p = Params {
                seed: params.seed.wrapping_add(i.wrapping_mul(0x5DEECE66D)),
                ..params.clone()
            };
            crate::seqgen::generate_sequence(&p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{build_for_strategy, generate};
    use crate::driver::run_sequence;
    use crate::seqgen::generate_sequence;

    fn tiny(shards: usize) -> Params {
        Params {
            parent_card: 300,
            num_top: 5,
            sequence_len: 40,
            buffer_pages: 16,
            shards,
            ..Params::paper_default()
        }
    }

    #[test]
    fn single_stream_matches_sequential_driver() {
        let p = tiny(1);
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        let opts = ExecOptions::default();

        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let seq_result = run_sequence(&db, Strategy::Dfs, &sequence, &opts).unwrap();
        let conc_result =
            run_concurrent_streams(&db, Strategy::Dfs, std::slice::from_ref(&sequence), &opts)
                .unwrap();

        assert_eq!(conc_result.streams, 1);
        assert_eq!(conc_result.queries, seq_result.queries);
        assert_eq!(conc_result.retrieves, seq_result.retrieves);
        assert_eq!(conc_result.total_io, seq_result.total_io);
        assert_eq!(conc_result.values_returned, seq_result.values_returned);
        assert!((conc_result.avg_io_per_query() - seq_result.avg_io_per_query()).abs() < 1e-12);
    }

    #[test]
    fn concurrent_streams_return_every_stream_answer() {
        let p = tiny(4);
        let generated = generate(&p);
        let opts = ExecOptions::default();
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();

        let sequences = generate_stream_sequences(&p, 4);
        // Read-only streams: the union of answers is interleaving-free.
        let expected: u64 = sequences
            .iter()
            .map(|s| {
                run_sequence(&db, Strategy::Dfs, s, &opts)
                    .unwrap()
                    .values_returned
            })
            .sum();

        let r = run_concurrent_streams(&db, Strategy::Dfs, &sequences, &opts).unwrap();
        assert_eq!(r.streams, 4);
        assert_eq!(r.queries, 4 * p.sequence_len);
        assert_eq!(r.values_returned, expected);
        assert!(r.total_io > 0);
        assert!(r.queries_per_sec() > 0.0);
        assert!(r.latency.p50 <= r.latency.p99 && r.latency.p99 <= r.latency.max);
        assert!(r.latency.mean <= r.latency.max);
        assert_eq!(r.latency_hist.count(), r.queries as u64);
    }

    #[test]
    fn mixed_update_streams_complete_without_error() {
        let p = Params {
            pr_update: 0.3,
            ..tiny(4)
        };
        let generated = generate(&p);
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let sequences = generate_stream_sequences(&p, 4);
        let r = run_concurrent_streams(&db, Strategy::Dfs, &sequences, &ExecOptions::default())
            .unwrap();
        assert!(r.updates > 0, "sequence mix includes updates");
        assert_eq!(r.retrieves + r.updates, r.queries);
    }

    #[test]
    fn live_reporter_ticks_with_sane_progress() {
        use std::sync::Mutex;
        let p = Params {
            sequence_len: 200,
            ..tiny(4)
        };
        let generated = generate(&p);
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let sequences = generate_stream_sequences(&p, 4);
        let ticks: Mutex<Vec<LiveTick>> = Mutex::new(Vec::new());
        let callback = |t: LiveTick| ticks.lock().unwrap().push(t);
        let r = run_concurrent_streams_observed(
            &db,
            Strategy::Dfs,
            &sequences,
            &ExecOptions::default(),
            Some((Duration::from_millis(1), &callback)),
        )
        .unwrap();
        assert_eq!(r.queries, 4 * p.sequence_len);
        let ticks = ticks.into_inner().unwrap();
        // 800 cold-buffer queries take well over a millisecond; the
        // monitor must have observed the run at least once mid-flight.
        assert!(!ticks.is_empty(), "reporter never fired");
        for w in ticks.windows(2) {
            assert!(w[0].queries_done <= w[1].queries_done, "progress monotone");
            assert!(w[0].elapsed <= w[1].elapsed, "clock monotone");
        }
        let last = ticks.last().unwrap();
        // The monitor flushes one final tick after the workers have all
        // joined, so the closing line always reports the completed run.
        assert_eq!(last.queries_done, r.queries as u64);
        assert_eq!(last.latency_hist.count(), r.queries as u64);
        assert!(last.queries_per_sec() > 0.0);
        assert!(last.latency.p50 <= last.latency.max);
    }

    #[test]
    fn reporter_fires_even_when_run_is_shorter_than_interval() {
        use std::sync::Mutex;
        let p = tiny(1); // 40 queries: far shorter than the 60s interval
        let generated = generate(&p);
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let sequences = generate_stream_sequences(&p, 1);
        let ticks: Mutex<Vec<LiveTick>> = Mutex::new(Vec::new());
        let callback = |t: LiveTick| ticks.lock().unwrap().push(t);
        let r = run_concurrent_streams_observed(
            &db,
            Strategy::Dfs,
            &sequences,
            &ExecOptions::default(),
            Some((Duration::from_secs(60), &callback)),
        )
        .unwrap();
        let ticks = ticks.into_inner().unwrap();
        assert_eq!(ticks.len(), 1, "exactly the final flush fired");
        assert_eq!(ticks[0].queries_done, r.queries as u64);
    }

    #[test]
    fn stream_sequences_differ_but_stream_zero_is_canonical() {
        let p = tiny(1);
        let seqs = generate_stream_sequences(&p, 3);
        assert_eq!(seqs[0], generate_sequence(&p));
        assert_ne!(seqs[0], seqs[1]);
        assert_ne!(seqs[1], seqs[2]);
    }
}
