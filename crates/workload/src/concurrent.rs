//! Concurrent multi-stream driver (beyond the paper).
//!
//! The paper's yardstick is single-stream average I/O; the ROADMAP's
//! north star adds *serving*: many clients running query sequences
//! against one shared database. This driver runs M streams on scoped
//! threads over one [`CorDatabase`] (whose sharded buffer pool they
//! contend on) and reports both the paper's average-I/O metric and
//! wall-clock throughput/latency (queries/sec, mean and p99 per-op
//! latency).
//!
//! With `streams = 1` the driver degenerates to [`run_sequence`]'s
//! execution order, so single-stream results remain comparable to the
//! sequential driver; I/O counters are exact in that case. With several
//! streams the total I/O is still exact (the pool's counters are atomic)
//! but depends on the interleaving, so it is reported as an aggregate,
//! not per stream.
//!
//! [`run_sequence`]: crate::driver::run_sequence

use crate::params::Params;
use complexobj::strategies::execute_retrieve;
use complexobj::{apply_update, CorDatabase, CorError, ExecOptions, Query, Strategy};
use std::time::{Duration, Instant};

/// Latency summary over a set of per-operation samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct LatencySummary {
    /// Mean per-operation latency.
    pub mean: Duration,
    /// 99th-percentile per-operation latency.
    pub p99: Duration,
    /// Slowest single operation.
    pub max: Duration,
}

impl LatencySummary {
    /// Summarize a set of samples (empty input gives all-zero).
    pub fn from_samples(samples: &mut [Duration]) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let total: Duration = samples.iter().sum();
        let p99_idx = (samples.len() * 99).div_ceil(100).saturating_sub(1);
        LatencySummary {
            mean: total / samples.len() as u32,
            p99: samples[p99_idx],
            max: *samples.last().expect("non-empty"),
        }
    }
}

/// Aggregated result of one concurrent run.
#[derive(Debug, Clone)]
pub struct ConcurrentRunResult {
    /// The strategy measured.
    pub strategy: Strategy,
    /// Streams that ran.
    pub streams: usize,
    /// Queries executed across all streams.
    pub queries: usize,
    /// Retrieves among them.
    pub retrieves: usize,
    /// Updates among them.
    pub updates: usize,
    /// Total page I/O across all streams (exact; atomically counted).
    pub total_io: u64,
    /// Attribute values returned by the retrieves.
    pub values_returned: u64,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Per-operation latency summary across all streams.
    pub latency: LatencySummary,
}

impl ConcurrentRunResult {
    /// The paper's yardstick, aggregated: average I/O per query.
    pub fn avg_io_per_query(&self) -> f64 {
        if self.queries == 0 {
            return 0.0;
        }
        self.total_io as f64 / self.queries as f64
    }

    /// Wall-clock throughput in queries per second.
    pub fn queries_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.queries as f64 / secs
    }
}

/// Per-stream tally collected on the worker thread.
struct StreamTally {
    retrieves: usize,
    updates: usize,
    values_returned: u64,
    latencies: Vec<Duration>,
}

/// Run each of `sequences` as its own stream over scoped threads sharing
/// `db`, starting from a cold buffer. Returns the aggregate metrics.
///
/// Retrieves are read-only and freely concurrent. Updates mutate
/// subobjects in place; with `pr_update > 0` and several streams the
/// *interleaving* of updates and retrieves is nondeterministic, so
/// returned values (and I/O) can differ run to run — exactly the
/// behaviour a multi-client server exhibits.
pub fn run_concurrent_streams(
    db: &CorDatabase,
    strategy: Strategy,
    sequences: &[Vec<Query>],
    opts: &ExecOptions,
) -> Result<ConcurrentRunResult, CorError> {
    assert!(!sequences.is_empty(), "at least one stream");
    db.pool().flush_and_clear()?;
    let stats = db.pool().stats().clone();
    let start_snap = stats.snapshot();
    let started = Instant::now();

    let tallies: Vec<Result<StreamTally, CorError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = sequences
            .iter()
            .map(|sequence| {
                scope.spawn(move || {
                    let mut tally = StreamTally {
                        retrieves: 0,
                        updates: 0,
                        values_returned: 0,
                        latencies: Vec::with_capacity(sequence.len()),
                    };
                    for q in sequence {
                        let t0 = Instant::now();
                        match q {
                            Query::Retrieve(r) => {
                                let out = execute_retrieve(db, strategy, r, opts)?;
                                tally.retrieves += 1;
                                tally.values_returned += out.values.len() as u64;
                            }
                            Query::Update(u) => {
                                apply_update(db, u, db.has_cache())?;
                                tally.updates += 1;
                            }
                        }
                        tally.latencies.push(t0.elapsed());
                    }
                    Ok(tally)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("stream thread panicked"))
            .collect()
    });

    let elapsed = started.elapsed();
    let total_io = stats.snapshot().since(&start_snap).total();

    let mut result = ConcurrentRunResult {
        strategy,
        streams: sequences.len(),
        queries: sequences.iter().map(Vec::len).sum(),
        retrieves: 0,
        updates: 0,
        total_io,
        values_returned: 0,
        elapsed,
        latency: LatencySummary::default(),
    };
    let mut all_latencies = Vec::with_capacity(result.queries);
    for tally in tallies {
        let tally = tally?;
        result.retrieves += tally.retrieves;
        result.updates += tally.updates;
        result.values_returned += tally.values_returned;
        all_latencies.extend(tally.latencies);
    }
    result.latency = LatencySummary::from_samples(&mut all_latencies);
    Ok(result)
}

/// Generate one query sequence per stream, each from its own derived
/// seed so streams don't replay each other (stream 0 replays the
/// sequential [`crate::seqgen::generate_sequence`] stream exactly).
pub fn generate_stream_sequences(params: &Params, streams: usize) -> Vec<Vec<Query>> {
    assert!(streams >= 1, "at least one stream");
    (0..streams as u64)
        .map(|i| {
            let p = Params {
                seed: params.seed.wrapping_add(i.wrapping_mul(0x5DEECE66D)),
                ..params.clone()
            };
            crate::seqgen::generate_sequence(&p)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::{build_for_strategy, generate};
    use crate::driver::run_sequence;
    use crate::seqgen::generate_sequence;

    fn tiny(shards: usize) -> Params {
        Params {
            parent_card: 300,
            num_top: 5,
            sequence_len: 40,
            buffer_pages: 16,
            shards,
            ..Params::paper_default()
        }
    }

    #[test]
    fn single_stream_matches_sequential_driver() {
        let p = tiny(1);
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        let opts = ExecOptions::default();

        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let seq_result = run_sequence(&db, Strategy::Dfs, &sequence, &opts).unwrap();
        let conc_result =
            run_concurrent_streams(&db, Strategy::Dfs, std::slice::from_ref(&sequence), &opts)
                .unwrap();

        assert_eq!(conc_result.streams, 1);
        assert_eq!(conc_result.queries, seq_result.queries);
        assert_eq!(conc_result.retrieves, seq_result.retrieves);
        assert_eq!(conc_result.total_io, seq_result.total_io);
        assert_eq!(conc_result.values_returned, seq_result.values_returned);
        assert!((conc_result.avg_io_per_query() - seq_result.avg_io_per_query()).abs() < 1e-12);
    }

    #[test]
    fn concurrent_streams_return_every_stream_answer() {
        let p = tiny(4);
        let generated = generate(&p);
        let opts = ExecOptions::default();
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();

        let sequences = generate_stream_sequences(&p, 4);
        // Read-only streams: the union of answers is interleaving-free.
        let expected: u64 = sequences
            .iter()
            .map(|s| {
                run_sequence(&db, Strategy::Dfs, s, &opts)
                    .unwrap()
                    .values_returned
            })
            .sum();

        let r = run_concurrent_streams(&db, Strategy::Dfs, &sequences, &opts).unwrap();
        assert_eq!(r.streams, 4);
        assert_eq!(r.queries, 4 * p.sequence_len);
        assert_eq!(r.values_returned, expected);
        assert!(r.total_io > 0);
        assert!(r.queries_per_sec() > 0.0);
        assert!(r.latency.mean <= r.latency.p99 && r.latency.p99 <= r.latency.max);
    }

    #[test]
    fn mixed_update_streams_complete_without_error() {
        let p = Params {
            pr_update: 0.3,
            ..tiny(4)
        };
        let generated = generate(&p);
        let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
        let sequences = generate_stream_sequences(&p, 4);
        let r = run_concurrent_streams(&db, Strategy::Dfs, &sequences, &ExecOptions::default())
            .unwrap();
        assert!(r.updates > 0, "sequence mix includes updates");
        assert_eq!(r.retrieves + r.updates, r.queries);
    }

    #[test]
    fn stream_sequences_differ_but_stream_zero_is_canonical() {
        let p = tiny(1);
        let seqs = generate_stream_sequences(&p, 3);
        assert_eq!(seqs[0], generate_sequence(&p));
        assert_ne!(seqs[0], seqs[1]);
        assert_ne!(seqs[1], seqs[2]);
    }
}
