//! EXPLAIN-style per-query I/O profiling.
//!
//! [`Engine::explain`] runs a query sequence with the phase-attribution
//! layer switched on and returns an [`ExplainReport`]: measured I/O per
//! phase (with wall time), the per-retrieve average, and — when workload
//! parameters are supplied — the paper's analytical prediction from
//! [`cor_obs::costmodel`] with the relative error. Reports render as a
//! human table ([`ExplainReport::render`]) and as one structured JSON
//! line ([`ExplainReport::to_jsonl`]) for capture/replay regression
//! checks (the `explain` bench binary's `--replay` mode).
//!
//! Profiling is opt-in per engine and additive-only: the physical I/O a
//! profiled run performs is byte-identical to an unprofiled one, because
//! attribution piggybacks on the existing [`IoStats`] counters
//! (`cor_pagestore`) rather than adding or reordering page accesses.

use crate::driver::RunResult;
use crate::engine::Engine;
use crate::params::Params;
use complexobj::{CorDatabase, CorError, ExecOptions, Query, Strategy};
use cor_obs::costmodel::{
    predict_batch, predict_by_name, queued_submission_rounds, BatchPrediction, Geometry,
    Prediction, Workload,
};
use cor_obs::{enable_timing, take_thread_wall, Phase, PhaseSnapshot, PHASE_COUNT};
use cor_pagestore::{BatchIoSnapshot, IoDelta, PAGE_SIZE};

/// Measured I/O and wall time for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseRow {
    /// The phase.
    pub phase: Phase,
    /// Physical page reads attributed to the phase.
    pub reads: u64,
    /// Physical page writes attributed to the phase.
    pub writes: u64,
    /// Wall time spent with the phase current, in nanoseconds.
    pub wall_ns: u64,
}

impl PhaseRow {
    /// Reads + writes.
    pub fn io(&self) -> u64 {
        self.reads + self.writes
    }
}

/// The outcome of [`Engine::explain`]: one profiled sequence run.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// Strategy that served the sequence.
    pub strategy: Strategy,
    /// Queries in the sequence.
    pub queries: usize,
    /// Retrieves among them (prediction covers retrieves only).
    pub retrieves: usize,
    /// Values returned across the sequence.
    pub values_returned: u64,
    /// Measured physical I/O for the whole sequence.
    pub total: IoDelta,
    /// Per-phase attribution, every phase in [`Phase::ALL`] order. Sums
    /// exactly to `total` — the attribution is exhaustive (the `other`
    /// bucket catches unbracketed I/O).
    pub phases: Vec<PhaseRow>,
    /// Wall time for the sequence in nanoseconds.
    pub wall_ns: u64,
    /// Measured average I/O per retrieve (the paper's yardstick).
    pub avg_retrieve_io: f64,
    /// Analytical expected I/O per retrieve, when parameters were given.
    pub predicted: Option<Prediction>,
    /// `(measured − predicted) / predicted`, when a prediction exists
    /// and is nonzero.
    pub rel_error: Option<f64>,
    /// Measured batched-I/O counters for the sequence (all zero when the
    /// engine runs with the default page-at-a-time knobs).
    pub batch: BatchIoSnapshot,
    /// The cost model's batch term for the engine's I/O knobs, when
    /// parameters were given (zero-valued with the knobs off).
    pub predicted_batch: Option<BatchPrediction>,
    /// The pool's async submission queue depth (1 = synchronous). The
    /// rendered table and the capture line carry an async section only
    /// when this exceeds 1, so depth-1 captures stay byte-identical to
    /// pre-aio ones.
    pub queue_depth: usize,
}

/// The deterministic fields of one capture line, as returned by
/// [`ExplainReport::parse_replay_line`]: `(strategy, reads, writes,
/// per-phase (reads, writes) in [`Phase::ALL`] order)`.
pub type ReplayLine = (String, u64, u64, Vec<(u64, u64)>);

impl ExplainReport {
    /// Per-phase I/O summed — equals `total` by construction.
    pub fn phase_io_sum(&self) -> u64 {
        self.phases.iter().map(|r| r.io()).sum()
    }

    /// Whether the run involved batched I/O at all — measured or
    /// predicted. With the default knobs this is false and both the
    /// rendered table and the capture line omit the batch section, which
    /// keeps batch-1 captures byte-identical to pre-batching ones.
    pub fn batch_active(&self) -> bool {
        self.batch != BatchIoSnapshot::default()
            || self
                .predicted_batch
                .is_some_and(|b| b != BatchPrediction::default())
    }

    /// Render the human-facing breakdown table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "EXPLAIN {} — {} queries ({} retrieves), {} values\n",
            self.strategy, self.queries, self.retrieves, self.values_returned
        ));
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>8} {:>7} {:>10}\n",
            "phase", "reads", "writes", "io", "io%", "wall_ms"
        ));
        let total_io = self.total.total().max(1);
        for row in &self.phases {
            if row.io() == 0 && row.wall_ns == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<14} {:>8} {:>8} {:>8} {:>6.1}% {:>10.3}\n",
                row.phase.name(),
                row.reads,
                row.writes,
                row.io(),
                100.0 * row.io() as f64 / total_io as f64,
                row.wall_ns as f64 / 1e6,
            ));
        }
        out.push_str(&format!(
            "{:<14} {:>8} {:>8} {:>8} {:>6.1}% {:>10.3}\n",
            "total",
            self.total.reads,
            self.total.writes,
            self.total.total(),
            100.0,
            self.wall_ns as f64 / 1e6,
        ));
        out.push_str(&format!(
            "avg I/O per retrieve: measured {:.2}",
            self.avg_retrieve_io
        ));
        if let Some(p) = &self.predicted {
            out.push_str(&format!(
                ", predicted {:.2} (par {:.2} + child {:.2})",
                p.total(),
                p.par,
                p.child
            ));
        }
        if let Some(e) = self.rel_error {
            out.push_str(&format!(", rel err {:+.1}%", 100.0 * e));
        }
        out.push('\n');
        if self.batch_active() {
            out.push_str(&format!(
                "batched I/O: {} pages in {} submissions (x{:.2} coalescing), \
                 prefetch {}/{} hit",
                self.batch.batch_reads,
                self.batch.coalesced_runs,
                self.batch.coalescing_factor().max(1.0),
                self.batch.prefetch_hits,
                self.batch.prefetch_issued,
            ));
            if let Some(b) = self
                .predicted_batch
                .filter(|b| *b != BatchPrediction::default())
            {
                out.push_str(&format!(
                    ", predicted {:.0} pages in {:.0} submissions",
                    b.batched_pages, b.submissions
                ));
            }
            out.push('\n');
        }
        if self.queue_depth > 1 {
            out.push_str(&format!(
                "async I/O: depth {}, {} submitted / {} harvested, peak {} in flight",
                self.queue_depth,
                self.batch.aio_submitted,
                self.batch.aio_completed,
                self.batch.aio_in_flight_peak,
            ));
            if let Some(b) = self
                .predicted_batch
                .filter(|b| *b != BatchPrediction::default())
            {
                out.push_str(&format!(
                    ", predicted {:.0} rounds",
                    queued_submission_rounds(b.submissions, self.queue_depth as f64)
                ));
            }
            out.push('\n');
        }
        out
    }

    /// One JSON line for `results/explain/*.jsonl` — stable field order,
    /// hand-rolled like the repo's other exporters (no serde_json).
    pub fn to_jsonl(&self) -> String {
        let mut s = String::from("{\"schema_version\":1");
        s.push_str(&format!(",\"strategy\":\"{}\"", self.strategy));
        s.push_str(&format!(
            ",\"queries\":{},\"retrieves\":{},\"values\":{}",
            self.queries, self.retrieves, self.values_returned
        ));
        s.push_str(&format!(
            ",\"reads\":{},\"writes\":{}",
            self.total.reads, self.total.writes
        ));
        s.push_str(&format!(",\"avg_retrieve_io\":{:.6}", self.avg_retrieve_io));
        match &self.predicted {
            Some(p) => s.push_str(&format!(
                ",\"predicted\":{:.6},\"predicted_par\":{:.6},\"predicted_child\":{:.6}",
                p.total(),
                p.par,
                p.child
            )),
            None => s.push_str(",\"predicted\":null"),
        }
        match self.rel_error {
            Some(e) => s.push_str(&format!(",\"rel_error\":{e:.6}")),
            None => s.push_str(",\"rel_error\":null"),
        }
        if self.batch_active() {
            s.push_str(&format!(
                ",\"batch\":{{\"batch_reads\":{},\"coalesced_runs\":{},\
                 \"prefetch_issued\":{},\"prefetch_hits\":{}",
                self.batch.batch_reads,
                self.batch.coalesced_runs,
                self.batch.prefetch_issued,
                self.batch.prefetch_hits,
            ));
            match &self.predicted_batch {
                Some(b) => s.push_str(&format!(
                    ",\"predicted_pages\":{:.6},\"predicted_submissions\":{:.6}}}",
                    b.batched_pages, b.submissions
                )),
                None => s.push_str(",\"predicted_pages\":null}"),
            }
        }
        if self.queue_depth > 1 {
            s.push_str(&format!(
                ",\"aio\":{{\"queue_depth\":{},\"submitted\":{},\"completed\":{},\
                 \"in_flight_peak\":{}",
                self.queue_depth,
                self.batch.aio_submitted,
                self.batch.aio_completed,
                self.batch.aio_in_flight_peak,
            ));
            match self
                .predicted_batch
                .filter(|b| *b != BatchPrediction::default())
            {
                Some(b) => s.push_str(&format!(
                    ",\"predicted_rounds\":{:.6}}}",
                    queued_submission_rounds(b.submissions, self.queue_depth as f64)
                )),
                None => s.push_str(",\"predicted_rounds\":null}"),
            }
        }
        s.push_str(",\"phases\":{");
        for (i, row) in self.phases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!(
                "\"{}\":{{\"reads\":{},\"writes\":{},\"wall_ns\":{}}}",
                row.phase.name(),
                row.reads,
                row.writes,
                row.wall_ns
            ));
        }
        s.push_str("}}");
        s
    }

    /// Parse the deterministic fields back out of a [`to_jsonl`] line for
    /// replay comparison: `(strategy, reads, writes, per-phase (reads,
    /// writes) in [`Phase::ALL`] order)`. Wall times and derived floats
    /// are not compared — they vary run to run.
    pub fn parse_replay_line(line: &str) -> Option<ReplayLine> {
        fn field_u64(s: &str, key: &str, from: usize) -> Option<u64> {
            let pat = format!("\"{key}\":");
            let at = s[from..].find(&pat)? + from + pat.len();
            let rest = &s[at..];
            let end = rest.find(|c: char| !c.is_ascii_digit())?;
            rest[..end].parse().ok()
        }
        let strat = {
            let pat = "\"strategy\":\"";
            let at = line.find(pat)? + pat.len();
            let end = line[at..].find('"')? + at;
            line[at..end].to_string()
        };
        let reads = field_u64(line, "reads", 0)?;
        let writes = field_u64(line, "writes", 0)?;
        let phases_at = line.find("\"phases\":")?;
        let mut per_phase = Vec::with_capacity(PHASE_COUNT);
        let mut cursor = phases_at;
        for phase in Phase::ALL {
            let pat = format!("\"{}\":{{", phase.name());
            let at = line[cursor..].find(&pat)? + cursor;
            let r = field_u64(line, "reads", at)?;
            let w = field_u64(line, "writes", at)?;
            per_phase.push((r, w));
            cursor = at;
        }
        Some((strat, reads, writes, per_phase))
    }
}

/// Build the cost model's [`Workload`] from the repo's [`Params`] plus
/// the executor's thresholds.
pub fn workload_from_params(p: &Params, opts: &ExecOptions) -> Workload {
    Workload {
        parent_card: p.parent_card as f64,
        size_unit: p.size_unit as f64,
        use_factor: p.use_factor as f64,
        overlap_factor: p.overlap_factor as f64,
        num_top: p.num_top as f64,
        size_cache: p.size_cache as f64,
        buffer_pages: p.buffer_pages as f64,
        smart_threshold: opts.smart_threshold as f64,
        sort_work_mem: opts.sort_work_mem as f64,
    }
}

/// Measure the built database's page geometry where possible (actual tree
/// heights and leaf counts beat estimates), falling back to
/// [`Geometry::estimate`] for structures the representation lacks.
pub fn measure_geometry(db: &CorDatabase, w: &Workload) -> Geometry {
    let mut g = Geometry::estimate(w);
    if let Ok(parent) = db.parent_tree() {
        g.parent_height = parent.height() as f64;
        g.parent_leaf_pages = parent.leaf_pages() as f64;
    }
    // One ChildRel is the paper's default; average over several if present.
    if let Ok(child) = db.child_tree(complexobj::database::CHILD_REL_BASE) {
        g.child_height = child.height() as f64;
        g.child_leaf_pages = child.leaf_pages() as f64;
    }
    if let Ok((cluster, _isam)) = db.cluster() {
        g.cluster_height = cluster.height() as f64;
        g.cluster_leaf_pages = cluster.leaf_pages() as f64;
    }
    g.sort_record_bytes = (cor_relational::OID_BYTES + 16) as f64;
    g.temp_records_per_page = (PAGE_SIZE / (cor_relational::OID_BYTES + 7)) as f64;
    g
}

impl Engine {
    /// Run `sequence` cold (like [`Engine::run_sequence`]) with per-phase
    /// I/O attribution and wall timing enabled, and report the breakdown.
    /// When `params` is supplied, the analytical cost model prediction
    /// and its relative error are included.
    ///
    /// Attribution is engine-wide once enabled (it lives on the pool's
    /// [`IoStats`](cor_pagestore::IoStats)); the I/O performed is
    /// identical to an unprofiled run.
    pub fn explain(
        &self,
        strategy: Strategy,
        sequence: &[Query],
        params: Option<&Params>,
    ) -> Result<ExplainReport, CorError> {
        let stats = self.pool().stats().clone();
        let profile = stats.enable_profile();
        // Flush ahead of the baselines so build-time dirty pages drain
        // here and the measured window sees exactly what
        // [`Engine::run_sequence`] itself measures (its own cold-start
        // flush then finds nothing dirty).
        self.pool().flush_and_clear()?;
        let before = profile.snapshot();
        // A consistent cut: another stream incrementing between this
        // snapshot's fields would otherwise skew the attribution window.
        let io_before = stats.snapshot_consistent();
        let batch_before = stats.batch_snapshot();
        enable_timing(true);
        take_thread_wall(); // discard anything accrued before the run
        let t0 = std::time::Instant::now();
        let run: RunResult = self.run_sequence(strategy, sequence)?;
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let wall = take_thread_wall();
        enable_timing(false);
        let snap: PhaseSnapshot = profile.snapshot().since(&before);
        let total = stats.snapshot_consistent().since(&io_before);
        let batch = stats.batch_snapshot().since(&batch_before);

        let phases: Vec<PhaseRow> = Phase::ALL
            .iter()
            .map(|&phase| PhaseRow {
                phase,
                reads: snap.reads_of(phase),
                writes: snap.writes_of(phase),
                wall_ns: wall[phase.index()],
            })
            .collect();
        debug_assert_eq!(
            phases.iter().map(|r| r.io()).sum::<u64>(),
            total.total(),
            "phase attribution must be exhaustive"
        );

        let retrieves = run.retrieves;
        let avg_retrieve_io = if retrieves > 0 {
            (run.par_io + run.child_io) as f64 / retrieves as f64
        } else {
            0.0
        };
        let (predicted, predicted_batch) = match params {
            Some(p) => {
                let w = workload_from_params(p, self.options());
                let g = match self.database() {
                    Ok(db) => measure_geometry(db, &w),
                    Err(_) => Geometry::estimate(&w),
                };
                let name = strategy.to_string();
                let io = &self.options().io;
                (
                    predict_by_name(&name, &w, &g),
                    predict_batch(&name, &w, &g, io.batch as f64, io.readahead as f64),
                )
            }
            None => (None, None),
        };
        let rel_error = predicted.and_then(|p| {
            (p.total() > 0.0 && retrieves > 0).then(|| (avg_retrieve_io - p.total()) / p.total())
        });

        Ok(ExplainReport {
            strategy,
            queries: run.queries,
            retrieves,
            values_returned: run.values_returned,
            total,
            phases,
            wall_ns,
            avg_retrieve_io,
            predicted,
            rel_error,
            batch,
            predicted_batch,
            queue_depth: self.pool().queue_depth(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dbgen::generate;
    use crate::seqgen::generate_sequence;

    fn tiny() -> Params {
        Params {
            parent_card: 200,
            num_top: 5,
            sequence_len: 20,
            buffer_pages: 16,
            size_cache: 20,
            pr_update: 0.0,
            ..Params::paper_default()
        }
    }

    #[test]
    fn explain_phase_sums_match_totals_for_every_strategy() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        for strategy in [
            Strategy::Dfs,
            Strategy::Bfs,
            Strategy::BfsNoDup,
            Strategy::DfsCache,
            Strategy::DfsClust,
            Strategy::Smart,
        ] {
            let engine = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .unwrap();
            let report = engine.explain(strategy, &sequence, Some(&p)).unwrap();
            assert_eq!(
                report.phase_io_sum(),
                report.total.total(),
                "{strategy}: per-phase I/O must sum exactly to the total"
            );
            assert!(report.total.total() > 0, "{strategy} did I/O");
            assert!(report.avg_retrieve_io > 0.0, "{strategy}");
            let pred = report.predicted.expect("params given");
            assert!(pred.total().is_finite() && pred.total() > 0.0, "{strategy}");
            assert!(report.rel_error.unwrap().is_finite(), "{strategy}");
        }
    }

    #[test]
    fn explain_attributes_strategy_specific_phases() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);

        let io_of = |rep: &ExplainReport, phase: Phase| rep.phases[phase.index()].io();

        // DFS: pure index navigation, no temp/sort/cluster/cache.
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Dfs)
            .unwrap();
        let dfs = engine.explain(Strategy::Dfs, &sequence, None).unwrap();
        assert!(io_of(&dfs, Phase::HeapFetch) > 0, "DFS probes leaves");
        assert_eq!(io_of(&dfs, Phase::TempBuild), 0);
        assert_eq!(io_of(&dfs, Phase::ClusterScan), 0);
        assert_eq!(io_of(&dfs, Phase::CacheProbe), 0);

        // BFS: builds a temp; join I/O lands in merge_join/sort or in the
        // probe phases depending on the plan — but never cluster/cache.
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Bfs)
            .unwrap();
        let bfs = engine.explain(Strategy::Bfs, &sequence, None).unwrap();
        assert!(io_of(&bfs, Phase::TempBuild) > 0, "BFS materializes temps");
        assert_eq!(io_of(&bfs, Phase::ClusterScan), 0);
        assert_eq!(io_of(&bfs, Phase::CacheProbe), 0);

        // DFSCLUST: everything is the cluster traversal.
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::DfsClust)
            .unwrap();
        let clust = engine.explain(Strategy::DfsClust, &sequence, None).unwrap();
        assert!(io_of(&clust, Phase::ClusterScan) > 0, "DFSCLUST scans");
        assert_eq!(io_of(&clust, Phase::TempBuild), 0);

        // DFSCACHE: cache probes and maintenance appear.
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::DfsCache)
            .unwrap();
        let cache = engine.explain(Strategy::DfsCache, &sequence, None).unwrap();
        assert!(
            io_of(&cache, Phase::CacheProbe) + io_of(&cache, Phase::CacheMaintain) > 0,
            "DFSCACHE touches the cache relation"
        );
    }

    #[test]
    fn jsonl_roundtrips_deterministic_fields() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Dfs)
            .unwrap();
        let report = engine.explain(Strategy::Dfs, &sequence, Some(&p)).unwrap();
        let line = report.to_jsonl();
        assert!(line.starts_with("{\"schema_version\":1"));
        let (strat, reads, writes, per_phase) =
            ExplainReport::parse_replay_line(&line).expect("line parses");
        assert_eq!(strat, "DFS");
        assert_eq!(reads, report.total.reads);
        assert_eq!(writes, report.total.writes);
        assert_eq!(per_phase.len(), PHASE_COUNT);
        for (row, (r, w)) in report.phases.iter().zip(&per_phase) {
            assert_eq!(row.reads, *r, "{}", row.phase.name());
            assert_eq!(row.writes, *w, "{}", row.phase.name());
        }
        let text = report.render();
        assert!(text.contains("avg I/O per retrieve"), "{text}");
    }

    #[test]
    fn batch_section_appears_only_when_batching_is_on() {
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);

        // Default knobs: no batch counters move, no prediction is
        // non-zero, and the capture line carries no batch section at all
        // — the byte-compatibility contract for old captures.
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Bfs)
            .unwrap();
        let plain = engine.explain(Strategy::Bfs, &sequence, Some(&p)).unwrap();
        assert!(!plain.batch_active());
        assert_eq!(plain.batch, BatchIoSnapshot::default());
        assert_eq!(plain.predicted_batch, Some(BatchPrediction::default()));
        let line = plain.to_jsonl();
        assert!(!line.contains("\"batch\""), "{line}");
        assert!(!plain.render().contains("batched I/O"), "no batch row");

        // Knobs on: the counters move, the model predicts a non-zero
        // term, and both renderings carry the section. The I/O knobs do
        // not change what is returned or how much is read.
        let opts = complexobj::ExecOptions {
            io: complexobj::IoOptions {
                batch: 8,
                readahead: 4,
                queue_depth: 1,
            },
            ..Default::default()
        };
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Bfs)
            .unwrap()
            .with_options(opts);
        let batched = engine.explain(Strategy::Bfs, &sequence, Some(&p)).unwrap();
        assert!(batched.batch_active());
        assert!(batched.batch != BatchIoSnapshot::default());
        let pb = batched.predicted_batch.expect("params given");
        assert!(pb.batched_pages > 0.0 && pb.submissions > 0.0, "{pb:?}");
        assert_eq!(batched.values_returned, plain.values_returned);
        let line = batched.to_jsonl();
        assert!(line.contains("\"batch\":{\"batch_reads\":"), "{line}");
        assert!(line.contains("\"predicted_submissions\":"), "{line}");
        // The replay parser still finds every deterministic field.
        let (strat, reads, _, per_phase) =
            ExplainReport::parse_replay_line(&line).expect("parses with batch section");
        assert_eq!(strat, "BFS");
        assert_eq!(reads, batched.total.reads);
        assert_eq!(per_phase.len(), PHASE_COUNT);
        assert!(batched.render().contains("batched I/O"), "batch row shown");
    }

    #[test]
    fn profiled_run_is_io_identical_to_unprofiled() {
        // The acceptance bar: enabling attribution must not change what
        // the engine reads or writes, only label it.
        let p = tiny();
        let generated = generate(&p);
        let sequence = generate_sequence(&p);
        for strategy in [Strategy::Dfs, Strategy::Bfs, Strategy::DfsClust] {
            let plain = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .unwrap();
            let a = plain.run_sequence(strategy, &sequence).unwrap();
            let profiled = Engine::builder()
                .build_workload(&p, &generated, strategy)
                .unwrap();
            let rep = profiled.explain(strategy, &sequence, None).unwrap();
            assert_eq!(rep.total.total(), a.total_io, "{strategy}");
            assert_eq!(rep.values_returned, a.values_returned, "{strategy}");
        }
    }
}
