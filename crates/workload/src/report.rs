//! Plain-text reporting for the figure benches: fixed-width tables, series
//! and the ASCII region maps used to render Figure 4's faces.

/// Render a fixed-width table.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row arity must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:>width$}", cell, width = widths[i]));
        }
        line.push('\n');
        line
    };
    out.push_str(&fmt_row(
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
        &widths,
    ));
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
    }
    out
}

/// Write a table as CSV (same headers/rows as [`format_table`]), for
/// re-plotting figure data outside this repository.
pub fn write_csv(
    path: &std::path::Path,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<()> {
    use std::io::Write;
    let mut out = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(out, "{}", headers.join(","))?;
    for row in rows {
        assert_eq!(row.len(), headers.len(), "row arity must match headers");
        let quoted: Vec<String> = row
            .iter()
            .map(|c| {
                if c.contains(',') || c.contains('"') {
                    format!("\"{}\"", c.replace('"', "\"\""))
                } else {
                    c.clone()
                }
            })
            .collect();
        writeln!(out, "{}", quoted.join(","))?;
    }
    out.flush()
}

/// Format a float with sensible experiment precision.
pub fn fnum(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

/// Render series as an ASCII scatter plot (optionally log-scaled), the
/// terminal cousin of the paper's figures. Each series is `(label_char,
/// points)`; points with non-positive coordinates are skipped under log
/// scales.
pub fn format_ascii_plot(
    title: &str,
    series: &[(char, Vec<(f64, f64)>)],
    log_x: bool,
    log_y: bool,
    width: usize,
    height: usize,
) -> String {
    let tx = |v: f64| if log_x { v.ln() } else { v };
    let ty = |v: f64| if log_y { v.ln() } else { v };
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (_, pts) in series {
        for &(x, y) in pts {
            if (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            xs.push(tx(x));
            ys.push(ty(y));
        }
    }
    if xs.is_empty() {
        return format!("{title}\n(no plottable points)\n");
    }
    let (x0, x1) = xs
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let (y0, y1) = ys
        .iter()
        .fold((f64::MAX, f64::MIN), |(a, b), &v| (a.min(v), b.max(v)));
    let xr = (x1 - x0).max(1e-9);
    let yr = (y1 - y0).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (label, pts) in series {
        for &(x, y) in pts {
            if (log_x && x <= 0.0) || (log_y && y <= 0.0) {
                continue;
            }
            let cx = (((tx(x) - x0) / xr) * (width - 1) as f64).round() as usize;
            let cy = (((ty(y) - y0) / yr) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy;
            // Later series win collisions; mark overlaps with '*'.
            grid[row][cx] = if grid[row][cx] == ' ' || grid[row][cx] == *label {
                *label
            } else {
                '*'
            };
        }
    }

    let mut out = format!("{title}\n");
    let y_hi = if log_y { y1.exp() } else { y1 };
    let y_lo = if log_y { y0.exp() } else { y0 };
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{:>9} ", fnum(y_hi))
        } else if i == height - 1 {
            format!("{:>9} ", fnum(y_lo))
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    let x_lo = if log_x { x0.exp() } else { x0 };
    let x_hi = if log_x { x1.exp() } else { x1 };
    out.push_str(&format!("{}+{}\n", " ".repeat(10), "-".repeat(width)));
    let lo_label = fnum(x_lo);
    let hi_label = format!("{:>w$}", fnum(x_hi), w = width - lo_label.len());
    out.push_str(&format!("{}{lo_label}{hi_label}\n", " ".repeat(11)));
    if log_x || log_y {
        out.push_str(&format!(
            "{}(log {} scale)\n",
            " ".repeat(11),
            match (log_x, log_y) {
                (true, true) => "x/y",
                (true, false) => "x",
                _ => "y",
            }
        ));
    }
    out
}

/// Render an ASCII map of winners over a 2-D grid: one character per cell,
/// rows labelled by `row_labels` (printed top-down), columns by
/// `col_labels`. Used for the Fig. 4 face projections.
pub fn format_region_map(
    title: &str,
    col_axis: &str,
    row_axis: &str,
    col_labels: &[String],
    row_labels: &[String],
    cells: &[Vec<char>],
) -> String {
    assert_eq!(cells.len(), row_labels.len());
    let label_w = row_labels
        .iter()
        .map(|l| l.len())
        .max()
        .unwrap_or(0)
        .max(row_axis.len());
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:>label_w$} | {col_axis} ->\n", row_axis));
    for (r, row) in cells.iter().enumerate() {
        assert_eq!(row.len(), col_labels.len());
        out.push_str(&format!("{:>label_w$} | ", row_labels[r]));
        for &c in row {
            out.push(c);
            out.push(' ');
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "{:>label_w$} +-{}\n",
        "",
        "--".repeat(col_labels.len())
    ));
    out.push_str(&format!(
        "{:>label_w$}   cols: {}\n",
        "",
        col_labels.join(" ")
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = format_table(
            &["NumTop", "DFS", "BFS"],
            &[
                vec!["1".into(), "12.3".into(), "15.0".into()],
                vec!["10000".into(), "50000".into(), "800".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("NumTop"));
        assert!(lines[1].starts_with('-'));
        // All rows have the same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_ragged_rows() {
        format_table(&["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn csv_roundtrip_with_quoting() {
        let dir = std::env::temp_dir().join(format!("cor-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[
                vec!["1".into(), "plain".into()],
                vec!["2".into(), "has,comma".into()],
                vec!["3".into(), "has\"quote".into()],
            ],
        )
        .unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "a,b\n1,plain\n2,\"has,comma\"\n3,\"has\"\"quote\"\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fnum_scales_precision() {
        assert_eq!(fnum(12345.6), "12346");
        assert_eq!(fnum(42.25), "42.2");
        assert_eq!(fnum(1.234), "1.23");
    }

    #[test]
    fn ascii_plot_places_extremes() {
        let series = vec![
            ('D', vec![(1.0, 10.0), (100.0, 1000.0)]),
            ('B', vec![(1.0, 12.0), (100.0, 50.0)]),
        ];
        let plot = format_ascii_plot("fig", &series, true, true, 40, 10);
        assert!(plot.contains("fig"));
        assert!(plot.contains('D'));
        assert!(plot.contains('B'));
        assert!(plot.contains("(log x/y scale)"));
        // Extremes are labelled.
        assert!(plot.contains("1000"));
        assert!(plot.contains("10"));
    }

    #[test]
    fn ascii_plot_handles_empty_and_degenerate() {
        let plot = format_ascii_plot("empty", &[('x', vec![])], true, true, 20, 5);
        assert!(plot.contains("no plottable points"));
        // A single point must not divide by zero.
        let plot = format_ascii_plot("one", &[('x', vec![(5.0, 5.0)])], false, false, 20, 5);
        assert!(plot.contains('x'));
        // Non-positive points are skipped under log scales.
        let plot = format_ascii_plot("neg", &[('x', vec![(-1.0, 3.0)])], true, false, 20, 5);
        assert!(plot.contains("no plottable points"));
    }

    #[test]
    fn region_map_renders() {
        let m = format_region_map(
            "winners",
            "NumTop",
            "ShareFactor",
            &["1".into(), "100".into()],
            &["25".into(), "1".into()],
            &[vec!['C', 'B'], vec!['L', 'L']],
        );
        assert!(m.contains("C B"));
        assert!(m.contains("L L"));
        assert!(m.contains("ShareFactor"));
    }
}
