//! Query-sequence generation (paper Sec. 4).
//!
//! A sequence mixes retrieve queries of the form
//! `retrieve (ParentRel.children.attr) where val1 <= OID <= val2` with
//! in-place updates of ChildRel tuples. Each query is independently an
//! update with probability `Pr(UPDATE)`; retrieves pick `val1` uniformly
//! ("each complex object has an equal likelihood of being accessed") and
//! `attr` uniformly among `ret1..ret3` "for each query separately".

use crate::dbgen::{random_child_oid, rng_for, SeedStream};
use crate::params::Params;
use complexobj::{Query, RetAttr, RetrieveQuery, UpdateQuery};
use rand::rngs::StdRng;
use rand::Rng;

/// Generate a sequence of `params.sequence_len` queries (deterministic in
/// `params.seed`).
pub fn generate_sequence(params: &Params) -> Vec<Query> {
    let mut rng = rng_for(params.seed, SeedStream::Sequence);
    generate_sequence_with(params, &mut rng)
}

/// Generate with an explicit RNG (drivers that vary sequences per run).
pub fn generate_sequence_with(params: &Params, rng: &mut StdRng) -> Vec<Query> {
    (0..params.sequence_len)
        .map(|_| {
            if rng.random::<f64>() < params.pr_update {
                Query::Update(random_update(params, rng))
            } else {
                Query::Retrieve(random_retrieve(params, rng))
            }
        })
        .collect()
}

/// Generate a sequence whose retrieves draw NumTop per query from
/// `num_tops` (uniformly) — the "good query mix" of Sec. 5.3 that SMART is
/// designed for. Updates still occur with `params.pr_update`.
pub fn generate_mixed_sequence(params: &Params, num_tops: &[u64]) -> Vec<Query> {
    assert!(!num_tops.is_empty());
    let mut rng = rng_for(params.seed, SeedStream::Sequence);
    (0..params.sequence_len)
        .map(|_| {
            if rng.random::<f64>() < params.pr_update {
                Query::Update(random_update(params, &mut rng))
            } else {
                let num_top =
                    num_tops[rng.random_range(0..num_tops.len())].clamp(1, params.parent_card);
                let p = Params {
                    num_top,
                    ..params.clone()
                };
                Query::Retrieve(random_retrieve(&p, &mut rng))
            }
        })
        .collect()
}

/// One random retrieve query.
pub fn random_retrieve(params: &Params, rng: &mut StdRng) -> RetrieveQuery {
    let lo = rng.random_range(0..=params.max_lo());
    RetrieveQuery {
        lo,
        hi: lo + params.num_top - 1,
        attr: *RetAttr::ALL
            .get(rng.random_range(0..3usize))
            .expect("three attrs"),
    }
}

/// One random update query ("each update modifies a fixed number of tuples
/// of ChildRel in place").
pub fn random_update(params: &Params, rng: &mut StdRng) -> UpdateQuery {
    let targets = (0..params.update_batch)
        .map(|_| random_child_oid(params, rng))
        .collect();
    UpdateQuery {
        targets,
        new_ret1: rng.random_range(-1000..=1000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pr_update: f64) -> Params {
        Params {
            parent_card: 500,
            num_top: 50,
            pr_update,
            sequence_len: 400,
            size_cache: 20,
            buffer_pages: 16,
            ..Params::paper_default()
        }
    }

    fn retrieve_fraction(qs: &[Query]) -> f64 {
        qs.iter()
            .filter(|q| matches!(q, Query::Retrieve(_)))
            .count() as f64
            / qs.len() as f64
    }

    #[test]
    fn sequence_is_deterministic() {
        let p = tiny(0.3);
        assert_eq!(generate_sequence(&p), generate_sequence(&p));
    }

    #[test]
    fn pr_update_zero_and_one_are_pure() {
        let all_retrieves = generate_sequence(&tiny(0.0));
        assert_eq!(retrieve_fraction(&all_retrieves), 1.0);
        let all_updates = generate_sequence(&tiny(1.0));
        assert_eq!(retrieve_fraction(&all_updates), 0.0);
    }

    #[test]
    fn pr_update_mix_is_roughly_honoured() {
        let qs = generate_sequence(&tiny(0.25));
        let f = retrieve_fraction(&qs);
        assert!((f - 0.75).abs() < 0.08, "retrieve fraction {f}");
    }

    #[test]
    fn retrieves_respect_bounds_and_numtop() {
        let p = tiny(0.0);
        for q in generate_sequence(&p) {
            let Query::Retrieve(r) = q else {
                unreachable!()
            };
            assert!(r.hi < p.parent_card);
            assert_eq!(r.num_top(), p.num_top);
        }
    }

    #[test]
    fn retrieve_attrs_vary() {
        let p = tiny(0.0);
        let mut seen = std::collections::HashSet::new();
        for q in generate_sequence(&p) {
            if let Query::Retrieve(r) = q {
                seen.insert(r.attr);
            }
        }
        assert_eq!(seen.len(), 3, "all three attrs should appear");
    }

    #[test]
    fn updates_have_fixed_batch_size() {
        let p = tiny(1.0);
        for q in generate_sequence(&p) {
            let Query::Update(u) = q else { unreachable!() };
            assert_eq!(u.targets.len(), p.update_batch);
        }
    }

    #[test]
    fn numtop_equal_to_card_selects_everything() {
        let p = Params {
            num_top: 500,
            ..tiny(0.0)
        };
        for q in generate_sequence(&p) {
            let Query::Retrieve(r) = q else {
                unreachable!()
            };
            assert_eq!(r.lo, 0);
            assert_eq!(r.hi, 499);
        }
    }
}
