//! Query-sequence generation (paper Sec. 4).
//!
//! A sequence mixes retrieve queries of the form
//! `retrieve (ParentRel.children.attr) where val1 <= OID <= val2` with
//! in-place updates of ChildRel tuples. Each query is independently an
//! update with probability `Pr(UPDATE)`; retrieves pick `val1` uniformly
//! ("each complex object has an equal likelihood of being accessed") and
//! `attr` uniformly among `ret1..ret3` "for each query separately".

use crate::dbgen::{random_child_oid, rng_for, SeedStream};
use crate::params::Params;
use complexobj::{Query, RetAttr, RetrieveQuery, UpdateQuery};
use rand::rngs::StdRng;
use rand::Rng;

/// Generate a sequence of `params.sequence_len` queries (deterministic in
/// `params.seed`).
pub fn generate_sequence(params: &Params) -> Vec<Query> {
    let mut rng = rng_for(params.seed, SeedStream::Sequence);
    generate_sequence_with(params, &mut rng)
}

/// Generate with an explicit RNG (drivers that vary sequences per run).
pub fn generate_sequence_with(params: &Params, rng: &mut StdRng) -> Vec<Query> {
    (0..params.sequence_len)
        .map(|_| {
            if rng.random::<f64>() < params.pr_update {
                Query::Update(random_update(params, rng))
            } else {
                Query::Retrieve(random_retrieve(params, rng))
            }
        })
        .collect()
}

/// Generate a sequence whose retrieves draw NumTop per query from
/// `num_tops` (uniformly) — the "good query mix" of Sec. 5.3 that SMART is
/// designed for. Updates still occur with `params.pr_update`.
pub fn generate_mixed_sequence(params: &Params, num_tops: &[u64]) -> Vec<Query> {
    assert!(!num_tops.is_empty());
    let mut rng = rng_for(params.seed, SeedStream::Sequence);
    (0..params.sequence_len)
        .map(|_| {
            if rng.random::<f64>() < params.pr_update {
                Query::Update(random_update(params, &mut rng))
            } else {
                let num_top =
                    num_tops[rng.random_range(0..num_tops.len())].clamp(1, params.parent_card);
                let p = Params {
                    num_top,
                    ..params.clone()
                };
                Query::Retrieve(random_retrieve(&p, &mut rng))
            }
        })
        .collect()
}

/// Generate a sequence whose retrieves pick `lo` from a Zipf(`theta`)
/// distribution over `0..=max_lo` instead of uniformly: rank `r` (and thus
/// parent id `r`) is drawn with probability proportional to
/// `1/(r+1)^theta`, so id 0 is the hottest parent, id 1 the next, and so
/// on. Updates still occur with `params.pr_update`. This is the skewed
/// counterpart of [`generate_sequence`] used to exercise the heat-map
/// layer: the generator's hot set is `{0, 1, ..}` by construction, so a
/// heat report's top-K can be checked against it directly.
pub fn generate_zipf_sequence(params: &Params, theta: f64) -> Vec<Query> {
    assert!(theta >= 0.0, "zipf exponent must be non-negative");
    let mut rng = rng_for(params.seed, SeedStream::Sequence);
    // Normalized CDF over ranks 0..=max_lo with weight 1/(r+1)^theta.
    let n = params.max_lo() + 1;
    let mut cdf = Vec::with_capacity(n as usize);
    let mut acc = 0.0f64;
    for r in 0..n {
        acc += 1.0 / ((r + 1) as f64).powf(theta);
        cdf.push(acc);
    }
    let total = acc;
    (0..params.sequence_len)
        .map(|_| {
            if rng.random::<f64>() < params.pr_update {
                Query::Update(random_update(params, &mut rng))
            } else {
                let u = rng.random::<f64>() * total;
                let lo = cdf.partition_point(|&c| c < u) as u64;
                let lo = lo.min(params.max_lo());
                let mut q = random_retrieve(params, &mut rng);
                q.hi = lo + (q.hi - q.lo);
                q.lo = lo;
                Query::Retrieve(q)
            }
        })
        .collect()
}

/// One random retrieve query.
pub fn random_retrieve(params: &Params, rng: &mut StdRng) -> RetrieveQuery {
    let lo = rng.random_range(0..=params.max_lo());
    RetrieveQuery {
        lo,
        hi: lo + params.num_top - 1,
        attr: *RetAttr::ALL
            .get(rng.random_range(0..3usize))
            .expect("three attrs"),
    }
}

/// One random update query ("each update modifies a fixed number of tuples
/// of ChildRel in place").
pub fn random_update(params: &Params, rng: &mut StdRng) -> UpdateQuery {
    let targets = (0..params.update_batch)
        .map(|_| random_child_oid(params, rng))
        .collect();
    UpdateQuery {
        targets,
        new_ret1: rng.random_range(-1000..=1000),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(pr_update: f64) -> Params {
        Params {
            parent_card: 500,
            num_top: 50,
            pr_update,
            sequence_len: 400,
            size_cache: 20,
            buffer_pages: 16,
            ..Params::paper_default()
        }
    }

    fn retrieve_fraction(qs: &[Query]) -> f64 {
        qs.iter()
            .filter(|q| matches!(q, Query::Retrieve(_)))
            .count() as f64
            / qs.len() as f64
    }

    #[test]
    fn sequence_is_deterministic() {
        let p = tiny(0.3);
        assert_eq!(generate_sequence(&p), generate_sequence(&p));
    }

    #[test]
    fn pr_update_zero_and_one_are_pure() {
        let all_retrieves = generate_sequence(&tiny(0.0));
        assert_eq!(retrieve_fraction(&all_retrieves), 1.0);
        let all_updates = generate_sequence(&tiny(1.0));
        assert_eq!(retrieve_fraction(&all_updates), 0.0);
    }

    #[test]
    fn pr_update_mix_is_roughly_honoured() {
        let qs = generate_sequence(&tiny(0.25));
        let f = retrieve_fraction(&qs);
        assert!((f - 0.75).abs() < 0.08, "retrieve fraction {f}");
    }

    #[test]
    fn retrieves_respect_bounds_and_numtop() {
        let p = tiny(0.0);
        for q in generate_sequence(&p) {
            let Query::Retrieve(r) = q else {
                unreachable!()
            };
            assert!(r.hi < p.parent_card);
            assert_eq!(r.num_top(), p.num_top);
        }
    }

    #[test]
    fn retrieve_attrs_vary() {
        let p = tiny(0.0);
        let mut seen = std::collections::HashSet::new();
        for q in generate_sequence(&p) {
            if let Query::Retrieve(r) = q {
                seen.insert(r.attr);
            }
        }
        assert_eq!(seen.len(), 3, "all three attrs should appear");
    }

    #[test]
    fn updates_have_fixed_batch_size() {
        let p = tiny(1.0);
        for q in generate_sequence(&p) {
            let Query::Update(u) = q else { unreachable!() };
            assert_eq!(u.targets.len(), p.update_batch);
        }
    }

    #[test]
    fn zipf_sequence_is_deterministic_and_in_bounds() {
        let p = tiny(0.0);
        let a = generate_zipf_sequence(&p, 1.1);
        assert_eq!(a, generate_zipf_sequence(&p, 1.1));
        for q in &a {
            let Query::Retrieve(r) = q else {
                unreachable!()
            };
            assert!(r.hi < p.parent_card);
            assert_eq!(r.num_top(), p.num_top);
        }
    }

    #[test]
    fn zipf_concentrates_mass_on_the_low_ranks() {
        let p = Params {
            sequence_len: 2000,
            ..tiny(0.0)
        };
        let hot = |qs: &[Query]| {
            qs.iter()
                .filter(|q| matches!(q, Query::Retrieve(r) if r.lo < 10))
                .count() as f64
                / qs.len() as f64
        };
        let skewed = hot(&generate_zipf_sequence(&p, 1.2));
        let uniform = hot(&generate_sequence(&p));
        // 10 of 451 possible lo values: uniform puts ~2% there, a
        // theta=1.2 Zipf well over half.
        assert!(skewed > 0.5, "zipf hot fraction {skewed}");
        assert!(uniform < 0.1, "uniform hot fraction {uniform}");
        assert!(skewed > 5.0 * uniform);
    }

    #[test]
    fn zipf_theta_zero_degenerates_to_uniformish_spread() {
        let p = Params {
            sequence_len: 2000,
            ..tiny(0.0)
        };
        let qs = generate_zipf_sequence(&p, 0.0);
        let distinct: std::collections::HashSet<u64> = qs
            .iter()
            .map(|q| match q {
                Query::Retrieve(r) => r.lo,
                _ => unreachable!(),
            })
            .collect();
        // theta = 0 means equal weights: draws should spread widely.
        assert!(distinct.len() > 300, "only {} distinct lo", distinct.len());
    }

    #[test]
    fn zipf_updates_still_honour_the_mix() {
        let p = Params {
            sequence_len: 2000,
            ..tiny(0.3)
        };
        let qs = generate_zipf_sequence(&p, 1.1);
        let f = retrieve_fraction(&qs);
        assert!((f - 0.7).abs() < 0.08, "retrieve fraction {f}");
    }

    #[test]
    fn numtop_equal_to_card_selects_everything() {
        let p = Params {
            num_top: 500,
            ..tiny(0.0)
        };
        for q in generate_sequence(&p) {
            let Query::Retrieve(r) = q else {
                unreachable!()
            };
            assert_eq!(r.lo, 0);
            assert_eq!(r.hi, 499);
        }
    }
}
