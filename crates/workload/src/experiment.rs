//! Experiment runner: single points, strategy comparisons, and the
//! parallel parameter sweeps behind Figures 3–7.

use crate::dbgen::generate;
use crate::driver::RunResult;
use crate::engine::Engine;
use crate::params::Params;
use crate::seqgen::generate_sequence;
use complexobj::{CorError, ExecOptions, Strategy};

/// Run one `(params, strategy)` point end to end: generate the database,
/// build the [`Engine`] the strategy needs, generate the query sequence
/// and measure it.
pub fn run_point(params: &Params, strategy: Strategy) -> Result<RunResult, CorError> {
    run_point_with(params, strategy, &ExecOptions::default())
}

/// [`run_point`] with explicit execution options.
pub fn run_point_with(
    params: &Params,
    strategy: Strategy,
    opts: &ExecOptions,
) -> Result<RunResult, CorError> {
    let generated = generate(params);
    let engine = Engine::builder()
        .build_workload(params, &generated, strategy)?
        .with_options(*opts);
    let sequence = generate_sequence(params);
    engine.run_sequence(strategy, &sequence)
}

/// Measure several strategies on the *same* generated data and query
/// sequence (each on its own physical database, as the paper did when
/// comparing representations).
pub fn compare_strategies(
    params: &Params,
    strategies: &[Strategy],
) -> Result<Vec<RunResult>, CorError> {
    let generated = generate(params);
    let sequence = generate_sequence(params);
    strategies
        .iter()
        .map(|&s| {
            let engine = Engine::builder().build_workload(params, &generated, s)?;
            engine.run_sequence(s, &sequence)
        })
        .collect()
}

/// The strategy with the lowest average I/O per query at this point.
pub fn best_strategy(
    params: &Params,
    strategies: &[Strategy],
) -> Result<(Strategy, Vec<RunResult>), CorError> {
    let results = compare_strategies(params, strategies)?;
    let best = results
        .iter()
        .min_by(|a, b| {
            a.avg_io_per_query()
                .partial_cmp(&b.avg_io_per_query())
                .expect("I/O averages are finite")
        })
        .expect("at least one strategy")
        .strategy;
    Ok((best, results))
}

/// Map `f` over `inputs` on up to `threads` worker threads, preserving
/// input order in the output. Used by the Fig. 4 grid sweep (~300 points).
pub fn parallel_map<I, O, F>(inputs: Vec<I>, threads: usize, f: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    assert!(threads > 0);
    let n = inputs.len();
    let mut out: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let inputs_ref = &inputs;
    let f_ref = &f;

    // Hand each worker a disjoint set of output slots through a mutex-free
    // index claim; collect results via channels to avoid aliasing `out`.
    let (tx, rx) = std::sync::mpsc::channel::<(usize, O)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..threads.min(n.max(1)) {
            let tx = tx.clone();
            let next = &next;
            scope.spawn(move |_| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f_ref(&inputs_ref[i]);
                tx.send((i, result))
                    .expect("main thread receives until all done");
            });
        }
        drop(tx);
        for (i, v) in rx {
            out[i] = Some(v);
        }
    })
    .expect("worker panicked");
    out.into_iter()
        .map(|v| v.expect("every slot filled"))
        .collect()
}

/// Reasonable worker count for sweeps on this machine.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Params {
        Params {
            parent_card: 240,
            num_top: 12,
            sequence_len: 16,
            size_cache: 24,
            buffer_pages: 16,
            ..Params::paper_default()
        }
    }

    #[test]
    fn run_point_works_for_every_strategy() {
        let p = tiny();
        for s in Strategy::ALL {
            let r = run_point(&p, s).unwrap();
            assert_eq!(r.strategy, s);
            assert!(r.total_io > 0, "{s} should do I/O");
        }
    }

    #[test]
    fn strategies_agree_on_result_count() {
        let p = tiny();
        let results = compare_strategies(
            &p,
            &[
                Strategy::Dfs,
                Strategy::Bfs,
                Strategy::DfsCache,
                Strategy::DfsClust,
                Strategy::Smart,
            ],
        )
        .unwrap();
        let expect = results[0].values_returned;
        for r in &results {
            assert_eq!(
                r.values_returned, expect,
                "{} returned different count",
                r.strategy
            );
        }
    }

    #[test]
    fn best_strategy_returns_minimum() {
        let p = tiny();
        let (best, results) = best_strategy(&p, &[Strategy::Dfs, Strategy::Bfs]).unwrap();
        let min = results
            .iter()
            .map(|r| r.avg_io_per_query())
            .fold(f64::INFINITY, f64::min);
        let best_result = results.iter().find(|r| r.strategy == best).unwrap();
        assert_eq!(best_result.avg_io_per_query(), min);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..50).collect();
        let out = parallel_map(inputs, 8, |&x| x * x);
        assert_eq!(out, (0..50).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_single_thread_and_empty() {
        assert_eq!(
            parallel_map(Vec::<u32>::new(), 4, |&x| x),
            Vec::<u32>::new()
        );
        assert_eq!(parallel_map(vec![1, 2, 3], 1, |&x| x + 1), vec![2, 3, 4]);
    }
}
