//! Cross-crate check: the analytical cost model in `cor_obs::costmodel`
//! against *measured* I/O from real runs, across randomized workload
//! geometry. The exact golden test at the paper's Figure 3 operating
//! point lives next to the model in `cor-obs`; this file checks the
//! model against the living system rather than pinned constants.

use complexobj::Strategy;
use cor_workload::{generate, generate_sequence, Engine, Params};
use proptest::prelude::*;

/// Run DFS at `params` and return (measured, predicted) average I/O per
/// retrieve; the prediction uses geometry measured from the real trees.
fn dfs_point(params: &Params) -> (f64, f64) {
    let generated = generate(params);
    let sequence = generate_sequence(params);
    let engine = Engine::builder()
        .build_workload(params, &generated, Strategy::Dfs)
        .expect("engine");
    let report = engine
        .explain(Strategy::Dfs, &sequence, Some(params))
        .expect("explain");
    let predicted = report.predicted.expect("params were supplied").total();
    (report.avg_retrieve_io, predicted)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 6,
        max_shrink_iters: 4,
    })]

    /// Across randomized fanout and buffer sizes (large enough that the
    /// model's steady-state assumptions apply), the DFS formula tracks
    /// measured average I/O per retrieve. Observed error is +9..+90%
    /// (the model over-predicts most at large fanout x large buffer,
    /// where LRU locality beats its steady-state miss assumption); the
    /// bound below leaves headroom over that so the gate catches sign
    /// flips and order-of-magnitude breaks, not calibration drift.
    #[test]
    fn dfs_prediction_tracks_measured_io(
        parent_card in 800u64..2400,
        use_factor in 3u32..8,
        buffer_pages in 24usize..96,
        num_top in 10u64..40,
    ) {
        let params = Params {
            parent_card,
            use_factor,
            buffer_pages,
            num_top,
            size_cache: 0,
            sequence_len: 40,
            pr_update: 0.0,
            ..Params::paper_default()
        };
        let (measured, predicted) = dfs_point(&params);
        prop_assert!(measured > 0.0 && predicted > 0.0);
        let rel = (predicted - measured) / measured;
        prop_assert!(
            rel.abs() <= 1.5,
            "DFS model off by {:+.1}% at parent_card={parent_card} \
             use_factor={use_factor} buffer_pages={buffer_pages} \
             num_top={num_top} (measured {measured:.2}, predicted {predicted:.2})",
            100.0 * rel
        );
    }
}
