//! Property tests for the engine lifecycle: create → mutate →
//! checkpoint → crash → open must yield an engine whose persistent
//! identity — schemas, OID allocator high-water marks, file roots, and
//! the full encoded catalog — equals a no-crash oracle's, across all
//! four strategy backends.
//!
//! The oracle runs the identical sequence, flushes every frame, and is
//! reopened through the same `EngineBuilder::open_on` door, so both
//! sides perform identical open-time reconciliation (crash-discarded
//! free lists, one-way cache reconcile). Equality of the re-saved
//! catalog blobs is therefore equality of everything `open` persists.

use complexobj::procedural::ProcCaching;
use complexobj::{CacheConfig, ClusterAssignment, Query, Strategy};
use cor_access::Catalog;
use cor_pagestore::MemDisk;
use cor_wal::{FsyncPolicy, MemLogStore, WalConfig};
use cor_workload::{
    generate, generate_matrix, generate_sequence, rng_for, Engine, EngineCatalog, EngineSpec,
    GeneratedDb, Params, SeedStream, ENGINE_BLOB,
};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy used to drive each backend's workload and probes.
const KINDS: [(usize, Strategy); 4] = [
    (0, Strategy::DfsCache), // standard
    (1, Strategy::DfsClust), // clustered
    (2, Strategy::Dfs),      // levels
    (3, Strategy::Dfs),      // proc
];

fn spec_for(kind: usize, p: &Params, generated: &GeneratedDb) -> EngineSpec {
    match kind {
        0 => EngineSpec::Standard(generated.spec.clone()),
        1 => {
            let parents: Vec<(u64, Vec<_>)> = generated
                .spec
                .parents
                .iter()
                .map(|o| (o.key, o.children.clone()))
                .collect();
            let mut rng = rng_for(p.seed, SeedStream::Cluster);
            EngineSpec::Clustered(
                generated.spec.clone(),
                ClusterAssignment::random(&parents, &mut rng),
            )
        }
        2 => EngineSpec::Levels(vec![generated.spec.clone(), generated.spec.clone()]),
        _ => EngineSpec::Procedural(
            generate_matrix(p).proc_spec,
            ProcCaching::OutsideValues(p.size_cache),
        ),
    }
}

struct Rig {
    disk: Arc<MemDisk>,
    store: Arc<MemLogStore>,
    engine: Engine,
}

fn create_rig(spec: &EngineSpec, p: &Params) -> Rig {
    let disk = Arc::new(MemDisk::new());
    let store = Arc::new(MemLogStore::new());
    let engine = Engine::builder()
        .pool_pages(p.buffer_pages)
        .cache(CacheConfig {
            capacity: p.size_cache,
            ..CacheConfig::default()
        })
        .wal_config(WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 32 * 1024,
        })
        .create_on(disk.clone(), store.clone(), spec)
        .expect("create on fresh store");
    Rig {
        disk,
        store,
        engine,
    }
}

fn run_ops(engine: &Engine, sequence: &[Query], strategy: Strategy, ckpt_every: usize) {
    for (i, q) in sequence.iter().enumerate() {
        match q {
            Query::Retrieve(r) => {
                engine.retrieve(strategy, r).expect("retrieve");
            }
            Query::Update(u) => {
                engine.update(u).expect("update");
            }
        }
        if (i + 1) % ckpt_every == 0 {
            engine.checkpoint().expect("checkpoint");
        }
    }
}

/// The persisted identity of an engine: the catalog blob its `open`
/// re-saved, decoded (to skip the CRC header) and re-encoded.
fn persisted_catalog(engine: &Engine) -> EngineCatalog {
    let cat = Catalog::open(Arc::clone(engine.pool())).expect("access catalog");
    let blob = cat.get_blob(ENGINE_BLOB).expect("engine blob");
    EngineCatalog::decode(&blob).expect("valid engine catalog")
}

fn run_case(kind: usize, strategy: Strategy, seed: u64, ops: usize, ckpt_every: usize) {
    let p = Params {
        parent_card: 60,
        num_top: 3,
        sequence_len: ops,
        buffer_pages: 12,
        size_cache: 10,
        pr_update: 0.5,
        seed,
        ..Params::paper_default()
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let spec = spec_for(kind, &p, &generated);

    // Oracle: same ops, every frame flushed, reopened via open_on.
    let oracle = create_rig(&spec, &p);
    run_ops(&oracle.engine, &sequence, strategy, ckpt_every);
    oracle.engine.pool().flush_all().expect("oracle flush");
    drop(oracle.engine);
    let oracle_eng = Engine::builder()
        .open_on(oracle.disk.clone(), oracle.store.clone())
        .expect("oracle reopen");

    // Crashed run: same ops, dirty frames lost, log tail survives
    // (fsync Always), recovered implicitly by open_on.
    let rig = create_rig(&spec, &p);
    run_ops(&rig.engine, &sequence, strategy, ckpt_every);
    drop(rig.engine);
    rig.store.crash();
    let recovered = Engine::builder()
        .open_on(rig.disk.clone(), rig.store.clone())
        .expect("open after crash");

    // Schema, OID counters, file roots: the OID-backend snapshots must
    // match field-for-field (encoded bytes are canonical).
    let a: Vec<_> = recovered
        .levels()
        .iter()
        .map(|db| db.save_state())
        .collect();
    let b: Vec<_> = oracle_eng
        .levels()
        .iter()
        .map(|db| db.save_state())
        .collect();
    assert_eq!(a.len(), b.len(), "level count");
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.parent_schema, y.parent_schema, "parent schema");
        assert_eq!(x.child_schema, y.child_schema, "child schema");
        assert_eq!(x.parent_count, y.parent_count, "parent OID high-water");
        assert_eq!(x.child_counts, y.child_counts, "child OID high-waters");
        let enc = |s: &complexobj::SavedOidDb| {
            let mut e = complexobj::persist::Enc::default();
            s.encode(&mut e);
            e.0
        };
        assert_eq!(enc(x), enc(y), "storage roots / cache directory");
    }

    // Full persisted identity, all backends: the catalog blob each open
    // re-saved must round-trip to identical bytes.
    let ca = persisted_catalog(&recovered);
    let cb = persisted_catalog(&oracle_eng);
    assert_eq!(ca.encode(), cb.encode(), "persisted engine catalog");
    assert_eq!(ca.pool_pages, p.buffer_pages, "catalog geometry");
    assert!(!ca.clean_shutdown, "crash-recovered store is not clean");
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        ..ProptestConfig::default()
    })]

    #[test]
    fn crash_recovery_equals_oracle(
        kind_ix in 0usize..4,
        seed in 1u64..1_000,
        ops in 4usize..20,
        ckpt_every in 1usize..8,
    ) {
        let (kind, strategy) = KINDS[kind_ix];
        run_case(kind, strategy, seed, ops, ckpt_every);
    }
}
