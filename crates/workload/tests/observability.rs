//! End-to-end checks for the observability tentpole: enabling the
//! heat-map, flight-recorder, wait-profiling, and trace-tree layers
//! must leave the paper's I/O accounting byte-identical, a Zipf-skewed
//! driver must surface its generator hot set in the heat report's
//! top-K, and the slow-query hook must capture an explain breakdown
//! (and a linked causal trace) when armed.

use std::sync::Mutex;
use std::time::Duration;

use complexobj::{ExecOptions, Query, RetAttr, RetrieveQuery, Strategy};
use cor_obs::{flight, heat, wait, Phase};
use cor_workload::{
    build_for_strategy, generate, generate_sequence, generate_zipf_sequence, run_sequence, Engine,
    Params,
};

// The heat map and flight recorder are process-global; serialize every
// test that toggles them so parallel test threads don't interleave.
static GLOBALS: Mutex<()> = Mutex::new(());

fn small(num_top: u64) -> Params {
    Params {
        parent_card: 300,
        num_top,
        sequence_len: 200,
        pr_update: 0.1,
        size_cache: 20,
        buffer_pages: 16,
        ..Params::paper_default()
    }
}

#[test]
fn enabling_observability_leaves_io_accounting_byte_identical() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let opts = ExecOptions::default();

    heat::enable(false);
    flight::enable(false);
    let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let base = run_sequence(&db, Strategy::Dfs, &sequence, &opts).unwrap();
    let base_snap = db.pool().stats().snapshot();

    heat::enable(true);
    flight::enable(true);
    heat::global().reset();
    let db2 = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let hot = run_sequence(&db2, Strategy::Dfs, &sequence, &opts).unwrap();
    let hot_snap = db2.pool().stats().snapshot();
    let touches = heat::global().report().touches;
    heat::enable(false);
    flight::enable(false);

    // Instrumentation on must not move a single I/O or result counter.
    assert_eq!(base.total_io, hot.total_io);
    assert_eq!(base.par_io, hot.par_io);
    assert_eq!(base.child_io, hot.child_io);
    assert_eq!(base.update_io, hot.update_io);
    assert_eq!(base.values_returned, hot.values_returned);
    assert_eq!(base_snap, hot_snap);
    // ... while the instrumented run did record heat.
    assert!(touches > 0, "enabled run recorded no heat touches");
}

#[test]
fn zipf_driver_heat_topk_matches_generator_hot_set() {
    let _g = GLOBALS.lock().unwrap();
    // num_top = 1: each retrieve touches exactly parent `lo`, so the
    // heat map's Parent class mirrors the generator's rank distribution.
    let p = Params {
        sequence_len: 600,
        pr_update: 0.0,
        ..small(1)
    };
    let generated = generate(&p);
    let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();

    heat::enable(true);
    heat::global().reset();
    let skewed = generate_zipf_sequence(&p, 1.2);
    run_sequence(&db, Strategy::Dfs, &skewed, &ExecOptions::default()).unwrap();
    let zipf_report = heat::global().report();

    heat::global().reset();
    let uniform = generate_sequence(&p);
    run_sequence(&db, Strategy::Dfs, &uniform, &ExecOptions::default()).unwrap();
    let uniform_report = heat::global().report();
    heat::enable(false);

    let top = zipf_report.top_k(heat::HeatClass::Parent, 5);
    assert_eq!(top.len(), 5);
    // The Zipf generator's hot set is {0, 1, 2, ..} by construction.
    for e in &top {
        assert!(e.id < 10, "hot id {} outside the generator hot set", e.id);
    }
    assert!(top.iter().any(|e| e.id == 0), "rank-0 parent missing");

    let zipf_share = zipf_report.top_share(heat::HeatClass::Parent, 5);
    let uniform_share = uniform_report.top_share(heat::HeatClass::Parent, 5);
    assert!(zipf_share > 0.5, "zipf top-5 share {zipf_share}");
    assert!(uniform_share < 0.2, "uniform top-5 share {uniform_share}");
    assert!(zipf_share > 3.0 * uniform_share);
}

#[test]
fn slow_query_hook_captures_an_explain_report() {
    let _g = GLOBALS.lock().unwrap();
    flight::enable(true);
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap()
        .with_slow_query_threshold(Duration::ZERO);

    let query = RetrieveQuery {
        lo: 0,
        hi: p.num_top - 1,
        attr: RetAttr::ALL[0],
    };
    let out = engine.retrieve(Strategy::Bfs, &query).unwrap();
    let slow = engine.slow_queries();
    let events = flight::snapshot();
    flight::enable(false);

    assert_eq!(slow.len(), 1, "zero threshold must capture the retrieve");
    let entry = &slow[0];
    assert_eq!(entry.query, query);
    assert_eq!(entry.strategy, Strategy::Bfs);
    assert!(!entry.report.phases.is_empty(), "explain breakdown missing");
    assert_eq!(entry.report.retrieves, 1);
    assert!(
        events
            .iter()
            .any(|e| e.kind == flight::FlightKind::SlowQuery),
        "no SlowQuery flight event journaled"
    );
    assert!(!out.values.is_empty());
}

/// Wait profiling and causal tracing ride the same "free when disabled,
/// read-only when enabled" contract as the heat map: turning both on
/// (and tracing every retrieve) must not move a single I/O counter.
#[test]
fn wait_profiling_and_tracing_leave_io_accounting_byte_identical() {
    let _g = GLOBALS.lock().unwrap();
    let p = Params {
        pr_update: 0.0,
        ..small(5)
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);

    let run = |instrumented: bool| {
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Bfs)
            .unwrap();
        let mut values = 0usize;
        let mut trees = 0usize;
        for q in &sequence {
            let Query::Retrieve(r) = q else { continue };
            values += if instrumented {
                let (out, tree) = engine.trace_query(Strategy::Bfs, r).unwrap();
                let tree = tree.expect("no trace was active, so this one collects");
                tree.validate().unwrap();
                trees += 1;
                out.values.len()
            } else {
                engine.retrieve(Strategy::Bfs, r).unwrap().values.len()
            };
        }
        (engine.pool().stats().snapshot(), values, trees)
    };

    wait::enable(false);
    let (base_snap, base_values, _) = run(false);
    wait::enable(true);
    wait::global().reset();
    let (hot_snap, hot_values, trees) = run(true);
    let waits = wait::report().total_waits();
    wait::enable(false);

    assert_eq!(base_snap, hot_snap, "instrumentation moved an I/O counter");
    assert_eq!(base_values, hot_values);
    assert!(trees > 0, "no trace trees collected");
    assert!(
        waits > 0,
        "enabled run recorded no waits (shard locks alone should)"
    );
}

/// `cor_wait_*` families appear in both exporters exactly when wait
/// profiling is on — the disabled report stays byte-compatible with
/// pre-wait-profiling consumers.
#[test]
fn wait_families_exported_only_when_enabled() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let query = RetrieveQuery {
        lo: 0,
        hi: p.num_top - 1,
        attr: RetAttr::ALL[0],
    };

    let report_with = |on: bool| {
        wait::enable(on);
        if on {
            wait::global().reset();
        }
        let engine = Engine::builder()
            .metrics(true)
            .build_workload(&p, &generated, Strategy::Dfs)
            .unwrap();
        engine.retrieve(Strategy::Dfs, &query).unwrap();
        let report = engine.metrics().expect("metrics are on");
        wait::enable(false);
        report
    };

    let off = report_with(false);
    for family in ["cor_wait_count_total", "cor_wait_ns_total", "cor_wait_ns"] {
        assert!(
            off.snapshot.family(family).is_none(),
            "{family} exported while wait profiling is off"
        );
        assert!(!off.to_prometheus().contains(family));
        assert!(!off.to_json().contains(family));
    }

    let on = report_with(true);
    on.validate().expect("report with wait families validates");
    for family in ["cor_wait_count_total", "cor_wait_ns_total", "cor_wait_ns"] {
        assert!(
            on.snapshot.family(family).is_some(),
            "{family} missing while wait profiling is on"
        );
        assert!(
            on.to_prometheus().contains(family),
            "{family} not in Prometheus text"
        );
        assert!(on.to_json().contains(family), "{family} not in JSON");
    }
    let shard_lock = on
        .snapshot
        .family("cor_wait_count_total")
        .and_then(|f| {
            f.samples.iter().find(|s| {
                s.labels
                    .iter()
                    .any(|(k, v)| k == "class" && v == "shard_lock")
            })
        })
        .map(|s| match s.value {
            cor_obs::MetricValue::Counter(c) => c,
            _ => 0,
        })
        .unwrap_or(0);
    assert!(shard_lock > 0, "retrieve took no timed shard locks");
}

/// Engine-level exactness: a traced query's per-phase node sums equal
/// the pool's `PhaseProfile` deltas.
#[test]
fn traced_query_matches_profile_ledger() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap();
    let profile = engine.pool().stats().enable_profile();
    let query = RetrieveQuery {
        lo: 0,
        hi: p.num_top - 1,
        attr: RetAttr::ALL[0],
    };

    let before = profile.snapshot();
    let (out, tree) = engine.trace_query(Strategy::Bfs, &query).unwrap();
    let delta = profile.snapshot().since(&before);

    let tree = tree.expect("trace collects");
    tree.validate().unwrap();
    assert!(!out.values.is_empty());
    assert!(tree.nodes.len() > 1, "BFS retrieve produced a trivial tree");
    let (reads, writes) = (tree.reads_by_phase(), tree.writes_by_phase());
    for phase in Phase::ALL {
        assert_eq!(
            reads[phase.index()],
            delta.reads_of(phase),
            "{}",
            phase.name()
        );
        assert_eq!(
            writes[phase.index()],
            delta.writes_of(phase),
            "{}",
            phase.name()
        );
    }
}

/// An armed slow-query hook captures a causal trace alongside the
/// explain breakdown and journals a `TraceLink` flight event pointing
/// at it — the path from "that query was slow" to its tree.
#[test]
fn slow_capture_carries_a_linked_trace() {
    let _g = GLOBALS.lock().unwrap();
    flight::enable(true);
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap()
        .with_slow_query_threshold(Duration::ZERO);
    let query = RetrieveQuery {
        lo: 0,
        hi: p.num_top - 1,
        attr: RetAttr::ALL[0],
    };
    engine.retrieve(Strategy::Bfs, &query).unwrap();
    let events = flight::snapshot();
    flight::enable(false);

    let slow = engine.slow_queries();
    assert_eq!(slow.len(), 1);
    let linked = slow[0]
        .trace
        .as_ref()
        .expect("slow capture carries a trace");
    linked.validate().unwrap();
    assert!(linked.total_ns > 0);
    assert!(
        events
            .iter()
            .any(|e| e.kind == flight::FlightKind::TraceLink && e.a == linked.id),
        "no TraceLink flight event for trace {}",
        linked.id
    );
}

#[test]
fn unarmed_engine_records_no_slow_queries() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap();
    let sequence = generate_sequence(&p);
    for q in &sequence {
        if let Query::Retrieve(r) = q {
            engine.retrieve(Strategy::Bfs, r).unwrap();
        }
    }
    assert!(engine.slow_queries().is_empty());
}
