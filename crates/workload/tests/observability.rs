//! End-to-end checks for the observability tentpole: enabling the
//! heat-map and flight-recorder layers must leave the paper's I/O
//! accounting byte-identical, a Zipf-skewed driver must surface its
//! generator hot set in the heat report's top-K, and the slow-query
//! hook must capture an explain breakdown when armed.

use std::sync::Mutex;
use std::time::Duration;

use complexobj::{ExecOptions, Query, RetAttr, RetrieveQuery, Strategy};
use cor_obs::{flight, heat};
use cor_workload::{
    build_for_strategy, generate, generate_sequence, generate_zipf_sequence, run_sequence, Engine,
    Params,
};

// The heat map and flight recorder are process-global; serialize every
// test that toggles them so parallel test threads don't interleave.
static GLOBALS: Mutex<()> = Mutex::new(());

fn small(num_top: u64) -> Params {
    Params {
        parent_card: 300,
        num_top,
        sequence_len: 200,
        pr_update: 0.1,
        size_cache: 20,
        buffer_pages: 16,
        ..Params::paper_default()
    }
}

#[test]
fn enabling_observability_leaves_io_accounting_byte_identical() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);
    let opts = ExecOptions::default();

    heat::enable(false);
    flight::enable(false);
    let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let base = run_sequence(&db, Strategy::Dfs, &sequence, &opts).unwrap();
    let base_snap = db.pool().stats().snapshot();

    heat::enable(true);
    flight::enable(true);
    heat::global().reset();
    let db2 = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();
    let hot = run_sequence(&db2, Strategy::Dfs, &sequence, &opts).unwrap();
    let hot_snap = db2.pool().stats().snapshot();
    let touches = heat::global().report().touches;
    heat::enable(false);
    flight::enable(false);

    // Instrumentation on must not move a single I/O or result counter.
    assert_eq!(base.total_io, hot.total_io);
    assert_eq!(base.par_io, hot.par_io);
    assert_eq!(base.child_io, hot.child_io);
    assert_eq!(base.update_io, hot.update_io);
    assert_eq!(base.values_returned, hot.values_returned);
    assert_eq!(base_snap, hot_snap);
    // ... while the instrumented run did record heat.
    assert!(touches > 0, "enabled run recorded no heat touches");
}

#[test]
fn zipf_driver_heat_topk_matches_generator_hot_set() {
    let _g = GLOBALS.lock().unwrap();
    // num_top = 1: each retrieve touches exactly parent `lo`, so the
    // heat map's Parent class mirrors the generator's rank distribution.
    let p = Params {
        sequence_len: 600,
        pr_update: 0.0,
        ..small(1)
    };
    let generated = generate(&p);
    let db = build_for_strategy(&p, &generated, Strategy::Dfs).unwrap();

    heat::enable(true);
    heat::global().reset();
    let skewed = generate_zipf_sequence(&p, 1.2);
    run_sequence(&db, Strategy::Dfs, &skewed, &ExecOptions::default()).unwrap();
    let zipf_report = heat::global().report();

    heat::global().reset();
    let uniform = generate_sequence(&p);
    run_sequence(&db, Strategy::Dfs, &uniform, &ExecOptions::default()).unwrap();
    let uniform_report = heat::global().report();
    heat::enable(false);

    let top = zipf_report.top_k(heat::HeatClass::Parent, 5);
    assert_eq!(top.len(), 5);
    // The Zipf generator's hot set is {0, 1, 2, ..} by construction.
    for e in &top {
        assert!(e.id < 10, "hot id {} outside the generator hot set", e.id);
    }
    assert!(top.iter().any(|e| e.id == 0), "rank-0 parent missing");

    let zipf_share = zipf_report.top_share(heat::HeatClass::Parent, 5);
    let uniform_share = uniform_report.top_share(heat::HeatClass::Parent, 5);
    assert!(zipf_share > 0.5, "zipf top-5 share {zipf_share}");
    assert!(uniform_share < 0.2, "uniform top-5 share {uniform_share}");
    assert!(zipf_share > 3.0 * uniform_share);
}

#[test]
fn slow_query_hook_captures_an_explain_report() {
    let _g = GLOBALS.lock().unwrap();
    flight::enable(true);
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap()
        .with_slow_query_threshold(Duration::ZERO);

    let query = RetrieveQuery {
        lo: 0,
        hi: p.num_top - 1,
        attr: RetAttr::ALL[0],
    };
    let out = engine.retrieve(Strategy::Bfs, &query).unwrap();
    let slow = engine.slow_queries();
    let events = flight::snapshot();
    flight::enable(false);

    assert_eq!(slow.len(), 1, "zero threshold must capture the retrieve");
    let entry = &slow[0];
    assert_eq!(entry.query, query);
    assert_eq!(entry.strategy, Strategy::Bfs);
    assert!(!entry.report.phases.is_empty(), "explain breakdown missing");
    assert_eq!(entry.report.retrieves, 1);
    assert!(
        events
            .iter()
            .any(|e| e.kind == flight::FlightKind::SlowQuery),
        "no SlowQuery flight event journaled"
    );
    assert!(!out.values.is_empty());
}

#[test]
fn unarmed_engine_records_no_slow_queries() {
    let _g = GLOBALS.lock().unwrap();
    let p = small(5);
    let generated = generate(&p);
    let engine = Engine::builder()
        .build_workload(&p, &generated, Strategy::Bfs)
        .unwrap();
    let sequence = generate_sequence(&p);
    for q in &sequence {
        if let Query::Retrieve(r) = q {
            engine.retrieve(Strategy::Bfs, r).unwrap();
        }
    }
    assert!(engine.slow_queries().is_empty());
}
