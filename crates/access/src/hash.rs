//! Static hash files.
//!
//! The paper's `Cache` relation "is maintained as a hash relation, hashed
//! on hashkey". [`HashFile`] is a static-hashing file: a fixed directory of
//! buckets, each bucket a chain of slotted pages. Keys are variable-length
//! byte strings; a probe reads the bucket chain until it finds the key.
//!
//! Records are stored as `[klen: u16][key][value]` in slotted pages, so the
//! existing page machinery handles deletion and space reuse (the cache
//! deletes units on invalidation and eviction).

use crate::AccessError;
use cor_pagestore::{BufferPool, PageId, SlotId, NO_PAGE};
use std::sync::Arc;

/// FNV-1a 64-bit — a deterministic hash so experiment runs are repeatable
/// across processes (std's `RandomState` is seeded per process).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Structural metadata of a hash file, sufficient to reattach to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashMeta {
    /// First primary-bucket page (buckets are contiguous).
    pub first_bucket: PageId,
    /// Number of primary buckets.
    pub num_buckets: u32,
    /// Stored record count.
    pub len: u64,
}

/// A static-hashing file of key → value records.
///
/// ```
/// use cor_access::HashFile;
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let cache = HashFile::create(pool, 4).unwrap();
/// cache.put(b"hashkey", b"cached unit").unwrap();
/// assert_eq!(cache.get(b"hashkey").unwrap().unwrap(), b"cached unit");
/// assert!(cache.delete(b"hashkey").unwrap());
/// ```
pub struct HashFile {
    pool: Arc<BufferPool>,
    buckets: Vec<PageId>,
    len: crate::sync_cell::SyncCell<u64>,
}

fn encode_record(key: &[u8], value: &[u8]) -> Vec<u8> {
    let mut rec = Vec::with_capacity(2 + key.len() + value.len());
    rec.extend_from_slice(&(key.len() as u16).to_le_bytes());
    rec.extend_from_slice(key);
    rec.extend_from_slice(value);
    rec
}

fn record_key(rec: &[u8]) -> &[u8] {
    let klen = u16::from_le_bytes([rec[0], rec[1]]) as usize;
    &rec[2..2 + klen]
}

fn record_value(rec: &[u8]) -> &[u8] {
    let klen = u16::from_le_bytes([rec[0], rec[1]]) as usize;
    &rec[2 + klen..]
}

impl HashFile {
    /// Create a hash file with `num_buckets` primary buckets (one page
    /// each, allocated eagerly as a static hash file would be).
    pub fn create(pool: Arc<BufferPool>, num_buckets: usize) -> Result<Self, AccessError> {
        assert!(num_buckets > 0, "hash file needs at least one bucket");
        let mut buckets = Vec::with_capacity(num_buckets);
        for _ in 0..num_buckets {
            let pid = pool.allocate_page()?;
            pool.write(pid, |mut p| p.init())?;
            buckets.push(pid);
        }
        Ok(HashFile {
            pool,
            buckets,
            len: crate::sync_cell::SyncCell::new(0),
        })
    }

    /// The buffer pool this file lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Snapshot of the file's metadata for persisting in a catalog.
    /// Primary bucket pages are allocated contiguously at creation, so
    /// `(first bucket, count)` reconstructs the directory.
    pub fn metadata(&self) -> HashMeta {
        debug_assert!(
            self.buckets.windows(2).all(|w| w[1] == w[0] + 1),
            "bucket pages are contiguous"
        );
        HashMeta {
            first_bucket: self.buckets[0],
            num_buckets: self.buckets.len() as u32,
            len: self.len.get(),
        }
    }

    /// Reattach to a hash file previously persisted via
    /// [`Self::metadata`].
    pub fn from_metadata(pool: Arc<BufferPool>, meta: HashMeta) -> Self {
        HashFile {
            pool,
            buckets: (meta.first_bucket..meta.first_bucket + meta.num_buckets).collect(),
            len: crate::sync_cell::SyncCell::new(meta.len),
        }
    }

    /// Number of stored records.
    pub fn len(&self) -> u64 {
        self.len.get()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of primary buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_of(&self, key: &[u8]) -> PageId {
        self.buckets[(fnv1a64(key) % self.buckets.len() as u64) as usize]
    }

    /// Walk the bucket chain of `key`, returning the location of its record.
    fn find(&self, key: &[u8]) -> Result<Option<(PageId, SlotId)>, AccessError> {
        let mut page = self.bucket_of(key);
        loop {
            let (hit, next) = self.pool.read(page, |p| {
                let hit = p
                    .records()
                    .find(|(_, rec)| record_key(rec) == key)
                    .map(|(slot, _)| slot);
                (hit, p.next())
            })?;
            if let Some(slot) = hit {
                return Ok(Some((page, slot)));
            }
            if next == NO_PAGE {
                return Ok(None);
            }
            page = next;
        }
    }

    /// Fetch the value stored under `key`.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, AccessError> {
        match self.find(key)? {
            Some((page, slot)) => {
                let v = self.pool.read(page, |p| {
                    p.record(slot).map(|rec| record_value(rec).to_vec())
                })?;
                Ok(v)
            }
            None => Ok(None),
        }
    }

    /// Insert or replace `key → value`. Returns `true` if the key was new.
    pub fn put(&self, key: &[u8], value: &[u8]) -> Result<bool, AccessError> {
        let rec = encode_record(key, value);
        if rec.len() > cor_pagestore::MAX_RECORD {
            return Err(AccessError::EntryTooLarge);
        }
        if let Some((page, slot)) = self.find(key)? {
            // Replace. Try in place first; on overflow delete + reinsert.
            let in_place = self
                .pool
                .write(page, |mut p| p.update(slot, &rec).is_ok())?;
            if in_place {
                return Ok(false);
            }
            self.pool.write(page, |mut p| p.delete(slot))?.ok();
            self.insert_new(&rec)?;
            return Ok(false);
        }
        self.insert_new(&rec)?;
        self.len.set(self.len.get() + 1);
        Ok(true)
    }

    /// Place a record in the first chain page with room, extending the
    /// chain if every page is full.
    fn insert_new(&self, rec: &[u8]) -> Result<(), AccessError> {
        let mut page = self.bucket_of(record_key(rec));
        loop {
            let (inserted, next) = self
                .pool
                .write(page, |mut p| (p.insert(rec).is_ok(), p.view().next()))?;
            if inserted {
                return Ok(());
            }
            if next != NO_PAGE {
                page = next;
                continue;
            }
            let fresh = self.pool.allocate_page()?;
            self.pool.write(fresh, |mut p| p.init())?;
            self.pool.write(page, |mut p| p.set_next(fresh))?;
            page = fresh;
        }
    }

    /// Remove `key`. Returns whether it was present.
    pub fn delete(&self, key: &[u8]) -> Result<bool, AccessError> {
        match self.find(key)? {
            Some((page, slot)) => {
                self.pool.write(page, |mut p| p.delete(slot))?.ok();
                self.len.set(self.len.get() - 1);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Does `key` exist?
    pub fn contains(&self, key: &[u8]) -> Result<bool, AccessError> {
        Ok(self.find(key)?.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::HashMap;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    #[test]
    fn fnv_is_deterministic_and_spreads() {
        assert_eq!(fnv1a64(b"abc"), fnv1a64(b"abc"));
        assert_ne!(fnv1a64(b"abc"), fnv1a64(b"abd"));
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let h = HashFile::create(pool(8), 4).unwrap();
        assert!(h.put(b"k1", b"v1").unwrap());
        assert!(h.put(b"k2", b"v2").unwrap());
        assert_eq!(h.get(b"k1").unwrap().unwrap(), b"v1");
        assert_eq!(h.get(b"k2").unwrap().unwrap(), b"v2");
        assert_eq!(h.get(b"k3").unwrap(), None);
        assert_eq!(h.len(), 2);
        assert!(h.delete(b"k1").unwrap());
        assert_eq!(h.get(b"k1").unwrap(), None);
        assert!(!h.delete(b"k1").unwrap());
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn put_replaces_existing() {
        let h = HashFile::create(pool(8), 2).unwrap();
        assert!(h.put(b"k", b"small").unwrap());
        assert!(!h.put(b"k", b"bigger value entirely").unwrap());
        assert_eq!(h.get(b"k").unwrap().unwrap(), b"bigger value entirely");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn chains_grow_under_load_and_model_agrees() {
        let h = HashFile::create(pool(16), 4).unwrap();
        let mut model = HashMap::new();
        for i in 0..500u32 {
            let k = format!("key-{i}");
            let v = vec![(i % 256) as u8; 40 + (i % 30) as usize];
            h.put(k.as_bytes(), &v).unwrap();
            model.insert(k, v);
        }
        assert_eq!(h.len(), model.len() as u64);
        for (k, v) in &model {
            assert_eq!(h.get(k.as_bytes()).unwrap().unwrap(), *v, "key {k}");
        }
        // Delete half, verify the rest survives.
        for i in (0..500u32).step_by(2) {
            let k = format!("key-{i}");
            assert!(h.delete(k.as_bytes()).unwrap());
            model.remove(&k);
        }
        for (k, v) in &model {
            assert_eq!(h.get(k.as_bytes()).unwrap().unwrap(), *v);
        }
        assert_eq!(h.len(), model.len() as u64);
    }

    #[test]
    fn oversized_record_rejected() {
        let h = HashFile::create(pool(8), 2).unwrap();
        let huge = vec![0u8; cor_pagestore::MAX_RECORD];
        assert!(matches!(
            h.put(b"k", &huge),
            Err(AccessError::EntryTooLarge)
        ));
    }

    #[test]
    fn empty_key_works() {
        let h = HashFile::create(pool(8), 2).unwrap();
        h.put(b"", b"nothing").unwrap();
        assert_eq!(h.get(b"").unwrap().unwrap(), b"nothing");
    }

    #[test]
    fn resident_probe_is_free_cold_probe_reads_chain() {
        let p = pool(4);
        let h = HashFile::create(Arc::clone(&p), 1).unwrap();
        h.put(b"k", b"v").unwrap();
        p.flush_and_clear().unwrap();
        let before = p.stats().reads();
        h.get(b"k").unwrap().unwrap();
        assert_eq!(
            p.stats().reads() - before,
            1,
            "single-page bucket: one read"
        );
        let before = p.stats().reads();
        h.get(b"k").unwrap().unwrap();
        assert_eq!(p.stats().reads() - before, 0, "now resident: free");
    }
}
