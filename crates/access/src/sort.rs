//! External merge sort over byte records.
//!
//! The competitive BFS strategy of Sec. 3.1 sorts its temporary relation of
//! OIDs so a merge join against the OID-ordered ChildRel B-tree is
//! possible. Every sort key in this workspace is a byte-comparable prefix
//! (OIDs and cluster numbers encode big-endian), so records are ordered by
//! plain byte-wise comparison.
//!
//! Run generation respects a work-memory budget; runs spill to heap files
//! whose page I/O is accounted by the shared buffer pool, so the cost of
//! "forming a temporary" that the paper observes at low NumTop shows up
//! naturally. An input that fits in work memory sorts without any I/O.

use crate::heap::{HeapFile, HeapScan};
use crate::AccessError;
use cor_obs::{Phase, PhaseGuard};
use cor_pagestore::BufferPool;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Default sort work memory: the paper's 100-page buffer would realistically
/// give the sorter a fraction; 32 pages of 2 KB.
pub const DEFAULT_WORK_MEM: usize = 32 * cor_pagestore::PAGE_SIZE;

/// Sort `input` records byte-wise, spilling runs through `pool` when the
/// work-memory budget is exceeded. With `dedup`, exact duplicate records
/// are removed (the BFSNODUP strategy).
///
/// ```
/// use cor_access::{external_sort, DEFAULT_WORK_MEM};
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let records = vec![b"b".to_vec(), b"a".to_vec(), b"a".to_vec()];
/// let sorted: Vec<_> = external_sort(&pool, records.into_iter(), DEFAULT_WORK_MEM, true)
///     .unwrap()
///     .collect();
/// assert_eq!(sorted, vec![b"a".to_vec(), b"b".to_vec()]); // sorted + deduped
/// ```
pub fn external_sort(
    pool: &Arc<BufferPool>,
    input: impl Iterator<Item = Vec<u8>>,
    work_mem: usize,
    dedup: bool,
) -> Result<SortedStream, AccessError> {
    let mut runs: Vec<HeapFile> = Vec::new();
    let mut current: Vec<Vec<u8>> = Vec::new();
    let mut current_bytes = 0usize;

    let flush = |current: &mut Vec<Vec<u8>>, runs: &mut Vec<HeapFile>| -> Result<(), AccessError> {
        // Spill I/O belongs to the sort even when the sort runs inside a
        // broader bracket (e.g. a merge join consuming this stream).
        let _phase = PhaseGuard::enter(Phase::Sort);
        current.sort_unstable();
        if dedup {
            current.dedup();
        }
        let run = HeapFile::create(Arc::clone(pool))?;
        for rec in current.iter() {
            run.append(rec)?;
        }
        runs.push(run);
        current.clear();
        Ok(())
    };

    for rec in input {
        current_bytes += rec.len() + 16;
        current.push(rec);
        if current_bytes > work_mem {
            flush(&mut current, &mut runs)?;
            current_bytes = 0;
        }
    }

    if runs.is_empty() {
        // Everything fit in memory: no spill, no I/O.
        current.sort_unstable();
        if dedup {
            current.dedup();
        }
        return Ok(SortedStream::Memory(current.into_iter()));
    }
    if !current.is_empty() {
        flush(&mut current, &mut runs)?;
    }

    let mut scans: Vec<HeapScan> = runs.iter().map(|r| r.scan()).collect();
    let mut heap = BinaryHeap::new();
    {
        let _phase = PhaseGuard::enter(Phase::Sort);
        for (i, scan) in scans.iter_mut().enumerate() {
            if let Some((_, rec)) = scan.next() {
                heap.push(Reverse((rec, i)));
            }
        }
    }
    Ok(SortedStream::Merge(MergeRuns {
        _runs: runs,
        scans,
        heap,
        dedup,
        last: None,
    }))
}

/// The output of [`external_sort`]: either a fully in-memory sorted vector
/// or a streaming k-way merge over spilled runs.
pub enum SortedStream {
    /// Input fit in work memory.
    Memory(std::vec::IntoIter<Vec<u8>>),
    /// Streaming merge over spilled runs.
    Merge(MergeRuns),
}

impl Iterator for SortedStream {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Self::Item> {
        match self {
            SortedStream::Memory(it) => it.next(),
            SortedStream::Merge(m) => m.next(),
        }
    }
}

/// K-way merge over sorted spill runs.
pub struct MergeRuns {
    /// Keeps the run files alive for the duration of the merge.
    _runs: Vec<HeapFile>,
    scans: Vec<HeapScan>,
    heap: BinaryHeap<Reverse<(Vec<u8>, usize)>>,
    dedup: bool,
    last: Option<Vec<u8>>,
}

impl Iterator for MergeRuns {
    type Item = Vec<u8>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let Reverse((rec, i)) = self.heap.pop()?;
            if let Some((_, next)) = {
                // Run read-back is sort I/O regardless of who consumes the
                // merged stream.
                let _phase = PhaseGuard::enter(Phase::Sort);
                self.scans[i].next()
            } {
                self.heap.push(Reverse((next, i)));
            }
            if self.dedup {
                if self.last.as_deref() == Some(rec.as_slice()) {
                    continue;
                }
                self.last = Some(rec.clone());
            }
            return Some(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    fn scrambled(n: u64) -> Vec<Vec<u8>> {
        let mut k = 12345u64;
        (0..n)
            .map(|_| {
                k = k
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (k % (n * 2)).to_be_bytes().to_vec()
            })
            .collect()
    }

    #[test]
    fn in_memory_sort_no_io() {
        let p = pool(8);
        let input = scrambled(100);
        let before = p.stats().snapshot();
        let sorted: Vec<_> = external_sort(&p, input.clone().into_iter(), DEFAULT_WORK_MEM, false)
            .unwrap()
            .collect();
        assert_eq!(p.stats().snapshot().since(&before).total(), 0);
        let mut expect = input;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn spilled_sort_is_correct() {
        let p = pool(8);
        let input = scrambled(5000);
        // Tiny work memory: force many runs.
        let sorted: Vec<_> = external_sort(&p, input.clone().into_iter(), 4096, false)
            .unwrap()
            .collect();
        assert!(
            p.stats().writes() > 0 || p.stats().allocations() > 0,
            "must have spilled"
        );
        let mut expect = input;
        expect.sort();
        assert_eq!(sorted, expect);
    }

    #[test]
    fn dedup_in_memory_and_spilled() {
        let p = pool(8);
        let mut input = scrambled(1000);
        input.extend(scrambled(1000)); // guaranteed duplicates
        let mut expect = input.clone();
        expect.sort();
        expect.dedup();

        let mem: Vec<_> = external_sort(&p, input.clone().into_iter(), usize::MAX, true)
            .unwrap()
            .collect();
        assert_eq!(mem, expect);

        let spilled: Vec<_> = external_sort(&p, input.into_iter(), 2048, true)
            .unwrap()
            .collect();
        assert_eq!(spilled, expect);
    }

    #[test]
    fn empty_input() {
        let p = pool(4);
        let sorted: Vec<Vec<u8>> = external_sort(&p, std::iter::empty(), DEFAULT_WORK_MEM, false)
            .unwrap()
            .collect();
        assert!(sorted.is_empty());
    }

    #[test]
    fn variable_length_records_sort_bytewise() {
        let p = pool(4);
        let input: Vec<Vec<u8>> =
            vec![b"b".to_vec(), b"ab".to_vec(), b"a".to_vec(), b"aa".to_vec()];
        let sorted: Vec<_> = external_sort(&p, input.into_iter(), usize::MAX, false)
            .unwrap()
            .collect();
        assert_eq!(
            sorted,
            vec![b"a".to_vec(), b"aa".to_vec(), b"ab".to_vec(), b"b".to_vec()]
        );
    }
}
