//! Static ISAM indexes.
//!
//! The paper keeps a secondary index on `ClusterRel.OID` to randomly access
//! clustered objects by OID: "In our environment there are no insertions or
//! deletions, and hence the index is static. Consequently, it is maintained
//! as an isam structure."
//!
//! An ISAM structure is a fully-packed, never-restructured search tree —
//! exactly what a bulk-loaded B-tree is before any insert. [`IsamIndex`]
//! is therefore a read-only facade over a 100%-fill bulk-loaded
//! [`BTreeFile`]: identical page layout and identical I/O behaviour
//! (one page per level per cold probe), with mutation statically removed.

use crate::btree::BTreeFile;
use crate::AccessError;
use cor_pagestore::BufferPool;
use std::sync::Arc;

/// A read-only index from fixed-length keys to byte payloads.
pub struct IsamIndex {
    tree: BTreeFile,
}

impl IsamIndex {
    /// Build the index from strictly ascending `(key, payload)` pairs.
    /// ISAM files are packed: fill factor 1.0.
    pub fn build(
        pool: Arc<BufferPool>,
        key_len: usize,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
    ) -> Result<Self, AccessError> {
        let tree = BTreeFile::bulk_load(pool, key_len, entries, 1.0)?;
        Ok(IsamIndex { tree })
    }

    /// Probe the index.
    pub fn lookup(&self, key: &[u8]) -> Result<Option<Vec<u8>>, AccessError> {
        self.tree.get(key)
    }

    /// Number of indexed keys.
    pub fn len(&self) -> u64 {
        self.tree.len()
    }

    /// True if the index is empty.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Index height in pages (cold probe cost).
    pub fn height(&self) -> u32 {
        self.tree.height()
    }

    /// Scan all `(key, payload)` pairs in key order.
    pub fn scan_all(&self) -> impl Iterator<Item = (Vec<u8>, Vec<u8>)> {
        self.tree.scan_all()
    }

    /// Snapshot of the index's metadata for catalog persistence.
    pub fn metadata(&self) -> crate::btree::BTreeMeta {
        self.tree.metadata()
    }

    /// Reattach to a persisted index.
    pub fn from_metadata(
        pool: Arc<BufferPool>,
        meta: crate::btree::BTreeMeta,
    ) -> Result<Self, AccessError> {
        Ok(IsamIndex {
            tree: BTreeFile::from_metadata(pool, meta)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    fn key8(k: u64) -> Vec<u8> {
        k.to_be_bytes().to_vec()
    }

    #[test]
    fn build_and_probe() {
        let entries: Vec<_> = (0..10_000u64)
            .map(|k| (key8(k), (k * 3).to_le_bytes().to_vec()))
            .collect();
        let idx = IsamIndex::build(pool(16), 8, entries).unwrap();
        assert_eq!(idx.len(), 10_000);
        for k in [0u64, 1, 4999, 9999] {
            let payload = idx.lookup(&key8(k)).unwrap().unwrap();
            assert_eq!(u64::from_le_bytes(payload.try_into().unwrap()), k * 3);
        }
        assert_eq!(idx.lookup(&key8(10_000)).unwrap(), None);
    }

    #[test]
    fn cold_probe_costs_height_pages() {
        let p = pool(4);
        let entries: Vec<_> = (0..10_000u64).map(|k| (key8(k), vec![1u8; 8])).collect();
        let idx = IsamIndex::build(Arc::clone(&p), 8, entries).unwrap();
        p.flush_and_clear().unwrap();
        let before = p.stats().reads();
        idx.lookup(&key8(7777)).unwrap().unwrap();
        assert_eq!(p.stats().reads() - before, idx.height() as u64);
    }

    #[test]
    fn empty_index() {
        let idx = IsamIndex::build(pool(4), 8, Vec::new()).unwrap();
        assert!(idx.is_empty());
        assert_eq!(idx.lookup(&key8(0)).unwrap(), None);
    }

    #[test]
    fn scan_all_in_order() {
        let entries: Vec<_> = (0..100u64).map(|k| (key8(k), vec![])).collect();
        let idx = IsamIndex::build(pool(8), 8, entries).unwrap();
        let keys: Vec<u64> = idx
            .scan_all()
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    }
}
