//! Heap files: unordered chains of slotted pages.
//!
//! Heap files back the temporary relations of the BFS strategies (the
//! `temp` relation of Sec. 3.1) and the sorted runs of the external sorter.
//! Appends fill the tail page and extend the chain when it overflows; scans
//! walk the chain in page order.

use cor_pagestore::{BufferError, BufferPool, PageId, SlotId, NO_PAGE};
use std::sync::Arc;

/// Physical address of a record: page + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RecordId {
    /// Page holding the record.
    pub page: PageId,
    /// Slot within the page.
    pub slot: SlotId,
}

/// Structural metadata of a heap file, sufficient to reattach to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeapMeta {
    /// First page of the chain.
    pub first: PageId,
    /// Tail page (append target).
    pub last: PageId,
    /// Live record count.
    pub len: u64,
    /// Chain length in pages.
    pub pages: u32,
}

/// An unordered file of variable-length records.
///
/// ```
/// use cor_access::HeapFile;
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let temp = HeapFile::create(pool).unwrap();
/// temp.append(b"oid-1").unwrap();
/// temp.append(b"oid-2").unwrap();
/// assert_eq!(temp.scan().count(), 2);
/// ```
pub struct HeapFile {
    pool: Arc<BufferPool>,
    first: PageId,
    last: crate::sync_cell::SyncCell<PageId>,
    len: crate::sync_cell::SyncCell<u64>,
    pages: crate::sync_cell::SyncCell<u32>,
}

impl HeapFile {
    /// Create an empty heap file (allocates its first page).
    pub fn create(pool: Arc<BufferPool>) -> Result<Self, BufferError> {
        let first = pool.allocate_page()?;
        pool.write(first, |mut p| p.init())?;
        Ok(HeapFile {
            pool,
            first,
            last: crate::sync_cell::SyncCell::new(first),
            len: crate::sync_cell::SyncCell::new(0),
            pages: crate::sync_cell::SyncCell::new(1),
        })
    }

    /// The buffer pool this file lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Snapshot of the chain's metadata, for persisting in a catalog.
    pub fn metadata(&self) -> HeapMeta {
        HeapMeta {
            first: self.first,
            last: self.last.get(),
            len: self.len.get(),
            pages: self.pages.get(),
        }
    }

    /// Reattach to a heap file previously persisted via [`Self::metadata`].
    pub fn from_metadata(pool: Arc<BufferPool>, meta: HeapMeta) -> Self {
        HeapFile {
            pool,
            first: meta.first,
            last: crate::sync_cell::SyncCell::new(meta.last),
            len: crate::sync_cell::SyncCell::new(meta.len),
            pages: crate::sync_cell::SyncCell::new(meta.pages),
        }
    }

    /// Number of live records.
    pub fn len(&self) -> u64 {
        self.len.get()
    }

    /// True if no records are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of pages in the chain.
    pub fn num_pages(&self) -> u32 {
        self.pages.get()
    }

    /// Append a record, returning its address.
    pub fn append(&self, record: &[u8]) -> Result<RecordId, BufferError> {
        let tail = self.last.get();
        let slot = self.pool.write(tail, |mut p| p.insert(record))?;
        if let Ok(slot) = slot {
            self.len.set(self.len.get() + 1);
            return Ok(RecordId { page: tail, slot });
        }
        // Tail page full: extend the chain.
        let fresh = self.pool.allocate_page()?;
        self.pool.write(fresh, |mut p| p.init())?;
        self.pool.write(tail, |mut p| p.set_next(fresh))?;
        self.last.set(fresh);
        self.pages.set(self.pages.get() + 1);
        let slot = self
            .pool
            .write(fresh, |mut p| p.insert(record))?
            .expect("fresh page must accept any record that fits a page");
        self.len.set(self.len.get() + 1);
        Ok(RecordId { page: fresh, slot })
    }

    /// Fetch the record at `rid`.
    pub fn get(&self, rid: RecordId) -> Result<Option<Vec<u8>>, BufferError> {
        self.pool
            .read(rid.page, |p| p.record(rid.slot).map(|r| r.to_vec()))
    }

    /// Overwrite the record at `rid` in place (must fit in its page).
    pub fn update(&self, rid: RecordId, record: &[u8]) -> Result<bool, BufferError> {
        self.pool
            .write(rid.page, |mut p| p.update(rid.slot, record).is_ok())
    }

    /// Delete the record at `rid`. Returns whether a record was removed.
    pub fn delete(&self, rid: RecordId) -> Result<bool, BufferError> {
        let removed = self
            .pool
            .write(rid.page, |mut p| p.delete(rid.slot).is_ok())?;
        if removed {
            self.len.set(self.len.get() - 1);
        }
        Ok(removed)
    }

    /// Force every page of this file to disk (counting the writes). Used
    /// to materialize temporaries whose creation cost must be charged.
    pub fn flush(&self) -> Result<(), BufferError> {
        let mut page = self.first;
        while page != NO_PAGE {
            self.pool.flush_page(page)?;
            let next = self.pool.read(page, |p| p.next())?;
            page = next;
        }
        Ok(())
    }

    /// Stream all records in chain order. Each step buffers one page's
    /// records, so the scan costs one page read per chained page (when the
    /// page is not already resident).
    pub fn scan(&self) -> HeapScan {
        HeapScan {
            pool: Arc::clone(&self.pool),
            next_page: self.first,
            buffered: std::collections::VecDeque::new(),
        }
    }
}

/// Streaming scan over a heap file (see [`HeapFile::scan`]).
pub struct HeapScan {
    pool: Arc<BufferPool>,
    next_page: PageId,
    buffered: std::collections::VecDeque<(RecordId, Vec<u8>)>,
}

impl Iterator for HeapScan {
    type Item = (RecordId, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buffered.pop_front() {
                return Some(item);
            }
            if self.next_page == NO_PAGE {
                return None;
            }
            let page = self.next_page;
            let (records, next) = self
                .pool
                .read(page, |p| {
                    let recs: Vec<(SlotId, Vec<u8>)> =
                        p.records().map(|(s, r)| (s, r.to_vec())).collect();
                    (recs, p.next())
                })
                .expect("heap chain page must be readable");
            self.next_page = next;
            self.buffered.extend(
                records
                    .into_iter()
                    .map(|(slot, rec)| (RecordId { page, slot }, rec)),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    #[test]
    fn append_and_scan_preserve_order_within_pages() {
        let heap = HeapFile::create(pool(8)).unwrap();
        let records: Vec<Vec<u8>> = (0..100u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for r in &records {
            heap.append(r).unwrap();
        }
        assert_eq!(heap.len(), 100);
        let scanned: Vec<Vec<u8>> = heap.scan().map(|(_, r)| r).collect();
        assert_eq!(scanned, records);
    }

    #[test]
    fn chain_grows_past_one_page() {
        let heap = HeapFile::create(pool(8)).unwrap();
        let rec = [0u8; 200];
        for _ in 0..50 {
            heap.append(&rec).unwrap();
        }
        assert!(
            heap.num_pages() > 1,
            "200-byte x50 must overflow one 2KB page"
        );
        assert_eq!(heap.scan().count(), 50);
    }

    #[test]
    fn get_update_delete() {
        let heap = HeapFile::create(pool(8)).unwrap();
        let rid = heap.append(b"abc").unwrap();
        assert_eq!(heap.get(rid).unwrap().unwrap(), b"abc");
        assert!(heap.update(rid, b"xyz").unwrap());
        assert_eq!(heap.get(rid).unwrap().unwrap(), b"xyz");
        assert!(heap.delete(rid).unwrap());
        assert_eq!(heap.get(rid).unwrap(), None);
        assert!(!heap.delete(rid).unwrap());
        assert_eq!(heap.len(), 0);
    }

    #[test]
    fn scan_skips_deleted_records() {
        let heap = HeapFile::create(pool(8)).unwrap();
        let a = heap.append(b"a").unwrap();
        heap.append(b"b").unwrap();
        let c = heap.append(b"c").unwrap();
        heap.delete(a).unwrap();
        heap.delete(c).unwrap();
        let left: Vec<Vec<u8>> = heap.scan().map(|(_, r)| r).collect();
        assert_eq!(left, vec![b"b".to_vec()]);
    }

    #[test]
    fn scan_costs_about_one_read_per_page_when_cold() {
        let p = pool(4);
        let heap = HeapFile::create(Arc::clone(&p)).unwrap();
        let rec = [7u8; 200];
        for _ in 0..90 {
            heap.append(&rec).unwrap(); // ~9 records/page -> ~10 pages
        }
        let pages = heap.num_pages() as u64;
        assert!(pages >= 10);
        p.flush_and_clear().unwrap();
        let before = p.stats().reads();
        assert_eq!(heap.scan().count(), 90);
        let reads = p.stats().reads() - before;
        assert_eq!(reads, pages, "cold scan should read each page exactly once");
    }

    #[test]
    fn empty_heap_scans_nothing() {
        let heap = HeapFile::create(pool(2)).unwrap();
        assert_eq!(heap.scan().count(), 0);
        assert!(heap.is_empty());
    }
}
