//! A `Sync` drop-in for the `Cell`s holding access-method metadata.
//!
//! The files in this crate keep small mutable bookkeeping fields (root
//! page, lengths, page counts) behind interior mutability so reads take
//! `&self`. With the sharded buffer pool serving several query streams at
//! once, the files themselves must be `Sync`; `SyncCell` keeps the exact
//! `Cell` API (`new`/`get`/`set`) but stores the value in an atomic.
//!
//! Ordering is `Relaxed` throughout: each field is an independent counter
//! or page pointer, and cross-field consistency during a structural change
//! (e.g. a root split updating `root` and `height`) is already only
//! guaranteed to writers — concurrent readers may observe the old root,
//! which remains a valid entry point because splits never free it.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Values that fit losslessly in a `u64` slot.
pub trait AtomicRepr: Copy {
    /// Widen into the backing word.
    fn to_bits(self) -> u64;
    /// Narrow back out of the backing word.
    fn from_bits(bits: u64) -> Self;
}

macro_rules! atomic_repr {
    ($($t:ty),*) => {$(
        impl AtomicRepr for $t {
            #[inline]
            fn to_bits(self) -> u64 {
                self as u64
            }
            #[inline]
            fn from_bits(bits: u64) -> Self {
                bits as $t
            }
        }
    )*};
}
atomic_repr!(u32, u64);

/// A `Cell<T>` that is `Sync` for the integer types the access methods
/// use as metadata.
#[derive(Debug, Default)]
pub struct SyncCell<T: AtomicRepr> {
    bits: AtomicU64,
    _marker: PhantomData<T>,
}

impl<T: AtomicRepr> SyncCell<T> {
    /// Wrap an initial value.
    pub fn new(value: T) -> Self {
        SyncCell {
            bits: AtomicU64::new(value.to_bits()),
            _marker: PhantomData,
        }
    }

    /// Read the current value.
    #[inline]
    pub fn get(&self) -> T {
        T::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Replace the value.
    #[inline]
    pub fn set(&self, value: T) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let c = SyncCell::new(7u32);
        assert_eq!(c.get(), 7);
        c.set(u32::MAX);
        assert_eq!(c.get(), u32::MAX);
        let w = SyncCell::new(u64::MAX - 1);
        assert_eq!(w.get(), u64::MAX - 1);
    }

    #[test]
    fn is_sync() {
        fn assert_sync<T: Sync>() {}
        assert_sync::<SyncCell<u64>>();
    }
}
