//! Tuple ⇄ byte-record codec.
//!
//! The paper stores tuples with integer fields, "blank-compressed"
//! (i.e. variable-length) character fields, and OID-list fields. The codec
//! here is the equivalent: fixed 8-byte integers, length-prefixed strings,
//! 10-byte OIDs and length-prefixed OID lists, laid out in schema order.

use cor_relational::{Oid, Schema, Tuple, Value, ValueType, OID_BYTES};

/// Errors from decoding a record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The byte record ended before all columns were decoded.
    Truncated,
    /// The tuple does not conform to the schema it is encoded under.
    SchemaMismatch,
    /// A string field held invalid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "record truncated"),
            CodecError::SchemaMismatch => write!(f, "tuple does not match schema"),
            CodecError::BadUtf8 => write!(f, "invalid UTF-8 in string field"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Encode `tuple` under `schema` into a fresh byte record.
pub fn encode(schema: &Schema, tuple: &Tuple) -> Result<Vec<u8>, CodecError> {
    if !schema.admits(tuple) {
        return Err(CodecError::SchemaMismatch);
    }
    let mut out = Vec::with_capacity(estimated_size(tuple));
    for v in tuple.values() {
        match v {
            Value::Int(i) => out.extend_from_slice(&i.to_le_bytes()),
            Value::Str(s) => {
                out.extend_from_slice(&(s.len() as u16).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Oid(o) => out.extend_from_slice(&o.to_key_bytes()),
            Value::OidList(l) => {
                out.extend_from_slice(&(l.len() as u16).to_le_bytes());
                for o in l {
                    out.extend_from_slice(&o.to_key_bytes());
                }
            }
            Value::Bytes(b) => {
                out.extend_from_slice(&(b.len() as u16).to_le_bytes());
                out.extend_from_slice(b);
            }
        }
    }
    Ok(out)
}

/// Rough encoded size of a tuple, for pre-sizing buffers.
pub fn estimated_size(tuple: &Tuple) -> usize {
    tuple
        .values()
        .iter()
        .map(|v| match v {
            Value::Int(_) => 8,
            Value::Str(s) => 2 + s.len(),
            Value::Oid(_) => OID_BYTES,
            Value::OidList(l) => 2 + l.len() * OID_BYTES,
            Value::Bytes(b) => 2 + b.len(),
        })
        .sum()
}

/// Decode a byte record produced by [`encode`] under the same schema.
pub fn decode(schema: &Schema, mut bytes: &[u8]) -> Result<Tuple, CodecError> {
    let mut values = Vec::with_capacity(schema.arity());
    for col in schema.columns() {
        let v = match col.ty {
            ValueType::Int => {
                let chunk = take(&mut bytes, 8)?;
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                Value::Int(i64::from_le_bytes(b))
            }
            ValueType::Str => {
                let len = take_u16(&mut bytes)? as usize;
                let chunk = take(&mut bytes, len)?;
                Value::Str(
                    std::str::from_utf8(chunk)
                        .map_err(|_| CodecError::BadUtf8)?
                        .to_string(),
                )
            }
            ValueType::Oid => {
                let chunk = take(&mut bytes, OID_BYTES)?;
                Value::Oid(Oid::from_key_bytes(chunk).ok_or(CodecError::Truncated)?)
            }
            ValueType::OidList => {
                let n = take_u16(&mut bytes)? as usize;
                let mut oids = Vec::with_capacity(n);
                for _ in 0..n {
                    let chunk = take(&mut bytes, OID_BYTES)?;
                    oids.push(Oid::from_key_bytes(chunk).ok_or(CodecError::Truncated)?);
                }
                Value::OidList(oids)
            }
            ValueType::Bytes => {
                let len = take_u16(&mut bytes)? as usize;
                Value::Bytes(take(&mut bytes, len)?.to_vec())
            }
        };
        values.push(v);
    }
    Ok(Tuple::new(values))
}

fn take<'a>(bytes: &mut &'a [u8], n: usize) -> Result<&'a [u8], CodecError> {
    if bytes.len() < n {
        return Err(CodecError::Truncated);
    }
    let (head, tail) = bytes.split_at(n);
    *bytes = tail;
    Ok(head)
}

fn take_u16(bytes: &mut &[u8]) -> Result<u16, CodecError> {
    let chunk = take(bytes, 2)?;
    Ok(u16::from_le_bytes([chunk[0], chunk[1]]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Schema {
        Schema::new(&[
            ("oid", ValueType::Oid),
            ("ret1", ValueType::Int),
            ("dummy", ValueType::Str),
            ("children", ValueType::OidList),
        ])
    }

    fn tuple() -> Tuple {
        Tuple::new(vec![
            Value::Oid(Oid::new(1, 42)),
            Value::Int(-7),
            Value::from("padding bytes"),
            Value::OidList(vec![Oid::new(2, 1), Oid::new(2, 9)]),
        ])
    }

    #[test]
    fn roundtrip() {
        let s = schema();
        let t = tuple();
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(bytes.len(), estimated_size(&t));
        assert_eq!(decode(&s, &bytes).unwrap(), t);
    }

    #[test]
    fn empty_string_and_list_roundtrip() {
        let s = schema();
        let t = Tuple::new(vec![
            Value::Oid(Oid::new(0, 0)),
            Value::Int(0),
            Value::from(""),
            Value::OidList(vec![]),
        ]);
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(decode(&s, &bytes).unwrap(), t);
    }

    #[test]
    fn schema_mismatch_rejected() {
        let s = schema();
        let t = Tuple::new(vec![Value::Int(1)]);
        assert_eq!(encode(&s, &t), Err(CodecError::SchemaMismatch));
    }

    #[test]
    fn truncated_record_rejected() {
        let s = schema();
        let bytes = encode(&s, &tuple()).unwrap();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert_eq!(
                decode(&s, &bytes[..cut]),
                Err(CodecError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn bytes_field_roundtrip() {
        let s = Schema::new(&[("payload", ValueType::Bytes), ("n", ValueType::Int)]);
        let t = Tuple::new(vec![Value::Bytes(vec![0xFF, 0x00, 0x7F]), Value::Int(9)]);
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(decode(&s, &bytes).unwrap(), t);
        // Empty payload too.
        let t = Tuple::new(vec![Value::Bytes(vec![]), Value::Int(0)]);
        let bytes = encode(&s, &t).unwrap();
        assert_eq!(decode(&s, &bytes).unwrap(), t);
    }

    #[test]
    fn bad_utf8_rejected() {
        let s = Schema::new(&[("s", ValueType::Str)]);
        // len=2, bytes = invalid UTF-8.
        let bytes = vec![2, 0, 0xFF, 0xFE];
        assert_eq!(decode(&s, &bytes), Err(CodecError::BadUtf8));
    }
}
