//! Predicate-filtered relation scans.
//!
//! The paper's example databases are defined by selections — "elders: all
//! persons with age >= 60" — and its procedural representation stores such
//! queries per object. This module is the generic execution primitive:
//! scan a B-tree relation, decode each record under a schema, and keep the
//! tuples a [`Predicate`] accepts.

use crate::btree::BTreeFile;
use crate::record::decode;
use crate::AccessError;
use cor_relational::{Predicate, Schema, Tuple};

/// Scan `tree` (all entries, key order), decode under `schema`, and yield
/// the tuples satisfying `predicate`.
///
/// ```
/// use cor_access::{encode, scan_where, BTreeFile};
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use cor_relational::{CmpOp, Predicate, Schema, Tuple, Value, ValueType};
/// use std::sync::Arc;
///
/// let schema = Schema::new(&[("name", ValueType::Str), ("age", ValueType::Int)]);
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let person = BTreeFile::create(pool, 8).unwrap();
/// for (i, (name, age)) in [("Mary", 62i64), ("Jill", 8)].iter().enumerate() {
///     let t = Tuple::new(vec![Value::from(*name), Value::Int(*age)]);
///     person.insert(&(i as u64).to_be_bytes(), &encode(&schema, &t).unwrap()).unwrap();
/// }
/// // retrieve (person.all) where person.age >= 60
/// let elders: Vec<Tuple> =
///     scan_where(&person, &schema, &Predicate::cmp(1, CmpOp::Ge, 60))
///         .collect::<Result<_, _>>()
///         .unwrap();
/// assert_eq!(elders.len(), 1);
/// assert_eq!(elders[0].get(0).as_str(), Some("Mary"));
/// ```
pub fn scan_where<'a>(
    tree: &'a BTreeFile,
    schema: &'a Schema,
    predicate: &'a Predicate,
) -> impl Iterator<Item = Result<Tuple, AccessError>> + 'a {
    tree.scan_all()
        .filter_map(move |(_, rec)| match decode(schema, &rec) {
            Ok(tuple) => predicate.eval(&tuple).then_some(Ok(tuple)),
            Err(e) => Some(Err(e.into())),
        })
}

/// Count the tuples satisfying `predicate` (selectivity probe).
pub fn count_where(
    tree: &BTreeFile,
    schema: &Schema,
    predicate: &Predicate,
) -> Result<u64, AccessError> {
    let mut n = 0;
    for t in scan_where(tree, schema, predicate) {
        t?;
        n += 1;
    }
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::encode;
    use cor_pagestore::BufferPool;
    use cor_relational::{CmpOp, Value, ValueType};
    use std::sync::Arc;

    fn person_tree() -> (BTreeFile, Schema) {
        let schema = Schema::new(&[("name", ValueType::Str), ("age", ValueType::Int)]);
        let pool = Arc::new(BufferPool::builder().capacity(16).build());
        let tree = BTreeFile::create(pool, 8).unwrap();
        for (i, (name, age)) in [
            ("John", 62i64),
            ("Mary", 62),
            ("Paul", 68),
            ("Jill", 8),
            ("Bill", 12),
            ("Mike", 44),
        ]
        .iter()
        .enumerate()
        {
            let t = Tuple::new(vec![Value::from(*name), Value::Int(*age)]);
            tree.insert(&(i as u64).to_be_bytes(), &encode(&schema, &t).unwrap())
                .unwrap();
        }
        (tree, schema)
    }

    #[test]
    fn elders_children_cyclists() {
        let (tree, schema) = person_tree();
        // elders: age >= 60
        let elders = count_where(&tree, &schema, &Predicate::cmp(1, CmpOp::Ge, 60)).unwrap();
        assert_eq!(elders, 3);
        // children: age <= 15
        let children = count_where(&tree, &schema, &Predicate::cmp(1, CmpOp::Le, 15)).unwrap();
        assert_eq!(children, 2);
        // elders or children (the paper's two-group query)
        let both = Predicate::cmp(1, CmpOp::Ge, 60).or(Predicate::cmp(1, CmpOp::Le, 15));
        assert_eq!(count_where(&tree, &schema, &both).unwrap(), 5);
        // named person
        let mary = Predicate::cmp(0, CmpOp::Eq, "Mary");
        let got: Vec<Tuple> = scan_where(&tree, &schema, &mary)
            .collect::<Result<_, _>>()
            .unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].get(1).as_int(), Some(62));
    }

    #[test]
    fn true_predicate_returns_everything() {
        let (tree, schema) = person_tree();
        assert_eq!(count_where(&tree, &schema, &Predicate::True).unwrap(), 6);
    }

    #[test]
    fn between_matches_age_band() {
        let (tree, schema) = person_tree();
        let band = Predicate::between(1, 10, 50);
        assert_eq!(count_where(&tree, &schema, &band).unwrap(), 2); // Bill 12, Mike 44
    }
}
