//! B+trees over fixed-length byte-comparable keys.
//!
//! The paper structures `ParentRel` and `ChildRel` as B-trees on OID (which
//! "facilitates the merge-join in BFS") and `ClusterRel` as a B-tree on
//! `cluster#`. Keys here are fixed-length byte strings whose byte order is
//! the logical order (see [`cor_relational::Oid::to_key_bytes`]); values are
//! variable-length records.
//!
//! Node layout (2 KB page, custom — not the slotted layout):
//!
//! ```text
//! 0..2   count            number of entries
//! 2..4   free_end         start of the entry heap (grows down)
//! 4..8   flags            bit 0: leaf
//! 8..12  next             leaf: next-leaf chain; internal: leftmost child
//! 12..16 reserved
//! 16..   directory        4 B per entry: offset u16, vlen u16, sorted by key
//! ...    free space
//! ...    entry heap       each entry: key (key_len B) then value (vlen B)
//! ```
//!
//! Inserts are upserts (a second insert of the same key replaces the
//! value). Deletes merge underfull nodes with a sibling when the pair
//! fits in one page and collapse the root as levels empty — the paper's
//! workloads never shrink relations ("in our environment there are no
//! insertions or deletions"), but a production library must.

use crate::sync_cell::SyncCell;
use crate::AccessError;
use cor_obs::heat::{self, PAGE_CLASS_INTERNAL, PAGE_CLASS_LEAF};
use cor_obs::{Phase, PhaseGuard};
use cor_pagestore::{BufferPool, PageId, NO_PAGE, PAGE_SIZE};
use std::sync::Arc;

/// A materialized `(key, value)` entry list.
pub type Entries = Vec<(Vec<u8>, Vec<u8>)>;

const HDR: usize = 16;
const DIR: usize = 4;

/// Largest `key + value` size insertable into a B-tree (guarantees any
/// split leaves room for two entries per node).
pub const MAX_BTREE_ENTRY: usize = (PAGE_SIZE - HDR) / 2 - DIR;

/// Default leaf fill fraction for bulk loads, mimicking a freshly
/// `modify`-ed INGRES B-tree.
pub const DEFAULT_FILL: f64 = 0.9;

// ---------------------------------------------------------------------------
// Raw node helpers
// ---------------------------------------------------------------------------

mod node {
    use super::*;

    pub fn count(d: &[u8]) -> usize {
        u16::from_le_bytes([d[0], d[1]]) as usize
    }

    pub fn set_count(d: &mut [u8], n: usize) {
        d[0..2].copy_from_slice(&(n as u16).to_le_bytes());
    }

    pub fn free_end(d: &[u8]) -> usize {
        u16::from_le_bytes([d[2], d[3]]) as usize
    }

    pub fn set_free_end(d: &mut [u8], v: usize) {
        d[2..4].copy_from_slice(&(v as u16).to_le_bytes());
    }

    pub fn is_leaf(d: &[u8]) -> bool {
        d[4] & 1 == 1
    }

    pub fn next(d: &[u8]) -> PageId {
        u32::from_le_bytes([d[8], d[9], d[10], d[11]])
    }

    pub fn set_next(d: &mut [u8], p: PageId) {
        d[8..12].copy_from_slice(&p.to_le_bytes());
    }

    pub fn init(d: &mut [u8], leaf: bool) {
        d[..HDR].fill(0);
        set_free_end(d, PAGE_SIZE);
        d[4] = leaf as u8;
        set_next(d, NO_PAGE);
    }

    fn dir_at(i: usize) -> usize {
        HDR + i * DIR
    }

    pub fn entry_off(d: &[u8], i: usize) -> usize {
        let at = dir_at(i);
        u16::from_le_bytes([d[at], d[at + 1]]) as usize
    }

    pub fn entry_vlen(d: &[u8], i: usize) -> usize {
        let at = dir_at(i);
        u16::from_le_bytes([d[at + 2], d[at + 3]]) as usize
    }

    pub fn entry_key(d: &[u8], i: usize, key_len: usize) -> &[u8] {
        let off = entry_off(d, i);
        &d[off..off + key_len]
    }

    pub fn entry_val(d: &[u8], i: usize, key_len: usize) -> &[u8] {
        let off = entry_off(d, i);
        let vlen = entry_vlen(d, i);
        &d[off + key_len..off + key_len + vlen]
    }

    /// Internal-node child pointer stored as the entry value.
    pub fn entry_child(d: &[u8], i: usize, key_len: usize) -> PageId {
        let v = entry_val(d, i, key_len);
        u32::from_le_bytes([v[0], v[1], v[2], v[3]])
    }

    /// Binary search over the sorted directory.
    pub fn search(d: &[u8], key: &[u8], key_len: usize) -> Result<usize, usize> {
        let mut lo = 0usize;
        let mut hi = count(d);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match entry_key(d, mid, key_len).cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Which child should a search for `key` descend into?
    pub fn find_child(d: &[u8], key: &[u8], key_len: usize) -> PageId {
        match search(d, key, key_len) {
            Ok(i) => entry_child(d, i, key_len),
            Err(0) => next(d), // child0
            Err(i) => entry_child(d, i - 1, key_len),
        }
    }

    pub fn live_bytes(d: &[u8], key_len: usize) -> usize {
        (0..count(d)).map(|i| key_len + entry_vlen(d, i)).sum()
    }

    pub fn total_free(d: &[u8], key_len: usize) -> usize {
        PAGE_SIZE - HDR - count(d) * DIR - live_bytes(d, key_len)
    }

    pub fn contiguous_free(d: &[u8]) -> usize {
        free_end(d) - (HDR + count(d) * DIR)
    }

    /// Rewrite the entry heap contiguously, dropping dead space.
    pub fn compact(d: &mut [u8], key_len: usize) {
        let n = count(d);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    entry_key(d, i, key_len).to_vec(),
                    entry_val(d, i, key_len).to_vec(),
                )
            })
            .collect();
        let mut free_end = PAGE_SIZE;
        for (i, (k, v)) in entries.iter().enumerate() {
            free_end -= k.len() + v.len();
            d[free_end..free_end + k.len()].copy_from_slice(k);
            d[free_end + k.len()..free_end + k.len() + v.len()].copy_from_slice(v);
            let at = dir_at(i);
            d[at..at + 2].copy_from_slice(&(free_end as u16).to_le_bytes());
            d[at + 2..at + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
        }
        set_free_end(d, free_end);
    }

    /// Insert `(key, val)` at directory position `i`. The caller must have
    /// verified `total_free >= key_len + val.len() + DIR`.
    pub fn insert_entry(d: &mut [u8], i: usize, key: &[u8], val: &[u8], key_len: usize) {
        debug_assert_eq!(key.len(), key_len);
        let need = key_len + val.len();
        if contiguous_free(d) < need + DIR {
            compact(d, key_len);
        }
        debug_assert!(contiguous_free(d) >= need + DIR);
        let n = count(d);
        // Shift directory entries [i..n) right by one slot.
        d.copy_within(dir_at(i)..dir_at(n), dir_at(i + 1));
        let off = free_end(d) - need;
        d[off..off + key_len].copy_from_slice(key);
        d[off + key_len..off + need].copy_from_slice(val);
        set_free_end(d, off);
        let at = dir_at(i);
        d[at..at + 2].copy_from_slice(&(off as u16).to_le_bytes());
        d[at + 2..at + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
        set_count(d, n + 1);
    }

    /// Remove the directory entry at `i` (heap space reclaimed lazily).
    pub fn remove_entry(d: &mut [u8], i: usize) {
        let n = count(d);
        d.copy_within(dir_at(i + 1)..dir_at(n), dir_at(i));
        set_count(d, n - 1);
    }

    /// Overwrite the value of entry `i` in place (`val` must not be longer
    /// than the current value).
    pub fn overwrite_value(d: &mut [u8], i: usize, key_len: usize, val: &[u8]) {
        let off = entry_off(d, i);
        debug_assert!(val.len() <= entry_vlen(d, i));
        d[off + key_len..off + key_len + val.len()].copy_from_slice(val);
        let at = dir_at(i);
        d[at + 2..at + 4].copy_from_slice(&(val.len() as u16).to_le_bytes());
    }

    /// Rewrite the whole node from a materialized entry list.
    pub fn write_node(
        d: &mut [u8],
        leaf: bool,
        next_or_child0: PageId,
        entries: &[(Vec<u8>, Vec<u8>)],
        key_len: usize,
    ) {
        init(d, leaf);
        set_next(d, next_or_child0);
        let mut free_end = PAGE_SIZE;
        for (i, (k, v)) in entries.iter().enumerate() {
            debug_assert_eq!(k.len(), key_len);
            free_end -= k.len() + v.len();
            d[free_end..free_end + k.len()].copy_from_slice(k);
            d[free_end + k.len()..free_end + k.len() + v.len()].copy_from_slice(v);
            let at = dir_at(i);
            d[at..at + 2].copy_from_slice(&(free_end as u16).to_le_bytes());
            d[at + 2..at + 4].copy_from_slice(&(v.len() as u16).to_le_bytes());
        }
        set_free_end(d, free_end);
        set_count(d, entries.len());
    }

    pub fn all_entries(d: &[u8], key_len: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
        (0..count(d))
            .map(|i| {
                (
                    entry_key(d, i, key_len).to_vec(),
                    entry_val(d, i, key_len).to_vec(),
                )
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// BTreeFile
// ---------------------------------------------------------------------------

/// Structural metadata of a B-tree, sufficient to reattach to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeMeta {
    /// Key length in bytes.
    pub key_len: u16,
    /// Root page.
    pub root: PageId,
    /// Leftmost leaf (scan entry point).
    pub first_leaf: PageId,
    /// Number of entries.
    pub len: u64,
    /// Height in levels.
    pub height: u32,
    /// Leaf page count.
    pub leaf_pages: u32,
}

/// A promoted separator key plus the page to its right, produced by splits.
type SplitResult = (Vec<u8>, PageId);

/// Outcome of a leaf fast-path mutation attempt.
enum Fast {
    Inserted,
    Replaced,
    NeedSplit,
    /// A replacement removed the old entry but the grown value needs a
    /// split to be re-placed; the key count must not change.
    NeedSplitAfterRemove,
}

/// A B+tree relation: fixed-length keys, variable-length values.
///
/// ```
/// use cor_access::BTreeFile;
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let tree = BTreeFile::create(pool, 8).unwrap();
/// tree.insert(&7u64.to_be_bytes(), b"seven").unwrap();
/// assert_eq!(tree.get(&7u64.to_be_bytes()).unwrap().unwrap(), b"seven");
/// assert_eq!(tree.range(&0u64.to_be_bytes(), &9u64.to_be_bytes()).unwrap().count(), 1);
/// ```
pub struct BTreeFile {
    pool: Arc<BufferPool>,
    key_len: usize,
    root: SyncCell<PageId>,
    first_leaf: SyncCell<PageId>,
    len: SyncCell<u64>,
    height: SyncCell<u32>,
    leaf_pages: SyncCell<u32>,
    /// Last leaf of the bulk-loaded run while leaf page ids are still
    /// consecutive (`NO_PAGE` once a split/merge — or a reattach, which
    /// cannot know — breaks that). Scan readahead clamps to this so a
    /// prefetch never touches pages outside the tree's own leaves.
    ra_end: SyncCell<PageId>,
}

impl BTreeFile {
    /// Create an empty tree with `key_len`-byte keys.
    pub fn create(pool: Arc<BufferPool>, key_len: usize) -> Result<Self, AccessError> {
        if key_len == 0 || key_len > 64 {
            return Err(AccessError::BadKeyLen(key_len));
        }
        let root = pool.allocate_page()?;
        pool.write(root, |mut p| node::init(p.bytes_mut(), true))?;
        Ok(BTreeFile {
            pool,
            key_len,
            root: SyncCell::new(root),
            first_leaf: SyncCell::new(root),
            len: SyncCell::new(0),
            height: SyncCell::new(1),
            leaf_pages: SyncCell::new(1),
            ra_end: SyncCell::new(root),
        })
    }

    /// Bulk-load a tree from strictly ascending `(key, value)` pairs at the
    /// given fill fraction (INGRES `modify ... to btree` analogue).
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        key_len: usize,
        entries: impl IntoIterator<Item = (Vec<u8>, Vec<u8>)>,
        fill: f64,
    ) -> Result<Self, AccessError> {
        if key_len == 0 || key_len > 64 {
            return Err(AccessError::BadKeyLen(key_len));
        }
        let fill = fill.clamp(0.3, 1.0);
        let limit = ((PAGE_SIZE - HDR) as f64 * fill) as usize;

        // --- leaf level ---
        let mut leaves: Vec<(Vec<u8>, PageId)> = Vec::new(); // (first key, page)
        let mut current: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        let mut current_bytes = 0usize;
        let mut prev_key: Option<Vec<u8>> = None;
        let mut total = 0u64;

        let flush_leaf = |entries: &mut Vec<(Vec<u8>, Vec<u8>)>,
                          leaves: &mut Vec<(Vec<u8>, PageId)>|
         -> Result<(), AccessError> {
            if entries.is_empty() {
                return Ok(());
            }
            let pid = pool.allocate_page()?;
            pool.write(pid, |mut p| {
                node::write_node(p.bytes_mut(), true, NO_PAGE, entries, key_len)
            })?;
            if let Some((_, prev)) = leaves.last() {
                let prev = *prev;
                pool.write(prev, |mut p| node::set_next(p.bytes_mut(), pid))?;
            }
            leaves.push((entries[0].0.clone(), pid));
            entries.clear();
            Ok(())
        };

        for (k, v) in entries {
            if k.len() != key_len {
                return Err(AccessError::BadKeyLen(k.len()));
            }
            if key_len + v.len() > MAX_BTREE_ENTRY {
                return Err(AccessError::EntryTooLarge);
            }
            if let Some(pk) = &prev_key {
                if k.as_slice() <= pk.as_slice() {
                    return Err(AccessError::UnsortedBulkLoad);
                }
            }
            prev_key = Some(k.clone());
            let sz = DIR + key_len + v.len();
            if current_bytes + sz > limit && !current.is_empty() {
                flush_leaf(&mut current, &mut leaves)?;
                current_bytes = 0;
            }
            current_bytes += sz;
            current.push((k, v));
            total += 1;
        }
        flush_leaf(&mut current, &mut leaves)?;

        if leaves.is_empty() {
            // Empty input: plain empty tree.
            return Self::create(pool, key_len);
        }
        let first_leaf = leaves[0].1;
        let leaf_pages = leaves.len() as u32;
        // Leaves normally come off the allocator consecutively; a
        // concurrent allocation interleaving would break that, so verify
        // before promising the readahead clamp anything.
        let ra_end = if leaves.windows(2).all(|w| w[1].1 == w[0].1 + 1) {
            leaves[leaves.len() - 1].1
        } else {
            NO_PAGE
        };

        // --- internal levels ---
        let mut level = leaves;
        let mut height = 1u32;
        while level.len() > 1 {
            height += 1;
            let mut upper: Vec<(Vec<u8>, PageId)> = Vec::new();
            let entry_sz = DIR + key_len + 4;
            let per_node = ((limit / entry_sz).max(2)) + 1; // children per node
            for group in level.chunks(per_node) {
                let pid = pool.allocate_page()?;
                let child0 = group[0].1;
                let entries: Vec<(Vec<u8>, Vec<u8>)> = group[1..]
                    .iter()
                    .map(|(k, c)| (k.clone(), c.to_le_bytes().to_vec()))
                    .collect();
                pool.write(pid, |mut p| {
                    node::write_node(p.bytes_mut(), false, child0, &entries, key_len)
                })?;
                upper.push((group[0].0.clone(), pid));
            }
            level = upper;
        }
        let root = level[0].1;
        Ok(BTreeFile {
            pool,
            key_len,
            root: SyncCell::new(root),
            first_leaf: SyncCell::new(first_leaf),
            len: SyncCell::new(total),
            height: SyncCell::new(height),
            leaf_pages: SyncCell::new(leaf_pages),
            ra_end: SyncCell::new(ra_end),
        })
    }

    /// The buffer pool this tree lives in.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Snapshot of the tree's structural metadata, for persisting in a
    /// catalog (see [`crate::catalog::Catalog`]).
    pub fn metadata(&self) -> BTreeMeta {
        BTreeMeta {
            key_len: self.key_len as u16,
            root: self.root.get(),
            first_leaf: self.first_leaf.get(),
            len: self.len.get(),
            height: self.height.get(),
            leaf_pages: self.leaf_pages.get(),
        }
    }

    /// Reattach to a tree previously persisted via [`Self::metadata`].
    /// The pages must live in `pool`'s store; nothing is validated eagerly
    /// beyond the key length.
    pub fn from_metadata(pool: Arc<BufferPool>, meta: BTreeMeta) -> Result<Self, AccessError> {
        if meta.key_len == 0 || meta.key_len > 64 {
            return Err(AccessError::BadKeyLen(meta.key_len as usize));
        }
        Ok(BTreeFile {
            pool,
            key_len: meta.key_len as usize,
            root: SyncCell::new(meta.root),
            first_leaf: SyncCell::new(meta.first_leaf),
            len: SyncCell::new(meta.len),
            height: SyncCell::new(meta.height),
            leaf_pages: SyncCell::new(meta.leaf_pages),
            ra_end: SyncCell::new(NO_PAGE),
        })
    }

    /// Key length in bytes.
    pub fn key_len(&self) -> usize {
        self.key_len
    }

    /// Number of entries.
    pub fn len(&self) -> u64 {
        self.len.get()
    }

    /// True if the tree holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tree height (1 = a single leaf).
    pub fn height(&self) -> u32 {
        self.height.get()
    }

    /// Number of leaf pages (exact after bulk load, grows with splits).
    pub fn leaf_pages(&self) -> u32 {
        self.leaf_pages.get()
    }

    fn check_entry(&self, key: &[u8], val: &[u8]) -> Result<(), AccessError> {
        if key.len() != self.key_len {
            return Err(AccessError::BadKeyLen(key.len()));
        }
        if self.key_len + val.len() > MAX_BTREE_ENTRY {
            return Err(AccessError::EntryTooLarge);
        }
        Ok(())
    }

    /// Descend from the root to the leaf that owns `key`.
    fn find_leaf(&self, key: &[u8]) -> Result<PageId, AccessError> {
        // Internal-page faults during the descent are index navigation
        // unless a strategy has claimed a more specific bracket.
        let _phase = PhaseGuard::enter_default(Phase::IndexDescent);
        heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_INTERNAL);
        let mut page = self.root.get();
        loop {
            let (leaf, child) = self.pool.read(page, |p| {
                let d = p.bytes();
                if node::is_leaf(d) {
                    (true, NO_PAGE)
                } else {
                    (false, node::find_child(d, key, self.key_len))
                }
            })?;
            if leaf {
                return Ok(page);
            }
            page = child;
        }
    }

    /// The leaf page currently owning `key`. Secondary indexes store this
    /// as a TID-style direct pointer (INGRES secondary indexes point at
    /// tuple locations, not keys), enabling [`Self::get_with_hint`].
    pub fn leaf_page_of(&self, key: &[u8]) -> Result<PageId, AccessError> {
        if key.len() != self.key_len {
            return Err(AccessError::BadKeyLen(key.len()));
        }
        self.find_leaf(key)
    }

    /// Point lookup through a leaf-page hint: one direct page read instead
    /// of a root-to-leaf descent. Falls back to a full descent if the hint
    /// went stale (only possible after a split moved the key).
    pub fn get_with_hint(&self, hint: PageId, key: &[u8]) -> Result<Option<Vec<u8>>, AccessError> {
        if key.len() != self.key_len {
            return Err(AccessError::BadKeyLen(key.len()));
        }
        let key_len = self.key_len;
        let hit = {
            let _phase = PhaseGuard::enter_default(Phase::HeapFetch);
            heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_LEAF);
            self.pool.read(hint, |p| {
                let d = p.bytes();
                if !node::is_leaf(d) {
                    return None;
                }
                node::search(d, key, key_len)
                    .ok()
                    .map(|i| node::entry_val(d, i, key_len).to_vec())
            })?
        };
        match hit {
            Some(v) => Ok(Some(v)),
            None => self.get(key),
        }
    }

    /// In-place value replacement through a leaf-page hint (same-size or
    /// shrinking updates only take the fast path). Falls back to the
    /// normal update when the hint is stale or the value grows.
    pub fn update_with_hint(
        &self,
        hint: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<bool, AccessError> {
        self.check_entry(key, val)?;
        let key_len = self.key_len;
        let done = self.pool.write(hint, |mut p| {
            let d = p.bytes_mut();
            if !node::is_leaf(d) {
                return false;
            }
            match node::search(d, key, key_len) {
                Ok(i) if val.len() <= node::entry_vlen(d, i) => {
                    node::overwrite_value(d, i, key_len, val);
                    true
                }
                _ => false,
            }
        })?;
        if done {
            return Ok(true);
        }
        self.update(key, val)
    }

    /// All entries stored on one leaf page (empty if the page is not a
    /// leaf). Lets callers harvest co-located records from a page they
    /// already paid to fetch — e.g. the rest of a physically clustered
    /// unit after a TID probe for its first member.
    pub fn leaf_entries(&self, leaf: PageId) -> Result<Entries, AccessError> {
        let key_len = self.key_len;
        let _phase = PhaseGuard::enter_default(Phase::HeapFetch);
        heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_LEAF);
        let entries = self.pool.read(leaf, |p| {
            let d = p.bytes();
            if !node::is_leaf(d) {
                return Vec::new();
            }
            node::all_entries(d, key_len)
        })?;
        Ok(entries)
    }

    /// Point lookup.
    pub fn get(&self, key: &[u8]) -> Result<Option<Vec<u8>>, AccessError> {
        if key.len() != self.key_len {
            return Err(AccessError::BadKeyLen(key.len()));
        }
        let leaf = self.find_leaf(key)?;
        let _phase = PhaseGuard::enter_default(Phase::HeapFetch);
        heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_LEAF);
        let v = self.pool.read(leaf, |p| {
            let d = p.bytes();
            node::search(d, key, self.key_len)
                .ok()
                .map(|i| node::entry_val(d, i, self.key_len).to_vec())
        })?;
        Ok(v)
    }

    /// Does `key` exist?
    pub fn contains(&self, key: &[u8]) -> Result<bool, AccessError> {
        Ok(self.get(key)?.is_some())
    }

    /// Descend to the leaf owning `key`, also returning the tightest
    /// *exclusive* upper bound on the keys that leaf can hold (the right
    /// separator of the chosen subtree at the deepest level that has one).
    /// `None` means the rightmost leaf: every larger key still lands there.
    ///
    /// The bound is what makes batched probes cheap: a run of sorted keys
    /// all `< bound` is guaranteed to live on this same leaf, so the
    /// descent is paid once per run instead of once per key.
    fn find_leaf_bounded(&self, key: &[u8]) -> Result<(PageId, Option<Vec<u8>>), AccessError> {
        let _phase = PhaseGuard::enter_default(Phase::IndexDescent);
        heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_INTERNAL);
        let key_len = self.key_len;
        let mut page = self.root.get();
        let mut bound: Option<Vec<u8>> = None;
        // Unlike `find_leaf`, the leaf itself is never read here: `height`
        // says where the leaf level is, so the descent stops one level
        // above it and batched probes hand every leaf fetch to the pool's
        // coalescing multi-page read path.
        for _ in 1..self.height.get() {
            let (child, sep) = self.pool.read(page, |p| {
                let d = p.bytes();
                // Entry keys are the inclusive lower bounds of their child
                // subtrees, so the *next* entry's key (if any) is the
                // chosen child's exclusive upper bound. A child's range is
                // nested inside its parent's, so a bound found deeper
                // always replaces the inherited one.
                let (child, sep_idx) = match node::search(d, key, key_len) {
                    Ok(i) => (node::entry_child(d, i, key_len), i + 1),
                    Err(0) => (node::next(d), 0),
                    Err(i) => (node::entry_child(d, i - 1, key_len), i),
                };
                let sep = (sep_idx < node::count(d))
                    .then(|| node::entry_key(d, sep_idx, key_len).to_vec());
                (child, sep)
            })?;
            if sep.is_some() {
                bound = sep;
            }
            page = child;
        }
        Ok((page, bound))
    }

    /// Batched point lookup: results come back in input order, one per
    /// key, exactly as a loop of [`Self::get`] would produce.
    ///
    /// The keys are probed in sorted order so that each root-to-leaf
    /// descent is paid once per *leaf run* (consecutive keys owned by the
    /// same leaf) rather than once per key, and the distinct leaf pages of
    /// a window are then fetched through [`BufferPool::fetch_many`] — one
    /// coalesced disk submission per run of physically adjacent leaves
    /// (bulk-loaded trees allocate leaves sequentially). Windows are
    /// clipped well below per-shard pool capacity so the batch pins always
    /// fit.
    pub fn get_many(&self, keys: &[&[u8]]) -> Result<Vec<Option<Vec<u8>>>, AccessError> {
        for k in keys {
            if k.len() != self.key_len {
                return Err(AccessError::BadKeyLen(k.len()));
            }
        }
        let mut order: Vec<usize> = (0..keys.len()).collect();
        order.sort_by_key(|&i| keys[i]);

        let mut results: Vec<Option<Vec<u8>>> = vec![None; keys.len()];
        // Group the sorted keys into leaf runs: one bounded descent per
        // run, then every following key below the bound reuses the leaf.
        let mut groups: Vec<(PageId, Vec<usize>)> = Vec::new();
        let mut bound: Option<Vec<u8>> = None;
        for &i in &order {
            let in_run = match (groups.last(), &bound) {
                (Some(_), None) => true, // rightmost leaf: catches everything
                (Some(_), Some(b)) => keys[i] < b.as_slice(),
                (None, _) => false,
            };
            if in_run {
                groups.last_mut().expect("run checked non-empty").1.push(i);
            } else {
                let (leaf, b) = self.find_leaf_bounded(keys[i])?;
                bound = b;
                groups.push((leaf, vec![i]));
            }
        }

        // Probe each window of distinct leaves with one batched fetch.
        let window = (self.pool.capacity() / self.pool.shards() / 2).max(1);
        let key_len = self.key_len;
        for chunk in groups.chunks(window) {
            let pids: Vec<PageId> = chunk.iter().map(|(leaf, _)| *leaf).collect();
            let _phase = PhaseGuard::enter_default(Phase::HeapFetch);
            heat::touch_n(
                heat::HeatClass::PageClass,
                PAGE_CLASS_LEAF,
                pids.len() as u64,
            );
            let mut at = 0usize;
            self.pool.fetch_many(&pids, |_pid, p| {
                let d = p.bytes();
                for &i in &chunk[at].1 {
                    results[i] = node::search(d, keys[i], key_len)
                        .ok()
                        .map(|j| node::entry_val(d, j, key_len).to_vec());
                }
                at += 1;
            })?;
        }
        Ok(results)
    }

    /// Upsert `(key, value)`. Returns `true` if a new key was inserted,
    /// `false` if an existing key's value was replaced.
    pub fn insert(&self, key: &[u8], val: &[u8]) -> Result<bool, AccessError> {
        self.check_entry(key, val)?;
        let (split, inserted) = self.insert_rec(self.root.get(), key, val)?;
        if let Some((sep, right)) = split {
            let new_root = self.pool.allocate_page()?;
            let old_root = self.root.get();
            self.pool.write(new_root, |mut p| {
                let d = p.bytes_mut();
                node::init(d, false);
                node::set_next(d, old_root);
                node::insert_entry(d, 0, &sep, &right.to_le_bytes(), self.key_len);
            })?;
            self.root.set(new_root);
            self.height.set(self.height.get() + 1);
        }
        if inserted {
            self.len.set(self.len.get() + 1);
        }
        Ok(inserted)
    }

    fn insert_rec(
        &self,
        page: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<(Option<SplitResult>, bool), AccessError> {
        let leaf = self.pool.read(page, |p| node::is_leaf(p.bytes()))?;
        if leaf {
            let key_len = self.key_len;
            let fast = self.pool.write(page, |mut p| {
                let d = p.bytes_mut();
                match node::search(d, key, key_len) {
                    Ok(i) => {
                        if val.len() <= node::entry_vlen(d, i) {
                            node::overwrite_value(d, i, key_len, val);
                            return Fast::Replaced;
                        }
                        node::remove_entry(d, i);
                        if node::total_free(d, key_len) >= key_len + val.len() + DIR {
                            let pos = node::search(d, key, key_len).unwrap_err();
                            node::insert_entry(d, pos, key, val, key_len);
                            Fast::Replaced
                        } else {
                            // Old entry is gone; the split path below will
                            // re-add the key with its new value.
                            Fast::NeedSplitAfterRemove
                        }
                    }
                    Err(i) => {
                        if node::total_free(d, key_len) >= key_len + val.len() + DIR {
                            node::insert_entry(d, i, key, val, key_len);
                            Fast::Inserted
                        } else {
                            Fast::NeedSplit
                        }
                    }
                }
            })?;
            return match fast {
                Fast::Inserted => Ok((None, true)),
                Fast::Replaced => Ok((None, false)),
                Fast::NeedSplit => {
                    let (split, inserted) = self.split_leaf(page, key, val)?;
                    Ok((Some(split), inserted))
                }
                Fast::NeedSplitAfterRemove => {
                    let (split, _) = self.split_leaf(page, key, val)?;
                    Ok((Some(split), false))
                }
            };
        }

        let child = self
            .pool
            .read(page, |p| node::find_child(p.bytes(), key, self.key_len))?;
        let (split, inserted) = self.insert_rec(child, key, val)?;
        let Some((sep, new_child)) = split else {
            return Ok((None, inserted));
        };
        let key_len = self.key_len;
        let fitted = self.pool.write(page, |mut p| {
            let d = p.bytes_mut();
            let i = node::search(d, &sep, key_len)
                .expect_err("separator key cannot already exist in parent");
            if node::total_free(d, key_len) >= key_len + 4 + DIR {
                node::insert_entry(d, i, &sep, &new_child.to_le_bytes(), key_len);
                true
            } else {
                false
            }
        })?;
        if fitted {
            return Ok((None, inserted));
        }
        let split = self.split_internal(page, sep, new_child)?;
        Ok((Some(split), inserted))
    }

    /// Split an over-full leaf while inserting `(key, val)`.
    /// Returns the promoted separator and new right page.
    fn split_leaf(
        &self,
        page: PageId,
        key: &[u8],
        val: &[u8],
    ) -> Result<(SplitResult, bool), AccessError> {
        let key_len = self.key_len;
        let (mut entries, old_next) = self.pool.read(page, |p| {
            (node::all_entries(p.bytes(), key_len), node::next(p.bytes()))
        })?;
        let inserted = match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
            Ok(i) => {
                entries[i].1 = val.to_vec();
                false
            }
            Err(i) => {
                entries.insert(i, (key.to_vec(), val.to_vec()));
                true
            }
        };
        let total_bytes: usize = entries.iter().map(|(k, v)| DIR + k.len() + v.len()).sum();
        let mut acc = 0usize;
        let mut m = 0usize;
        for (i, (k, v)) in entries.iter().enumerate() {
            acc += DIR + k.len() + v.len();
            if acc >= total_bytes / 2 {
                m = i + 1;
                break;
            }
        }
        let m = m.clamp(1, entries.len() - 1);
        let right_entries = entries.split_off(m);
        let sep = right_entries[0].0.clone();

        let right = self.pool.allocate_page()?;
        self.pool.write(right, |mut p| {
            node::write_node(p.bytes_mut(), true, old_next, &right_entries, key_len)
        })?;
        self.pool.write(page, |mut p| {
            node::write_node(p.bytes_mut(), true, right, &entries, key_len)
        })?;
        self.leaf_pages.set(self.leaf_pages.get() + 1);
        self.ra_end.set(NO_PAGE); // the new leaf's pid is out of sequence
        Ok(((sep, right), inserted))
    }

    /// Split an over-full internal node while inserting `(sep, new_child)`.
    fn split_internal(
        &self,
        page: PageId,
        sep: Vec<u8>,
        new_child: PageId,
    ) -> Result<(Vec<u8>, PageId), AccessError> {
        let key_len = self.key_len;
        let (mut entries, child0) = self.pool.read(page, |p| {
            (node::all_entries(p.bytes(), key_len), node::next(p.bytes()))
        })?;
        let i = entries
            .binary_search_by(|(k, _)| k.as_slice().cmp(&sep))
            .expect_err("separator key cannot already exist in internal node");
        entries.insert(i, (sep, new_child.to_le_bytes().to_vec()));

        let m = entries.len() / 2;
        let promoted = entries[m].0.clone();
        let right_child0 = PageId::from_le_bytes([
            entries[m].1[0],
            entries[m].1[1],
            entries[m].1[2],
            entries[m].1[3],
        ]);
        let right_entries: Vec<(Vec<u8>, Vec<u8>)> = entries[m + 1..].to_vec();
        entries.truncate(m);

        let right = self.pool.allocate_page()?;
        self.pool.write(right, |mut p| {
            node::write_node(p.bytes_mut(), false, right_child0, &right_entries, key_len)
        })?;
        self.pool.write(page, |mut p| {
            node::write_node(p.bytes_mut(), false, child0, &entries, key_len)
        })?;
        Ok((promoted, right))
    }

    /// Delete `key`. Returns whether it was present.
    ///
    /// Underfull nodes (below a quarter-page of live bytes) are merged
    /// with a sibling when the pair fits in one page, cascading upward;
    /// when the root shrinks to a single child the tree loses a level.
    /// (Borrowing is not implemented — with variable-length entries,
    /// merge-when-fits keeps occupancy bounded with far less machinery;
    /// freed pages are not recycled by the page store.)
    pub fn delete(&self, key: &[u8]) -> Result<bool, AccessError> {
        if key.len() != self.key_len {
            return Err(AccessError::BadKeyLen(key.len()));
        }
        let removed = self.delete_rec(self.root.get(), key)?;
        if removed {
            self.len.set(self.len.get() - 1);
            // Collapse a root that lost all its separators.
            loop {
                let root = self.root.get();
                let sole_child = self.pool.read(root, |p| {
                    let d = p.bytes();
                    (!node::is_leaf(d) && node::count(d) == 0).then(|| node::next(d))
                })?;
                match sole_child {
                    Some(child) => {
                        self.pool.free_page(root)?;
                        self.root.set(child);
                        self.height.set(self.height.get() - 1);
                    }
                    None => break,
                }
            }
        }
        Ok(removed)
    }

    /// Live-byte threshold below which a node is considered underfull.
    fn underfull_threshold() -> usize {
        (PAGE_SIZE - HDR) / 4
    }

    fn is_underfull(&self, page: PageId) -> Result<bool, AccessError> {
        let key_len = self.key_len;
        Ok(self.pool.read(page, |p| {
            let d = p.bytes();
            node::count(d) * DIR + node::live_bytes(d, key_len) < Self::underfull_threshold()
        })?)
    }

    fn delete_rec(&self, page: PageId, key: &[u8]) -> Result<bool, AccessError> {
        let key_len = self.key_len;
        let (leaf, child_pos, child) = self.pool.read(page, |p| {
            let d = p.bytes();
            if node::is_leaf(d) {
                (true, 0, NO_PAGE)
            } else {
                let pos = match node::search(d, key, key_len) {
                    Ok(i) => i + 1,
                    Err(i) => i,
                };
                let child = if pos == 0 {
                    node::next(d)
                } else {
                    node::entry_child(d, pos - 1, key_len)
                };
                (false, pos, child)
            }
        })?;
        if leaf {
            return Ok(self.pool.write(page, |mut p| {
                let d = p.bytes_mut();
                match node::search(d, key, key_len) {
                    Ok(i) => {
                        node::remove_entry(d, i);
                        true
                    }
                    Err(_) => false,
                }
            })?);
        }
        let removed = self.delete_rec(child, key)?;
        if removed && self.is_underfull(child)? {
            self.try_merge_child(page, child_pos)?;
        }
        Ok(removed)
    }

    /// Try to merge the child at `pos` of `parent` with a sibling (the
    /// right-hand member of the pair is always folded into the left page,
    /// keeping the leftmost leaf stable). A merge only happens when the
    /// combined contents fit in one page.
    fn try_merge_child(&self, parent: PageId, pos: usize) -> Result<(), AccessError> {
        let key_len = self.key_len;
        let n = self.pool.read(parent, |p| node::count(p.bytes()))?;
        if n == 0 {
            return Ok(()); // single child: nothing to merge with here
        }
        // Prefer merging with the right sibling; fall back to the left.
        let left_pos = if pos < n { pos } else { pos - 1 };
        let (left, right, sep) = self.pool.read(parent, |p| {
            let d = p.bytes();
            let child_at = |i: usize| {
                if i == 0 {
                    node::next(d)
                } else {
                    node::entry_child(d, i - 1, key_len)
                }
            };
            (
                child_at(left_pos),
                child_at(left_pos + 1),
                node::entry_key(d, left_pos, key_len).to_vec(),
            )
        })?;

        let (l_leaf, l_entries, l_next) = self.pool.read(left, |p| {
            let d = p.bytes();
            (
                node::is_leaf(d),
                node::all_entries(d, key_len),
                node::next(d),
            )
        })?;
        let (r_leaf, r_entries, r_next) = self.pool.read(right, |p| {
            let d = p.bytes();
            (
                node::is_leaf(d),
                node::all_entries(d, key_len),
                node::next(d),
            )
        })?;
        debug_assert_eq!(l_leaf, r_leaf, "siblings are at the same level");

        let combined_bytes: usize = l_entries
            .iter()
            .chain(&r_entries)
            .map(|(k, v)| DIR + k.len() + v.len())
            .sum::<usize>()
            + if l_leaf { 0 } else { DIR + key_len + 4 };
        if combined_bytes > PAGE_SIZE - HDR {
            return Ok(()); // does not fit: leave the underfull node be
        }

        let mut merged = l_entries;
        let new_next;
        if l_leaf {
            merged.extend(r_entries);
            new_next = r_next; // unlink `right` from the leaf chain
            self.leaf_pages.set(self.leaf_pages.get() - 1);
            self.ra_end.set(NO_PAGE); // a freed pid punches a hole in the run
        } else {
            // Pull the separator down; the right node's child0 becomes its
            // payload child.
            merged.push((sep, r_next.to_le_bytes().to_vec()));
            merged.extend(r_entries);
            new_next = l_next; // internal: keep left's child0
        }
        self.pool.write(left, |mut p| {
            node::write_node(p.bytes_mut(), l_leaf, new_next, &merged, key_len)
        })?;
        // Remove the separator (and with it the pointer to `right`), then
        // recycle the emptied page.
        self.pool.write(parent, |mut p| {
            node::remove_entry(p.bytes_mut(), left_pos);
        })?;
        self.pool.free_page(right)?;
        Ok(())
    }

    /// Replace the value of an existing key. Returns `false` (and stores
    /// nothing) if the key is absent.
    pub fn update(&self, key: &[u8], val: &[u8]) -> Result<bool, AccessError> {
        self.check_entry(key, val)?;
        if !self.contains(key)? {
            return Ok(false);
        }
        self.insert(key, val)?;
        Ok(true)
    }

    /// Exhaustively check the tree's structural invariants: keys strictly
    /// ascending within every node, separators bounding their subtrees,
    /// the leaf chain visiting every leaf in global key order, and the
    /// entry count matching `len()`. Returns a description of the first
    /// violation. Used by tests and available to callers who want a
    /// consistency check after a bulk operation.
    pub fn validate(&self) -> Result<(), String> {
        let mut leaves_in_order = Vec::new();
        let entries = self.validate_node(self.root.get(), None, None, &mut leaves_in_order)?;
        if entries != self.len.get() {
            return Err(format!(
                "len() is {} but {} entries found",
                self.len.get(),
                entries
            ));
        }
        // The leaf chain must visit exactly the leaves discovered by the
        // recursive walk, in the same order.
        let mut chained = Vec::new();
        let mut page = self.first_leaf.get();
        let mut prev_last_key: Option<Vec<u8>> = None;
        while page != NO_PAGE {
            chained.push(page);
            let (first, last, next) = self
                .pool
                .read(page, |p| {
                    let d = p.bytes();
                    let n = node::count(d);
                    let first = (n > 0).then(|| node::entry_key(d, 0, self.key_len).to_vec());
                    let last = (n > 0).then(|| node::entry_key(d, n - 1, self.key_len).to_vec());
                    (first, last, node::next(d))
                })
                .map_err(|e| format!("leaf chain read failed: {e}"))?;
            if let (Some(prev), Some(first)) = (&prev_last_key, &first) {
                if first <= prev {
                    return Err(format!("leaf chain out of order at page {page}"));
                }
            }
            if let Some(last) = last {
                prev_last_key = Some(last);
            }
            page = next;
        }
        if chained != leaves_in_order {
            return Err(format!(
                "leaf chain {chained:?} disagrees with tree structure {leaves_in_order:?}"
            ));
        }
        Ok(())
    }

    fn validate_node(
        &self,
        page: PageId,
        lo: Option<&[u8]>,
        hi: Option<&[u8]>,
        leaves: &mut Vec<PageId>,
    ) -> Result<u64, String> {
        let key_len = self.key_len;
        let (leaf, keys, children) = self
            .pool
            .read(page, |p| {
                let d = p.bytes();
                let n = node::count(d);
                let keys: Vec<Vec<u8>> = (0..n)
                    .map(|i| node::entry_key(d, i, key_len).to_vec())
                    .collect();
                if node::is_leaf(d) {
                    (true, keys, Vec::new())
                } else {
                    let mut ch = vec![node::next(d)];
                    ch.extend((0..n).map(|i| node::entry_child(d, i, key_len)));
                    (false, keys, ch)
                }
            })
            .map_err(|e| format!("node {page} unreadable: {e}"))?;

        for w in keys.windows(2) {
            if w[0] >= w[1] {
                return Err(format!("node {page}: keys not strictly ascending"));
            }
        }
        if let (Some(lo), Some(first)) = (lo, keys.first()) {
            if first.as_slice() < lo {
                return Err(format!("node {page}: key below separator bound"));
            }
        }
        if let (Some(hi), Some(last)) = (hi, keys.last()) {
            if last.as_slice() >= hi {
                return Err(format!("node {page}: key at/above separator bound"));
            }
        }
        if leaf {
            leaves.push(page);
            return Ok(keys.len() as u64);
        }
        if children.len() != keys.len() + 1 {
            return Err(format!(
                "node {page}: {} children for {} keys",
                children.len(),
                keys.len()
            ));
        }
        let mut total = 0u64;
        for (i, &child) in children.iter().enumerate() {
            let child_lo = if i == 0 {
                lo
            } else {
                Some(keys[i - 1].as_slice())
            };
            let child_hi = if i == keys.len() {
                hi
            } else {
                Some(keys[i].as_slice())
            };
            total += self.validate_node(child, child_lo, child_hi, leaves)?;
        }
        Ok(total)
    }

    /// Inclusive range scan `lo..=hi`.
    pub fn range(&self, lo: &[u8], hi: &[u8]) -> Result<BTreeRange, AccessError> {
        if lo.len() != self.key_len || hi.len() != self.key_len {
            return Err(AccessError::BadKeyLen(lo.len().max(hi.len())));
        }
        let start_leaf = self.find_leaf(lo)?;
        Ok(BTreeRange {
            pool: Arc::clone(&self.pool),
            key_len: self.key_len,
            next_leaf: start_leaf,
            lo: lo.to_vec(),
            hi: hi.to_vec(),
            buffered: std::collections::VecDeque::new(),
            done: false,
            readahead: 0,
            ra_cur: 0,
            ra_horizon: 0,
            ra_end: self.ra_end.get(),
        })
    }

    /// Scan every entry in key order.
    pub fn scan_all(&self) -> BTreeRange {
        BTreeRange {
            pool: Arc::clone(&self.pool),
            key_len: self.key_len,
            next_leaf: self.first_leaf.get(),
            lo: vec![0u8; self.key_len],
            hi: vec![0xFFu8; self.key_len],
            buffered: std::collections::VecDeque::new(),
            done: false,
            readahead: 0,
            ra_cur: 0,
            ra_horizon: 0,
            ra_end: self.ra_end.get(),
        }
    }
}

/// Streaming, leaf-at-a-time range scan (see [`BTreeFile::range`]).
pub struct BTreeRange {
    pool: Arc<BufferPool>,
    key_len: usize,
    next_leaf: PageId,
    lo: Vec<u8>,
    hi: Vec<u8>,
    buffered: std::collections::VecDeque<(Vec<u8>, Vec<u8>)>,
    done: bool,
    readahead: usize,
    ra_cur: usize,
    ra_horizon: PageId,
    ra_end: PageId,
}

impl BTreeRange {
    /// Enable sequential readahead: whenever the scan reaches a leaf past
    /// the current horizon, the page ids up to `window` ahead — clamped
    /// to the tree's bulk-loaded leaf run, whose pids are consecutive in
    /// key order — are prefetched in one batched submission. On trees
    /// whose run has been broken by splits or merges the clamp is
    /// unknown and readahead stays off; prefetch is a pure hint and the
    /// entries yielded are identical either way. `window == 0` (the
    /// default) disables readahead entirely.
    ///
    /// On a synchronous pool the window ramps: the first prefetch covers
    /// at most 4 pages and each subsequent one doubles up to `window`,
    /// so a short scan wastes at most a few speculative pages while a
    /// long one still reaches full-window coalescing. On a pool with an
    /// async submission engine (`queue_depth > 1`) the ramp is skipped
    /// and the first prefetch already covers the full window —
    /// speculative pages overlap with the scan instead of blocking it,
    /// so eagerness costs latency nothing and keeps the queue fed.
    pub fn with_readahead(mut self, window: usize) -> Self {
        self.readahead = window;
        self.ra_cur = if self.pool.queue_depth() > 1 {
            window
        } else {
            window.min(4)
        };
        self
    }
}

impl Iterator for BTreeRange {
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(item) = self.buffered.pop_front() {
                return Some(item);
            }
            if self.done || self.next_leaf == NO_PAGE {
                return None;
            }
            let leaf = self.next_leaf;
            if self.readahead > 0
                && leaf >= self.ra_horizon
                && self.ra_end != NO_PAGE
                && leaf <= self.ra_end
            {
                let stop = leaf
                    .saturating_add(self.ra_cur as PageId)
                    .min(self.ra_end.saturating_add(1));
                let window: Vec<PageId> = (leaf..stop).collect();
                // Best-effort hint: failures never affect the scan itself.
                let _ = self.pool.prefetch(&window);
                self.ra_horizon = stop;
                self.ra_cur = (self.ra_cur * 2).min(self.readahead);
            }
            let _phase = PhaseGuard::enter_default(Phase::HeapFetch);
            heat::touch(heat::HeatClass::PageClass, PAGE_CLASS_LEAF);
            let (entries, next, past_hi) = self
                .pool
                .read(leaf, |p| {
                    let d = p.bytes();
                    let mut out = Vec::new();
                    let mut past = false;
                    for i in 0..node::count(d) {
                        let k = node::entry_key(d, i, self.key_len);
                        if k < self.lo.as_slice() {
                            continue;
                        }
                        if k > self.hi.as_slice() {
                            past = true;
                            break;
                        }
                        out.push((k.to_vec(), node::entry_val(d, i, self.key_len).to_vec()));
                    }
                    (out, node::next(d), past)
                })
                .expect("leaf chain page must be readable");
            self.next_leaf = next;
            self.done = past_hi;
            self.buffered.extend(entries);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::BTreeMap;

    fn pool(frames: usize) -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(frames).build())
    }

    fn key8(k: u64) -> Vec<u8> {
        k.to_be_bytes().to_vec()
    }

    #[test]
    fn empty_tree_behaviour() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.get(&key8(5)).unwrap(), None);
        assert_eq!(t.scan_all().count(), 0);
        assert_eq!(t.range(&key8(0), &key8(100)).unwrap().count(), 0);
        assert!(!t.delete(&key8(1)).unwrap());
    }

    #[test]
    fn insert_get_small() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        for k in [5u64, 1, 9, 3, 7] {
            assert!(t.insert(&key8(k), format!("v{k}").as_bytes()).unwrap());
        }
        assert_eq!(t.len(), 5);
        for k in [1u64, 3, 5, 7, 9] {
            assert_eq!(
                t.get(&key8(k)).unwrap().unwrap(),
                format!("v{k}").into_bytes()
            );
        }
        assert_eq!(t.get(&key8(4)).unwrap(), None);
    }

    #[test]
    fn upsert_replaces() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        assert!(t.insert(&key8(1), b"old").unwrap());
        assert!(!t.insert(&key8(1), b"new").unwrap());
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&key8(1)).unwrap().unwrap(), b"new");
        // Growing replacement.
        assert!(!t.insert(&key8(1), b"considerably longer value").unwrap());
        assert_eq!(
            t.get(&key8(1)).unwrap().unwrap(),
            b"considerably longer value"
        );
    }

    #[test]
    fn many_inserts_match_btreemap_model() {
        let t = BTreeFile::create(pool(16), 8).unwrap();
        let mut model = BTreeMap::new();
        // Insert in a scrambled order with ~120-byte values: forces multiple
        // levels of splits.
        let mut k = 1u64;
        for _ in 0..2000 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let key = k % 5000;
            let val = vec![(key % 251) as u8; 100 + (key % 40) as usize];
            t.insert(&key8(key), &val).unwrap();
            model.insert(key, val);
        }
        assert_eq!(t.len(), model.len() as u64);
        assert!(t.height() >= 2);
        for (key, val) in &model {
            assert_eq!(t.get(&key8(*key)).unwrap().unwrap(), *val, "key {key}");
        }
        // Full scan is sorted and complete.
        let scanned: Vec<u64> = t
            .scan_all()
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        assert_eq!(scanned, expect);
    }

    #[test]
    fn range_scan_bounds_are_inclusive() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        for k in 0..100u64 {
            t.insert(&key8(k), &[k as u8]).unwrap();
        }
        let got: Vec<u64> = t
            .range(&key8(10), &key8(20))
            .unwrap()
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(got, (10..=20).collect::<Vec<_>>());
    }

    #[test]
    fn range_scan_across_leaves() {
        let t = BTreeFile::create(pool(16), 8).unwrap();
        for k in 0..1000u64 {
            t.insert(&key8(k), &[0u8; 64]).unwrap();
        }
        assert!(t.leaf_pages() > 1);
        let got = t.range(&key8(100), &key8(899)).unwrap().count();
        assert_eq!(got, 800);
    }

    #[test]
    fn delete_removes_entries() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        for k in 0..50u64 {
            t.insert(&key8(k), b"x").unwrap();
        }
        for k in (0..50u64).step_by(2) {
            assert!(t.delete(&key8(k)).unwrap());
        }
        assert_eq!(t.len(), 25);
        for k in 0..50u64 {
            assert_eq!(t.get(&key8(k)).unwrap().is_some(), k % 2 == 1);
        }
    }

    #[test]
    fn update_only_touches_existing() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        t.insert(&key8(1), b"aaa").unwrap();
        assert!(t.update(&key8(1), b"bbb").unwrap());
        assert_eq!(t.get(&key8(1)).unwrap().unwrap(), b"bbb");
        assert!(!t.update(&key8(2), b"nope").unwrap());
        assert_eq!(t.get(&key8(2)).unwrap(), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn bulk_load_matches_inserts() {
        let p = pool(16);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..3000u64)
            .map(|k| (key8(k), vec![(k % 256) as u8; 90]))
            .collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries.clone(), DEFAULT_FILL).unwrap();
        assert_eq!(t.len(), 3000);
        for (k, v) in entries.iter().step_by(97) {
            assert_eq!(t.get(k).unwrap().unwrap(), *v);
        }
        let scanned: Vec<Vec<u8>> = t.scan_all().map(|(k, _)| k).collect();
        let expect: Vec<Vec<u8>> = entries.iter().map(|(k, _)| k.clone()).collect();
        assert_eq!(scanned, expect);
        // Tree accepts further inserts after bulk load.
        t.insert(&key8(999_999), b"late").unwrap();
        assert_eq!(t.get(&key8(999_999)).unwrap().unwrap(), b"late");
    }

    #[test]
    fn bulk_load_rejects_unsorted_and_duplicate() {
        let p = pool(8);
        let unsorted = vec![(key8(2), vec![]), (key8(1), vec![])];
        assert!(matches!(
            BTreeFile::bulk_load(Arc::clone(&p), 8, unsorted, DEFAULT_FILL),
            Err(AccessError::UnsortedBulkLoad)
        ));
        let dup = vec![(key8(1), vec![]), (key8(1), vec![])];
        assert!(matches!(
            BTreeFile::bulk_load(p, 8, dup, DEFAULT_FILL),
            Err(AccessError::UnsortedBulkLoad)
        ));
    }

    #[test]
    fn bulk_load_empty_gives_empty_tree() {
        let t = BTreeFile::bulk_load(pool(8), 8, Vec::new(), DEFAULT_FILL).unwrap();
        assert!(t.is_empty());
        assert_eq!(t.scan_all().count(), 0);
    }

    #[test]
    fn oversized_entries_rejected() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        let huge = vec![0u8; MAX_BTREE_ENTRY];
        assert!(matches!(
            t.insert(&key8(1), &huge),
            Err(AccessError::EntryTooLarge)
        ));
        let ok = vec![0u8; MAX_BTREE_ENTRY - 8];
        t.insert(&key8(1), &ok).unwrap();
    }

    #[test]
    fn wrong_key_len_rejected() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        assert!(matches!(t.get(&[1u8; 4]), Err(AccessError::BadKeyLen(4))));
        assert!(matches!(
            t.insert(&[1u8; 9], b""),
            Err(AccessError::BadKeyLen(9))
        ));
    }

    #[test]
    fn validator_accepts_trees_built_every_way() {
        // Bulk-loaded.
        let entries: Vec<_> = (0..2500u64).map(|k| (key8(k), vec![3u8; 80])).collect();
        let t = BTreeFile::bulk_load(pool(32), 8, entries, DEFAULT_FILL).unwrap();
        t.validate().unwrap();
        // Incrementally built with scrambled inserts and deletes.
        let t = BTreeFile::create(pool(32), 8).unwrap();
        let mut k = 99u64;
        for _ in 0..1500 {
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            t.insert(&key8(k % 4000), &[1u8; 100]).unwrap();
        }
        for d in (0..4000u64).step_by(7) {
            t.delete(&key8(d)).unwrap();
        }
        t.validate().unwrap();
        // Empty.
        BTreeFile::create(pool(8), 8).unwrap().validate().unwrap();
    }

    #[test]
    fn mass_deletion_merges_nodes_and_collapses_height() {
        let p = pool(64);
        let entries: Vec<_> = (0..5000u64).map(|k| (key8(k), vec![7u8; 90])).collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        let tall = t.height();
        assert!(tall >= 3);
        // Delete all but a sliver.
        for k in 0..5000u64 {
            if k % 100 != 0 {
                assert!(t.delete(&key8(k)).unwrap());
            }
        }
        assert_eq!(t.len(), 50);
        t.validate().unwrap();
        assert!(
            t.height() < tall,
            "mass deletion must collapse levels ({} -> {})",
            tall,
            t.height()
        );
        // Survivors intact, in order, and the tree still accepts inserts.
        let keys: Vec<u64> = t
            .scan_all()
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(keys, (0..5000).step_by(100).collect::<Vec<_>>());
        for k in 0..200u64 {
            t.insert(&key8(k * 3 + 1), &[1u8; 90]).unwrap();
        }
        t.validate().unwrap();
    }

    #[test]
    fn deletion_recycles_pages() {
        let p = pool(64);
        let entries: Vec<_> = (0..4000u64).map(|k| (key8(k), vec![5u8; 90])).collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        for k in 0..4000u64 {
            if k % 50 != 0 {
                t.delete(&key8(k)).unwrap();
            }
        }
        t.validate().unwrap();
        assert!(
            p.free_pages() > 10,
            "merged-away pages must reach the free list"
        );
        let before = p.num_pages();
        // Rebuilding a relation of similar size reuses the freed pages.
        for k in 10_000..10_500u64 {
            t.insert(&key8(k), &[9u8; 90]).unwrap();
        }
        assert!(
            p.num_pages() - before < 40,
            "inserts should mostly reuse freed pages"
        );
        t.validate().unwrap();
    }

    #[test]
    fn delete_everything_then_reuse() {
        let t = BTreeFile::create(pool(32), 8).unwrap();
        for k in 0..800u64 {
            t.insert(&key8(k), &[2u8; 100]).unwrap();
        }
        for k in 0..800u64 {
            assert!(t.delete(&key8(k)).unwrap());
        }
        assert!(t.is_empty());
        t.validate().unwrap();
        assert_eq!(t.scan_all().count(), 0);
        // Reuse after total deletion.
        t.insert(&key8(42), b"back").unwrap();
        assert_eq!(t.get(&key8(42)).unwrap().unwrap(), b"back");
        t.validate().unwrap();
    }

    #[test]
    fn validator_catches_len_divergence() {
        let t = BTreeFile::create(pool(8), 8).unwrap();
        t.insert(&key8(1), b"x").unwrap();
        // Corrupt the in-memory length.
        t.len.set(5);
        let err = t.validate().unwrap_err();
        assert!(err.contains("len()"), "got {err}");
    }

    #[test]
    fn point_lookup_cost_is_height_when_cold() {
        let p = pool(4);
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..5000u64).map(|k| (key8(k), vec![7u8; 80])).collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        p.flush_and_clear().unwrap();
        let before = p.stats().reads();
        t.get(&key8(2500)).unwrap().unwrap();
        let reads = p.stats().reads() - before;
        assert_eq!(
            reads,
            t.height() as u64,
            "cold lookup reads one page per level"
        );
    }

    #[test]
    fn get_many_matches_a_loop_of_gets() {
        let p = pool(64);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..4000u64)
            .map(|k| (key8(k * 2), vec![(k % 251) as u8; 70]))
            .collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        // Unsorted probe set with duplicates, misses (odd keys), and an
        // out-of-range key that lands on the rightmost leaf.
        let probe: Vec<Vec<u8>> = [3999u64, 4, 100, 4, 7777, 0, 9_999_999, 2500, 101]
            .iter()
            .map(|&k| key8(k))
            .collect();
        let refs: Vec<&[u8]> = probe.iter().map(Vec::as_slice).collect();
        let batched = t.get_many(&refs).unwrap();
        let singly: Vec<Option<Vec<u8>>> = probe.iter().map(|k| t.get(k).unwrap()).collect();
        assert_eq!(batched, singly);
        assert!(batched[1].is_some() && batched[0].is_none());
        // Bad key length is rejected up front.
        assert!(matches!(
            t.get_many(&[&[1u8, 2][..]]),
            Err(AccessError::BadKeyLen(2))
        ));
        assert_eq!(t.get_many(&[]).unwrap(), Vec::<Option<Vec<u8>>>::new());
    }

    #[test]
    fn get_many_descends_once_per_leaf_run() {
        let p = pool(64);
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            (0..4000u64).map(|k| (key8(k), vec![9u8; 70])).collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();
        // A dense sorted run confined to a handful of leaves.
        let probe: Vec<Vec<u8>> = (1000..1100u64).map(key8).collect();
        let refs: Vec<&[u8]> = probe.iter().map(Vec::as_slice).collect();

        p.flush_and_clear().unwrap();
        let t0 = p.stats().snapshot();
        let got = t.get_many(&refs).unwrap();
        let batched_reads = p.stats().snapshot().since(&t0).reads;
        assert!(got.iter().all(Option::is_some));

        p.flush_and_clear().unwrap();
        let t0 = p.stats().snapshot();
        for k in &probe {
            t.get(k).unwrap().unwrap();
        }
        let loop_reads = p.stats().snapshot().since(&t0).reads;

        // Both variants fault each distinct page at most once (the loop's
        // repeated descents hit warm inner pages), so batching must never
        // read more — and its leaf fetches must go through batched,
        // run-coalesced submissions.
        assert!(
            batched_reads <= loop_reads,
            "batched {batched_reads} > loop {loop_reads}"
        );
        assert!(p.stats().batch_reads() > 0, "leaf fetches were batched");
        assert!(
            p.stats().coalesced_runs() < p.stats().batch_reads(),
            "adjacent bulk-loaded leaves coalesce into fewer submissions"
        );
    }

    #[test]
    fn readahead_scan_yields_identical_entries() {
        let p = pool(64);
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..3000u64)
            .map(|k| (key8(k), vec![(k % 200) as u8; 80]))
            .collect();
        let t = BTreeFile::bulk_load(Arc::clone(&p), 8, entries, DEFAULT_FILL).unwrap();

        p.flush_and_clear().unwrap();
        let plain: Vec<(Vec<u8>, Vec<u8>)> = t.scan_all().collect();
        p.flush_and_clear().unwrap();
        let ahead: Vec<(Vec<u8>, Vec<u8>)> = t.scan_all().with_readahead(8).collect();
        assert_eq!(plain, ahead);
        assert!(
            p.stats().prefetch_issued() > 0,
            "readahead issued prefetches"
        );
        assert!(
            p.stats().prefetch_hits() > 0,
            "sequential leaves turned prefetches into demand hits"
        );

        // Bounded range scans are unaffected in content too.
        p.flush_and_clear().unwrap();
        let r1: Vec<_> = t.range(&key8(500), &key8(700)).unwrap().collect();
        let r2: Vec<_> = t
            .range(&key8(500), &key8(700))
            .unwrap()
            .with_readahead(4)
            .collect();
        assert_eq!(r1, r2);
    }
}
