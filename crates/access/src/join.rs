//! Join operators.
//!
//! The BFS strategies of Sec. 3.1 join the sorted temporary of OIDs against
//! the OID-ordered ChildRel B-tree with a **merge join**; at low NumTop the
//! optimizer instead picks **iterative substitution** (an index nested-loop
//! probe per OID). The merge join here consumes two sorted streams; the
//! probe-side helper wraps B-tree lookups.

use crate::btree::BTreeFile;
use crate::AccessError;

/// Item yielded by [`iterative_substitution`]: the probe's `(key, value)`
/// match, `None` when the key is absent.
pub type ProbeResult = Result<Option<(Vec<u8>, Vec<u8>)>, AccessError>;

/// Merge join between a sorted stream of (possibly duplicated) keys and a
/// sorted stream of unique `(key, value)` entries.
///
/// Emits one `(key, value)` pair per left key that has a match — duplicate
/// left keys (shared subobjects collected from several parents) each match
/// again, exactly like the paper's `person.OID = temp.OID` join where
/// `temp` may contain duplicates.
pub fn merge_join<L, R>(left: L, right: R) -> MergeJoin<L, R>
where
    L: Iterator<Item = Vec<u8>>,
    R: Iterator<Item = (Vec<u8>, Vec<u8>)>,
{
    MergeJoin {
        left,
        right,
        current: None,
    }
}

/// Iterator produced by [`merge_join`].
pub struct MergeJoin<L, R>
where
    L: Iterator<Item = Vec<u8>>,
    R: Iterator<Item = (Vec<u8>, Vec<u8>)>,
{
    left: L,
    right: R,
    /// Most recently read right entry not yet known to be behind the left
    /// cursor (right keys are unique so one is enough).
    current: Option<(Vec<u8>, Vec<u8>)>,
}

impl<L, R> Iterator for MergeJoin<L, R>
where
    L: Iterator<Item = Vec<u8>>,
    R: Iterator<Item = (Vec<u8>, Vec<u8>)>,
{
    type Item = (Vec<u8>, Vec<u8>);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let key = self.left.next()?;
            // Advance the right side until current.key >= key.
            loop {
                match &self.current {
                    Some((ck, _)) if ck.as_slice() < key.as_slice() => {
                        self.current = self.right.next();
                    }
                    Some((ck, cv)) if ck.as_slice() == key.as_slice() => {
                        return Some((key, cv.clone()));
                    }
                    Some(_) => break, // right is ahead: left key unmatched
                    None => {
                        self.current = Some(self.right.next()?); // right exhausted -> done
                    }
                }
            }
        }
    }
}

/// Iterative substitution: probe `tree` once per key, in order, yielding
/// matches. Each cold probe costs one page per tree level, which is why
/// this plan wins only when the key list is short (Fig. 3, low NumTop).
pub fn iterative_substitution<'a>(
    keys: impl Iterator<Item = Vec<u8>> + 'a,
    tree: &'a BTreeFile,
) -> impl Iterator<Item = ProbeResult> + 'a {
    keys.map(move |k| {
        let v = tree.get(&k)?;
        Ok(v.map(|v| (k, v)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_pagestore::BufferPool;
    use std::sync::Arc;

    fn keyed(keys: &[u64]) -> Vec<Vec<u8>> {
        keys.iter().map(|k| k.to_be_bytes().to_vec()).collect()
    }

    fn entries(keys: &[u64]) -> Vec<(Vec<u8>, Vec<u8>)> {
        keys.iter()
            .map(|k| (k.to_be_bytes().to_vec(), format!("v{k}").into_bytes()))
            .collect()
    }

    #[test]
    fn basic_merge_join() {
        let left = keyed(&[1, 3, 5, 7]);
        let right = entries(&[2, 3, 5, 6, 8]);
        let out: Vec<u64> = merge_join(left.into_iter(), right.into_iter())
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![3, 5]);
    }

    #[test]
    fn duplicate_left_keys_match_repeatedly() {
        let left = keyed(&[3, 3, 3, 5]);
        let right = entries(&[3, 5]);
        let out: Vec<(u64, Vec<u8>)> = merge_join(left.into_iter(), right.into_iter())
            .map(|(k, v)| (u64::from_be_bytes(k.try_into().unwrap()), v))
            .collect();
        assert_eq!(out.len(), 4);
        assert!(out[..3].iter().all(|(k, v)| *k == 3 && v == b"v3"));
        assert_eq!(out[3].0, 5);
    }

    #[test]
    fn empty_sides() {
        let out: Vec<_> = merge_join(std::iter::empty(), entries(&[1, 2]).into_iter()).collect();
        assert!(out.is_empty());
        let out: Vec<_> = merge_join(keyed(&[1, 2]).into_iter(), std::iter::empty()).collect();
        assert!(out.is_empty());
    }

    #[test]
    fn left_keys_past_right_end() {
        let left = keyed(&[1, 9, 10]);
        let right = entries(&[1, 2]);
        let out: Vec<u64> = merge_join(left.into_iter(), right.into_iter())
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn iterative_substitution_probes_tree() {
        let pool = Arc::new(BufferPool::builder().capacity(8).build());
        let tree = BTreeFile::bulk_load(pool, 8, entries(&[1, 2, 3, 4, 5]), 0.9).unwrap();
        let keys = keyed(&[2, 4, 9]);
        let out: Vec<_> = iterative_substitution(keys.into_iter(), &tree)
            .collect::<Result<Vec<_>, _>>()
            .unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].as_ref().unwrap().1, b"v2");
        assert_eq!(out[1].as_ref().unwrap().1, b"v4");
        assert!(out[2].is_none());
    }
}
