//! A persistent catalog of access-method files.
//!
//! B-trees, heap files and hash files keep their structural metadata
//! (roots, chains, bucket directories) in memory; to survive a process
//! restart over a [`cor_pagestore::FileDisk`] store, that metadata is
//! saved into a **catalog page** — by convention page 0, the first page
//! allocated in a fresh store — as named entries. Reopening a database is
//! then: open the disk, read the catalog, reattach every file by name.
//!
//! The catalog reuses the slotted-page machinery: one record per entry,
//! `[kind: u8][name_len: u8][name][metadata]`. A 2 KB page holds dozens of
//! entries — ample for this workspace's fixed schemas. [`Catalog::save`]
//! replaces an existing entry of the same name.

use crate::btree::{BTreeFile, BTreeMeta};
use crate::hash::{HashFile, HashMeta};
use crate::heap::{HeapFile, HeapMeta};
use crate::isam::IsamIndex;
use crate::AccessError;
use cor_pagestore::{BufferPool, PageId, NO_PAGE};
use std::sync::Arc;

const KIND_BTREE: u8 = 0;
const KIND_HEAP: u8 = 1;
const KIND_HASH: u8 = 2;
const KIND_ISAM: u8 = 3;
const KIND_BLOB: u8 = 4;

/// Payload bytes per blob overflow page: one record per page, its first
/// four bytes chaining to the next page.
const BLOB_CHUNK: usize = cor_pagestore::MAX_RECORD - 4;

/// Metadata of one cataloged file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileMeta {
    /// A B-tree.
    BTree(BTreeMeta),
    /// A heap file.
    Heap(HeapMeta),
    /// A hash file.
    Hash(HashMeta),
    /// A static ISAM index (stored as its underlying packed B-tree).
    Isam(BTreeMeta),
}

/// Errors specific to catalog handling, folded into [`AccessError`] via
/// its `Codec` variant would be misleading, so they get a dedicated enum.
#[derive(Debug)]
pub enum CatalogError {
    /// The storage layer failed.
    Access(AccessError),
    /// The catalog page has no room for another entry.
    CatalogFull,
    /// No entry with the requested name.
    NotFound(String),
    /// Entry exists but holds a different kind of file.
    WrongKind {
        /// The entry name.
        name: String,
        /// What the caller asked for.
        expected: &'static str,
    },
    /// The catalog page contents did not parse.
    Corrupt(&'static str),
}

impl std::fmt::Display for CatalogError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CatalogError::Access(e) => write!(f, "catalog storage error: {e}"),
            CatalogError::CatalogFull => write!(f, "catalog page full"),
            CatalogError::NotFound(n) => write!(f, "no catalog entry {n:?}"),
            CatalogError::WrongKind { name, expected } => {
                write!(f, "catalog entry {name:?} is not a {expected}")
            }
            CatalogError::Corrupt(what) => write!(f, "corrupt catalog: {what}"),
        }
    }
}

impl std::error::Error for CatalogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CatalogError::Access(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AccessError> for CatalogError {
    fn from(e: AccessError) -> Self {
        CatalogError::Access(e)
    }
}

impl From<cor_pagestore::BufferError> for CatalogError {
    fn from(e: cor_pagestore::BufferError) -> Self {
        CatalogError::Access(AccessError::Buffer(e))
    }
}

/// A named directory of access-method files stored in one page.
///
/// ```
/// use cor_access::{BTreeFile, Catalog};
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
/// use std::sync::Arc;
///
/// let pool = Arc::new(BufferPool::builder().capacity(8).build());
/// let catalog = Catalog::create(Arc::clone(&pool)).unwrap(); // lands on page 0
/// let tree = BTreeFile::create(Arc::clone(&pool), 8).unwrap();
/// tree.insert(&1u64.to_be_bytes(), b"v").unwrap();
/// catalog.save_btree("person", &tree).unwrap();
/// // ... later (or after a FileDisk restart): reattach by name.
/// let again = catalog.open_btree("person").unwrap();
/// assert_eq!(again.get(&1u64.to_be_bytes()).unwrap().unwrap(), b"v");
/// ```
pub struct Catalog {
    pool: Arc<BufferPool>,
    page: PageId,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a>(&'a [u8]);

impl<'a> Reader<'a> {
    fn u16(&mut self) -> Result<u16, CatalogError> {
        let b = self.bytes(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, CatalogError> {
        let b = self.bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64, CatalogError> {
        let b = self.bytes(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn bytes(&mut self, n: usize) -> Result<&'a [u8], CatalogError> {
        if self.0.len() < n {
            return Err(CatalogError::Corrupt("truncated entry"));
        }
        let (h, t) = self.0.split_at(n);
        self.0 = t;
        Ok(h)
    }
}

fn encode_meta(meta: &FileMeta) -> Vec<u8> {
    let mut out = Vec::with_capacity(40);
    match meta {
        FileMeta::BTree(m) | FileMeta::Isam(m) => {
            out.extend_from_slice(&m.key_len.to_le_bytes());
            push_u32(&mut out, m.root);
            push_u32(&mut out, m.first_leaf);
            push_u64(&mut out, m.len);
            push_u32(&mut out, m.height);
            push_u32(&mut out, m.leaf_pages);
        }
        FileMeta::Heap(m) => {
            push_u32(&mut out, m.first);
            push_u32(&mut out, m.last);
            push_u64(&mut out, m.len);
            push_u32(&mut out, m.pages);
        }
        FileMeta::Hash(m) => {
            push_u32(&mut out, m.first_bucket);
            push_u32(&mut out, m.num_buckets);
            push_u64(&mut out, m.len);
        }
    }
    out
}

fn decode_meta(kind: u8, bytes: &[u8]) -> Result<FileMeta, CatalogError> {
    let mut r = Reader(bytes);
    match kind {
        KIND_BTREE | KIND_ISAM => {
            let m = BTreeMeta {
                key_len: r.u16()?,
                root: r.u32()?,
                first_leaf: r.u32()?,
                len: r.u64()?,
                height: r.u32()?,
                leaf_pages: r.u32()?,
            };
            Ok(if kind == KIND_BTREE {
                FileMeta::BTree(m)
            } else {
                FileMeta::Isam(m)
            })
        }
        KIND_HEAP => Ok(FileMeta::Heap(HeapMeta {
            first: r.u32()?,
            last: r.u32()?,
            len: r.u64()?,
            pages: r.u32()?,
        })),
        KIND_HASH => Ok(FileMeta::Hash(HashMeta {
            first_bucket: r.u32()?,
            num_buckets: r.u32()?,
            len: r.u64()?,
        })),
        KIND_BLOB => Err(CatalogError::Corrupt(
            "blob entries are read with get_blob, not get",
        )),
        _ => Err(CatalogError::Corrupt("unknown entry kind")),
    }
}

fn kind_of(meta: &FileMeta) -> u8 {
    match meta {
        FileMeta::BTree(_) => KIND_BTREE,
        FileMeta::Heap(_) => KIND_HEAP,
        FileMeta::Hash(_) => KIND_HASH,
        FileMeta::Isam(_) => KIND_ISAM,
    }
}

impl Catalog {
    /// Create a fresh catalog in a newly allocated page. Call this before
    /// creating any relations so the catalog lands on page 0 and
    /// [`Self::open`] can find it after a restart.
    pub fn create(pool: Arc<BufferPool>) -> Result<Self, CatalogError> {
        let page = pool.allocate_page()?;
        pool.write(page, |mut p| p.init())?;
        Ok(Catalog { pool, page })
    }

    /// Open the catalog of an existing store (page 0).
    pub fn open(pool: Arc<BufferPool>) -> Result<Self, CatalogError> {
        if pool.num_pages() == 0 {
            return Err(CatalogError::Corrupt("empty store has no catalog"));
        }
        Ok(Catalog { pool, page: 0 })
    }

    /// The catalog's page id.
    pub fn page(&self) -> PageId {
        self.page
    }

    /// Store or replace the entry `name`.
    pub fn save(&self, name: &str, meta: FileMeta) -> Result<(), CatalogError> {
        assert!(name.len() <= 64, "catalog names are short identifiers");
        let mut record = vec![kind_of(&meta), name.len() as u8];
        record.extend_from_slice(name.as_bytes());
        record.extend_from_slice(&encode_meta(&meta));

        let existing = self.find_slot(name)?;
        let ok = self.pool.write(self.page, |mut p| {
            if let Some(slot) = existing {
                let _ = p.delete(slot);
            }
            p.insert(&record).is_ok()
        })?;
        if !ok {
            return Err(CatalogError::CatalogFull);
        }
        Ok(())
    }

    fn find_slot(&self, name: &str) -> Result<Option<cor_pagestore::SlotId>, CatalogError> {
        self.pool
            .read(self.page, |p| {
                for (slot, rec) in p.records() {
                    if let Some((n, _, _)) = split_record(rec) {
                        if n == name {
                            return Some(slot);
                        }
                    }
                }
                None
            })
            .map_err(Into::into)
    }

    /// Fetch the entry `name`.
    pub fn get(&self, name: &str) -> Result<FileMeta, CatalogError> {
        let found = self.pool.read(self.page, |p| {
            for (_, rec) in p.records() {
                if let Some((n, kind, meta)) = split_record(rec) {
                    if n == name {
                        return Some((kind, meta.to_vec()));
                    }
                }
            }
            None
        })?;
        let (kind, bytes) = found.ok_or_else(|| CatalogError::NotFound(name.to_string()))?;
        decode_meta(kind, &bytes)
    }

    /// List all entry names.
    pub fn names(&self) -> Result<Vec<String>, CatalogError> {
        Ok(self.pool.read(self.page, |p| {
            p.records()
                .filter_map(|(_, rec)| split_record(rec).map(|(n, _, _)| n.to_string()))
                .collect()
        })?)
    }

    /// Remove the entry `name`. Returns whether it existed.
    pub fn remove(&self, name: &str) -> Result<bool, CatalogError> {
        let Some(slot) = self.find_slot(name)? else {
            return Ok(false);
        };
        self.pool.write(self.page, |mut p| p.delete(slot))?.ok();
        Ok(true)
    }

    // --- typed convenience wrappers ---

    /// Persist a B-tree under `name`.
    pub fn save_btree(&self, name: &str, tree: &BTreeFile) -> Result<(), CatalogError> {
        self.save(name, FileMeta::BTree(tree.metadata()))
    }

    /// Reattach a persisted B-tree.
    pub fn open_btree(&self, name: &str) -> Result<BTreeFile, CatalogError> {
        match self.get(name)? {
            FileMeta::BTree(m) => Ok(BTreeFile::from_metadata(Arc::clone(&self.pool), m)?),
            _ => Err(CatalogError::WrongKind {
                name: name.to_string(),
                expected: "B-tree",
            }),
        }
    }

    /// Persist a heap file under `name`.
    pub fn save_heap(&self, name: &str, heap: &HeapFile) -> Result<(), CatalogError> {
        self.save(name, FileMeta::Heap(heap.metadata()))
    }

    /// Reattach a persisted heap file.
    pub fn open_heap(&self, name: &str) -> Result<HeapFile, CatalogError> {
        match self.get(name)? {
            FileMeta::Heap(m) => Ok(HeapFile::from_metadata(Arc::clone(&self.pool), m)),
            _ => Err(CatalogError::WrongKind {
                name: name.to_string(),
                expected: "heap file",
            }),
        }
    }

    /// Persist a hash file under `name`.
    pub fn save_hash(&self, name: &str, hash: &HashFile) -> Result<(), CatalogError> {
        self.save(name, FileMeta::Hash(hash.metadata()))
    }

    /// Reattach a persisted hash file.
    pub fn open_hash(&self, name: &str) -> Result<HashFile, CatalogError> {
        match self.get(name)? {
            FileMeta::Hash(m) => Ok(HashFile::from_metadata(Arc::clone(&self.pool), m)),
            _ => Err(CatalogError::WrongKind {
                name: name.to_string(),
                expected: "hash file",
            }),
        }
    }

    /// Persist an ISAM index under `name`.
    pub fn save_isam(&self, name: &str, isam: &IsamIndex) -> Result<(), CatalogError> {
        self.save(name, FileMeta::Isam(isam.metadata()))
    }

    /// Reattach a persisted ISAM index.
    pub fn open_isam(&self, name: &str) -> Result<IsamIndex, CatalogError> {
        match self.get(name)? {
            FileMeta::Isam(m) => Ok(IsamIndex::from_metadata(Arc::clone(&self.pool), m)?),
            _ => Err(CatalogError::WrongKind {
                name: name.to_string(),
                expected: "ISAM index",
            }),
        }
    }

    // --- opaque blob entries ---

    /// Store or replace a named opaque blob. The payload lives in a chain
    /// of dedicated overflow pages (the catalog page holds only a pointer
    /// record), so a blob may exceed one page. The new chain is fully
    /// written before the pointer record is swapped, and the old chain is
    /// freed only afterwards: a crash between any two of those steps
    /// leaves the previously saved blob intact and readable.
    pub fn save_blob(&self, name: &str, bytes: &[u8]) -> Result<(), CatalogError> {
        assert!(name.len() <= 64, "catalog names are short identifiers");
        let old_chain = match self.blob_pointer(name)? {
            Some((_, first)) => self.chain_pages(first)?,
            None => Vec::new(),
        };
        // Write the chain back to front so each page can name its successor.
        let mut next = NO_PAGE;
        let chunks: Vec<&[u8]> = bytes.chunks(BLOB_CHUNK).collect();
        for chunk in chunks.iter().rev() {
            let pid = self.pool.allocate_page()?;
            let mut rec = Vec::with_capacity(4 + chunk.len());
            rec.extend_from_slice(&next.to_le_bytes());
            rec.extend_from_slice(chunk);
            self.pool.write(pid, |mut p| {
                p.init();
                p.insert(&rec).expect("blob chunk fits an empty page");
            })?;
            next = pid;
        }
        let mut record = vec![KIND_BLOB, name.len() as u8];
        record.extend_from_slice(name.as_bytes());
        push_u32(&mut record, bytes.len() as u32);
        push_u32(&mut record, next);
        let existing = self.find_slot(name)?;
        let ok = self.pool.write(self.page, |mut p| {
            if let Some(slot) = existing {
                let _ = p.delete(slot);
            }
            p.insert(&record).is_ok()
        })?;
        if !ok {
            return Err(CatalogError::CatalogFull);
        }
        for pid in old_chain {
            let _ = self.pool.free_page(pid);
        }
        Ok(())
    }

    /// Fetch the blob stored under `name`.
    pub fn get_blob(&self, name: &str) -> Result<Vec<u8>, CatalogError> {
        let Some((total, mut page)) = self.blob_pointer(name)? else {
            return Err(CatalogError::NotFound(name.to_string()));
        };
        let mut out = Vec::with_capacity(total as usize);
        while page != NO_PAGE {
            let rec = self
                .pool
                .read(page, |p| p.records().next().map(|(_, r)| r.to_vec()))?
                .ok_or(CatalogError::Corrupt("blob chain page has no record"))?;
            if rec.len() < 4 {
                return Err(CatalogError::Corrupt("short blob chunk"));
            }
            page = PageId::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]);
            out.extend_from_slice(&rec[4..]);
        }
        if out.len() != total as usize {
            return Err(CatalogError::Corrupt("blob length mismatch"));
        }
        Ok(out)
    }

    /// Does a blob entry `name` exist?
    pub fn has_blob(&self, name: &str) -> Result<bool, CatalogError> {
        Ok(self.blob_pointer(name)?.is_some())
    }

    /// Read a blob pointer record: `(payload length, first chain page)`.
    fn blob_pointer(&self, name: &str) -> Result<Option<(u32, PageId)>, CatalogError> {
        let found = self.pool.read(self.page, |p| {
            for (_, rec) in p.records() {
                if let Some((n, kind, meta)) = split_record(rec) {
                    if n == name && kind == KIND_BLOB {
                        return Some(meta.to_vec());
                    }
                }
            }
            None
        })?;
        let Some(meta) = found else { return Ok(None) };
        let mut r = Reader(&meta);
        Ok(Some((r.u32()?, r.u32()?)))
    }

    /// Collect the page ids of a blob chain starting at `page`.
    fn chain_pages(&self, mut page: PageId) -> Result<Vec<PageId>, CatalogError> {
        let mut out = Vec::new();
        while page != NO_PAGE {
            out.push(page);
            let next = self
                .pool
                .read(page, |p| {
                    p.records().next().and_then(|(_, rec)| {
                        (rec.len() >= 4)
                            .then(|| PageId::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]))
                    })
                })?
                .ok_or(CatalogError::Corrupt("blob chain page has no record"))?;
            page = next;
        }
        Ok(out)
    }
}

fn split_record(rec: &[u8]) -> Option<(&str, u8, &[u8])> {
    if rec.len() < 2 {
        return None;
    }
    let kind = rec[0];
    let name_len = rec[1] as usize;
    if rec.len() < 2 + name_len {
        return None;
    }
    let name = std::str::from_utf8(&rec[2..2 + name_len]).ok()?;
    Some((name, kind, &rec[2 + name_len..]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cor_pagestore::FileDisk;

    fn mem_pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::builder().capacity(16).build())
    }

    fn key8(k: u64) -> Vec<u8> {
        k.to_be_bytes().to_vec()
    }

    #[test]
    fn save_get_roundtrip_all_kinds() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();

        let tree = BTreeFile::create(Arc::clone(&pool), 8).unwrap();
        tree.insert(&key8(1), b"v").unwrap();
        cat.save_btree("tree", &tree).unwrap();

        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        heap.append(b"rec").unwrap();
        cat.save_heap("heap", &heap).unwrap();

        let hash = HashFile::create(Arc::clone(&pool), 4).unwrap();
        hash.put(b"k", b"v").unwrap();
        cat.save_hash("hash", &hash).unwrap();

        let isam = IsamIndex::build(Arc::clone(&pool), 8, vec![(key8(1), b"p".to_vec())]).unwrap();
        cat.save_isam("isam", &isam).unwrap();

        let mut names = cat.names().unwrap();
        names.sort();
        assert_eq!(names, vec!["hash", "heap", "isam", "tree"]);

        assert_eq!(
            cat.open_btree("tree")
                .unwrap()
                .get(&key8(1))
                .unwrap()
                .unwrap(),
            b"v"
        );
        assert_eq!(cat.open_heap("heap").unwrap().len(), 1);
        assert_eq!(
            cat.open_hash("hash").unwrap().get(b"k").unwrap().unwrap(),
            b"v"
        );
        assert_eq!(
            cat.open_isam("isam")
                .unwrap()
                .lookup(&key8(1))
                .unwrap()
                .unwrap(),
            b"p"
        );
    }

    #[test]
    fn save_replaces_existing_entry() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();
        let t1 = BTreeFile::create(Arc::clone(&pool), 8).unwrap();
        t1.insert(&key8(1), b"one").unwrap();
        cat.save_btree("t", &t1).unwrap();
        // Mutate and re-save: new metadata replaces old.
        for k in 0..200u64 {
            t1.insert(&key8(k), &[9u8; 80]).unwrap();
        }
        cat.save_btree("t", &t1).unwrap();
        assert_eq!(cat.names().unwrap().len(), 1);
        let reopened = cat.open_btree("t").unwrap();
        assert_eq!(reopened.len(), 200);
        assert_eq!(reopened.get(&key8(150)).unwrap().unwrap(), vec![9u8; 80]);
    }

    #[test]
    fn missing_and_wrong_kind_errors() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();
        assert!(matches!(cat.get("nope"), Err(CatalogError::NotFound(_))));
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        cat.save_heap("h", &heap).unwrap();
        assert!(matches!(
            cat.open_btree("h"),
            Err(CatalogError::WrongKind { .. })
        ));
        assert!(cat.remove("h").unwrap());
        assert!(!cat.remove("h").unwrap());
    }

    #[test]
    fn survives_a_real_restart_on_filedisk() {
        let dir = std::env::temp_dir().join(format!("cor-catalog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.pages");

        {
            let disk = FileDisk::open(&path).unwrap();
            let pool = Arc::new(
                BufferPool::builder()
                    .disk(Box::new(disk))
                    .capacity(16)
                    .build(),
            );
            let cat = Catalog::create(Arc::clone(&pool)).unwrap();
            let tree = BTreeFile::create(Arc::clone(&pool), 8).unwrap();
            for k in 0..500u64 {
                tree.insert(&key8(k), format!("value-{k}").as_bytes())
                    .unwrap();
            }
            cat.save_btree("persons", &tree).unwrap();
            pool.flush_all().unwrap();
        } // process "exits"

        let disk = FileDisk::open(&path).unwrap();
        let pool = Arc::new(
            BufferPool::builder()
                .disk(Box::new(disk))
                .capacity(16)
                .build(),
        );
        let cat = Catalog::open(Arc::clone(&pool)).unwrap();
        let tree = cat.open_btree("persons").unwrap();
        assert_eq!(tree.len(), 500);
        for k in [0u64, 250, 499] {
            assert_eq!(
                tree.get(&key8(k)).unwrap().unwrap(),
                format!("value-{k}").into_bytes()
            );
        }
        let range: Vec<_> = tree.range(&key8(10), &key8(12)).unwrap().collect();
        assert_eq!(range.len(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn blob_roundtrip_small_large_and_replace() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();
        assert!(!cat.has_blob("b").unwrap());
        assert!(matches!(cat.get_blob("b"), Err(CatalogError::NotFound(_))));

        cat.save_blob("b", b"small").unwrap();
        assert!(cat.has_blob("b").unwrap());
        assert_eq!(cat.get_blob("b").unwrap(), b"small");

        // Multi-page payload (3+ chain pages).
        let big: Vec<u8> = (0..3 * BLOB_CHUNK + 17).map(|i| (i % 251) as u8).collect();
        cat.save_blob("b", &big).unwrap();
        assert_eq!(cat.get_blob("b").unwrap(), big);

        // Replace with a shorter payload; the old chain pages are freed.
        let freed_before = pool.free_pages();
        cat.save_blob("b", b"short again").unwrap();
        assert_eq!(cat.get_blob("b").unwrap(), b"short again");
        assert!(
            pool.free_pages() > freed_before,
            "old overflow chain must be freed"
        );

        // Empty blob: no chain pages at all.
        cat.save_blob("empty", b"").unwrap();
        assert_eq!(cat.get_blob("empty").unwrap(), b"");
    }

    #[test]
    fn blobs_coexist_with_file_entries() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();
        let tree = BTreeFile::create(Arc::clone(&pool), 8).unwrap();
        tree.insert(&key8(1), b"v").unwrap();
        cat.save_btree("tree", &tree).unwrap();
        cat.save_blob("config", b"\x01\x02\x03").unwrap();
        assert_eq!(cat.names().unwrap().len(), 2);
        assert_eq!(
            cat.open_btree("tree")
                .unwrap()
                .get(&key8(1))
                .unwrap()
                .unwrap(),
            b"v"
        );
        assert_eq!(cat.get_blob("config").unwrap(), b"\x01\x02\x03");
        // A blob is not a file entry.
        assert!(matches!(cat.get("config"), Err(CatalogError::Corrupt(_))));
    }

    #[test]
    fn catalog_full_is_reported() {
        let pool = mem_pool();
        let cat = Catalog::create(Arc::clone(&pool)).unwrap();
        let heap = HeapFile::create(Arc::clone(&pool)).unwrap();
        let mut err = None;
        for i in 0..200 {
            // 64-byte names fill the page quickly.
            let name = format!("{:0>60}", i);
            if let Err(e) = cat.save_heap(&name, &heap) {
                err = Some(e);
                break;
            }
        }
        assert!(matches!(err, Some(CatalogError::CatalogFull)));
    }
}
