//! # cor-access
//!
//! Storage structures over the page store — the INGRES access-method
//! analogues the paper's experiments rely on:
//!
//! * [`heap`] — heap files (the BFS temporaries and sort runs);
//! * [`btree`] — B-trees on byte-comparable keys (`ParentRel`, `ChildRel`
//!   and `ClusterRel` are all "structured as B-trees" in the paper);
//! * [`isam`] — the static ISAM index kept on `ClusterRel.OID`;
//! * [`hash`] — static hash files (the `Cache` relation is "maintained as
//!   a hash relation, hashed on hashkey");
//! * [`sort`] — external merge sort feeding the BFS merge join;
//! * [`join`] — merge join and iterative substitution;
//! * [`record`] — the tuple ⇄ byte-record codec.

#![warn(missing_docs)]

pub mod btree;
pub mod catalog;
pub mod hash;
pub mod heap;
pub mod isam;
pub mod join;
pub mod record;
pub mod scan;
pub mod sort;
mod sync_cell;

pub use btree::{BTreeFile, BTreeMeta, BTreeRange, DEFAULT_FILL, MAX_BTREE_ENTRY};
pub use catalog::{Catalog, CatalogError, FileMeta};
pub use hash::{fnv1a64, HashFile, HashMeta};
pub use heap::{HeapFile, HeapMeta, HeapScan, RecordId};
pub use isam::IsamIndex;
pub use join::{iterative_substitution, merge_join, MergeJoin};
pub use record::{decode, encode, CodecError};
pub use scan::{count_where, scan_where};
pub use sort::{external_sort, SortedStream, DEFAULT_WORK_MEM};

use cor_pagestore::BufferError;

/// Errors from access-method operations.
#[derive(Debug)]
pub enum AccessError {
    /// The buffer pool or disk failed.
    Buffer(BufferError),
    /// A key of the wrong length was supplied.
    BadKeyLen(usize),
    /// A key/value pair too large for the access method.
    EntryTooLarge,
    /// Bulk-load input was not strictly ascending.
    UnsortedBulkLoad,
    /// A stored record failed to decode.
    Codec(CodecError),
}

impl std::fmt::Display for AccessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AccessError::Buffer(e) => write!(f, "buffer error: {e}"),
            AccessError::BadKeyLen(n) => write!(f, "bad key length {n}"),
            AccessError::EntryTooLarge => write!(f, "entry too large for access method"),
            AccessError::UnsortedBulkLoad => write!(f, "bulk load input not strictly ascending"),
            AccessError::Codec(e) => write!(f, "record codec error: {e}"),
        }
    }
}

impl std::error::Error for AccessError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AccessError::Buffer(e) => Some(e),
            AccessError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BufferError> for AccessError {
    fn from(e: BufferError) -> Self {
        AccessError::Buffer(e)
    }
}

impl From<CodecError> for AccessError {
    fn from(e: CodecError) -> Self {
        AccessError::Codec(e)
    }
}
