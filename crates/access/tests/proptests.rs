//! Property tests for the access methods: B-tree and hash file against
//! std collection models, external sort against `sort()`, record codec
//! round-trips.

use cor_access::{decode, encode, external_sort, BTreeFile, HashFile};
use cor_pagestore::BufferPool;
use cor_relational::{Oid, Schema, Tuple, Value, ValueType};
use proptest::prelude::*;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

fn pool(frames: usize) -> Arc<BufferPool> {
    Arc::new(BufferPool::builder().capacity(frames).build())
}

fn key8(k: u64) -> Vec<u8> {
    k.to_be_bytes().to_vec()
}

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u64, Vec<u8>),
    Delete(u64),
    Get(u64),
    Range(u64, u64),
}

fn arb_tree_op() -> impl Strategy<Value = TreeOp> {
    let key = 0u64..200;
    prop_oneof![
        4 => (key.clone(), proptest::collection::vec(any::<u8>(), 0..150))
            .prop_map(|(k, v)| TreeOp::Insert(k, v)),
        1 => key.clone().prop_map(TreeOp::Delete),
        2 => key.clone().prop_map(TreeOp::Get),
        1 => (key.clone(), key).prop_map(|(a, b)| TreeOp::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The B-tree behaves exactly like `BTreeMap` under arbitrary
    /// interleavings of insert/delete/get/range.
    #[test]
    fn btree_matches_btreemap(ops in proptest::collection::vec(arb_tree_op(), 1..120)) {
        let tree = BTreeFile::create(pool(32), 8).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let fresh = tree.insert(&key8(k), &v).unwrap();
                    prop_assert_eq!(fresh, !model.contains_key(&k));
                    model.insert(k, v);
                }
                TreeOp::Delete(k) => {
                    let removed = tree.delete(&key8(k)).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
                TreeOp::Get(k) => {
                    prop_assert_eq!(tree.get(&key8(k)).unwrap(), model.get(&k).cloned());
                }
                TreeOp::Range(lo, hi) => {
                    let got: Vec<(u64, Vec<u8>)> = tree
                        .range(&key8(lo), &key8(hi))
                        .unwrap()
                        .map(|(k, v)| (u64::from_be_bytes(k.try_into().unwrap()), v))
                        .collect();
                    let expect: Vec<(u64, Vec<u8>)> =
                        model.range(lo..=hi).map(|(k, v)| (*k, v.clone())).collect();
                    prop_assert_eq!(got, expect);
                }
            }
            prop_assert_eq!(tree.len(), model.len() as u64);
        }
        // Final full scan agrees and the structure is internally sound.
        let scanned: Vec<u64> = tree
            .scan_all()
            .map(|(k, _)| u64::from_be_bytes(k.try_into().unwrap()))
            .collect();
        let expect: Vec<u64> = model.keys().copied().collect();
        prop_assert_eq!(scanned, expect);
        prop_assert!(tree.validate().is_ok(), "invariant violation: {:?}", tree.validate());
    }

    /// Bulk load over any sorted input equals the same data inserted
    /// one-by-one.
    #[test]
    fn bulk_load_equals_incremental(
        keys in proptest::collection::btree_set(0u64..100_000, 0..300),
        fill in 0.4f64..1.0,
    ) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> =
            keys.iter().map(|&k| (key8(k), k.to_le_bytes().to_vec())).collect();
        let bulk = BTreeFile::bulk_load(pool(64), 8, entries.clone(), fill).unwrap();
        let incr = BTreeFile::create(pool(64), 8).unwrap();
        for (k, v) in &entries {
            incr.insert(k, v).unwrap();
        }
        prop_assert_eq!(bulk.len(), incr.len());
        let a: Vec<_> = bulk.scan_all().collect();
        let b: Vec<_> = incr.scan_all().collect();
        prop_assert_eq!(a, b);
        prop_assert!(bulk.validate().is_ok());
        prop_assert!(incr.validate().is_ok());
    }

    /// The hash file behaves like `HashMap` under put/get/delete.
    #[test]
    fn hash_file_matches_hashmap(
        ops in proptest::collection::vec(
            (0u64..100, proptest::option::of(proptest::collection::vec(any::<u8>(), 0..120))),
            1..100,
        )
    ) {
        let h = HashFile::create(pool(32), 4).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (k, v) in ops {
            match v {
                Some(v) => {
                    let fresh = h.put(&key8(k), &v).unwrap();
                    prop_assert_eq!(fresh, !model.contains_key(&k));
                    model.insert(k, v);
                }
                None => {
                    let removed = h.delete(&key8(k)).unwrap();
                    prop_assert_eq!(removed, model.remove(&k).is_some());
                }
            }
        }
        for (k, v) in &model {
            prop_assert_eq!(h.get(&key8(*k)).unwrap(), Some(v.clone()));
        }
        prop_assert_eq!(h.len(), model.len() as u64);
    }

    /// External sort equals std sort for any records and any work-memory
    /// budget (spilled or not), with and without dedup.
    #[test]
    fn external_sort_equals_std_sort(
        records in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..300),
        work_mem in 256usize..65_536,
        dedup in any::<bool>(),
    ) {
        let p = pool(16);
        let got: Vec<Vec<u8>> =
            external_sort(&p, records.clone().into_iter(), work_mem, dedup).unwrap().collect();
        let mut expect = records;
        expect.sort();
        if dedup {
            expect.dedup();
        }
        prop_assert_eq!(got, expect);
    }

    /// Record codec round-trips arbitrary well-typed tuples.
    #[test]
    fn record_codec_roundtrip(
        n in any::<i64>(),
        s in "\\PC*",
        rel in any::<u16>(),
        key in any::<u64>(),
        oids in proptest::collection::vec((any::<u16>(), any::<u64>()), 0..20),
        bytes in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let schema = Schema::new(&[
            ("i", ValueType::Int),
            ("s", ValueType::Str),
            ("o", ValueType::Oid),
            ("l", ValueType::OidList),
            ("b", ValueType::Bytes),
        ]);
        let tuple = Tuple::new(vec![
            Value::Int(n),
            Value::Str(s),
            Value::Oid(Oid::new(rel, key)),
            Value::OidList(oids.into_iter().map(|(r, k)| Oid::new(r, k)).collect()),
            Value::Bytes(bytes),
        ]);
        let encoded = encode(&schema, &tuple).unwrap();
        prop_assert_eq!(decode(&schema, &encoded).unwrap(), tuple);
    }
}
