//! Property tests for the page store: slotted pages against a vector
//! model, the buffer pool against a write-through model.

use cor_pagestore::{
    BatchIoSnapshot, BufferError, BufferPool, DiskError, IoStats, PageMut, PageView,
    ReplacementPolicy, SlotId, PAGE_SIZE,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum PageOp {
    Insert(Vec<u8>),
    Delete(usize),
    Update(usize, Vec<u8>),
}

fn arb_page_op() -> impl Strategy<Value = PageOp> {
    prop_oneof![
        3 => proptest::collection::vec(any::<u8>(), 0..300).prop_map(PageOp::Insert),
        1 => (0usize..40).prop_map(PageOp::Delete),
        1 => ((0usize..40), proptest::collection::vec(any::<u8>(), 0..300))
            .prop_map(|(i, d)| PageOp::Update(i, d)),
    ]
}

#[derive(Debug, Clone)]
enum PoolOp {
    Allocate(u32),
    Free(usize),
    Write(usize, u32),
    Read(usize),
}

fn arb_pool_op() -> impl Strategy<Value = PoolOp> {
    prop_oneof![
        3 => any::<u32>().prop_map(PoolOp::Allocate),
        1 => any::<usize>().prop_map(PoolOp::Free),
        2 => (any::<usize>(), any::<u32>()).prop_map(|(i, v)| PoolOp::Write(i, v)),
        2 => any::<usize>().prop_map(PoolOp::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// A slotted page behaves like a map from slot to record under any
    /// sequence of inserts, deletes and updates.
    #[test]
    fn slotted_page_matches_model(ops in proptest::collection::vec(arb_page_op(), 1..80)) {
        let mut buf = [0u8; PAGE_SIZE];
        let mut page = PageMut::new(&mut buf);
        page.init();
        let mut model: HashMap<SlotId, Vec<u8>> = HashMap::new();

        for op in ops {
            match op {
                PageOp::Insert(data) => {
                    if let Ok(slot) = page.insert(&data) {
                        // A granted slot must not clobber a live record.
                        prop_assert!(!model.contains_key(&slot), "slot {slot} reused while live");
                        model.insert(slot, data);
                    }
                }
                PageOp::Delete(i) => {
                    let slots: Vec<SlotId> = model.keys().copied().collect();
                    if let Some(&slot) = slots.get(i % slots.len().max(1)) {
                        prop_assert!(page.delete(slot).is_ok());
                        model.remove(&slot);
                    }
                }
                PageOp::Update(i, data) => {
                    let slots: Vec<SlotId> = model.keys().copied().collect();
                    if let Some(&slot) = slots.get(i % slots.len().max(1)) {
                        if page.update(slot, &data).is_ok() {
                            model.insert(slot, data);
                        }
                    }
                }
            }
            // Every model record is readable and equal.
            for (slot, data) in &model {
                prop_assert_eq!(page.view().record(*slot), Some(data.as_slice()));
            }
        }
        // The iterator agrees with the model exactly.
        let seen: HashMap<SlotId, Vec<u8>> =
            page.view().records().map(|(s, r)| (s, r.to_vec())).collect();
        prop_assert_eq!(seen, model);
    }

    /// Compaction preserves all live records.
    #[test]
    fn compaction_preserves_records(records in proptest::collection::vec(
        proptest::collection::vec(any::<u8>(), 1..120), 1..12)
    ) {
        let mut buf = [0u8; PAGE_SIZE];
        let mut page = PageMut::new(&mut buf);
        page.init();
        let mut live = Vec::new();
        for r in &records {
            if let Ok(slot) = page.insert(r) {
                live.push((slot, r.clone()));
            }
        }
        page.compact();
        for (slot, r) in &live {
            prop_assert_eq!(page.view().record(*slot), Some(r.as_slice()));
        }
    }

    /// The buffer pool is a faithful cache: data written through it is
    /// always read back identically, whatever the eviction pressure.
    #[test]
    fn buffer_pool_is_transparent(
        capacity in 1usize..8,
        writes in proptest::collection::vec((0usize..16, any::<u8>()), 1..60),
    ) {
        let pool = BufferPool::builder().capacity(capacity).build();
        let pids: Vec<_> = (0..16).map(|_| pool.allocate_page().unwrap()).collect();
        for &pid in &pids {
            pool.write(pid, |mut p| p.init()).unwrap();
        }
        let mut model: HashMap<u32, u8> = HashMap::new();
        for (i, byte) in writes {
            let pid = pids[i];
            pool.write(pid, |mut p| {
                let view = PageView::new(p.bytes_mut());
                let _ = view;
                // Store the byte in the page's flags word.
                p.set_flags(byte as u32);
            })
            .unwrap();
            model.insert(pid, byte);
            // Read back some page and check against the model.
            for (&mpid, &mbyte) in &model {
                let got = pool.read(mpid, |p| p.flags()).unwrap();
                prop_assert_eq!(got, mbyte as u32, "page {} corrupted", mpid);
            }
        }
    }

    /// Sharding is invisible to single-threaded callers: the same op
    /// sequence against a 1-shard and an 8-shard pool observes the same
    /// values at every read and leaves identical page contents (pages are
    /// tracked by allocation order — physical ids may differ because each
    /// shard keeps its own free list).
    #[test]
    fn one_shard_and_eight_shards_agree(
        capacity in 8usize..16,
        ops in proptest::collection::vec(arb_pool_op(), 1..120),
    ) {
        let pool1 = BufferPool::builder().capacity(capacity).shards(1).build();
        let pool8 = BufferPool::builder().capacity(capacity).shards(8).build();
        // Live pages by allocation order: (pid in pool1, pid in pool8).
        let mut live: Vec<(u32, u32)> = Vec::new();
        for op in ops {
            match op {
                PoolOp::Allocate(v) => {
                    let a = pool1.allocate_page().unwrap();
                    let b = pool8.allocate_page().unwrap();
                    pool1.write(a, |mut p| { p.init(); p.set_flags(v); }).unwrap();
                    pool8.write(b, |mut p| { p.init(); p.set_flags(v); }).unwrap();
                    live.push((a, b));
                }
                PoolOp::Free(i) => {
                    if !live.is_empty() {
                        let (a, b) = live.swap_remove(i % live.len());
                        pool1.free_page(a).unwrap();
                        pool8.free_page(b).unwrap();
                    }
                }
                PoolOp::Write(i, v) => {
                    if !live.is_empty() {
                        let (a, b) = live[i % live.len()];
                        pool1.write(a, |mut p| p.set_flags(v)).unwrap();
                        pool8.write(b, |mut p| p.set_flags(v)).unwrap();
                    }
                }
                PoolOp::Read(i) => {
                    if !live.is_empty() {
                        let (a, b) = live[i % live.len()];
                        let va = pool1.read(a, |p| p.flags()).unwrap();
                        let vb = pool8.read(b, |p| p.flags()).unwrap();
                        prop_assert_eq!(va, vb, "read diverged at live index {}", i % live.len());
                    }
                }
            }
        }
        // Every live page's full contents agree byte for byte.
        for &(a, b) in &live {
            let bytes1 = pool1.read(a, |p| p.bytes().to_vec()).unwrap();
            let bytes8 = pool8.read(b, |p| p.bytes().to_vec()).unwrap();
            prop_assert_eq!(bytes1, bytes8, "contents diverged on pages {}/{}", a, b);
        }
        prop_assert_eq!(pool1.free_pages(), pool8.free_pages());
    }

    /// I/O monotonicity: rereading a just-read page is free; the number of
    /// physical reads never exceeds the number of logical reads.
    #[test]
    fn physical_reads_bounded_by_logical(
        capacity in 2usize..8,
        accesses in proptest::collection::vec(0usize..12, 1..50),
    ) {
        let stats = IoStats::new();
        let pool = BufferPool::builder().capacity(capacity).stats(Arc::clone(&stats)).build();
        let pids: Vec<_> = (0..12).map(|_| pool.allocate_page().unwrap()).collect();
        pool.flush_and_clear().unwrap();
        stats.reset();
        for &i in &accesses {
            pool.read(pids[i], |_| ()).unwrap();
        }
        prop_assert!(stats.reads() <= accesses.len() as u64);
        // Double access back-to-back is free.
        let before = stats.reads();
        pool.read(pids[accesses[0]], |_| ()).unwrap();
        pool.read(pids[accesses[0]], |_| ()).unwrap();
        prop_assert!(stats.reads() <= before + 1);
    }
}

/// Build a pool over `n` stamped pages, flushed cold with stats reset, so
/// two pools constructed this way are byte-identical starting points.
fn stamped_pool(
    capacity: usize,
    shards: usize,
    n: usize,
) -> (Arc<BufferPool>, Arc<IoStats>, Vec<cor_pagestore::PageId>) {
    let stats = IoStats::new();
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(capacity)
            .shards(shards)
            .stats(Arc::clone(&stats))
            .build(),
    );
    let pids: Vec<_> = (0..n).map(|_| pool.allocate_page().unwrap()).collect();
    for (i, &pid) in pids.iter().enumerate() {
        pool.write(pid, |mut p| {
            p.init();
            p.set_flags(0xC0DE_0000 | i as u32);
        })
        .unwrap();
    }
    pool.flush_and_clear().unwrap();
    stats.reset();
    (pool, stats, pids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `fetch_many` is observationally a loop of single reads: the same
    /// values come back in request order (duplicates included) and the
    /// physical read count is identical — while every physical read it
    /// does issue is routed through the batched path.
    #[test]
    fn fetch_many_matches_read_loop(
        capacity in 32usize..48,
        shards in 1usize..5,
        requests in proptest::collection::vec(0usize..24, 1..60),
    ) {
        let (loop_pool, loop_stats, pids) = stamped_pool(capacity, shards, 24);
        let mut loop_vals = Vec::with_capacity(requests.len());
        for &i in &requests {
            loop_vals.push(loop_pool.read(pids[i], |p| p.flags()).unwrap());
        }

        let (batch_pool, batch_stats, pids_b) = stamped_pool(capacity, shards, 24);
        prop_assert_eq!(&pids, &pids_b);
        // Chunk to a window that always fits each home shard's frames.
        let window = (capacity / shards).max(1);
        let mut batch_vals = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(window) {
            let want: Vec<_> = chunk.iter().map(|&i| pids_b[i]).collect();
            batch_vals.extend(batch_pool.fetch_many(&want, |_, p| p.flags()).unwrap());
        }

        prop_assert_eq!(&loop_vals, &batch_vals);
        prop_assert_eq!(loop_stats.reads(), batch_stats.reads());
        // Single reads never touch the batched path; fetch_many routes
        // every miss through it.
        prop_assert_eq!(loop_stats.batch_snapshot(), BatchIoSnapshot::default());
        let b = batch_stats.batch_snapshot();
        prop_assert_eq!(b.batch_reads, batch_stats.reads());
        prop_assert!(b.coalesced_runs <= b.batch_reads);
    }

    /// A page id past the end of the store mid-batch fails the whole
    /// `fetch_many` with the same `BadPage` a loop of reads would hit,
    /// transfers nothing garbage, and leaves every valid page readable
    /// with its correct contents afterwards.
    #[test]
    fn fetch_many_bad_page_mid_batch_fails_clean(
        capacity in 32usize..48,
        shards in 1usize..5,
        prefix in proptest::collection::vec(0usize..24, 0..12),
        suffix in proptest::collection::vec(0usize..24, 0..12),
        bump in 0u32..4,
    ) {
        let (pool, stats, pids) = stamped_pool(capacity, shards, 24);
        let bad = pool.num_pages() + bump;
        let mut want: Vec<_> = prefix.iter().map(|&i| pids[i]).collect();
        want.push(bad);
        want.extend(suffix.iter().map(|&i| pids[i]));

        let err = pool.fetch_many(&want, |_, p| p.flags()).unwrap_err();
        prop_assert!(
            matches!(err, BufferError::Disk(DiskError::BadPage(p)) if p == bad),
            "expected BadPage({}), got {:?}", bad, err
        );
        // A loop of single reads reports the identical error at the bad
        // element.
        let err = pool.read(bad, |_| ()).unwrap_err();
        prop_assert!(matches!(err, BufferError::Disk(DiskError::BadPage(p)) if p == bad));

        // No garbage frames: every page still reads back its stamp, and
        // never more than one physical read per unique page happens in
        // total (the failed batch counted nothing it didn't transfer).
        for (i, &pid) in pids.iter().enumerate() {
            let got = pool.read(pid, |p| p.flags()).unwrap();
            prop_assert_eq!(got, 0xC0DE_0000 | i as u32);
        }
        prop_assert!(stats.reads() <= pids.len() as u64);
    }
}

/// Like [`stamped_pool`] but with an async submission engine of the
/// given queue depth behind the pool.
fn stamped_pool_depth(
    capacity: usize,
    shards: usize,
    n: usize,
    depth: usize,
) -> (Arc<BufferPool>, Arc<IoStats>, Vec<cor_pagestore::PageId>) {
    let stats = IoStats::new();
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(capacity)
            .shards(shards)
            .queue_depth(depth)
            .stats(Arc::clone(&stats))
            .build(),
    );
    let pids: Vec<_> = (0..n).map(|_| pool.allocate_page().unwrap()).collect();
    for (i, &pid) in pids.iter().enumerate() {
        pool.write(pid, |mut p| {
            p.init();
            p.set_flags(0xC0DE_0000 | i as u32);
        })
        .unwrap();
    }
    pool.flush_and_clear().unwrap();
    stats.reset();
    (pool, stats, pids)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// `AioEngine::submit` + harvest is observationally a synchronous
    /// `read_page` loop for any request multiset (duplicates, arbitrary
    /// order), any queue depth, and any harvest interleaving: every
    /// completion delivers the exact page image, and the engine's run
    /// accounting matches the ticket with a peak bounded by the depth.
    #[test]
    fn aio_harvest_matches_sync_reads(
        depth in 1usize..9,
        picks in proptest::collection::vec((0usize..16, 0usize..64), 1..48),
    ) {
        use cor_pagestore::{AioConfig, AioEngine, DiskManager, MemDisk, PAGE_SIZE};

        let disk = Arc::new(MemDisk::new());
        let mut images = Vec::new();
        for i in 0..16u8 {
            let pid = disk.allocate_page().unwrap();
            let page = [i ^ 0xA5; PAGE_SIZE];
            disk.write_page(pid, &page).unwrap();
            images.push((pid, page));
        }
        let ids: Vec<_> = picks.iter().map(|&(i, _)| images[i].0).collect();

        let stats = IoStats::new();
        let engine = AioEngine::new(
            Arc::clone(&disk) as Arc<dyn DiskManager>,
            Arc::clone(&stats),
            AioConfig::with_depth(depth),
        );
        let ticket = engine.submit(&ids);
        let runs = ticket.num_runs() as u64;
        prop_assert_eq!(ticket.num_pages(), ids.len());
        prop_assert_eq!(stats.aio_submitted(), runs);

        // Harvest in an arbitrary interleaving drawn from the picks.
        let mut pending = ticket.into_completions();
        let mut order = picks.iter().map(|&(_, r)| r).cycle();
        while !pending.is_empty() {
            let k = order.next().unwrap() % pending.len();
            let c = pending.swap_remove(k);
            let mut buf = [0u8; PAGE_SIZE];
            c.wait_into(&mut buf).unwrap();
            let want = images.iter().find(|(p, _)| *p == c.page_id()).unwrap().1;
            prop_assert_eq!(buf, want, "page {} image", c.page_id());
        }
        prop_assert_eq!(stats.aio_completed(), runs);
        prop_assert!(stats.aio_in_flight_peak() <= depth.max(1) as u64);
    }

    /// A pool with an async engine behind `fetch_many` is accounting-
    /// identical to the synchronous pool: same values in request order
    /// (duplicates and cross-shard batches included), same `reads`, and
    /// the same batched-I/O counters — only the `aio_*` counters move,
    /// and they agree with the synchronous pool's coalesced runs.
    #[test]
    fn fetch_many_async_matches_sync_pool(
        depth in 2usize..9,
        capacity in 32usize..48,
        shards in 1usize..5,
        requests in proptest::collection::vec(0usize..24, 1..60),
    ) {
        let (sync_pool, sync_stats, pids) = stamped_pool(capacity, shards, 24);
        let (aio_pool, aio_stats, pids_b) = stamped_pool_depth(capacity, shards, 24, depth);
        prop_assert_eq!(&pids, &pids_b);

        let window = (capacity / shards).max(1);
        let mut sync_vals = Vec::with_capacity(requests.len());
        let mut aio_vals = Vec::with_capacity(requests.len());
        for chunk in requests.chunks(window) {
            let want: Vec<_> = chunk.iter().map(|&i| pids[i]).collect();
            sync_vals.extend(sync_pool.fetch_many(&want, |_, p| p.flags()).unwrap());
            aio_vals.extend(aio_pool.fetch_many(&want, |_, p| p.flags()).unwrap());
        }

        prop_assert_eq!(&sync_vals, &aio_vals);
        prop_assert_eq!(sync_stats.reads(), aio_stats.reads());
        let s = sync_stats.batch_snapshot();
        let mut a = aio_stats.batch_snapshot();
        prop_assert_eq!(s.aio_submitted, 0);
        // fetch_many harvests its whole ticket before returning.
        prop_assert_eq!(a.aio_completed, a.aio_submitted);
        prop_assert_eq!(a.aio_submitted, s.coalesced_runs);
        prop_assert!(a.aio_in_flight_peak <= depth as u64);
        a.aio_submitted = 0;
        a.aio_completed = 0;
        a.aio_in_flight_peak = 0;
        prop_assert_eq!(a, s);
    }

    /// BadPage mid-batch at any queue depth fails `fetch_many` exactly
    /// like the synchronous pool — typed error, nothing garbage
    /// delivered, every valid page intact afterwards.
    #[test]
    fn fetch_many_async_bad_page_mid_batch_fails_clean(
        depth in 2usize..9,
        capacity in 32usize..48,
        shards in 1usize..5,
        prefix in proptest::collection::vec(0usize..24, 0..12),
        suffix in proptest::collection::vec(0usize..24, 0..12),
        bump in 0u32..4,
    ) {
        let (pool, stats, pids) = stamped_pool_depth(capacity, shards, 24, depth);
        let bad = pool.num_pages() + bump;
        let mut want: Vec<_> = prefix.iter().map(|&i| pids[i]).collect();
        want.push(bad);
        want.extend(suffix.iter().map(|&i| pids[i]));

        let err = pool.fetch_many(&want, |_, p| p.flags()).unwrap_err();
        prop_assert!(
            matches!(err, BufferError::Disk(DiskError::BadPage(p)) if p == bad),
            "expected BadPage({}), got {:?}", bad, err
        );
        for (i, &pid) in pids.iter().enumerate() {
            let got = pool.read(pid, |p| p.flags()).unwrap();
            prop_assert_eq!(got, 0xC0DE_0000 | i as u32);
        }
        prop_assert!(stats.reads() <= pids.len() as u64);
    }

    /// Arbitrary interleavings of `prefetch` hints and demand reads over
    /// an async pool always serve exact page contents, and the harvest
    /// accounting never exceeds the submissions.
    #[test]
    fn prefetch_interleavings_deliver_exact_pages(
        depth in 2usize..9,
        capacity in 32usize..48,
        shards in 1usize..5,
        ops in proptest::collection::vec((any::<bool>(), 0usize..24, 1usize..8), 1..40),
    ) {
        let (pool, stats, pids) = stamped_pool_depth(capacity, shards, 24, depth);
        for &(is_prefetch, start, len) in &ops {
            if is_prefetch {
                let window: Vec<_> = (start..(start + len).min(24)).map(|i| pids[i]).collect();
                pool.prefetch(&window).unwrap();
            } else {
                let got = pool.read(pids[start], |p| p.flags()).unwrap();
                prop_assert_eq!(got, 0xC0DE_0000 | start as u32);
            }
        }
        pool.flush_and_clear().unwrap();
        // Every page still reads back its exact stamp afterwards.
        for (i, &pid) in pids.iter().enumerate() {
            let got = pool.read(pid, |p| p.flags()).unwrap();
            prop_assert_eq!(got, 0xC0DE_0000 | i as u32);
        }
        prop_assert!(stats.aio_completed() <= stats.aio_submitted());
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Every replacement policy is a transparent, fully accounted cache:
    /// arbitrary access sequences over a pool smaller than the page set
    /// always read back the exact stamps, the shard telemetry books every
    /// access as exactly one hit or one miss, and every miss is one
    /// physical read.
    #[test]
    fn every_policy_is_a_transparent_accounted_cache(
        capacity in 2usize..10,
        accesses in proptest::collection::vec(0usize..24, 1..120),
    ) {
        for policy in ReplacementPolicy::ALL {
            let stats = IoStats::new();
            let pool = BufferPool::builder()
                .capacity(capacity)
                .shards(1)
                .policy(policy)
                .telemetry(true)
                .stats(Arc::clone(&stats))
                .build();
            let pids: Vec<_> = (0..24).map(|_| pool.allocate_page().unwrap()).collect();
            for (i, &pid) in pids.iter().enumerate() {
                pool.write(pid, |mut p| {
                    p.init();
                    p.set_flags(0xC0DE_0000 | i as u32);
                })
                .unwrap();
            }
            pool.flush_and_clear().unwrap();
            stats.reset();
            let before: (u64, u64) = pool
                .telemetry()
                .unwrap()
                .iter()
                .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));

            for &i in &accesses {
                let got = pool.read(pids[i], |p| p.flags()).unwrap();
                prop_assert_eq!(got, 0xC0DE_0000 | i as u32, "policy {}", policy.name());
            }

            let after: (u64, u64) = pool
                .telemetry()
                .unwrap()
                .iter()
                .fold((0, 0), |(h, m), s| (h + s.hits, m + s.misses));
            let (hits, misses) = (after.0 - before.0, after.1 - before.1);
            let distinct = accesses.iter().collect::<std::collections::HashSet<_>>().len() as u64;
            prop_assert_eq!(hits + misses, accesses.len() as u64, "policy {}", policy.name());
            prop_assert_eq!(misses, stats.reads(), "policy {}", policy.name());
            // The first touch of each page is a compulsory miss under
            // every policy.
            prop_assert!(misses >= distinct, "policy {}", policy.name());
        }
    }
}
