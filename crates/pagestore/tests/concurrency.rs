//! Multi-threaded stress tests for the buffer pool.
//!
//! The paper's experiments are single-streamed, but the pool is shared
//! state (`Arc<BufferPool>`) and the parallel experiment sweeps rely on it
//! being safe. These tests hammer one pool from many threads and check
//! that no data is lost or torn and no deadlock occurs.

use cor_pagestore::{
    BufferPool, DiskError, DiskManager, FileDisk, MemDisk, PageBuf, PageId, ReplacementPolicy,
    PAGE_SIZE,
};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn pool(capacity: usize, policy: ReplacementPolicy) -> Arc<BufferPool> {
    Arc::new(
        BufferPool::builder()
            .capacity(capacity)
            .policy(policy)
            .build(),
    )
}

/// Each thread owns a disjoint set of pages and rewrites/rereads them under
/// heavy eviction pressure; no thread may observe another's data or a torn
/// page.
#[test]
fn disjoint_writers_never_interfere() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Clock,
    ] {
        let p = pool(8, policy);
        const THREADS: usize = 4;
        const PAGES_PER: usize = 16;
        const ROUNDS: usize = 200;

        let pids: Vec<Vec<_>> = (0..THREADS)
            .map(|_| (0..PAGES_PER).map(|_| p.allocate_page().unwrap()).collect())
            .collect();
        for row in &pids {
            for &pid in row {
                p.write(pid, |mut pg| pg.init()).unwrap();
            }
        }

        std::thread::scope(|scope| {
            for (t, my_pids) in pids.iter().enumerate() {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let tag = (t as u32 + 1) << 16;
                    for round in 0..ROUNDS as u32 {
                        let pid = my_pids[(round as usize) % my_pids.len()];
                        p.write(pid, |mut pg| pg.set_flags(tag | round)).unwrap();
                        let read = p.read(pid, |pg| pg.flags()).unwrap();
                        assert_eq!(read, tag | round, "thread {t} lost its own write");
                    }
                });
            }
        });

        // Final state: every page holds its owner's last write.
        for (t, my_pids) in pids.iter().enumerate() {
            let tag = (t as u32 + 1) << 16;
            for (i, &pid) in my_pids.iter().enumerate() {
                let flags = p.read(pid, |pg| pg.flags()).unwrap();
                assert_eq!(flags >> 16, tag >> 16, "page {pid} owned by thread {t}");
                let _ = i;
            }
        }
    }
}

/// Concurrent readers and one writer on a shared page: readers always see
/// a consistent (pre- or post-update) value, never garbage.
#[test]
fn shared_page_reads_are_consistent() {
    let p = pool(4, ReplacementPolicy::Lru);
    let pid = p.allocate_page().unwrap();
    p.write(pid, |mut pg| {
        pg.init();
        pg.set_flags(0);
        pg.set_next(0);
    })
    .unwrap();

    std::thread::scope(|scope| {
        let writer_pool = Arc::clone(&p);
        scope.spawn(move || {
            for v in 1..=500u32 {
                writer_pool
                    .write(pid, |mut pg| {
                        // Two fields updated together under the frame lock.
                        pg.set_flags(v);
                        pg.set_next(v);
                    })
                    .unwrap();
            }
        });
        for _ in 0..3 {
            let reader_pool = Arc::clone(&p);
            scope.spawn(move || {
                for _ in 0..500 {
                    let (a, b) = reader_pool.read(pid, |pg| (pg.flags(), pg.next())).unwrap();
                    assert_eq!(a, b, "torn read: flags {a} vs next {b}");
                }
            });
        }
    });
}

/// Many threads faulting a large page set through a tiny pool: the
/// physical read count stays sane (no unbounded re-fetching storms) and
/// everything completes without deadlock.
#[test]
fn eviction_storm_terminates_and_counts_sanely() {
    let p = pool(4, ReplacementPolicy::Lru);
    let pids: Vec<_> = (0..64).map(|_| p.allocate_page().unwrap()).collect();
    for &pid in &pids {
        p.write(pid, |mut pg| pg.init()).unwrap();
    }
    p.flush_and_clear().unwrap();
    p.stats().reset();

    const THREADS: usize = 8;
    const ACCESSES: usize = 300;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let p = Arc::clone(&p);
            let pids = pids.clone();
            scope.spawn(move || {
                let mut x = t as u64 + 1;
                for _ in 0..ACCESSES {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let pid = pids[(x % pids.len() as u64) as usize];
                    p.read(pid, |pg| pg.slot_count()).unwrap();
                }
            });
        }
    });
    let reads = p.stats().reads();
    assert!(
        reads <= (THREADS * ACCESSES) as u64,
        "more physical reads than logical"
    );
    assert!(
        reads >= 60,
        "a 4-frame pool over 64 pages must fault heavily (got {reads})"
    );
}

/// A disk wrapper counting every transfer that crosses the pool boundary.
/// Each physical read/write in the pool is paired with an `IoStats`
/// record, so the two counters must agree exactly — even under threads.
struct CountingDisk {
    inner: MemDisk,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl CountingDisk {
    fn new() -> Self {
        CountingDisk {
            inner: MemDisk::new(),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
        }
    }
}

impl DiskManager for CountingDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.inner.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.inner.write_page(id, buf)
    }
    fn allocate_page(&self) -> Result<PageId, DiskError> {
        self.inner.allocate_page()
    }
    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }
}

/// Eight threads mixing reads, writes, allocates and frees on one small
/// sharded pool. Afterwards: every allocated page is either owned by
/// exactly one thread (holding that thread's last write) or sitting on a
/// free list — no page is lost — and the pool's `IoStats` agree exactly
/// with the transfers the disk actually saw.
#[test]
fn mixed_workload_stress_loses_nothing_and_counts_exactly() {
    let disk = Arc::new(CountingDisk::new());
    let disk_reads = Arc::clone(&disk);
    let p = Arc::new(
        BufferPool::builder()
            .capacity(16)
            .shards(8)
            .disk(Box::new(ArcDisk(disk)))
            .build(),
    );

    const THREADS: usize = 8;
    const ROUNDS: usize = 400;

    // Each worker returns (its final owned pages -> last written value,
    // how many pages it allocated).
    let per_thread: Vec<(HashMap<PageId, u32>, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let tag = (t as u32 + 1) << 20;
                    let mut owned: Vec<PageId> = Vec::new();
                    let mut model: HashMap<PageId, u32> = HashMap::new();
                    let mut allocations = 0u64;
                    let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1);
                    let mut rng = move || {
                        x = x
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        x >> 33
                    };
                    for round in 0..ROUNDS as u32 {
                        match rng() % 4 {
                            // Allocate a page and stamp it.
                            0 => {
                                let pid = p.allocate_page().expect("allocates");
                                allocations += 1;
                                let v = tag | round;
                                p.write(pid, |mut pg| {
                                    pg.init();
                                    pg.set_flags(v);
                                })
                                .expect("writes");
                                owned.push(pid);
                                model.insert(pid, v);
                            }
                            // Free one owned page (another thread may
                            // recycle it through its own allocate).
                            1 => {
                                if !owned.is_empty() {
                                    let i = rng() as usize % owned.len();
                                    let pid = owned.swap_remove(i);
                                    model.remove(&pid);
                                    p.free_page(pid).expect("frees");
                                }
                            }
                            // Rewrite an owned page.
                            2 => {
                                if !owned.is_empty() {
                                    let pid = owned[rng() as usize % owned.len()];
                                    let v = tag | round;
                                    p.write(pid, |mut pg| pg.set_flags(v)).expect("writes");
                                    model.insert(pid, v);
                                }
                            }
                            // Read an owned page back: must hold this
                            // thread's last write, never another's.
                            _ => {
                                if !owned.is_empty() {
                                    let pid = owned[rng() as usize % owned.len()];
                                    let got = p.read(pid, |pg| pg.flags()).expect("reads");
                                    assert_eq!(
                                        got, model[&pid],
                                        "thread {t} lost its write to page {pid}"
                                    );
                                }
                            }
                        }
                    }
                    (model, allocations)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("no worker panicked"))
            .collect()
    });

    // Ownership is disjoint and every owned page holds its last write.
    let mut owned_union: HashSet<PageId> = HashSet::new();
    for (model, _) in &per_thread {
        for (&pid, &v) in model {
            assert!(owned_union.insert(pid), "page {pid} owned by two threads");
            let got = p.read(pid, |pg| pg.flags()).unwrap();
            assert_eq!(got, v, "page {pid} final contents");
        }
    }

    // No page is lost: every page the store ever handed out is owned or
    // on a free list.
    assert_eq!(
        owned_union.len() + p.free_pages(),
        p.num_pages() as usize,
        "pages leaked or double-counted"
    );

    // Allocation accounting is exact.
    let total_allocs: u64 = per_thread.iter().map(|(_, a)| a).sum();
    assert_eq!(p.stats().allocations(), total_allocs);

    // The pool's I/O counters agree exactly with the disk's view.
    assert_eq!(p.stats().reads(), disk_reads.reads.load(Ordering::Relaxed));
    assert_eq!(
        p.stats().writes(),
        disk_reads.writes.load(Ordering::Relaxed)
    );
}

/// Eight threads hammering one `FileDisk` with positioned reads — single
/// `read_page` calls and vectored `read_pages` batches — while each also
/// rewrites its own private pages. On unix both paths are lock-free
/// (`pread`/`pwrite` carry their own offset), so nothing here may tear,
/// interleave, or observe a stale length.
#[test]
fn filedisk_positioned_reads_are_lock_free_under_threads() {
    const STATIC_PAGES: u32 = 64;
    const THREADS: usize = 8;
    const PRIVATE_PER: u32 = 4;
    const ROUNDS: usize = 200;

    let path = std::env::temp_dir().join(format!(
        "cor-pread-stress-{}-{:?}.pages",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_file(&path);
    let disk = Arc::new(FileDisk::open(&path).unwrap());

    let stamp = |seed: u32| -> PageBuf {
        let mut buf = [0u8; PAGE_SIZE];
        for (i, b) in buf.iter_mut().enumerate() {
            *b = (seed as usize).wrapping_mul(31).wrapping_add(i) as u8;
        }
        buf
    };

    // A static region every thread reads, then a private region per
    // thread (only its owner writes it).
    for pid in 0..STATIC_PAGES + THREADS as u32 * PRIVATE_PER {
        let allocated = disk.allocate_page().unwrap();
        assert_eq!(allocated, pid);
        disk.write_page(pid, &stamp(pid)).unwrap();
    }

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let disk = Arc::clone(&disk);
            let stamp = &stamp;
            scope.spawn(move || {
                let base = STATIC_PAGES + (t as u32) * PRIVATE_PER;
                let mut x = 0x9E3779B9u64.wrapping_mul(t as u64 + 1);
                let mut rng = move || {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    x >> 33
                };
                for round in 0..ROUNDS as u32 {
                    // Single positioned read of a random static page.
                    let pid = (rng() % STATIC_PAGES as u64) as u32;
                    let mut buf = [0u8; PAGE_SIZE];
                    disk.read_page(pid, &mut buf).unwrap();
                    assert_eq!(buf, stamp(pid), "torn single read of page {pid}");

                    // Vectored read of a random static run (wraps cut it
                    // short): one submission, every page intact.
                    let start = (rng() % STATIC_PAGES as u64) as u32;
                    let len = (rng() % 8 + 1).min((STATIC_PAGES - start) as u64) as usize;
                    let ids: Vec<PageId> = (start..start + len as u32).collect();
                    let mut bufs = vec![[0u8; PAGE_SIZE]; len];
                    let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
                    let runs = disk.read_pages(&ids, &mut refs).unwrap();
                    assert!(runs >= 1 && runs <= len);
                    for (&pid, buf) in ids.iter().zip(&bufs) {
                        assert_eq!(*buf, stamp(pid), "torn batched read of page {pid}");
                    }

                    // Rewrite one private page and read it straight back.
                    let pid = base + (rng() % PRIVATE_PER as u64) as u32;
                    let v = stamp(pid ^ (round << 8));
                    disk.write_page(pid, &v).unwrap();
                    let mut buf = [0u8; PAGE_SIZE];
                    disk.read_page(pid, &mut buf).unwrap();
                    assert_eq!(buf, v, "thread {t} lost its write to page {pid}");
                }
            });
        }
    });

    drop(disk);
    let _ = std::fs::remove_file(&path);
}

/// Adapter: `BufferPoolBuilder::disk` takes a `Box<dyn DiskManager>`, but
/// the test needs to keep a handle on the counters.
struct ArcDisk(Arc<CountingDisk>);

impl DiskManager for ArcDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        self.0.read_page(id, buf)
    }
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        self.0.write_page(id, buf)
    }
    fn allocate_page(&self) -> Result<PageId, DiskError> {
        self.0.allocate_page()
    }
    fn num_pages(&self) -> u32 {
        self.0.num_pages()
    }
}
