//! Multi-threaded stress tests for the buffer pool.
//!
//! The paper's experiments are single-streamed, but the pool is shared
//! state (`Arc<BufferPool>`) and the parallel experiment sweeps rely on it
//! being safe. These tests hammer one pool from many threads and check
//! that no data is lost or torn and no deadlock occurs.

use cor_pagestore::{BufferPool, IoStats, MemDisk, ReplacementPolicy};
use std::sync::Arc;

fn pool(capacity: usize, policy: ReplacementPolicy) -> Arc<BufferPool> {
    Arc::new(BufferPool::with_policy(
        Box::new(MemDisk::new()),
        capacity,
        IoStats::new(),
        policy,
    ))
}

/// Each thread owns a disjoint set of pages and rewrites/rereads them under
/// heavy eviction pressure; no thread may observe another's data or a torn
/// page.
#[test]
fn disjoint_writers_never_interfere() {
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Clock,
    ] {
        let p = pool(8, policy);
        const THREADS: usize = 4;
        const PAGES_PER: usize = 16;
        const ROUNDS: usize = 200;

        let pids: Vec<Vec<_>> = (0..THREADS)
            .map(|_| (0..PAGES_PER).map(|_| p.allocate_page().unwrap()).collect())
            .collect();
        for row in &pids {
            for &pid in row {
                p.write(pid, |mut pg| pg.init()).unwrap();
            }
        }

        std::thread::scope(|scope| {
            for (t, my_pids) in pids.iter().enumerate() {
                let p = Arc::clone(&p);
                scope.spawn(move || {
                    let tag = (t as u32 + 1) << 16;
                    for round in 0..ROUNDS as u32 {
                        let pid = my_pids[(round as usize) % my_pids.len()];
                        p.write(pid, |mut pg| pg.set_flags(tag | round)).unwrap();
                        let read = p.read(pid, |pg| pg.flags()).unwrap();
                        assert_eq!(read, tag | round, "thread {t} lost its own write");
                    }
                });
            }
        });

        // Final state: every page holds its owner's last write.
        for (t, my_pids) in pids.iter().enumerate() {
            let tag = (t as u32 + 1) << 16;
            for (i, &pid) in my_pids.iter().enumerate() {
                let flags = p.read(pid, |pg| pg.flags()).unwrap();
                assert_eq!(flags >> 16, tag >> 16, "page {pid} owned by thread {t}");
                let _ = i;
            }
        }
    }
}

/// Concurrent readers and one writer on a shared page: readers always see
/// a consistent (pre- or post-update) value, never garbage.
#[test]
fn shared_page_reads_are_consistent() {
    let p = pool(4, ReplacementPolicy::Lru);
    let pid = p.allocate_page().unwrap();
    p.write(pid, |mut pg| {
        pg.init();
        pg.set_flags(0);
        pg.set_next(0);
    })
    .unwrap();

    std::thread::scope(|scope| {
        let writer_pool = Arc::clone(&p);
        scope.spawn(move || {
            for v in 1..=500u32 {
                writer_pool
                    .write(pid, |mut pg| {
                        // Two fields updated together under the frame lock.
                        pg.set_flags(v);
                        pg.set_next(v);
                    })
                    .unwrap();
            }
        });
        for _ in 0..3 {
            let reader_pool = Arc::clone(&p);
            scope.spawn(move || {
                for _ in 0..500 {
                    let (a, b) = reader_pool.read(pid, |pg| (pg.flags(), pg.next())).unwrap();
                    assert_eq!(a, b, "torn read: flags {a} vs next {b}");
                }
            });
        }
    });
}

/// Many threads faulting a large page set through a tiny pool: the
/// physical read count stays sane (no unbounded re-fetching storms) and
/// everything completes without deadlock.
#[test]
fn eviction_storm_terminates_and_counts_sanely() {
    let p = pool(4, ReplacementPolicy::Lru);
    let pids: Vec<_> = (0..64).map(|_| p.allocate_page().unwrap()).collect();
    for &pid in &pids {
        p.write(pid, |mut pg| pg.init()).unwrap();
    }
    p.flush_and_clear().unwrap();
    p.stats().reset();

    const THREADS: usize = 8;
    const ACCESSES: usize = 300;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let p = Arc::clone(&p);
            let pids = pids.clone();
            scope.spawn(move || {
                let mut x = t as u64 + 1;
                for _ in 0..ACCESSES {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let pid = pids[(x % pids.len() as u64) as usize];
                    p.read(pid, |pg| pg.slot_count()).unwrap();
                }
            });
        }
    });
    let reads = p.stats().reads();
    assert!(
        reads <= (THREADS * ACCESSES) as u64,
        "more physical reads than logical"
    );
    assert!(
        reads >= 60,
        "a 4-frame pool over 64 pages must fault heavily (got {reads})"
    );
}
