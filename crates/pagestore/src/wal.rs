//! Write-ahead-log integration hook.
//!
//! The buffer pool enforces the WAL protocol but does not implement the
//! log itself — that lives in the `cor-wal` crate, which depends on this
//! one. The seam between them is [`WalHook`]:
//!
//! * after every mutating page closure, the pool hands the hook the
//!   before- and after-images and stamps the returned [`Lsn`] into the
//!   page header (bytes 12..16, the formerly reserved word — unused by
//!   both the slotted and the B-tree node layouts);
//! * before any dirty page reaches the disk manager (eviction,
//!   [`flush_page`](crate::BufferPool::flush_page), `flush_all`), the
//!   pool calls [`WalHook::flush_to`] with that page's LSN — the
//!   *WAL-before-data* rule: no page version may hit the store before
//!   the log records that produced it are durable;
//! * after a successful write-back the pool reports
//!   [`WalHook::page_flushed`], so the log knows the next modification
//!   of that page must be a full image again (a torn write-back can only
//!   be repaired from a full image, never from a delta).
//!
//! A pool built without a hook behaves — and performs — exactly as
//! before: page bytes, I/O counts, and eviction order are untouched.

use crate::disk::DiskError;
use crate::page::{PageBuf, PageId};

/// Log sequence number: a 1-based record ordinal, strictly increasing in
/// log order. `u32` bounds one log lineage at ~4.29 billion records
/// (see `docs/durability.md` for the rationale and escape hatch).
pub type Lsn = u32;

/// The LSN of a page that has never been logged (fresh or pre-WAL).
pub const NO_LSN: Lsn = 0;

/// The buffer pool's view of a write-ahead log.
///
/// Implemented by `cor_wal::Wal`; the pool only needs these four
/// operations to uphold the WAL invariants described in the module docs.
pub trait WalHook: Send + Sync {
    /// Log one page mutation: `before` and `after` are the full page
    /// contents around the mutating closure (LSN word not yet restamped).
    /// Returns the record's LSN. The implementation chooses the physical
    /// format (full image vs byte-range delta).
    fn log_page_write(
        &self,
        pid: PageId,
        before: &PageBuf,
        after: &PageBuf,
    ) -> Result<Lsn, DiskError>;

    /// Log a full after-image unconditionally (used for freshly allocated
    /// pages, whose prior frame contents are garbage and must not be
    /// diffed against).
    fn log_page_image(&self, pid: PageId, image: &PageBuf) -> Result<Lsn, DiskError>;

    /// Make the log durable at least up to `lsn` (inclusive). Called by
    /// the pool immediately before writing a page stamped with `lsn` to
    /// the disk manager.
    fn flush_to(&self, lsn: Lsn) -> Result<(), DiskError>;

    /// A page was successfully written back to the store. The next
    /// mutation of `pid` must be logged as a full image: the write-back
    /// created a new torn-write hazard that only an image can repair.
    fn page_flushed(&self, pid: PageId);
}
