//! Disk managers: the raw page stores beneath the buffer pool.
//!
//! The paper's experiments measured I/O counts on a ~10 MB INGRES database.
//! Since the yardstick is the *number of page transfers*, not seconds, the
//! default store is [`MemDisk`], an in-memory page vector that gives exact,
//! noise-free transfer counts. [`FileDisk`] is a real file-backed store for
//! anyone who wants wall-clock numbers on actual hardware.
//!
//! For crash-recovery testing, [`FaultyDisk`] wraps any store and injects
//! faults at a chosen operation ordinal: dropped writes (process dies with
//! the write never reaching the medium), torn writes (power fails mid-
//! sector), fail-stop (the write lands, then the process dies — the oracle
//! side of the crashtest harness), and short reads.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Errors from disk-manager operations.
#[derive(Debug)]
pub enum DiskError {
    /// A page id past the end of the store was referenced.
    BadPage(PageId),
    /// Underlying file I/O failed, with the operation and the path (or
    /// store description) it failed on.
    Io {
        /// What the store was doing: `"read"`, `"write"`, `"allocate"`,
        /// `"sync"`, `"wal append"`, ...
        op: &'static str,
        /// The file path or store description the operation targeted.
        path: String,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// An injected fault killed the store ([`FaultyDisk`] only). Every
    /// operation after a crash fault fails with this — the process is
    /// "dead" until the harness recovers from the log.
    Crashed,
}

impl DiskError {
    /// Build an [`Io`](DiskError::Io) with operation and path context.
    pub fn io(op: &'static str, path: impl Into<String>, source: std::io::Error) -> Self {
        DiskError::Io {
            op,
            path: path.into(),
            source,
        }
    }
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::BadPage(p) => write!(f, "page {p} out of range"),
            DiskError::Io { op, path, source } => {
                write!(f, "I/O error during {op} on {path}: {source}")
            }
            DiskError::Crashed => write!(f, "store crashed (injected fault)"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// When a [`FileDisk`] forces written pages down to the storage medium.
///
/// The paper's I/O-count yardstick is unaffected either way; this matters
/// only for crash durability of file-backed stores and for wall-clock
/// honesty when benchmarking real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Leave flushing to the OS page cache (the historical behaviour).
    #[default]
    OsCache,
    /// `fdatasync` on every [`DiskManager::sync`] call, which the buffer
    /// pool issues after `flush_all`/`flush_page` batches.
    Fsync,
}

/// A store of fixed-size pages addressed by [`PageId`].
///
/// Implementations do **not** count I/O themselves; the buffer pool counts
/// transfers as they cross its boundary, which matches how the paper
/// measured traffic below the INGRES buffer.
///
/// `Send + Sync` so a buffer pool can be shared across threads behind an
/// `Arc` (parallel experiment sweeps give each worker its own pool, but
/// nothing prevents sharing one).
pub trait DiskManager: Send + Sync {
    /// Read page `id` into `buf`.
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError>;
    /// Read a batch of pages: `ids[i]` into `bufs[i]`. Returns the number
    /// of physical submissions the batch cost (for the default
    /// one-read-per-page loop that is `ids.len()`; stores that coalesce
    /// adjacent pages report the number of coalesced runs instead).
    ///
    /// Callers get the best coalescing from **sorted, deduplicated** ids,
    /// but any order is legal and duplicates are simply read twice.
    ///
    /// # Partial failure
    ///
    /// On `Err`, the contents of `bufs` are unspecified: implementations
    /// may have filled a prefix (the default loop), everything (a late
    /// validation failure), or nothing ([`FileDisk`] validates all ids
    /// before issuing any I/O). Callers must treat a failed batch as if
    /// **no** page was transferred — the buffer pool discards every frame
    /// it staged for the batch and records no reads.
    fn read_pages(&self, ids: &[PageId], bufs: &mut [&mut PageBuf]) -> Result<usize, DiskError> {
        debug_assert_eq!(ids.len(), bufs.len(), "one buffer per requested page");
        for (&id, buf) in ids.iter().zip(bufs.iter_mut()) {
            self.read_page(id, buf)?;
        }
        Ok(ids.len())
    }
    /// Write `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError>;
    /// Append a zeroed page, returning its id.
    fn allocate_page(&self) -> Result<PageId, DiskError>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
    /// Force previously written pages down to the storage medium. A no-op
    /// for stores without a medium to sync ([`MemDisk`]) or with
    /// [`Durability::OsCache`].
    fn sync(&self) -> Result<(), DiskError> {
        Ok(())
    }
    /// The raw OS file descriptor page reads could be issued against
    /// directly, if this store is a plain positioned-read file.
    ///
    /// `None` (the default) means reads must flow through the trait —
    /// the contract for in-memory stores and for wrappers that add
    /// behaviour per call ([`FaultyDisk`] fault ordinals, seek
    /// charging). The `cor-aio` io_uring backend engages only on
    /// `Some`, so wrapped stores always take the portable thread-pool
    /// path and keep their per-operation semantics.
    fn raw_read_fd(&self) -> Option<i32> {
        None
    }
}

/// Shared handles delegate, so a caller can keep a reference to a store
/// (to arm faults on it, or to inspect the medium after a crash) while
/// the buffer pool owns a `Box<Arc<...>>` of the same store.
impl<D: DiskManager + ?Sized> DiskManager for std::sync::Arc<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        (**self).read_page(id, buf)
    }
    fn read_pages(&self, ids: &[PageId], bufs: &mut [&mut PageBuf]) -> Result<usize, DiskError> {
        (**self).read_pages(ids, bufs)
    }
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        (**self).write_page(id, buf)
    }
    fn allocate_page(&self) -> Result<PageId, DiskError> {
        (**self).allocate_page()
    }
    fn num_pages(&self) -> u32 {
        (**self).num_pages()
    }
    fn sync(&self) -> Result<(), DiskError> {
        (**self).sync()
    }
    fn raw_read_fd(&self) -> Option<i32> {
        (**self).raw_read_fd()
    }
}

/// In-memory page store.
pub struct MemDisk {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemDisk {
    /// Create an empty in-memory store.
    pub fn new() -> Self {
        MemDisk {
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

/// Number of maximal runs of consecutive ascending page ids in `ids`
/// (`ids[i+1] == ids[i] + 1` continues a run). This is how many physical
/// submissions a coalescing store needs for the batch.
fn coalesced_runs(ids: &[PageId]) -> usize {
    let mut runs = 0usize;
    let mut prev: Option<PageId> = None;
    for &id in ids {
        let continues_run = prev.is_some() && prev == id.checked_sub(1);
        if !continues_run {
            runs += 1;
        }
        prev = Some(id);
    }
    runs
}

impl DiskManager for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        let pages = self.pages.lock();
        let page = pages.get(id as usize).ok_or(DiskError::BadPage(id))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    /// One lock acquisition for the whole batch. Ids are validated before
    /// any byte is copied, so a failed batch transfers nothing. Reports
    /// the run count a coalescing store would have needed, so MemDisk
    /// benchmarks see the same `coalesced_runs` accounting as FileDisk.
    fn read_pages(&self, ids: &[PageId], bufs: &mut [&mut PageBuf]) -> Result<usize, DiskError> {
        debug_assert_eq!(ids.len(), bufs.len(), "one buffer per requested page");
        let pages = self.pages.lock();
        if let Some(&bad) = ids.iter().find(|&&id| id as usize >= pages.len()) {
            return Err(DiskError::BadPage(bad));
        }
        for (&id, buf) in ids.iter().zip(bufs.iter_mut()) {
            buf.copy_from_slice(&pages[id as usize][..]);
        }
        Ok(coalesced_runs(ids))
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id as usize).ok_or(DiskError::BadPage(id))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push([0u8; PAGE_SIZE]);
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }
}

/// File-backed page store using positioned I/O.
///
/// Reads and writes go through pread/pwrite-style positioned calls that
/// take `&File` and carry their own offset, so concurrent buffer-pool
/// shards never serialize on a file lock and never pay a seek syscall.
/// The only remaining lock guards `allocate_page`'s length bookkeeping.
pub struct FileDisk {
    file: File,
    num_pages: Mutex<u32>,
    durability: Durability,
    path: String,
    /// Non-positioned fallback for platforms without `FileExt` pread:
    /// serializes seek+read pairs exactly like the historical code.
    #[cfg(not(unix))]
    io_lock: Mutex<()>,
}

impl FileDisk {
    /// Open (or create) a page file at `path` with default (OS page
    /// cache) durability.
    pub fn open(path: &Path) -> Result<Self, DiskError> {
        Self::open_with(path, Durability::default())
    }

    /// Open (or create) a page file at `path` with an explicit
    /// [`Durability`] policy.
    pub fn open_with(path: &Path, durability: Durability) -> Result<Self, DiskError> {
        let display = path.display().to_string();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| DiskError::io("open", &display, e))?;
        let len = file
            .metadata()
            .map_err(|e| DiskError::io("stat", &display, e))?
            .len();
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FileDisk {
            file,
            num_pages: Mutex::new(num_pages),
            durability,
            path: display,
            #[cfg(not(unix))]
            io_lock: Mutex::new(()),
        })
    }

    /// Positioned read of `buf.len()` bytes at byte offset `off`.
    #[cfg(unix)]
    fn pread(&self, buf: &mut [u8], off: u64, op: &'static str) -> Result<(), DiskError> {
        use std::os::unix::fs::FileExt;
        self.file
            .read_exact_at(buf, off)
            .map_err(|e| DiskError::io(op, &self.path, e))
    }

    /// Positioned write of `buf` at byte offset `off`.
    #[cfg(unix)]
    fn pwrite(&self, buf: &[u8], off: u64, op: &'static str) -> Result<(), DiskError> {
        use std::os::unix::fs::FileExt;
        self.file
            .write_all_at(buf, off)
            .map_err(|e| DiskError::io(op, &self.path, e))
    }

    #[cfg(not(unix))]
    fn pread(&self, buf: &mut [u8], off: u64, op: &'static str) -> Result<(), DiskError> {
        use std::io::{Read, Seek, SeekFrom};
        let _guard = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))
            .map_err(|e| DiskError::io(op, &self.path, e))?;
        f.read_exact(buf)
            .map_err(|e| DiskError::io(op, &self.path, e))
    }

    #[cfg(not(unix))]
    fn pwrite(&self, buf: &[u8], off: u64, op: &'static str) -> Result<(), DiskError> {
        use std::io::{Seek, SeekFrom, Write};
        let _guard = self.io_lock.lock();
        let mut f = &self.file;
        f.seek(SeekFrom::Start(off))
            .map_err(|e| DiskError::io(op, &self.path, e))?;
        f.write_all(buf)
            .map_err(|e| DiskError::io(op, &self.path, e))
    }

    #[inline]
    fn byte_offset(id: PageId) -> u64 {
        id as u64 * PAGE_SIZE as u64
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        if id >= self.num_pages() {
            return Err(DiskError::BadPage(id));
        }
        self.pread(buf, Self::byte_offset(id), "read")
    }

    /// Coalesce maximal runs of consecutive ascending page ids into single
    /// positioned reads: a sorted batch of `n` adjacent pages costs one
    /// `n * PAGE_SIZE` pread instead of `n` page-sized ones. All ids are
    /// validated against the store length **before any I/O is issued**, so
    /// a [`DiskError::BadPage`] batch transfers nothing.
    fn read_pages(&self, ids: &[PageId], bufs: &mut [&mut PageBuf]) -> Result<usize, DiskError> {
        debug_assert_eq!(ids.len(), bufs.len(), "one buffer per requested page");
        let num_pages = self.num_pages();
        if let Some(&bad) = ids.iter().find(|&&id| id >= num_pages) {
            return Err(DiskError::BadPage(bad));
        }
        let mut runs = 0usize;
        let mut i = 0usize;
        let mut scratch: Vec<u8> = Vec::new();
        while i < ids.len() {
            // Extend the run while page ids stay consecutive.
            let mut j = i + 1;
            while j < ids.len() && ids[j] == ids[j - 1] + 1 {
                j += 1;
            }
            let run_len = j - i;
            if run_len == 1 {
                self.pread(&mut bufs[i][..], Self::byte_offset(ids[i]), "read")?;
            } else {
                scratch.resize(run_len * PAGE_SIZE, 0);
                self.pread(&mut scratch, Self::byte_offset(ids[i]), "read")?;
                for (k, buf) in bufs[i..j].iter_mut().enumerate() {
                    buf.copy_from_slice(&scratch[k * PAGE_SIZE..(k + 1) * PAGE_SIZE]);
                }
            }
            runs += 1;
            i = j;
        }
        Ok(runs)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        if id >= self.num_pages() {
            return Err(DiskError::BadPage(id));
        }
        self.pwrite(buf, Self::byte_offset(id), "write")
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        // The length lock makes (extend file, bump count) atomic against
        // concurrent allocations; reads and writes never take it.
        let mut n = self.num_pages.lock();
        let id = *n;
        self.pwrite(&[0u8; PAGE_SIZE], Self::byte_offset(id), "allocate")?;
        *n += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }

    fn sync(&self) -> Result<(), DiskError> {
        if self.durability == Durability::Fsync {
            self.file
                .sync_data()
                .map_err(|e| DiskError::io("sync", &self.path, e))?;
        }
        Ok(())
    }

    #[cfg(unix)]
    fn raw_read_fd(&self) -> Option<i32> {
        use std::os::unix::io::AsRawFd;
        Some(self.file.as_raw_fd())
    }
}

/// The fault a [`FaultyDisk`] injects when its trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The trigger write never reaches the inner store; the disk is dead
    /// afterwards (every later operation returns
    /// [`DiskError::Crashed`]). Models a crash *before* the write.
    CrashDrop,
    /// The first `keep` bytes of the trigger write reach the inner store,
    /// the rest keep the page's previous contents; the disk is dead
    /// afterwards. Models a power failure mid-write (torn page).
    CrashTorn {
        /// How many leading bytes of the write survive.
        keep: usize,
    },
    /// The trigger write lands *completely*, then the operation reports
    /// failure once and the fault disarms — the store stays usable. This
    /// is the oracle side of the crashtest protocol: both runs abort on
    /// the same operation, but the oracle's state is intact.
    FailStop,
    /// The trigger *read* fails once (as an [`DiskError::Io`] with
    /// `op = "read"`), then the fault disarms.
    ShortRead,
}

#[derive(Debug)]
struct FaultState {
    /// Remaining operations (writes, or reads for `ShortRead`) before
    /// the fault fires. `None` = disarmed.
    countdown: Option<u64>,
    mode: FaultMode,
    /// Once true, every operation fails with `Crashed`.
    dead: bool,
    /// Total `write_page` calls observed (including after disarm), for
    /// dry runs that size the crash-point space.
    writes_seen: u64,
    /// How many faults have fired.
    fired: u64,
}

/// A [`DiskManager`] wrapper that injects crashes, torn writes, and read
/// errors at a precise operation ordinal.
///
/// Arm it with [`arm`](FaultyDisk::arm): the fault fires on the `nth`
/// *subsequent* write (1-based; or read, for [`FaultMode::ShortRead`]).
/// The crash modes leave the wrapper "dead" so any further pool traffic
/// errors out — exactly what a process that lost power would observe on
/// its next run: nothing, because there is no next operation.
///
/// `read_pages` deliberately keeps the default one-page-at-a-time loop
/// (no coalescing): each page of a batch ticks the fault countdown
/// individually, so crash-point ordinals are stable whether or not the
/// caller batches.
pub struct FaultyDisk<D> {
    inner: D,
    state: Mutex<FaultState>,
    faults_fired: AtomicU64,
}

impl<D: DiskManager> FaultyDisk<D> {
    /// Wrap `inner` with no fault armed.
    pub fn new(inner: D) -> Self {
        FaultyDisk {
            inner,
            state: Mutex::new(FaultState {
                countdown: None,
                mode: FaultMode::FailStop,
                dead: false,
                writes_seen: 0,
                fired: 0,
            }),
            faults_fired: AtomicU64::new(0),
        }
    }

    /// Arm the fault: fire `mode` on the `nth` subsequent qualifying
    /// operation (1-based). Re-arming replaces any pending fault.
    pub fn arm(&self, nth: u64, mode: FaultMode) {
        assert!(nth >= 1, "fault ordinal is 1-based");
        let mut st = self.state.lock();
        st.countdown = Some(nth);
        st.mode = mode;
    }

    /// Disarm any pending fault (the store stays dead if a crash fault
    /// already fired).
    pub fn disarm(&self) {
        self.state.lock().countdown = None;
    }

    /// Has a crash fault fired, leaving the store dead?
    pub fn is_dead(&self) -> bool {
        self.state.lock().dead
    }

    /// Total `write_page` calls observed so far, including while
    /// disarmed. Dry runs use this to size the crash-point space.
    pub fn writes_observed(&self) -> u64 {
        self.state.lock().writes_seen
    }

    /// How many injected faults have fired.
    pub fn faults_fired(&self) -> u64 {
        self.faults_fired.load(Ordering::Relaxed)
    }

    /// The wrapped store (for oracle flushing after a `FailStop`).
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Decrement the countdown; returns the mode if the fault fires now.
    fn tick(st: &mut FaultState, is_write: bool) -> Option<FaultMode> {
        let qualifies = match st.mode {
            FaultMode::ShortRead => !is_write,
            _ => is_write,
        };
        if !qualifies {
            return None;
        }
        let n = st.countdown.as_mut()?;
        *n -= 1;
        if *n == 0 {
            st.countdown = None;
            st.fired += 1;
            Some(st.mode)
        } else {
            None
        }
    }
}

impl<D: DiskManager> DiskManager for FaultyDisk<D> {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        let fired = {
            let mut st = self.state.lock();
            if st.dead {
                return Err(DiskError::Crashed);
            }
            Self::tick(&mut st, false)
        };
        if let Some(FaultMode::ShortRead) = fired {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
            return Err(DiskError::io(
                "read",
                format!("faulty-disk page {id}"),
                std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "injected short read"),
            ));
        }
        self.inner.read_page(id, buf)
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        let fired = {
            let mut st = self.state.lock();
            if st.dead {
                return Err(DiskError::Crashed);
            }
            st.writes_seen += 1;
            let fired = Self::tick(&mut st, true);
            if matches!(
                fired,
                Some(FaultMode::CrashDrop) | Some(FaultMode::CrashTorn { .. })
            ) {
                st.dead = true;
            }
            fired
        };
        match fired {
            None => self.inner.write_page(id, buf),
            Some(FaultMode::CrashDrop) => {
                self.faults_fired.fetch_add(1, Ordering::Relaxed);
                Err(DiskError::Crashed)
            }
            Some(FaultMode::CrashTorn { keep }) => {
                self.faults_fired.fetch_add(1, Ordering::Relaxed);
                // Splice: old page tail survives under the new head.
                let keep = keep.min(PAGE_SIZE);
                let mut torn = [0u8; PAGE_SIZE];
                self.inner.read_page(id, &mut torn)?;
                torn[..keep].copy_from_slice(&buf[..keep]);
                self.inner.write_page(id, &torn)?;
                Err(DiskError::Crashed)
            }
            Some(FaultMode::FailStop) => {
                self.faults_fired.fetch_add(1, Ordering::Relaxed);
                self.inner.write_page(id, buf)?;
                Err(DiskError::io(
                    "write",
                    format!("faulty-disk page {id}"),
                    std::io::Error::other("injected fail-stop (write landed)"),
                ))
            }
            Some(FaultMode::ShortRead) => unreachable!("ShortRead never fires on writes"),
        }
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        if self.state.lock().dead {
            return Err(DiskError::Crashed);
        }
        self.inner.allocate_page()
    }

    fn num_pages(&self) -> u32 {
        self.inner.num_pages()
    }

    fn sync(&self) -> Result<(), DiskError> {
        if self.state.lock().dead {
            return Err(DiskError::Crashed);
        }
        self.inner.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_ne!(p0, p1);
        assert_eq!(disk.num_pages(), 2);

        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &w).unwrap();

        let mut r = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);

        // Fresh page is zeroed.
        disk.read_page(p0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn memdisk_rejects_bad_page() {
        let d = MemDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            d.read_page(0, &mut buf),
            Err(DiskError::BadPage(0))
        ));
        assert!(matches!(d.write_page(7, &buf), Err(DiskError::BadPage(7))));
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cor-filedisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let d = FileDisk::open(&path).unwrap();
            roundtrip(&d);
        }
        // Re-open: pages persist.
        let d = FileDisk::open(&path).unwrap();
        assert_eq!(d.num_pages(), 2);
        let mut r = [0u8; PAGE_SIZE];
        d.read_page(1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn filedisk_fsync_durability_syncs_without_error() {
        let dir = std::env::temp_dir().join(format!("cor-filedisk-sync-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let d = FileDisk::open_with(&path, Durability::Fsync).unwrap();
        let p = d.allocate_page().unwrap();
        d.write_page(p, &[9u8; PAGE_SIZE]).unwrap();
        d.sync().unwrap();
        // OsCache mode: sync is a no-op and also succeeds.
        let d2 = FileDisk::open_with(&path, Durability::OsCache).unwrap();
        d2.sync().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn out_of_range_and_io_error_display_carry_context() {
        // Out-of-range: page id appears in the message.
        let d = MemDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        let e = d.read_page(41, &mut buf).unwrap_err();
        assert_eq!(e.to_string(), "page 41 out of range");

        // FileDisk out-of-range is checked before any file I/O.
        let dir = std::env::temp_dir().join(format!("cor-filedisk-err-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let d = FileDisk::open(&path).unwrap();
        assert!(matches!(
            d.read_page(3, &mut buf),
            Err(DiskError::BadPage(3))
        ));

        // I/O errors name the op and the path, and expose the source.
        let e = DiskError::io(
            "read",
            path.display().to_string(),
            std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "boom"),
        );
        let msg = e.to_string();
        assert!(msg.contains("read"), "op missing from: {msg}");
        assert!(msg.contains("pages.db"), "path missing from: {msg}");
        assert!(msg.contains("boom"), "source missing from: {msg}");
        assert!(std::error::Error::source(&e).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_disk_crash_drop_loses_the_write_and_kills_the_store() {
        let d = FaultyDisk::new(MemDisk::new());
        let p = d.allocate_page().unwrap();
        d.write_page(p, &[1u8; PAGE_SIZE]).unwrap();
        d.arm(1, FaultMode::CrashDrop);
        assert!(matches!(
            d.write_page(p, &[2u8; PAGE_SIZE]),
            Err(DiskError::Crashed)
        ));
        assert!(d.is_dead());
        assert_eq!(d.faults_fired(), 1);
        // Everything after the crash fails...
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(d.read_page(p, &mut buf), Err(DiskError::Crashed)));
        assert!(matches!(d.allocate_page(), Err(DiskError::Crashed)));
        assert!(matches!(d.sync(), Err(DiskError::Crashed)));
        // ...but the medium kept the pre-crash version.
        d.inner().read_page(p, &mut buf).unwrap();
        assert_eq!(buf[0], 1, "dropped write must not reach the medium");
    }

    #[test]
    fn faulty_disk_torn_write_splices_head_onto_old_tail() {
        let d = FaultyDisk::new(MemDisk::new());
        let p = d.allocate_page().unwrap();
        d.write_page(p, &[1u8; PAGE_SIZE]).unwrap();
        d.arm(1, FaultMode::CrashTorn { keep: 512 });
        assert!(matches!(
            d.write_page(p, &[2u8; PAGE_SIZE]),
            Err(DiskError::Crashed)
        ));
        let mut buf = [0u8; PAGE_SIZE];
        d.inner().read_page(p, &mut buf).unwrap();
        assert!(buf[..512].iter().all(|&b| b == 2), "new head");
        assert!(buf[512..].iter().all(|&b| b == 1), "old tail");
    }

    #[test]
    fn faulty_disk_fail_stop_lands_the_write_then_disarms() {
        let d = FaultyDisk::new(MemDisk::new());
        let p = d.allocate_page().unwrap();
        d.arm(2, FaultMode::FailStop);
        d.write_page(p, &[1u8; PAGE_SIZE]).unwrap(); // countdown 2 -> 1
        let e = d.write_page(p, &[2u8; PAGE_SIZE]).unwrap_err();
        assert!(e.to_string().contains("fail-stop"), "got: {e}");
        assert!(!d.is_dead());
        // The write landed, and the store works again (disarmed).
        let mut buf = [0u8; PAGE_SIZE];
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf[0], 2);
        d.write_page(p, &[3u8; PAGE_SIZE]).unwrap();
        assert_eq!(d.writes_observed(), 3);
    }

    /// Write `n` pages stamped with their own id, return the ids.
    fn fill(disk: &dyn DiskManager, n: u32) -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let p = disk.allocate_page().unwrap();
                let mut buf = [0u8; PAGE_SIZE];
                buf[0] = i as u8;
                buf[PAGE_SIZE - 1] = !(i as u8);
                disk.write_page(p, &buf).unwrap();
                p
            })
            .collect()
    }

    fn read_batch(disk: &dyn DiskManager, ids: &[PageId]) -> (Vec<PageBuf>, usize) {
        let mut bufs = vec![[0u8; PAGE_SIZE]; ids.len()];
        let runs = {
            let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
            disk.read_pages(ids, &mut refs).unwrap()
        };
        (bufs, runs)
    }

    fn check_read_pages_matches_single_reads(disk: &dyn DiskManager) {
        let pids = fill(disk, 8);
        // Sorted contiguous, with gaps, duplicates, and descending ids.
        let batches: Vec<Vec<PageId>> = vec![
            pids.clone(),
            vec![pids[0], pids[2], pids[3], pids[7]],
            vec![pids[5], pids[5], pids[1]],
            vec![pids[6], pids[4], pids[2], pids[0]],
            vec![],
        ];
        for ids in batches {
            let (bufs, runs) = read_batch(disk, &ids);
            assert_eq!(runs, coalesced_runs(&ids), "run accounting for {ids:?}");
            for (&id, got) in ids.iter().zip(&bufs) {
                let mut want = [0u8; PAGE_SIZE];
                disk.read_page(id, &mut want).unwrap();
                assert_eq!(got[..], want[..], "page {id} differs from single read");
            }
        }
    }

    #[test]
    fn memdisk_read_pages_matches_single_reads() {
        check_read_pages_matches_single_reads(&MemDisk::new());
    }

    #[test]
    fn filedisk_read_pages_matches_single_reads() {
        let dir = std::env::temp_dir().join(format!("cor-filedisk-batch-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let d = FileDisk::open(&dir.join("pages.db")).unwrap();
        check_read_pages_matches_single_reads(&d);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn coalesced_runs_counts_maximal_ascending_runs() {
        assert_eq!(coalesced_runs(&[]), 0);
        assert_eq!(coalesced_runs(&[0]), 1);
        assert_eq!(coalesced_runs(&[0, 1, 2, 3]), 1);
        assert_eq!(coalesced_runs(&[0, 1, 3, 4, 9]), 3);
        assert_eq!(
            coalesced_runs(&[3, 2, 1, 0]),
            4,
            "descending never coalesces"
        );
        assert_eq!(coalesced_runs(&[5, 5, 6]), 2, "duplicate breaks the run");
    }

    #[test]
    fn read_pages_bad_page_transfers_nothing_on_validating_stores() {
        let dir = std::env::temp_dir().join(format!("cor-filedisk-badp-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let file_disk = FileDisk::open(&dir.join("pages.db")).unwrap();
        let mem_disk = MemDisk::new();
        for disk in [&file_disk as &dyn DiskManager, &mem_disk] {
            let pids = fill(disk, 3);
            let bad = disk.num_pages();
            let ids = vec![pids[0], bad, pids[1]];
            let mut bufs = vec![[0xEEu8; PAGE_SIZE]; ids.len()];
            let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
            let err = disk.read_pages(&ids, &mut refs).unwrap_err();
            assert!(matches!(err, DiskError::BadPage(b) if b == bad));
            // Ids are validated before any I/O: nothing was copied.
            for buf in &bufs {
                assert!(buf.iter().all(|&b| b == 0xEE), "buffer touched on failure");
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn faulty_disk_batches_tick_short_read_per_page() {
        // The 3rd read faults, whether reads arrive singly or batched:
        // batches must not perturb crash-point ordinals.
        let d = FaultyDisk::new(MemDisk::new());
        let pids = fill(&d, 4);
        d.arm(3, FaultMode::ShortRead);
        let mut bufs = vec![[0u8; PAGE_SIZE]; 4];
        let mut refs: Vec<&mut PageBuf> = bufs.iter_mut().collect();
        let err = d.read_pages(&pids, &mut refs).unwrap_err();
        assert!(err.to_string().contains("short read"), "{err}");
        assert_eq!(d.faults_fired(), 1);
        // Disarmed afterwards: the whole batch succeeds.
        let (bufs, _) = read_batch(&d, &pids);
        assert_eq!(bufs[3][0], 3);
    }

    #[test]
    fn faulty_disk_short_read_fires_on_reads_only_then_disarms() {
        let d = FaultyDisk::new(MemDisk::new());
        let p = d.allocate_page().unwrap();
        d.arm(1, FaultMode::ShortRead);
        // Writes never trigger a ShortRead fault.
        d.write_page(p, &[7u8; PAGE_SIZE]).unwrap();
        let mut buf = [0u8; PAGE_SIZE];
        let e = d.read_page(p, &mut buf).unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("read") && msg.contains("short read"), "{msg}");
        // Disarmed: next read succeeds.
        d.read_page(p, &mut buf).unwrap();
        assert_eq!(buf[0], 7);
    }
}
