//! Disk managers: the raw page stores beneath the buffer pool.
//!
//! The paper's experiments measured I/O counts on a ~10 MB INGRES database.
//! Since the yardstick is the *number of page transfers*, not seconds, the
//! default store is [`MemDisk`], an in-memory page vector that gives exact,
//! noise-free transfer counts. [`FileDisk`] is a real file-backed store for
//! anyone who wants wall-clock numbers on actual hardware.

use crate::page::{PageBuf, PageId, PAGE_SIZE};
use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Errors from disk-manager operations.
#[derive(Debug)]
pub enum DiskError {
    /// A page id past the end of the store was referenced.
    BadPage(PageId),
    /// Underlying file I/O failed (file-backed stores only).
    Io(std::io::Error),
}

impl std::fmt::Display for DiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DiskError::BadPage(p) => write!(f, "page {p} out of range"),
            DiskError::Io(e) => write!(f, "file I/O error: {e}"),
        }
    }
}

impl std::error::Error for DiskError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DiskError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DiskError {
    fn from(e: std::io::Error) -> Self {
        DiskError::Io(e)
    }
}

/// A store of fixed-size pages addressed by [`PageId`].
///
/// Implementations do **not** count I/O themselves; the buffer pool counts
/// transfers as they cross its boundary, which matches how the paper
/// measured traffic below the INGRES buffer.
///
/// `Send + Sync` so a buffer pool can be shared across threads behind an
/// `Arc` (parallel experiment sweeps give each worker its own pool, but
/// nothing prevents sharing one).
pub trait DiskManager: Send + Sync {
    /// Read page `id` into `buf`.
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError>;
    /// Write `buf` to page `id`.
    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError>;
    /// Append a zeroed page, returning its id.
    fn allocate_page(&self) -> Result<PageId, DiskError>;
    /// Number of allocated pages.
    fn num_pages(&self) -> u32;
}

/// In-memory page store.
pub struct MemDisk {
    pages: Mutex<Vec<PageBuf>>,
}

impl MemDisk {
    /// Create an empty in-memory store.
    pub fn new() -> Self {
        MemDisk {
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl Default for MemDisk {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskManager for MemDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        let pages = self.pages.lock();
        let page = pages.get(id as usize).ok_or(DiskError::BadPage(id))?;
        buf.copy_from_slice(&page[..]);
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id as usize).ok_or(DiskError::BadPage(id))?;
        page.copy_from_slice(buf);
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        let mut pages = self.pages.lock();
        let id = pages.len() as PageId;
        pages.push([0u8; PAGE_SIZE]);
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        self.pages.lock().len() as u32
    }
}

/// File-backed page store.
pub struct FileDisk {
    file: Mutex<File>,
    num_pages: Mutex<u32>,
}

impl FileDisk {
    /// Open (or create) a page file at `path`.
    pub fn open(path: &Path) -> Result<Self, DiskError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let len = file.metadata()?.len();
        let num_pages = (len / PAGE_SIZE as u64) as u32;
        Ok(FileDisk {
            file: Mutex::new(file),
            num_pages: Mutex::new(num_pages),
        })
    }
}

impl DiskManager for FileDisk {
    fn read_page(&self, id: PageId, buf: &mut PageBuf) -> Result<(), DiskError> {
        if id >= self.num_pages() {
            return Err(DiskError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &PageBuf) -> Result<(), DiskError> {
        if id >= self.num_pages() {
            return Err(DiskError::BadPage(id));
        }
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(buf)?;
        Ok(())
    }

    fn allocate_page(&self) -> Result<PageId, DiskError> {
        let mut n = self.num_pages.lock();
        let id = *n;
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(id as u64 * PAGE_SIZE as u64))?;
        file.write_all(&[0u8; PAGE_SIZE])?;
        *n += 1;
        Ok(id)
    }

    fn num_pages(&self) -> u32 {
        *self.num_pages.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(disk: &dyn DiskManager) {
        let p0 = disk.allocate_page().unwrap();
        let p1 = disk.allocate_page().unwrap();
        assert_ne!(p0, p1);
        assert_eq!(disk.num_pages(), 2);

        let mut w = [0u8; PAGE_SIZE];
        w[0] = 0xAB;
        w[PAGE_SIZE - 1] = 0xCD;
        disk.write_page(p1, &w).unwrap();

        let mut r = [0u8; PAGE_SIZE];
        disk.read_page(p1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        assert_eq!(r[PAGE_SIZE - 1], 0xCD);

        // Fresh page is zeroed.
        disk.read_page(p0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn memdisk_roundtrip() {
        roundtrip(&MemDisk::new());
    }

    #[test]
    fn memdisk_rejects_bad_page() {
        let d = MemDisk::new();
        let mut buf = [0u8; PAGE_SIZE];
        assert!(matches!(
            d.read_page(0, &mut buf),
            Err(DiskError::BadPage(0))
        ));
        assert!(matches!(d.write_page(7, &buf), Err(DiskError::BadPage(7))));
    }

    #[test]
    fn filedisk_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cor-filedisk-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        {
            let d = FileDisk::open(&path).unwrap();
            roundtrip(&d);
        }
        // Re-open: pages persist.
        let d = FileDisk::open(&path).unwrap();
        assert_eq!(d.num_pages(), 2);
        let mut r = [0u8; PAGE_SIZE];
        d.read_page(1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        std::fs::remove_dir_all(&dir).ok();
    }
}
