//! Per-shard buffer-pool telemetry.
//!
//! [`IoStats`](crate::stats::IoStats) counts *physical transfers* — the
//! paper's cost metric — and must stay byte-identical whether or not
//! observability is on. This module counts *pool behaviour*: page-table
//! hits and faults, evictions, dirty write-backs and pin-wait failures,
//! one counter set per lock stripe so a hot shard is visible as such.
//! Telemetry is opt-in at pool construction
//! ([`BufferPoolBuilder::telemetry`](crate::buffer::BufferPoolBuilder::telemetry));
//! a disabled pool holds no counters at all, keeping the hot path free of
//! even relaxed atomic adds.

use cor_obs::{hit_ratio, Counter};

/// Live per-shard counters. One instance per [`Shard`](crate::buffer::BufferPool)
/// stripe when telemetry is enabled.
#[derive(Debug, Default)]
pub struct ShardTelemetry {
    /// Page-table hits in `pin` (page already resident).
    pub hits: Counter,
    /// Page faults in `pin` (page read in from disk).
    pub misses: Counter,
    /// Resident pages detached to make room for another page.
    pub evictions: Counter,
    /// Dirty pages written back to disk (on eviction or flush).
    pub writebacks: Counter,
    /// Pin requests that failed because every candidate frame was pinned.
    pub pin_waits: Counter,
}

impl ShardTelemetry {
    /// Hit fraction over all probes so far (0.0 before any probe).
    pub fn hit_ratio(&self) -> f64 {
        hit_ratio(self.hits.get(), self.misses.get())
    }

    /// Capture the counters, tagging them with the shard index.
    pub fn snapshot(&self, shard: usize) -> ShardTelemetrySnapshot {
        ShardTelemetrySnapshot {
            shard,
            hits: self.hits.get(),
            misses: self.misses.get(),
            evictions: self.evictions.get(),
            writebacks: self.writebacks.get(),
            pin_waits: self.pin_waits.get(),
        }
    }
}

/// A point-in-time copy of one shard's telemetry counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShardTelemetrySnapshot {
    /// Index of the lock stripe these counters belong to.
    pub shard: usize,
    /// Page-table hits.
    pub hits: u64,
    /// Page faults.
    pub misses: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty write-backs.
    pub writebacks: u64,
    /// Failed pin attempts (all frames pinned).
    pub pin_waits: u64,
}

impl ShardTelemetrySnapshot {
    /// Total pin probes (hits + misses).
    pub fn probes(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit fraction (0.0 when nothing was probed — never NaN).
    pub fn hit_ratio(&self) -> f64 {
        hit_ratio(self.hits, self.misses)
    }

    /// Fold another snapshot into this one, summing every counter. Used to
    /// report a whole-pool roll-up next to the per-shard rows.
    pub fn merge(&mut self, other: &ShardTelemetrySnapshot) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.evictions += other.evictions;
        self.writebacks += other.writebacks;
        self.pin_waits += other.pin_waits;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_copies_counters() {
        let t = ShardTelemetry::default();
        t.hits.add(3);
        t.misses.inc();
        t.writebacks.inc();
        let s = t.snapshot(2);
        assert_eq!(s.shard, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 1);
        assert_eq!(s.probes(), 4);
        assert_eq!(s.hit_ratio(), 0.75);
        assert_eq!(t.hit_ratio(), 0.75);
    }

    #[test]
    fn empty_ratio_is_zero_not_nan() {
        let s = ShardTelemetrySnapshot::default();
        assert_eq!(s.hit_ratio(), 0.0);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = ShardTelemetrySnapshot {
            shard: 0,
            hits: 1,
            misses: 2,
            evictions: 3,
            writebacks: 4,
            pin_waits: 5,
        };
        let b = ShardTelemetrySnapshot {
            shard: 1,
            hits: 10,
            misses: 20,
            evictions: 30,
            writebacks: 40,
            pin_waits: 50,
        };
        a.merge(&b);
        assert_eq!(a.hits, 11);
        assert_eq!(a.misses, 22);
        assert_eq!(a.evictions, 33);
        assert_eq!(a.writebacks, 44);
        assert_eq!(a.pin_waits, 55);
    }
}
