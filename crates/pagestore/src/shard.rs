//! One lock stripe of the buffer pool.
//!
//! A [`Shard`] owns a disjoint set of frames plus the mutable lookup
//! state guarding them: the page table, the free list of recycled page
//! ids homed here, and the replacement-policy recency state. All of it
//! sits behind one mutex, so two operations on pages of *different*
//! shards never contend. Frame contents are protected separately by a
//! per-frame `RwLock`, and the pin protocol guarantees a frame's data
//! is never stolen while a closure is reading or writing it: victims
//! are only chosen among frames with `pin_count == 0`, and pin counts
//! only move under the shard lock (up) or after the data guard is
//! dropped (down).

use crate::aio::{AioEngine, Completion};
use crate::buffer::BufferError;
use crate::disk::DiskManager;
use crate::page::{PageBuf, PageId, PageView, PAGE_SIZE};
use crate::policy::{ReplacementPolicy, ReplacementState};
use crate::stats::IoStats;
use crate::telemetry::{ShardTelemetry, ShardTelemetrySnapshot};
use crate::wal::{Lsn, WalHook, NO_LSN};
use cor_obs::{flight, heat, wait};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// How often a fully-pinned shard re-checks for a victim before giving
/// up with [`BufferError::NoFreeFrames`]. Pin counts drop without the
/// shard lock, so a concurrent unpin can free a victim while we hold it.
const FRAME_STALL_RETRIES: usize = 20;

/// Sleep between victim re-checks; total stall budget before failing is
/// `FRAME_STALL_RETRIES * FRAME_STALL_SLEEP` (~1 ms) plus scheduling.
const FRAME_STALL_SLEEP: Duration = Duration::from_micros(50);

pub(crate) struct FrameData {
    pub(crate) page_id: PageId,
    pub(crate) dirty: bool,
    /// recLSN: the log record that first dirtied this frame since its
    /// last write-back ([`NO_LSN`] when clean or when no WAL is
    /// attached). Reported in the checkpoint dirty-page table; redo must
    /// start no later than the minimum recLSN over all dirty frames.
    pub(crate) rec_lsn: Lsn,
    pub(crate) data: Box<PageBuf>,
}

/// Uphold WAL-before-data for one frame about to be written back: the
/// log must be durable through the frame's page LSN before the page
/// bytes may reach the disk manager.
fn wal_before_data(wal: Option<&dyn WalHook>, st: &FrameData) -> Result<(), BufferError> {
    if let Some(w) = wal {
        let lsn = PageView::new(&st.data[..]).lsn();
        if lsn != NO_LSN {
            w.flush_to(lsn)?;
        }
    }
    Ok(())
}

/// Bookkeeping after a successful write-back: the frame is clean, its
/// dirty-period is over, and the log must image the page again before
/// trusting deltas (the write-back created a fresh torn-write hazard).
fn after_write_back(wal: Option<&dyn WalHook>, st: &mut FrameData) {
    st.dirty = false;
    st.rec_lsn = NO_LSN;
    if let Some(w) = wal {
        w.page_flushed(st.page_id);
    }
}

pub(crate) struct Frame {
    pub(crate) pin_count: AtomicUsize,
    /// Set when the current tenant page was brought in by a prefetch and
    /// has not been demanded yet; the first demand pin clears it and
    /// counts a prefetch hit. Only ever flipped under the shard lock.
    pub(crate) prefetched: AtomicBool,
    pub(crate) state: RwLock<FrameData>,
}

struct ShardInner {
    /// page id -> frame index, for pages resident in this shard.
    page_table: HashMap<PageId, usize>,
    /// Freed pages homed to this shard, available for reuse.
    free_list: Vec<PageId>,
    /// Recency state for this shard's frames.
    repl: ReplacementState,
    /// In-flight `cor-aio` readahead homed to this shard: page id ->
    /// completion handle, for pages submitted speculatively but not yet
    /// admitted to a frame. Lives under the shard mutex so every
    /// residency transition (demand pin, batch pin, allocate, free,
    /// clear) can harvest or discard pending bytes atomically with its
    /// page-table update — the invariant is *pending implies not
    /// resident*, so a pending completion's bytes are always current
    /// (nothing can have dirtied the page without first faulting it in,
    /// which removes the entry).
    aio_pending: HashMap<PageId, Completion>,
}

pub(crate) struct Shard {
    frames: Vec<Frame>,
    inner: Mutex<ShardInner>,
    /// Position of this stripe in the pool, reported in telemetry and in
    /// [`BufferError::NoFreeFrames`] diagnostics.
    index: usize,
    /// Behaviour counters; `None` keeps the hot path free of telemetry
    /// entirely (the "free when disabled" contract).
    telemetry: Option<ShardTelemetry>,
}

impl Shard {
    pub(crate) fn new(capacity: usize, index: usize, telemetry: bool) -> Self {
        assert!(capacity > 0, "every shard needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                pin_count: AtomicUsize::new(0),
                prefetched: AtomicBool::new(false),
                state: RwLock::new(FrameData {
                    page_id: PageId::MAX,
                    dirty: false,
                    rec_lsn: NO_LSN,
                    data: Box::new([0u8; PAGE_SIZE]),
                }),
            })
            .collect();
        Shard {
            frames,
            inner: Mutex::new(ShardInner {
                page_table: HashMap::new(),
                free_list: Vec::new(),
                repl: ReplacementState::new(capacity),
                aio_pending: HashMap::new(),
            }),
            index,
            telemetry: telemetry.then(ShardTelemetry::default),
        }
    }

    /// Telemetry counters for this stripe, when enabled.
    pub(crate) fn telemetry_snapshot(&self) -> Option<ShardTelemetrySnapshot> {
        self.telemetry.as_ref().map(|t| t.snapshot(self.index))
    }

    #[inline]
    fn count(&self, f: impl FnOnce(&ShardTelemetry)) {
        if let Some(t) = &self.telemetry {
            f(t);
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Acquire the shard lock on a pin path, feeding the acquisition
    /// time to the wait profile (`shard_lock` class) when profiling is
    /// on. One relaxed load otherwise.
    #[inline]
    fn lock_pinning(&self) -> MutexGuard<'_, ShardInner> {
        wait::timed(wait::WaitClass::ShardLock, || self.inner.lock())
    }

    pub(crate) fn frame(&self, idx: usize) -> &Frame {
        &self.frames[idx]
    }

    /// Release a pin taken by [`Self::pin`], [`Self::pin_many`] or
    /// [`Self::allocate_into`].
    pub(crate) fn unpin(&self, idx: usize) {
        self.frames[idx].pin_count.fetch_sub(1, Ordering::Release);
    }

    /// A demand access found `idx` resident: if a prefetch brought the
    /// tenant in and this is its first demanded use, count the prefetch
    /// hit and retire the flag. Called under the shard lock.
    #[inline]
    fn note_demand_hit(&self, idx: usize, stats: &IoStats) {
        let f = &self.frames[idx];
        if f.prefetched.load(Ordering::Relaxed) {
            f.prefetched.store(false, Ordering::Relaxed);
            stats.record_prefetch_hit();
        }
    }

    /// Pop a recycled page id homed to this shard, if any.
    pub(crate) fn pop_free(&self) -> Option<PageId> {
        self.inner.lock().free_list.pop()
    }

    /// Pin `pid` into a frame, faulting it in from `disk` if needed.
    /// Returns the frame index with `pin_count` already incremented.
    pub(crate) fn pin(
        &self,
        pid: PageId,
        policy: ReplacementPolicy,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<usize, BufferError> {
        heat::touch(heat::HeatClass::PoolShard, self.index as u64);
        let mut inner = self.lock_pinning();
        let tick = inner.repl.advance();
        if let Some(&idx) = inner.page_table.get(&pid) {
            self.frames[idx].pin_count.fetch_add(1, Ordering::Acquire);
            self.note_demand_hit(idx, stats);
            inner.repl.on_hit(idx, tick, policy);
            self.count(|t| t.hits.inc());
            return Ok(idx);
        }
        self.count(|t| t.misses.inc());
        let idx = self.acquire_frame(&mut inner, pid, policy, disk, stats, wal)?;
        {
            let mut st = self.frames[idx].state.write();
            // An in-flight async prefetch of this page beats a disk
            // read: harvest its bytes (blocking on the run if it has
            // not completed — profiled as `aio_completion`). A
            // poisoned run falls back to the synchronous read below,
            // so demand semantics match the engineless path exactly.
            let mut filled = false;
            if let Some(c) = inner.aio_pending.remove(&pid) {
                if c.wait_into(&mut st.data).is_ok() {
                    stats.record_read();
                    stats.record_prefetch_hit();
                    filled = true;
                }
            }
            if !filled {
                if let Err(e) = disk.read_page(pid, &mut st.data) {
                    st.page_id = PageId::MAX;
                    drop(st);
                    self.unpin(idx);
                    return Err(e.into());
                }
                stats.record_read();
            }
            st.page_id = pid;
            st.dirty = false;
            st.rec_lsn = NO_LSN;
        }
        inner.page_table.insert(pid, idx);
        inner.repl.on_load(idx, tick, policy);
        Ok(idx)
    }

    /// Pin a batch of pages homed to this shard in one pass: hits are
    /// served from resident frames, and all misses are admitted and then
    /// filled by **one** sorted [`DiskManager::read_pages`] call, so
    /// adjacent pages coalesce into single physical submissions.
    ///
    /// `pids` is processed in order and may contain duplicates; each
    /// unique page is pinned exactly once and returned as
    /// `(page_id, frame index)`. The caller owns one unpin per entry.
    /// Replacement-state transitions (tick advance, `on_hit`/`on_load`,
    /// victim choice) happen in the same sequence a loop of [`Self::pin`]
    /// would produce, so eviction decisions — and therefore [`IoStats`]
    /// totals — match the unbatched path whenever the batch's unique
    /// pages fit the shard.
    ///
    /// With `prefetch` set, freshly faulted frames are tagged so the
    /// first later demand pin counts a prefetch hit, and the pages are
    /// counted as `prefetch_issued`.
    ///
    /// # Partial failure
    ///
    /// If admission or the batched read fails, every frame staged for the
    /// batch is detached again (no partially-admitted garbage stays in
    /// the page table), every pin taken is released, and **no** reads are
    /// recorded: the failed batch is observationally a no-op apart from
    /// evictions its admissions already performed — exactly like a failed
    /// single [`Self::pin`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn pin_many(
        &self,
        pids: &[PageId],
        policy: ReplacementPolicy,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
        prefetch: bool,
        aio: Option<&AioEngine>,
    ) -> Result<Vec<(PageId, usize)>, BufferError> {
        heat::touch_n(
            heat::HeatClass::PoolShard,
            self.index as u64,
            pids.len() as u64,
        );
        let mut inner = self.lock_pinning();
        // Unique pages pinned by this call, in first-seen order.
        let mut pinned: Vec<(PageId, usize)> = Vec::with_capacity(pids.len());
        let mut seen: HashMap<PageId, usize> = HashMap::with_capacity(pids.len());
        // The subset of `pinned` that needs a disk fill (staged frames).
        let mut staged: Vec<(PageId, usize)> = Vec::new();

        let rollback =
            |inner: &mut ShardInner, pinned: &[(PageId, usize)], staged: &[(PageId, usize)]| {
                for &(pid, idx) in staged {
                    inner.page_table.remove(&pid);
                    let mut st = self.frames[idx].state.write();
                    st.page_id = PageId::MAX;
                    st.dirty = false;
                    st.rec_lsn = NO_LSN;
                }
                for &(_, idx) in pinned {
                    self.unpin(idx);
                }
            };

        for &pid in pids {
            let tick = inner.repl.advance();
            if let Some(&idx) = seen.get(&pid) {
                // Intra-batch duplicate: already pinned by this call; a
                // loop of fetches would have counted a resident hit.
                inner.repl.on_hit(idx, tick, policy);
                self.count(|t| t.hits.inc());
                continue;
            }
            if let Some(&idx) = inner.page_table.get(&pid) {
                self.frames[idx].pin_count.fetch_add(1, Ordering::Acquire);
                if !prefetch {
                    self.note_demand_hit(idx, stats);
                }
                inner.repl.on_hit(idx, tick, policy);
                self.count(|t| t.hits.inc());
                pinned.push((pid, idx));
                seen.insert(pid, idx);
                continue;
            }
            self.count(|t| t.misses.inc());
            let idx = match self.acquire_frame(&mut inner, pid, policy, disk, stats, wal) {
                Ok(idx) => idx,
                Err(e) => {
                    rollback(&mut inner, &pinned, &staged);
                    return Err(e);
                }
            };
            // An in-flight async prefetch of this page beats the batched
            // fill: harvest its bytes straight into the acquired frame.
            // A poisoned run falls through to the normal disk fill.
            if let Some(c) = inner.aio_pending.remove(&pid) {
                let mut st = self.frames[idx].state.write();
                if c.wait_into(&mut st.data).is_ok() {
                    st.page_id = pid;
                    st.dirty = false;
                    st.rec_lsn = NO_LSN;
                    drop(st);
                    stats.record_read();
                    if prefetch {
                        self.frames[idx].prefetched.store(true, Ordering::Relaxed);
                    } else {
                        stats.record_prefetch_hit();
                    }
                    inner.page_table.insert(pid, idx);
                    inner.repl.on_load(idx, tick, policy);
                    pinned.push((pid, idx));
                    seen.insert(pid, idx);
                    continue;
                }
            }
            // Insert before the fill so intra-batch duplicates hit; the
            // shard lock is held until the fill completes, so no other
            // thread can observe the staged (still-empty) frame.
            inner.page_table.insert(pid, idx);
            inner.repl.on_load(idx, tick, policy);
            staged.push((pid, idx));
            pinned.push((pid, idx));
            seen.insert(pid, idx);
        }

        if !staged.is_empty() {
            // Sorted fill: adjacent page ids coalesce into single runs.
            staged.sort_unstable_by_key(|&(pid, _)| pid);
            let ids: Vec<PageId> = staged.iter().map(|&(pid, _)| pid).collect();
            let mut guards: Vec<_> = staged
                .iter()
                .map(|&(_, idx)| self.frames[idx].state.write())
                .collect();
            let read = match aio {
                // Demand fills go through the submission engine when one
                // exists, so independent runs proceed in parallel up to
                // the queue depth. The run structure — and therefore the
                // `coalesced_runs` accounting — matches the synchronous
                // `read_pages` call exactly by construction.
                Some(engine) => {
                    let ticket = engine.submit(&ids);
                    let runs = ticket.num_runs();
                    let mut result = Ok(runs);
                    for (c, g) in ticket.into_completions().iter().zip(guards.iter_mut()) {
                        if let Err(e) = c.wait_into(&mut g.data) {
                            result = Err(e);
                            break;
                        }
                    }
                    result
                }
                None => {
                    let mut bufs: Vec<&mut PageBuf> =
                        guards.iter_mut().map(|g| &mut *g.data).collect();
                    disk.read_pages(&ids, &mut bufs)
                }
            };
            match read {
                Ok(runs) => {
                    for (st, &(pid, idx)) in guards.iter_mut().zip(staged.iter()) {
                        st.page_id = pid;
                        st.dirty = false;
                        st.rec_lsn = NO_LSN;
                        stats.record_read();
                        if prefetch {
                            self.frames[idx].prefetched.store(true, Ordering::Relaxed);
                        }
                    }
                    stats.record_batch(ids.len() as u64, runs as u64);
                }
                Err(e) => {
                    drop(guards);
                    rollback(&mut inner, &pinned, &staged);
                    return Err(e.into());
                }
            }
        }
        Ok(pinned)
    }

    /// Submit speculative readahead for `pids` through the `cor-aio`
    /// engine: pages neither resident nor already pending are submitted
    /// as one sorted batch and parked in the pending table, to be
    /// harvested by the demand access that wants them (or discarded when
    /// the page is freed or the pool is cleared).
    ///
    /// No reads are recorded here — transfer accounting happens at
    /// harvest time, so pages speculated but never demanded never
    /// inflate `reads` (the synchronous prefetch path, by contrast,
    /// pays for its wasted speculation up front). The pending table is
    /// bounded by the shard's frame count; prefetch beyond that is
    /// dropped, exactly as the synchronous path's admissions are
    /// bounded by pool capacity.
    pub(crate) fn prefetch_async(&self, pids: &[PageId], engine: &AioEngine) {
        let mut inner = self.lock_pinning();
        let room = self.frames.len().saturating_sub(inner.aio_pending.len());
        let mut wanted: Vec<PageId> = Vec::with_capacity(pids.len().min(room));
        for &pid in pids {
            if wanted.len() == room {
                break;
            }
            if inner.page_table.contains_key(&pid)
                || inner.aio_pending.contains_key(&pid)
                || wanted.contains(&pid)
            {
                continue;
            }
            wanted.push(pid);
        }
        if wanted.is_empty() {
            return;
        }
        wanted.sort_unstable();
        let ticket = engine.submit(&wanted);
        for c in ticket.into_completions() {
            inner.aio_pending.insert(c.page_id(), c);
        }
    }

    /// Bring freshly allocated page `pid` into a frame, zeroed and
    /// dirty, without a physical read. Returns the frame index with
    /// `pin_count` already incremented.
    pub(crate) fn allocate_into(
        &self,
        pid: PageId,
        policy: ReplacementPolicy,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<usize, BufferError> {
        let mut inner = self.lock_pinning();
        // A freshly allocated page's contents are defined here, not on
        // disk: any stale speculation for the id is worthless.
        inner.aio_pending.remove(&pid);
        let idx = self.acquire_frame(&mut inner, pid, policy, disk, stats, wal)?;
        let mut st = self.frames[idx].state.write();
        st.page_id = pid;
        st.dirty = true;
        st.rec_lsn = NO_LSN;
        st.data.fill(0);
        drop(st);
        inner.page_table.insert(pid, idx);
        let tick = inner.repl.advance();
        inner.repl.on_load(idx, tick, policy);
        Ok(idx)
    }

    /// Find a victim frame (unpinned, per the replacement policy), write
    /// it back if dirty, detach it from the page table, and return it
    /// pinned.
    ///
    /// When every candidate is pinned, the shard stalls briefly —
    /// re-checking for a victim up to [`FRAME_STALL_RETRIES`] times,
    /// since pin counts drop without the shard lock — before giving up.
    /// The stall (whether it ended in a victim or not) is fed to the
    /// wait profile under `frame_stall`. On failure reports `pid` (the
    /// page that wanted a frame), which stripe it is homed to, how many
    /// frames were pinned, how long the stall lasted, and — when
    /// telemetry is on — the stripe's hit ratio at failure time.
    fn acquire_frame(
        &self,
        inner: &mut ShardInner,
        pid: PageId,
        policy: ReplacementPolicy,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<usize, BufferError> {
        let n = self.frames.len();
        let unpinned = |i: usize| self.frames[i].pin_count.load(Ordering::Acquire) == 0;
        let mut victim = inner.repl.pick_victim(policy, n, unpinned);
        if victim.is_none() {
            // Off the hot path: the clock reads below price the stall for
            // the error context regardless of wait profiling.
            self.count(|t| t.pin_waits.inc());
            let t0 = Instant::now();
            for _ in 0..FRAME_STALL_RETRIES {
                std::thread::sleep(FRAME_STALL_SLEEP);
                victim = inner.repl.pick_victim(policy, n, unpinned);
                if victim.is_some() {
                    break;
                }
            }
            let waited_ns = t0.elapsed().as_nanos() as u64;
            wait::record(wait::WaitClass::FrameStall, waited_ns);
            if victim.is_none() {
                let pinned = self
                    .frames
                    .iter()
                    .filter(|f| f.pin_count.load(Ordering::Acquire) != 0)
                    .count();
                flight::record(
                    flight::FlightKind::NoFreeFrames,
                    self.index as u64,
                    pid as u64,
                    pinned as u64,
                );
                return Err(BufferError::NoFreeFrames {
                    pid,
                    shard: self.index,
                    pinned,
                    hit_ratio: self.telemetry.as_ref().map(ShardTelemetry::hit_ratio),
                    waited_ns,
                });
            }
        }
        let victim = victim.expect("checked above");
        // Pin immediately so a concurrent caller cannot also claim it.
        self.frames[victim]
            .pin_count
            .fetch_add(1, Ordering::Acquire);
        let mut st = self.frames[victim].state.write();
        if st.page_id != PageId::MAX {
            if st.dirty {
                let written = wal_before_data(wal, &st)
                    .and_then(|()| disk.write_page(st.page_id, &st.data).map_err(Into::into));
                if let Err(e) = written {
                    drop(st);
                    self.unpin(victim);
                    return Err(e);
                }
                stats.record_write();
                self.count(|t| t.writebacks.inc());
                after_write_back(wal, &mut st);
            }
            inner.page_table.remove(&st.page_id);
            st.page_id = PageId::MAX;
            self.count(|t| t.evictions.inc());
        }
        // Any prefetched-but-never-demanded tenant is gone with the frame.
        self.frames[victim]
            .prefetched
            .store(false, Ordering::Relaxed);
        Ok(victim)
    }

    /// Return `pid` to this shard's free list, discarding any resident
    /// copy without a write-back.
    pub(crate) fn free_page(&self, pid: PageId) -> Result<(), BufferError> {
        let mut inner = self.inner.lock();
        // A freed page's speculated bytes must never be delivered to a
        // later reallocation of the id.
        inner.aio_pending.remove(&pid);
        if let Some(&idx) = inner.page_table.get(&pid) {
            if self.frames[idx].pin_count.load(Ordering::Acquire) != 0 {
                return Err(BufferError::PagePinned(pid));
            }
            inner.page_table.remove(&pid);
            let mut st = self.frames[idx].state.write();
            st.page_id = PageId::MAX;
            st.dirty = false;
            st.rec_lsn = NO_LSN;
        }
        debug_assert!(!inner.free_list.contains(&pid), "double free of page {pid}");
        inner.free_list.push(pid);
        Ok(())
    }

    /// Number of recycled page ids homed here.
    pub(crate) fn free_pages(&self) -> usize {
        self.inner.lock().free_list.len()
    }

    /// Append the recycled page ids homed here to `out`.
    pub(crate) fn collect_free(&self, out: &mut Vec<PageId>) {
        out.extend_from_slice(&self.inner.lock().free_list);
    }

    /// Write `pid` back to disk if resident and dirty. Returns whether a
    /// write happened.
    pub(crate) fn flush_page(
        &self,
        pid: PageId,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<bool, BufferError> {
        let inner = self.inner.lock();
        let Some(&idx) = inner.page_table.get(&pid) else {
            return Ok(false);
        };
        let mut st = self.frames[idx].state.write();
        if !st.dirty {
            return Ok(false);
        }
        wal_before_data(wal, &st)?;
        disk.write_page(st.page_id, &st.data)?;
        stats.record_write();
        self.count(|t| t.writebacks.inc());
        after_write_back(wal, &mut st);
        Ok(true)
    }

    /// Write all dirty resident pages back to disk.
    pub(crate) fn flush_all(
        &self,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<(), BufferError> {
        let inner = self.inner.lock();
        for &idx in inner.page_table.values() {
            let mut st = self.frames[idx].state.write();
            if st.dirty {
                wal_before_data(wal, &st)?;
                disk.write_page(st.page_id, &st.data)?;
                stats.record_write();
                self.count(|t| t.writebacks.inc());
                after_write_back(wal, &mut st);
            }
        }
        Ok(())
    }

    /// Flush then forget every resident page and all recency state.
    pub(crate) fn flush_and_clear(
        &self,
        disk: &dyn DiskManager,
        stats: &IoStats,
        wal: Option<&dyn WalHook>,
    ) -> Result<(), BufferError> {
        let mut inner = self.inner.lock();
        for (_, idx) in inner.page_table.drain() {
            let mut st = self.frames[idx].state.write();
            debug_assert_eq!(self.frames[idx].pin_count.load(Ordering::Acquire), 0);
            if st.dirty {
                wal_before_data(wal, &st)?;
                disk.write_page(st.page_id, &st.data)?;
                stats.record_write();
                self.count(|t| t.writebacks.inc());
                after_write_back(wal, &mut st);
            }
            st.page_id = PageId::MAX;
        }
        inner.repl.reset();
        // Discard in-flight speculation along with the residency it was
        // speculating for; the runs complete into their slots and the
        // bytes are dropped unobserved.
        inner.aio_pending.clear();
        Ok(())
    }

    /// Append this shard's `(page_id, recLSN)` pairs for dirty resident
    /// frames — its slice of the checkpoint dirty-page table.
    pub(crate) fn collect_dirty(&self, out: &mut Vec<(PageId, Lsn)>) {
        let inner = self.inner.lock();
        for (&pid, &idx) in inner.page_table.iter() {
            let st = self.frames[idx].state.read();
            if st.dirty && st.rec_lsn != NO_LSN {
                out.push((pid, st.rec_lsn));
            }
        }
    }

    /// Number of pages resident in this shard.
    pub(crate) fn resident_pages(&self) -> usize {
        self.inner.lock().page_table.len()
    }
}
