//! Frame replacement policies and the per-shard recency state they
//! maintain.
//!
//! Each buffer-pool shard owns one [`ReplacementState`]; the tick
//! counter, intrusive recency lists, reference bits and clock hand are
//! all shard-local, so shards make eviction decisions without touching
//! any shared state. With a single shard the eviction sequence is
//! exactly the one the unsharded pool produced, which is what keeps the
//! paper's I/O counts byte-identical in single-shard mode.
//!
//! # The intrusive recency arena
//!
//! Recency order is kept in intrusive doubly-linked lists over frame
//! indices (`prev`/`next` arrays — no allocation per operation). Every
//! frame lives on exactly one list at a time:
//!
//! * **LRU / FIFO** — one list, head = coldest. LRU moves a frame to
//!   the tail on every touch; FIFO only on load. The victim is the
//!   first unpinned frame from the head, so eviction is O(1) plus the
//!   number of pinned frames skipped — the old `min_by_key` scan was
//!   O(frames) on every fault.
//! * **CLOCK** — second-chance hand over per-frame reference bits
//!   (unchanged from the original implementation; the list is
//!   maintained but not consulted).
//! * **SIEVE** — the list holds *insertion* order and is never
//!   reordered; a moving hand walks from the oldest end clearing
//!   visited bits and evicts the first unvisited unpinned frame. The
//!   hand survives across evictions, which is what makes SIEVE
//!   scan-resistant: one-touch scan pages are swept out while
//!   re-referenced pages (visited bit set) get exactly one reprieve
//!   per lap.
//! * **2Q** — two lists: a probationary FIFO `A1in` receiving every
//!   newly loaded page, and a main queue `Am` a page is promoted to on
//!   its second touch. Victims come from `A1in` while it holds at
//!   least `max(1, frames/4)` frames, so a scan flood churns only the
//!   probationary quarter and never displaces the re-referenced pages
//!   in `Am`.
//!
//! Eviction-order compatibility: the legacy LRU/FIFO victim was the
//! minimum `last_used` stamp among unpinned frames, ties broken by the
//! lowest frame index (all stamps start at 0). The lists are
//! initialised in frame-index order and moved-to-tail on exactly the
//! events that used to stamp, so the victim sequence is identical —
//! asserted by the stamp-model regression test below.

/// "No frame" marker for the intrusive list links and the SIEVE hand.
const NIL: usize = usize::MAX;

/// Frame replacement policy. The paper does not name INGRES 5.0's policy;
/// LRU is the era-appropriate default, and the alternatives exist for the
/// ablation bench (strategy orderings should not hinge on the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used unpinned frame (default).
    #[default]
    Lru,
    /// Evict the earliest-loaded unpinned frame.
    Fifo,
    /// Second-chance clock over reference bits.
    Clock,
    /// FIFO insertion order with a moving eviction hand that clears
    /// visited bits but never reorders (SIGMETRICS '24) — scan-resistant
    /// and simpler than LRU.
    Sieve,
    /// Probationary `A1in` FIFO + `Am` main queue (Johnson & Shasha):
    /// one-touch pages never displace re-referenced ones.
    TwoQ,
}

impl ReplacementPolicy {
    /// Every policy, in the canonical bench/report order.
    pub const ALL: [ReplacementPolicy; 5] = [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Clock,
        ReplacementPolicy::Sieve,
        ReplacementPolicy::TwoQ,
    ];

    /// Stable lower-case name used in metrics labels and JSON stamps.
    pub fn name(self) -> &'static str {
        match self {
            ReplacementPolicy::Lru => "lru",
            ReplacementPolicy::Fifo => "fifo",
            ReplacementPolicy::Clock => "clock",
            ReplacementPolicy::Sieve => "sieve",
            ReplacementPolicy::TwoQ => "2q",
        }
    }

    /// Inverse of [`name`](Self::name) (case-insensitive; accepts
    /// `"2q"` or `"twoq"`).
    pub fn parse(s: &str) -> Option<ReplacementPolicy> {
        match s.to_ascii_lowercase().as_str() {
            "lru" => Some(ReplacementPolicy::Lru),
            "fifo" => Some(ReplacementPolicy::Fifo),
            "clock" => Some(ReplacementPolicy::Clock),
            "sieve" => Some(ReplacementPolicy::Sieve),
            "2q" | "twoq" => Some(ReplacementPolicy::TwoQ),
            _ => None,
        }
    }
}

impl std::fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Head/tail of one intrusive list (links live in [`ReplacementState`]).
#[derive(Debug, Clone, Copy)]
struct Ends {
    head: usize,
    tail: usize,
}

impl Ends {
    const EMPTY: Ends = Ends {
        head: NIL,
        tail: NIL,
    };
}

/// Recency bookkeeping for the frames of one shard.
#[derive(Debug)]
pub(crate) struct ReplacementState {
    /// Intrusive list links, shared by both lists (a frame is on one).
    prev: Vec<usize>,
    next: Vec<usize>,
    /// LRU/FIFO recency order, SIEVE insertion order, 2Q `A1in`.
    /// Head is the coldest / oldest frame.
    main: Ends,
    /// 2Q main queue `Am`; empty under every other policy.
    am: Ends,
    /// Which list each frame is on.
    in_am: Vec<bool>,
    /// Frames currently on `main` (drives the 2Q `A1in` threshold).
    main_len: usize,
    /// CLOCK reference bits / SIEVE visited bits.
    ref_bits: Vec<bool>,
    /// CLOCK hand (frame-index space, exactly the legacy sweep).
    hand: usize,
    /// SIEVE hand: the next list node to examine (`NIL` = wrap to the
    /// oldest end). Never reset by evictions — that persistence is the
    /// algorithm.
    sieve_hand: usize,
    /// Shard-local logical clock (one tick per pin, as the unsharded
    /// pool did). Kept for diagnostics; victim choice is list order.
    tick: u64,
}

impl ReplacementState {
    pub(crate) fn new(capacity: usize) -> Self {
        let mut s = ReplacementState {
            prev: vec![NIL; capacity],
            next: vec![NIL; capacity],
            main: Ends::EMPTY,
            am: Ends::EMPTY,
            in_am: vec![false; capacity],
            main_len: 0,
            ref_bits: vec![false; capacity],
            hand: 0,
            sieve_hand: NIL,
            tick: 0,
        };
        s.chain_main_in_index_order();
        s
    }

    /// Link every frame onto `main` in index order — the order the
    /// legacy stamp model filled a cold pool (all stamps 0, ties broken
    /// by lowest index).
    fn chain_main_in_index_order(&mut self) {
        let n = self.prev.len();
        for i in 0..n {
            self.prev[i] = if i == 0 { NIL } else { i - 1 };
            self.next[i] = if i + 1 == n { NIL } else { i + 1 };
        }
        self.main = if n == 0 {
            Ends::EMPTY
        } else {
            Ends {
                head: 0,
                tail: n - 1,
            }
        };
        self.am = Ends::EMPTY;
        self.in_am.fill(false);
        self.main_len = n;
    }

    /// Unlink frame `i` from whichever list holds it. The SIEVE hand
    /// slides to the next node first so it never dangles.
    fn detach(&mut self, i: usize) {
        if self.sieve_hand == i {
            self.sieve_hand = self.next[i];
        }
        let (p, n) = (self.prev[i], self.next[i]);
        if p != NIL {
            self.next[p] = n;
        }
        if n != NIL {
            self.prev[n] = p;
        }
        if self.in_am[i] {
            if self.am.head == i {
                self.am.head = n;
            }
            if self.am.tail == i {
                self.am.tail = p;
            }
        } else {
            if self.main.head == i {
                self.main.head = n;
            }
            if self.main.tail == i {
                self.main.tail = p;
            }
            self.main_len -= 1;
        }
        self.prev[i] = NIL;
        self.next[i] = NIL;
    }

    /// Append frame `i` at the hot end of `main`.
    fn push_main_back(&mut self, i: usize) {
        self.prev[i] = self.main.tail;
        self.next[i] = NIL;
        if self.main.tail != NIL {
            self.next[self.main.tail] = i;
        } else {
            self.main.head = i;
        }
        self.main.tail = i;
        self.in_am[i] = false;
        self.main_len += 1;
    }

    /// Append frame `i` at the hot end of `Am`.
    fn push_am_back(&mut self, i: usize) {
        self.prev[i] = self.am.tail;
        self.next[i] = NIL;
        if self.am.tail != NIL {
            self.next[self.am.tail] = i;
        } else {
            self.am.head = i;
        }
        self.am.tail = i;
        self.in_am[i] = true;
    }

    /// First frame from `start` along `next` for which `evictable`
    /// holds. O(1) in the common case (the coldest frame is unpinned);
    /// only pinned frames are ever skipped.
    fn first_evictable(&self, start: usize, evictable: &impl Fn(usize) -> bool) -> Option<usize> {
        let mut i = start;
        while i != NIL {
            if evictable(i) {
                return Some(i);
            }
            i = self.next[i];
        }
        None
    }

    /// Advance the logical clock (one tick per pin, as the unsharded
    /// pool did).
    pub(crate) fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// A resident page was touched at `tick`.
    pub(crate) fn on_hit(&mut self, idx: usize, _tick: u64, policy: ReplacementPolicy) {
        match policy {
            ReplacementPolicy::Lru => {
                self.detach(idx);
                self.push_main_back(idx);
            }
            ReplacementPolicy::Fifo => {} // load order only
            ReplacementPolicy::Clock | ReplacementPolicy::Sieve => self.ref_bits[idx] = true,
            ReplacementPolicy::TwoQ => {
                // Second touch promotes out of probation; further touches
                // refresh the Am recency. Both are "move to Am tail".
                self.detach(idx);
                self.push_am_back(idx);
            }
        }
    }

    /// A page was loaded (or allocated) into frame `idx` at `tick`.
    pub(crate) fn on_load(&mut self, idx: usize, _tick: u64, policy: ReplacementPolicy) {
        // SIEVE inserts unvisited — a page must prove reuse before the
        // hand spares it. CLOCK keeps the legacy load-sets-the-bit
        // behaviour (a fresh page survives the first sweep).
        self.ref_bits[idx] = policy != ReplacementPolicy::Sieve;
        self.detach(idx);
        // Every policy admits at the hot end of `main`: recency tail for
        // LRU/FIFO, insertion tail for SIEVE, probationary A1in for 2Q.
        self.push_main_back(idx);
    }

    /// Choose a victim frame among those for which `evictable` holds
    /// (i.e. unpinned), or `None` if every frame is pinned.
    pub(crate) fn pick_victim(
        &mut self,
        policy: ReplacementPolicy,
        n: usize,
        evictable: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        match policy {
            // Coldest unpinned frame from the list head; the list *is*
            // the stamp order, so this matches the legacy min_by_key
            // scan victim-for-victim.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => {
                self.first_evictable(self.main.head, &evictable)
            }
            ReplacementPolicy::Clock => {
                // Two full sweeps suffice: the first clears reference bits,
                // the second must find one unless everything is pinned.
                for _ in 0..2 * n {
                    let i = self.hand;
                    self.hand = (self.hand + 1) % n;
                    if !evictable(i) {
                        continue;
                    }
                    if self.ref_bits[i] {
                        self.ref_bits[i] = false;
                        continue;
                    }
                    return Some(i);
                }
                None
            }
            ReplacementPolicy::Sieve => {
                // The hand walks oldest → newest, clearing visited bits,
                // and keeps its position across calls and evictions.
                // Pinned frames are skipped without clearing (a pin is
                // active use, not a sweepable reference). Two laps
                // suffice for the same reason as CLOCK.
                for _ in 0..2 * n {
                    let i = if self.sieve_hand == NIL {
                        self.main.head
                    } else {
                        self.sieve_hand
                    };
                    if i == NIL {
                        return None;
                    }
                    self.sieve_hand = self.next[i];
                    if !evictable(i) {
                        continue;
                    }
                    if self.ref_bits[i] {
                        self.ref_bits[i] = false;
                        continue;
                    }
                    return Some(i);
                }
                None
            }
            ReplacementPolicy::TwoQ => {
                // Evict from probation while it holds its quota; the
                // re-referenced pages in Am are only touched when A1in
                // has drained (or is wholly pinned).
                let kin = (n / 4).max(1);
                let (first, second) = if self.main_len >= kin {
                    (self.main.head, self.am.head)
                } else {
                    (self.am.head, self.main.head)
                };
                self.first_evictable(first, &evictable)
                    .or_else(|| self.first_evictable(second, &evictable))
            }
        }
    }

    /// Forget all recency state (pool cold start).
    pub(crate) fn reset(&mut self) {
        self.chain_main_in_index_order();
        self.ref_bits.fill(false);
        self.hand = 0;
        self.sieve_hand = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The pre-arena LRU/FIFO implementation: per-frame stamps, victim =
    /// minimum stamp among unpinned frames (ties → lowest index).
    struct StampModel {
        last_used: Vec<u64>,
    }

    impl StampModel {
        fn new(n: usize) -> Self {
            StampModel {
                last_used: vec![0; n],
            }
        }
        fn on_hit(&mut self, idx: usize, tick: u64, policy: ReplacementPolicy) {
            if policy == ReplacementPolicy::Lru {
                self.last_used[idx] = tick;
            }
        }
        fn on_load(&mut self, idx: usize, tick: u64) {
            self.last_used[idx] = tick;
        }
        fn pick_victim(&self, n: usize, evictable: impl Fn(usize) -> bool) -> Option<usize> {
            (0..n)
                .filter(|&i| evictable(i))
                .min_by_key(|&i| self.last_used[i])
        }
    }

    /// Tiny deterministic PRNG (xorshift) — no dev-dependency needed.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            self.0
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// The intrusive list must reproduce the legacy stamp model's victim
    /// sequence exactly — this is what keeps fig3 byte-identical.
    #[test]
    fn intrusive_list_matches_legacy_stamp_model() {
        for policy in [ReplacementPolicy::Lru, ReplacementPolicy::Fifo] {
            let n = 7;
            let mut state = ReplacementState::new(n);
            let mut model = StampModel::new(n);
            let mut rng = Rng(0x5eed_c0de);
            for step in 0..2000 {
                let tick = state.advance();
                match rng.below(3) {
                    0 => {
                        // Touch a resident frame.
                        let idx = rng.below(n);
                        state.on_hit(idx, tick, policy);
                        model.on_hit(idx, tick, policy);
                    }
                    1 => {
                        // Fault: evict a victim under a random pin mask,
                        // then load into it.
                        let mask = rng.next();
                        let evictable = |i: usize| mask & (1 << i) != 0;
                        let got = state.pick_victim(policy, n, evictable);
                        let want = model.pick_victim(n, evictable);
                        assert_eq!(got, want, "step {step} policy {policy:?}");
                        if let Some(v) = got {
                            state.on_load(v, tick, policy);
                            model.on_load(v, tick);
                        }
                    }
                    _ => {
                        // Occasionally cold-start both.
                        if rng.below(50) == 0 {
                            state.reset();
                            model.last_used.fill(0);
                        }
                    }
                }
            }
        }
    }

    fn fill(state: &mut ReplacementState, n: usize, policy: ReplacementPolicy) {
        for i in 0..n {
            let t = state.advance();
            state.on_load(i, t, policy);
        }
    }

    #[test]
    fn sieve_spares_visited_frames_one_lap() {
        let p = ReplacementPolicy::Sieve;
        let n = 4;
        let mut s = ReplacementState::new(n);
        fill(&mut s, n, p);
        // Re-reference frames 0 and 1; 2 and 3 stay one-touch.
        for i in [0, 1] {
            let t = s.advance();
            s.on_hit(i, t, p);
        }
        // The hand clears 0 and 1, then evicts the first unvisited frame.
        assert_eq!(s.pick_victim(p, n, |_| true), Some(2));
        // Hand persists: the next victim continues from where it stopped.
        assert_eq!(s.pick_victim(p, n, |_| true), Some(3));
        // 0 and 1 spent their reprieve; with no new touches they go next.
        assert_eq!(s.pick_victim(p, n, |_| true), Some(0));
    }

    #[test]
    fn sieve_skips_pinned_without_clearing() {
        let p = ReplacementPolicy::Sieve;
        let n = 3;
        let mut s = ReplacementState::new(n);
        fill(&mut s, n, p);
        let t = s.advance();
        s.on_hit(0, t, p);
        // Frame 0 pinned: skipped, bit intact; 1 is the first unvisited.
        assert_eq!(s.pick_victim(p, n, |i| i != 0), Some(1));
        assert!(s.ref_bits[0], "pinned frame keeps its visited bit");
    }

    #[test]
    fn two_q_probation_shields_promoted_frames() {
        let p = ReplacementPolicy::TwoQ;
        let n = 4; // kin = 1
        let mut s = ReplacementState::new(n);
        fill(&mut s, n, p); // A1in = [0, 1, 2, 3]
        for i in [0, 1] {
            let t = s.advance();
            s.on_hit(i, t, p); // promote 0, 1 to Am
        }
        // Probation holds its quota: one-touch frames go first, in FIFO
        // order, and the promoted frames are untouched.
        assert_eq!(s.pick_victim(p, n, |_| true), Some(2));
        let t = s.advance();
        s.on_load(2, t, p); // new page takes frame 2, back into A1in
        assert_eq!(s.pick_victim(p, n, |_| true), Some(3));
    }

    #[test]
    fn two_q_falls_back_to_am_when_probation_is_pinned() {
        let p = ReplacementPolicy::TwoQ;
        let n = 4;
        let mut s = ReplacementState::new(n);
        fill(&mut s, n, p);
        let t = s.advance();
        s.on_hit(0, t, p); // Am = [0]
                           // A1in = [1, 2, 3] all pinned → the Am head is the only victim.
        assert_eq!(s.pick_victim(p, n, |i| i == 0), Some(0));
    }

    #[test]
    fn reset_restores_cold_index_order() {
        for p in ReplacementPolicy::ALL {
            let n = 5;
            let mut s = ReplacementState::new(n);
            fill(&mut s, n, p);
            let t = s.advance();
            s.on_hit(3, t, p);
            s.reset();
            // A cold pool fills frames in index order under every policy.
            for want in 0..n {
                assert_eq!(s.pick_victim(p, n, |_| true), Some(want), "policy {p:?}");
                let t = s.advance();
                s.on_load(want, t, p);
            }
        }
    }

    #[test]
    fn names_roundtrip() {
        for p in ReplacementPolicy::ALL {
            assert_eq!(ReplacementPolicy::parse(p.name()), Some(p));
            assert_eq!(format!("{p}"), p.name());
        }
        assert_eq!(
            ReplacementPolicy::parse("TwoQ"),
            Some(ReplacementPolicy::TwoQ)
        );
        assert_eq!(ReplacementPolicy::parse("arc"), None);
    }

    /// Property tests: pins are inviolable under every policy, and
    /// CLOCK / SIEVE / 2Q match independently written reference models
    /// (plain `Vec` / `VecDeque` state, no intrusive lists, no `NIL`
    /// encodings) event-for-event over arbitrary access/pin/unpin
    /// interleavings.
    mod prop {
        use super::*;
        use proptest::prelude::*;
        use std::collections::{HashMap, HashSet, VecDeque};

        /// Page universe — larger than any generated capacity, so every
        /// sequence long enough to matter forces evictions.
        const PAGES: u32 = 24;

        #[derive(Debug, Clone)]
        enum Op {
            Access(u32),
            Pin(u32),
            Unpin(u32),
        }

        fn arb_op() -> impl Strategy<Value = Op> {
            prop_oneof![
                6 => (0..PAGES).prop_map(Op::Access),
                1 => (0..PAGES).prop_map(Op::Pin),
                1 => (0..PAGES).prop_map(Op::Unpin),
            ]
        }

        /// What one op did to the cache — compared across models, so two
        /// models agree exactly when their hit, victim-frame and stall
        /// sequences are identical.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        enum Event {
            Hit(usize),
            Load {
                frame: usize,
                evicted: Option<u32>,
            },
            /// Every frame pinned: the fault cannot be served.
            Stall,
            /// Pin/unpin bookkeeping only.
            Noop,
        }

        trait PolicyModel {
            fn on_hit(&mut self, f: usize);
            fn on_load(&mut self, f: usize);
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize>;
        }

        impl PolicyModel for Box<dyn PolicyModel> {
            fn on_hit(&mut self, f: usize) {
                (**self).on_hit(f);
            }
            fn on_load(&mut self, f: usize) {
                (**self).on_load(f);
            }
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
                (**self).pick(evictable)
            }
        }

        /// The production state, driven exactly as a shard drives it.
        struct Real {
            state: ReplacementState,
            policy: ReplacementPolicy,
            n: usize,
        }

        impl Real {
            fn new(n: usize, policy: ReplacementPolicy) -> Self {
                Real {
                    state: ReplacementState::new(n),
                    policy,
                    n,
                }
            }
        }

        impl PolicyModel for Real {
            fn on_hit(&mut self, f: usize) {
                let t = self.state.advance();
                self.state.on_hit(f, t, self.policy);
            }
            fn on_load(&mut self, f: usize) {
                let t = self.state.advance();
                self.state.on_load(f, t, self.policy);
            }
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
                self.state.pick_victim(self.policy, self.n, evictable)
            }
        }

        /// Reference CLOCK: a plain bit array and a frame-index hand.
        struct RefClock {
            bits: Vec<bool>,
            hand: usize,
        }

        impl PolicyModel for RefClock {
            fn on_hit(&mut self, f: usize) {
                self.bits[f] = true;
            }
            fn on_load(&mut self, f: usize) {
                self.bits[f] = true;
            }
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
                let n = self.bits.len();
                for _ in 0..2 * n {
                    let i = self.hand;
                    self.hand = (self.hand + 1) % n;
                    if !evictable(i) {
                        continue;
                    }
                    if self.bits[i] {
                        self.bits[i] = false;
                        continue;
                    }
                    return Some(i);
                }
                None
            }
        }

        /// Reference SIEVE: insertion order in a `Vec`, the hand holds
        /// the frame it will examine next (`None` = wrap to the oldest).
        struct RefSieve {
            order: Vec<usize>,
            visited: Vec<bool>,
            hand: Option<usize>,
        }

        impl RefSieve {
            fn new(n: usize) -> Self {
                RefSieve {
                    order: (0..n).collect(),
                    visited: vec![false; n],
                    hand: None,
                }
            }
        }

        impl PolicyModel for RefSieve {
            fn on_hit(&mut self, f: usize) {
                self.visited[f] = true;
            }
            fn on_load(&mut self, f: usize) {
                if let Some(pos) = self.order.iter().position(|&x| x == f) {
                    // The hand never dangles: evicting its own frame
                    // slides it to the next-oldest survivor.
                    if self.hand == Some(f) {
                        self.hand = self.order.get(pos + 1).copied();
                    }
                    self.order.remove(pos);
                }
                self.order.push(f);
                self.visited[f] = false;
            }
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
                let n = self.visited.len();
                for _ in 0..2 * n {
                    let pos = match self.hand {
                        Some(f) => self
                            .order
                            .iter()
                            .position(|&x| x == f)
                            .expect("hand frame on list"),
                        None if self.order.is_empty() => return None,
                        None => 0,
                    };
                    let f = self.order[pos];
                    self.hand = self.order.get(pos + 1).copied();
                    if !evictable(f) {
                        continue;
                    }
                    if self.visited[f] {
                        self.visited[f] = false;
                        continue;
                    }
                    return Some(f);
                }
                None
            }
        }

        /// Reference 2Q: two `VecDeque`s, second touch moves to `Am`.
        struct RefTwoQ {
            a1: VecDeque<usize>,
            am: VecDeque<usize>,
            in_am: Vec<bool>,
        }

        impl RefTwoQ {
            fn new(n: usize) -> Self {
                RefTwoQ {
                    a1: (0..n).collect(),
                    am: VecDeque::new(),
                    in_am: vec![false; n],
                }
            }
            fn take(&mut self, f: usize) {
                let q = if self.in_am[f] {
                    &mut self.am
                } else {
                    &mut self.a1
                };
                if let Some(pos) = q.iter().position(|&x| x == f) {
                    q.remove(pos);
                }
            }
        }

        impl PolicyModel for RefTwoQ {
            fn on_hit(&mut self, f: usize) {
                self.take(f);
                self.am.push_back(f);
                self.in_am[f] = true;
            }
            fn on_load(&mut self, f: usize) {
                self.take(f);
                self.a1.push_back(f);
                self.in_am[f] = false;
            }
            fn pick(&mut self, evictable: &dyn Fn(usize) -> bool) -> Option<usize> {
                let kin = (self.in_am.len() / 4).max(1);
                let scan = |q: &VecDeque<usize>| q.iter().copied().find(|&f| evictable(f));
                if self.a1.len() >= kin {
                    scan(&self.a1).or_else(|| scan(&self.am))
                } else {
                    scan(&self.am).or_else(|| scan(&self.a1))
                }
            }
        }

        /// A single-shard cache over any policy model: page → frame
        /// mapping, free-list-first frame assignment (index order, like
        /// a cold shard), and a pin set the evictability closure honours.
        struct Cache<M: PolicyModel> {
            model: M,
            frame_of: HashMap<u32, usize>,
            page_in: Vec<Option<u32>>,
            free: Vec<usize>,
            pinned: HashSet<u32>,
        }

        impl<M: PolicyModel> Cache<M> {
            fn new(n: usize, model: M) -> Self {
                Cache {
                    model,
                    frame_of: HashMap::new(),
                    page_in: vec![None; n],
                    free: (0..n).rev().collect(),
                    pinned: HashSet::new(),
                }
            }

            fn step(&mut self, op: &Op) -> Event {
                match *op {
                    Op::Pin(p) => {
                        if self.frame_of.contains_key(&p) {
                            self.pinned.insert(p);
                        }
                        Event::Noop
                    }
                    Op::Unpin(p) => {
                        self.pinned.remove(&p);
                        Event::Noop
                    }
                    Op::Access(p) => {
                        if let Some(&f) = self.frame_of.get(&p) {
                            self.model.on_hit(f);
                            return Event::Hit(f);
                        }
                        let f = match self.free.pop() {
                            Some(f) => Some(f),
                            None => {
                                let (page_in, pinned) = (&self.page_in, &self.pinned);
                                self.model.pick(&|i: usize| {
                                    !page_in[i].is_some_and(|q| pinned.contains(&q))
                                })
                            }
                        };
                        let Some(f) = f else { return Event::Stall };
                        let evicted = self.page_in[f].take();
                        if let Some(old) = evicted {
                            self.frame_of.remove(&old);
                        }
                        self.page_in[f] = Some(p);
                        self.frame_of.insert(p, f);
                        self.model.on_load(f);
                        Event::Load { frame: f, evicted }
                    }
                }
            }

            fn unpinned_resident(&self) -> usize {
                self.frame_of
                    .keys()
                    .filter(|p| !self.pinned.contains(p))
                    .count()
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

            /// No policy ever evicts a pinned frame, and eviction only
            /// stalls when literally every resident page is pinned —
            /// the CLOCK/SIEVE two-lap bound always finds an unpinned
            /// unvisited frame when one exists.
            #[test]
            fn no_policy_evicts_a_pinned_frame(
                n in 2usize..8,
                ops in proptest::collection::vec(arb_op(), 1..300),
            ) {
                for policy in ReplacementPolicy::ALL {
                    let mut cache = Cache::new(n, Real::new(n, policy));
                    for op in &ops {
                        match cache.step(op) {
                            Event::Load { evicted: Some(old), .. } => prop_assert!(
                                !cache.pinned.contains(&old),
                                "{policy:?} evicted pinned page {old}"
                            ),
                            Event::Stall => prop_assert_eq!(
                                cache.unpinned_resident(),
                                0,
                                "{:?} stalled with an evictable frame",
                                policy
                            ),
                            _ => {}
                        }
                    }
                }
            }

            /// CLOCK, SIEVE and 2Q reproduce their reference models
            /// event-for-event: same hits, same victim frames, same
            /// stalls — so hit/miss accounting (and therefore the bench
            /// curves) is exactly what the textbook algorithm predicts.
            #[test]
            fn scan_resistant_policies_match_reference_models(
                n in 2usize..8,
                ops in proptest::collection::vec(arb_op(), 1..300),
            ) {
                for policy in [
                    ReplacementPolicy::Clock,
                    ReplacementPolicy::Sieve,
                    ReplacementPolicy::TwoQ,
                ] {
                    let reference: Box<dyn PolicyModel> = match policy {
                        ReplacementPolicy::Clock => Box::new(RefClock {
                            bits: vec![false; n],
                            hand: 0,
                        }),
                        ReplacementPolicy::Sieve => Box::new(RefSieve::new(n)),
                        _ => Box::new(RefTwoQ::new(n)),
                    };
                    let mut real = Cache::new(n, Real::new(n, policy));
                    let mut model = Cache::new(n, reference);
                    for (step, op) in ops.iter().enumerate() {
                        let got = real.step(op);
                        let want = model.step(op);
                        prop_assert_eq!(got, want, "step {} policy {:?}", step, policy);
                    }
                    prop_assert_eq!(&real.frame_of, &model.frame_of);
                }
            }
        }
    }
}
