//! Frame replacement policies and the per-shard recency state they
//! maintain.
//!
//! Each buffer-pool shard owns one [`ReplacementState`]; the tick
//! counter, recency stamps, reference bits and clock hand are all
//! shard-local, so shards make eviction decisions without touching any
//! shared state. With a single shard the stamp sequence is exactly the
//! one the unsharded pool produced, which is what keeps the paper's
//! I/O counts byte-identical in single-shard mode.

/// Frame replacement policy. The paper does not name INGRES 5.0's policy;
/// LRU is the era-appropriate default, and the alternatives exist for the
/// ablation bench (strategy orderings should not hinge on the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used unpinned frame (default).
    #[default]
    Lru,
    /// Evict the earliest-loaded unpinned frame.
    Fifo,
    /// Second-chance clock over reference bits.
    Clock,
}

/// Recency bookkeeping for the frames of one shard.
#[derive(Debug)]
pub(crate) struct ReplacementState {
    /// LRU: last-touch tick; FIFO: load tick (`0` = never used).
    last_used: Vec<u64>,
    /// Clock reference bits.
    ref_bits: Vec<bool>,
    /// Clock hand.
    hand: usize,
    /// Shard-local logical clock.
    tick: u64,
}

impl ReplacementState {
    pub(crate) fn new(capacity: usize) -> Self {
        ReplacementState {
            last_used: vec![0; capacity],
            ref_bits: vec![false; capacity],
            hand: 0,
            tick: 0,
        }
    }

    /// Advance the logical clock (one tick per pin, as the unsharded
    /// pool did).
    pub(crate) fn advance(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// A resident page was touched at `tick`.
    pub(crate) fn on_hit(&mut self, idx: usize, tick: u64, policy: ReplacementPolicy) {
        match policy {
            ReplacementPolicy::Lru => self.last_used[idx] = tick,
            ReplacementPolicy::Fifo => {} // load time only
            ReplacementPolicy::Clock => self.ref_bits[idx] = true,
        }
    }

    /// A page was loaded (or allocated) into frame `idx` at `tick`.
    pub(crate) fn on_load(&mut self, idx: usize, tick: u64) {
        self.last_used[idx] = tick;
        self.ref_bits[idx] = true;
    }

    /// Choose a victim frame among those for which `evictable` holds
    /// (i.e. unpinned), or `None` if every frame is pinned.
    pub(crate) fn pick_victim(
        &mut self,
        policy: ReplacementPolicy,
        n: usize,
        evictable: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        match policy {
            // LRU and FIFO differ only in when `last_used` is stamped.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..n)
                .filter(|&i| evictable(i))
                .min_by_key(|&i| self.last_used[i]),
            ReplacementPolicy::Clock => {
                // Two full sweeps suffice: the first clears reference bits,
                // the second must find one unless everything is pinned.
                for _ in 0..2 * n {
                    let i = self.hand;
                    self.hand = (self.hand + 1) % n;
                    if !evictable(i) {
                        continue;
                    }
                    if self.ref_bits[i] {
                        self.ref_bits[i] = false;
                        continue;
                    }
                    return Some(i);
                }
                None
            }
        }
    }

    /// Forget all recency state (pool cold start).
    pub(crate) fn reset(&mut self) {
        self.last_used.fill(0);
        self.ref_bits.fill(false);
        self.hand = 0;
    }
}
