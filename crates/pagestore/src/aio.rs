//! `cor-aio`: asynchronous I/O submission over a [`DiskManager`].
//!
//! The batched read path (PR 5) made physical submissions *coalesced* —
//! a sorted batch of adjacent pages costs one positioned read — but
//! every submission is still synchronous: the CPU idles while each run
//! is in flight. This module adds the completion-queue model the
//! ROADMAP's async-I/O item calls for:
//!
//! * [`AioEngine::submit`] takes a sorted page batch, splits it into
//!   maximal consecutive runs (the same run structure
//!   `DiskManager::read_pages` coalesces to), and hands the runs to a
//!   backend that keeps up to `queue_depth` of them in flight at once;
//! * the returned [`SubmissionTicket`] is a completion queue: callers
//!   harvest with [`poll`](SubmissionTicket::poll) /
//!   [`wait`](SubmissionTicket::wait) (or per-page via
//!   [`Completion`]), overlapping their own compute with in-flight
//!   reads;
//! * a failed run **poisons** its ticket: no partial bytes are ever
//!   observable — every completion of the failed run reports the error,
//!   and [`SubmissionTicket::wait_pages`] returns nothing but the error.
//!
//! # Backends
//!
//! * [`AioBackend::Sync`] — the degenerate backend: `submit` performs
//!   every run inline on the calling thread. Used at queue depth 1 and
//!   as the last-resort fallback; byte-identical to a plain
//!   `read_pages` loop by construction.
//! * [`AioBackend::ThreadPool`] — `queue_depth` worker threads pull
//!   runs from a shared queue and execute them with ordinary blocking
//!   `read_pages` calls. Portable, zero external dependencies, and the
//!   backend every [`DiskManager`] supports — including fault-injecting
//!   wrappers like [`FaultyDisk`](crate::FaultyDisk), whose operation
//!   ordinals keep ticking because the reads still flow through the
//!   trait.
//! * [`AioBackend::IoUring`] — a raw-syscall `io_uring` ring on Linux
//!   (`io_uring` cargo feature, off by default): one submission-queue
//!   entry per run, real kernel-side queue depth, no liburing. Only
//!   engaged when the disk exposes a raw file descriptor
//!   ([`DiskManager::raw_read_fd`]); anything wrapped (fault injection,
//!   seek charging) or memory-backed falls back to the thread pool, and
//!   a kernel without `io_uring` falls back cleanly at construction.
//!
//! # Accounting
//!
//! The engine deliberately does **not** touch the core
//! [`IoStats`](crate::IoStats) transfer counters: the buffer pool
//! counts a read when bytes actually cross into a frame (harvest time),
//! exactly like the synchronous path, so `reads`/`batch_reads` totals
//! stay comparable across queue depths. The engine maintains only the
//! new `aio_*` counters — runs submitted, runs completed, and the peak
//! number of runs in flight — which are zero whenever the engine is
//! unused (the depth-1 byte-identity mode).
//!
//! When a submission would exceed the configured depth the surplus runs
//! queue up (submission never blocks) and the event is journaled to the
//! flight recorder as a queue-saturation mark; time a demand access
//! spends blocked on an incomplete run is profiled under the
//! `aio_completion` wait class.

use crate::disk::{DiskError, DiskManager};
use crate::page::{PageBuf, PageId, PAGE_SIZE};
use crate::stats::IoStats;
use cor_obs::{flight, wait};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Hard cap on worker threads / kernel queue entries, a safety bound
/// for absurd depth requests; the effective queue depth is clamped here.
const MAX_QUEUE_DEPTH: usize = 64;

/// Which submission backend an [`AioEngine`] resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AioBackend {
    /// Inline execution on the submitting thread (depth 1 / fallback).
    Sync,
    /// Portable worker-thread pool over blocking `read_pages`.
    ThreadPool,
    /// Raw-syscall `io_uring` ring (Linux, `io_uring` feature).
    IoUring,
}

impl AioBackend {
    /// Stable lowercase name, stamped into bench JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            AioBackend::Sync => "sync",
            AioBackend::ThreadPool => "threadpool",
            AioBackend::IoUring => "io_uring",
        }
    }
}

/// Backend selection policy for [`AioConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AioBackendChoice {
    /// `io_uring` when compiled in and the disk exposes a raw fd,
    /// otherwise the thread pool; [`AioBackend::Sync`] at depth <= 1.
    #[default]
    Auto,
    /// Force inline execution regardless of depth.
    Sync,
    /// Force the portable thread pool.
    ThreadPool,
}

/// Configuration for an [`AioEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AioConfig {
    /// Maximum runs in flight at once. Depth 1 resolves to the inline
    /// [`AioBackend::Sync`] backend.
    pub queue_depth: usize,
    /// Backend selection policy.
    pub backend: AioBackendChoice,
}

impl AioConfig {
    /// Config for `queue_depth` with automatic backend selection.
    pub fn with_depth(queue_depth: usize) -> Self {
        AioConfig {
            queue_depth,
            backend: AioBackendChoice::Auto,
        }
    }
}

/// `DiskError` carries a non-clonable `std::io::Error`; completions of a
/// poisoned run each need to report it, so reproduce the error losslessly
/// enough (kind + rendered message) for every observer.
fn clone_err(e: &DiskError) -> DiskError {
    match e {
        DiskError::BadPage(p) => DiskError::BadPage(*p),
        DiskError::Io { op, path, source } => DiskError::Io {
            op,
            path: path.clone(),
            source: std::io::Error::new(source.kind(), source.to_string()),
        },
        DiskError::Crashed => DiskError::Crashed,
    }
}

/// One run's shared completion slot: filled exactly once by whichever
/// backend executed the run, awaited by any number of harvesters.
struct RunSlot {
    state: Mutex<Option<Result<Vec<PageBuf>, DiskError>>>,
    cv: Condvar,
}

impl RunSlot {
    fn new() -> Arc<Self> {
        Arc::new(RunSlot {
            state: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn complete(&self, result: Result<Vec<PageBuf>, DiskError>) {
        let mut st = self.state.lock().expect("aio slot lock");
        debug_assert!(st.is_none(), "run completed twice");
        *st = Some(result);
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        self.state.lock().expect("aio slot lock").is_some()
    }

    /// Block until the run completes, then run `f` over the outcome.
    fn with_result<R>(&self, f: impl FnOnce(&Result<Vec<PageBuf>, DiskError>) -> R) -> R {
        let mut st = self.state.lock().expect("aio slot lock");
        while st.is_none() {
            st = self.cv.wait(st).expect("aio slot lock");
        }
        f(st.as_ref().expect("checked above"))
    }
}

/// Handle to one page of an in-flight submission: the unit the buffer
/// pool parks in its pending table until the page is demanded.
pub struct Completion {
    pid: PageId,
    slot: Arc<RunSlot>,
    /// The page's index within its run's buffer vector.
    offset: usize,
}

impl Completion {
    /// The page this completion will deliver.
    pub fn page_id(&self) -> PageId {
        self.pid
    }

    /// Whether the page's run has completed (successfully or not).
    pub fn is_done(&self) -> bool {
        self.slot.is_done()
    }

    /// Wait for the run and copy the page's bytes into `dst`. A failed
    /// run poisons every one of its completions: the error comes back
    /// and `dst` is untouched — partial bytes are never observable.
    ///
    /// Time spent blocked on an incomplete run is profiled under
    /// [`wait::WaitClass::AioCompletion`].
    pub fn wait_into(&self, dst: &mut PageBuf) -> Result<(), DiskError> {
        let harvest = |res: &Result<Vec<PageBuf>, DiskError>| match res {
            Ok(pages) => {
                dst.copy_from_slice(&pages[self.offset][..]);
                Ok(())
            }
            Err(e) => Err(clone_err(e)),
        };
        if self.slot.is_done() {
            self.slot.with_result(harvest)
        } else {
            wait::timed(wait::WaitClass::AioCompletion, || {
                self.slot.with_result(harvest)
            })
        }
    }
}

/// Progress of a [`SubmissionTicket`], from [`SubmissionTicket::poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TicketStatus {
    /// Some runs are still in flight: `done` of `total` completed so far.
    Pending {
        /// Runs completed so far.
        done: usize,
        /// Total runs in the submission.
        total: usize,
    },
    /// Every run completed successfully; pages are ready to harvest.
    Ready,
    /// At least one run failed; the whole ticket is poisoned.
    Poisoned,
}

/// The completion queue for one [`AioEngine::submit`] call.
///
/// Holds one [`Completion`] per *requested page position* (duplicates
/// included), in request order. Harvest the whole batch with
/// [`wait_pages`](Self::wait_pages), or split the ticket into per-page
/// handles with [`into_completions`](Self::into_completions) for
/// deferred, out-of-order harvesting.
pub struct SubmissionTicket {
    runs: Vec<Arc<RunSlot>>,
    pages: Vec<Completion>,
}

impl SubmissionTicket {
    /// Number of physical runs the submission was split into.
    pub fn num_runs(&self) -> usize {
        self.runs.len()
    }

    /// Number of requested page positions (duplicates included).
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Non-blocking progress check.
    pub fn poll(&self) -> TicketStatus {
        let mut done = 0usize;
        let mut poisoned = false;
        for run in &self.runs {
            let st = run.state.lock().expect("aio slot lock");
            match st.as_ref() {
                Some(Err(_)) => poisoned = true,
                Some(Ok(_)) => done += 1,
                None => {}
            }
        }
        if poisoned {
            TicketStatus::Poisoned
        } else if done == self.runs.len() {
            TicketStatus::Ready
        } else {
            TicketStatus::Pending {
                done,
                total: self.runs.len(),
            }
        }
    }

    /// Block until every run has completed. `Ok` only when all runs
    /// succeeded; the first failure (in run order) otherwise.
    pub fn wait(&self) -> Result<(), DiskError> {
        for run in &self.runs {
            run.with_result(|res| match res {
                Ok(_) => Ok(()),
                Err(e) => Err(clone_err(e)),
            })?;
        }
        Ok(())
    }

    /// Block until every run has completed and return the page bytes in
    /// request order. A poisoned ticket yields only the error — never a
    /// partially-filled vector.
    pub fn wait_pages(&self) -> Result<Vec<PageBuf>, DiskError> {
        self.wait()?;
        let mut out = Vec::with_capacity(self.pages.len());
        for c in &self.pages {
            let mut buf = [0u8; PAGE_SIZE];
            c.wait_into(&mut buf)?;
            out.push(buf);
        }
        Ok(out)
    }

    /// Split the ticket into its per-page completion handles (request
    /// order), for deferred harvesting — the buffer pool's pending
    /// table is built from these.
    pub fn into_completions(self) -> Vec<Completion> {
        self.pages
    }
}

/// One run handed to a backend for execution.
struct Job {
    ids: Vec<PageId>,
    slot: Arc<RunSlot>,
}

/// Execute one run synchronously: the worker-side body of every backend.
fn read_run(disk: &dyn DiskManager, ids: &[PageId]) -> Result<Vec<PageBuf>, DiskError> {
    let mut pages: Vec<PageBuf> = vec![[0u8; PAGE_SIZE]; ids.len()];
    let mut refs: Vec<&mut PageBuf> = pages.iter_mut().collect();
    disk.read_pages(ids, &mut refs)?;
    Ok(pages)
}

/// Shared state between submitters and thread-pool workers.
struct TpShared {
    queue: Mutex<VecDeque<Job>>,
    cv: Condvar,
    shutdown: AtomicBool,
    /// Runs currently executing on a worker (not merely queued).
    running: AtomicU64,
}

struct ThreadPool {
    shared: Arc<TpShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    fn spawn(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>, depth: usize) -> Option<Self> {
        let shared = Arc::new(TpShared {
            queue: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
        });
        let mut workers = Vec::with_capacity(depth);
        for i in 0..depth {
            let worker_shared = Arc::clone(&shared);
            let disk = Arc::clone(&disk);
            let stats = Arc::clone(&stats);
            let spawned = std::thread::Builder::new()
                .name(format!("cor-aio-{i}"))
                .spawn(move || Self::worker(&worker_shared, &*disk, &stats));
            match spawned {
                Ok(h) => workers.push(h),
                Err(_) if !workers.is_empty() => break, // run with fewer workers
                Err(_) => {
                    shared.shutdown.store(true, Ordering::Relaxed);
                    return None; // caller falls back to Sync
                }
            }
        }
        Some(ThreadPool { shared, workers })
    }

    fn worker(shared: &TpShared, disk: &dyn DiskManager, stats: &IoStats) {
        loop {
            let job = {
                let mut q = shared.queue.lock().expect("aio queue lock");
                loop {
                    if let Some(job) = q.pop_front() {
                        break job;
                    }
                    if shared.shutdown.load(Ordering::Relaxed) {
                        return;
                    }
                    q = shared.cv.wait(q).expect("aio queue lock");
                }
            };
            let now = shared.running.fetch_add(1, Ordering::Relaxed) + 1;
            stats.note_aio_in_flight(now);
            let result = read_run(disk, &job.ids);
            shared.running.fetch_sub(1, Ordering::Relaxed);
            stats.record_aio_completed(1);
            job.slot.complete(result);
        }
    }

    /// Queued + running runs, for the saturation check at submit time.
    fn backlog(&self) -> usize {
        let queued = self.shared.queue.lock().expect("aio queue lock").len();
        queued + self.shared.running.load(Ordering::Relaxed) as usize
    }

    fn enqueue(&self, job: Job) {
        let mut q = self.shared.queue.lock().expect("aio queue lock");
        q.push_back(job);
        drop(q);
        self.shared.cv.notify_one();
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Relaxed);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

enum BackendImpl {
    Sync,
    ThreadPool(ThreadPool),
    #[cfg(all(
        feature = "io_uring",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    IoUring(uring::UringBackend),
}

/// Asynchronous submission engine over a shared [`DiskManager`].
///
/// Created by the buffer pool when its `queue_depth` knob exceeds 1, or
/// directly for tests and benchmarks. Submissions never block; harvest
/// order is the caller's choice. See the [module docs](self) for the
/// backend and accounting model.
pub struct AioEngine {
    disk: Arc<dyn DiskManager>,
    stats: Arc<IoStats>,
    depth: usize,
    backend: BackendImpl,
    resolved: AioBackend,
}

impl AioEngine {
    /// Build an engine over `disk`, counting `aio_*` activity into
    /// `stats`. Backend resolution is infallible: unavailable backends
    /// fall back (io_uring -> thread pool -> inline sync).
    pub fn new(disk: Arc<dyn DiskManager>, stats: Arc<IoStats>, config: AioConfig) -> Self {
        let depth = config.queue_depth.clamp(1, MAX_QUEUE_DEPTH);
        let (backend, resolved) = Self::resolve(&disk, &stats, depth, config.backend);
        AioEngine {
            disk,
            stats,
            depth,
            backend,
            resolved,
        }
    }

    fn resolve(
        disk: &Arc<dyn DiskManager>,
        stats: &Arc<IoStats>,
        depth: usize,
        choice: AioBackendChoice,
    ) -> (BackendImpl, AioBackend) {
        if depth <= 1 || choice == AioBackendChoice::Sync {
            return (BackendImpl::Sync, AioBackend::Sync);
        }
        #[cfg(all(
            feature = "io_uring",
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64")
        ))]
        if choice == AioBackendChoice::Auto {
            if let Some(fd) = disk.raw_read_fd() {
                if let Some(ring) =
                    uring::UringBackend::create(fd, Arc::clone(disk), Arc::clone(stats), depth)
                {
                    return (BackendImpl::IoUring(ring), AioBackend::IoUring);
                }
            }
        }
        match ThreadPool::spawn(Arc::clone(disk), Arc::clone(stats), depth) {
            Some(tp) => (BackendImpl::ThreadPool(tp), AioBackend::ThreadPool),
            None => (BackendImpl::Sync, AioBackend::Sync),
        }
    }

    /// The backend this engine resolved to.
    pub fn backend(&self) -> AioBackend {
        self.resolved
    }

    /// The effective queue depth (clamped).
    pub fn queue_depth(&self) -> usize {
        self.depth
    }

    /// Split `ids` at every non-consecutive step — the exact run
    /// structure `read_pages` coalesces a sorted batch into.
    fn split_runs(ids: &[PageId]) -> Vec<Vec<PageId>> {
        let mut runs: Vec<Vec<PageId>> = Vec::new();
        for &id in ids {
            match runs.last_mut() {
                Some(run) if run.last().copied() == id.checked_sub(1) => run.push(id),
                _ => runs.push(vec![id]),
            }
        }
        runs
    }

    /// Submit a batch of page ids for asynchronous reading. Sorted,
    /// deduplicated ids coalesce best (each maximal consecutive run is
    /// one physical submission), but any order is legal — duplicates
    /// simply start fresh runs, exactly as `read_pages` treats them.
    ///
    /// Never blocks: runs beyond the queue depth wait their turn in the
    /// backend's queue (journaled as a queue-saturation flight event).
    /// Harvest via the returned ticket.
    pub fn submit(&self, ids: &[PageId]) -> SubmissionTicket {
        let runs = Self::split_runs(ids);
        self.stats.record_aio_submitted(runs.len() as u64);
        let mut slots: Vec<Arc<RunSlot>> = Vec::with_capacity(runs.len());
        let mut pages: Vec<Completion> = Vec::with_capacity(ids.len());
        for run in &runs {
            let slot = RunSlot::new();
            for (offset, &pid) in run.iter().enumerate() {
                pages.push(Completion {
                    pid,
                    slot: Arc::clone(&slot),
                    offset,
                });
            }
            slots.push(slot);
        }
        match &self.backend {
            BackendImpl::Sync => {
                for (run, slot) in runs.into_iter().zip(&slots) {
                    self.stats.note_aio_in_flight(1);
                    let result = read_run(&*self.disk, &run);
                    self.stats.record_aio_completed(1);
                    slot.complete(result);
                }
            }
            BackendImpl::ThreadPool(tp) => {
                let backlog = tp.backlog();
                if backlog + runs.len() > self.depth {
                    flight::record(
                        flight::FlightKind::AioSaturated,
                        self.depth as u64,
                        backlog as u64,
                        runs.len() as u64,
                    );
                }
                for (run, slot) in runs.into_iter().zip(&slots) {
                    tp.enqueue(Job {
                        ids: run,
                        slot: Arc::clone(slot),
                    });
                }
            }
            #[cfg(all(
                feature = "io_uring",
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64")
            ))]
            BackendImpl::IoUring(ring) => {
                let backlog = ring.backlog();
                if backlog + runs.len() > self.depth {
                    flight::record(
                        flight::FlightKind::AioSaturated,
                        self.depth as u64,
                        backlog as u64,
                        runs.len() as u64,
                    );
                }
                for (run, slot) in runs.into_iter().zip(&slots) {
                    ring.enqueue(Job {
                        ids: run,
                        slot: Arc::clone(slot),
                    });
                }
            }
        }
        SubmissionTicket { runs: slots, pages }
    }
}

impl std::fmt::Debug for AioEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AioEngine")
            .field("backend", &self.resolved)
            .field("queue_depth", &self.depth)
            .finish()
    }
}

/// Raw-syscall `io_uring` backend (Linux only, `io_uring` feature).
///
/// A single dedicated ring thread owns the ring: it drains the shared
/// job queue, keeps up to `depth` one-SQE-per-run reads in flight, and
/// completes run slots as CQEs arrive. No liburing, no libc: the five
/// syscalls involved (`io_uring_setup`, `io_uring_enter`, `mmap`,
/// `munmap`, `close`) are issued with inline assembly.
#[cfg(all(
    feature = "io_uring",
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64")
))]
mod uring {
    use super::{Job, RunSlot};
    use crate::disk::{DiskError, DiskManager};
    use crate::page::{PageBuf, PAGE_SIZE};
    use crate::stats::IoStats;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    // Syscall numbers are identical on x86_64 and aarch64 for the
    // io_uring family; mmap/munmap/close differ.
    const SYS_IO_URING_SETUP: usize = 425;
    const SYS_IO_URING_ENTER: usize = 426;
    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "x86_64")]
    const SYS_CLOSE: usize = 3;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;
    #[cfg(target_arch = "aarch64")]
    const SYS_CLOSE: usize = 57;

    const PROT_READ_WRITE: usize = 0x3;
    const MAP_SHARED_POPULATE: usize = 0x01 | 0x8000;
    const IORING_OFF_SQ_RING: usize = 0;
    const IORING_OFF_CQ_RING: usize = 0x0800_0000;
    const IORING_OFF_SQES: usize = 0x1000_0000;
    const IORING_ENTER_GETEVENTS: usize = 1;
    const IORING_OP_READ: u8 = 22;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "syscall",
            inlateout("rax") nr => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            in("r9") f,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        nr: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        std::arch::asm!(
            "svc 0",
            in("x8") nr,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            in("x5") f,
            options(nostack),
        );
        ret
    }

    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct SqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        flags: u32,
        dropped: u32,
        array: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct CqOffsets {
        head: u32,
        tail: u32,
        ring_mask: u32,
        ring_entries: u32,
        overflow: u32,
        cqes: u32,
        flags: u32,
        resv1: u32,
        user_addr: u64,
    }

    #[repr(C)]
    #[derive(Default, Clone, Copy)]
    struct UringParams {
        sq_entries: u32,
        cq_entries: u32,
        flags: u32,
        sq_thread_cpu: u32,
        sq_thread_idle: u32,
        features: u32,
        wq_fd: u32,
        resv: [u32; 3],
        sq_off: SqOffsets,
        cq_off: CqOffsets,
    }

    #[repr(C)]
    struct Sqe {
        opcode: u8,
        flags: u8,
        ioprio: u16,
        fd: i32,
        off: u64,
        addr: u64,
        len: u32,
        rw_flags: u32,
        user_data: u64,
        _pad: [u64; 3],
    }

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct Cqe {
        user_data: u64,
        res: i32,
        flags: u32,
    }

    struct Mapping {
        ptr: *mut u8,
        len: usize,
    }

    impl Drop for Mapping {
        fn drop(&mut self) {
            unsafe {
                syscall6(SYS_MUNMAP, self.ptr as usize, self.len, 0, 0, 0, 0);
            }
        }
    }

    /// The mmapped ring: raw pointers into the three kernel mappings.
    struct Ring {
        fd: i32,
        sq: Mapping,
        cq: Mapping,
        sqes: Mapping,
        sq_head: *const AtomicU32,
        sq_tail: *const AtomicU32,
        sq_mask: u32,
        sq_array: *mut u32,
        cq_head: *const AtomicU32,
        cq_tail: *const AtomicU32,
        cq_mask: u32,
        cqes: *const Cqe,
    }

    // The ring thread is the only user of the pointers after creation.
    unsafe impl Send for Ring {}

    impl Drop for Ring {
        fn drop(&mut self) {
            unsafe {
                syscall6(SYS_CLOSE, self.fd as usize, 0, 0, 0, 0, 0);
            }
        }
    }

    impl Ring {
        fn create(entries: u32) -> Option<Ring> {
            let mut params = UringParams::default();
            let fd = unsafe {
                syscall6(
                    SYS_IO_URING_SETUP,
                    entries as usize,
                    &mut params as *mut UringParams as usize,
                    0,
                    0,
                    0,
                    0,
                )
            };
            if fd < 0 {
                return None; // ENOSYS / EPERM / old kernel: fall back
            }
            let fd = fd as i32;
            let map = |len: usize, off: usize| -> Option<Mapping> {
                let ptr = unsafe {
                    syscall6(
                        SYS_MMAP,
                        0,
                        len,
                        PROT_READ_WRITE,
                        MAP_SHARED_POPULATE,
                        fd as usize,
                        off,
                    )
                };
                if ptr < 0 {
                    None
                } else {
                    Some(Mapping {
                        ptr: ptr as *mut u8,
                        len,
                    })
                }
            };
            let sq_len = params.sq_off.array as usize + params.sq_entries as usize * 4;
            let cq_len = params.cq_off.cqes as usize
                + params.cq_entries as usize * std::mem::size_of::<Cqe>();
            let sqes_len = params.sq_entries as usize * std::mem::size_of::<Sqe>();
            let sq = map(sq_len, IORING_OFF_SQ_RING)?;
            let cq = map(cq_len, IORING_OFF_CQ_RING)?;
            let sqes = map(sqes_len, IORING_OFF_SQES)?;
            let at = |m: &Mapping, off: u32| unsafe { m.ptr.add(off as usize) };
            let ring = Ring {
                fd,
                sq_head: at(&sq, params.sq_off.head) as *const AtomicU32,
                sq_tail: at(&sq, params.sq_off.tail) as *const AtomicU32,
                sq_mask: unsafe { *(at(&sq, params.sq_off.ring_mask) as *const u32) },
                sq_array: at(&sq, params.sq_off.array) as *mut u32,
                cq_head: at(&cq, params.cq_off.head) as *const AtomicU32,
                cq_tail: at(&cq, params.cq_off.tail) as *const AtomicU32,
                cq_mask: unsafe { *(at(&cq, params.cq_off.ring_mask) as *const u32) },
                cqes: at(&cq, params.cq_off.cqes) as *const Cqe,
                sq,
                cq,
                sqes,
            };
            // Quell the "field never read" lint on the mappings: they
            // exist for their Drop impls.
            let _ = (ring.sq.len, ring.cq.len);
            Some(ring)
        }

        /// Queue one read SQE; the caller tracks in-flight counts and
        /// guarantees free SQ slots (in-flight < ring entries).
        fn push_read(&self, target_fd: i32, off: u64, addr: *mut u8, len: u32, token: u64) {
            unsafe {
                let tail = (*self.sq_tail).load(Ordering::Acquire);
                let idx = tail & self.sq_mask;
                let sqe = (self.sqes.ptr as *mut Sqe).add(idx as usize);
                std::ptr::write(
                    sqe,
                    Sqe {
                        opcode: IORING_OP_READ,
                        flags: 0,
                        ioprio: 0,
                        fd: target_fd,
                        off,
                        addr: addr as u64,
                        len,
                        rw_flags: 0,
                        user_data: token,
                        _pad: [0; 3],
                    },
                );
                *self.sq_array.add(idx as usize) = idx;
                (*self.sq_tail).store(tail.wrapping_add(1), Ordering::Release);
            }
        }

        fn enter(&self, to_submit: u32, min_complete: u32, flags: usize) -> isize {
            unsafe {
                syscall6(
                    SYS_IO_URING_ENTER,
                    self.fd as usize,
                    to_submit as usize,
                    min_complete as usize,
                    flags,
                    0,
                    0,
                )
            }
        }

        /// Pop one CQE if available.
        fn pop_cqe(&self) -> Option<Cqe> {
            unsafe {
                let head = (*self.cq_head).load(Ordering::Acquire);
                let tail = (*self.cq_tail).load(Ordering::Acquire);
                if head == tail {
                    return None;
                }
                let cqe = *self.cqes.add((head & self.cq_mask) as usize);
                (*self.cq_head).store(head.wrapping_add(1), Ordering::Release);
                Some(cqe)
            }
        }
    }

    struct UringShared {
        queue: Mutex<VecDeque<Job>>,
        cv: Condvar,
        shutdown: AtomicBool,
        backlog: AtomicU64,
    }

    /// One read in flight on the ring.
    struct Inflight {
        job: Job,
        pages: Vec<PageBuf>,
    }

    pub(super) struct UringBackend {
        shared: Arc<UringShared>,
        thread: Option<std::thread::JoinHandle<()>>,
    }

    impl UringBackend {
        /// Set up the ring and spawn the ring thread; `None` when the
        /// kernel refuses (callers fall back to the thread pool).
        pub(super) fn create(
            fd: i32,
            disk: Arc<dyn DiskManager>,
            stats: Arc<IoStats>,
            depth: usize,
        ) -> Option<Self> {
            let entries = (depth.max(2) as u32).next_power_of_two();
            let ring = Ring::create(entries)?;
            let shared = Arc::new(UringShared {
                queue: Mutex::new(VecDeque::new()),
                cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                backlog: AtomicU64::new(0),
            });
            let thread_shared = Arc::clone(&shared);
            let thread = std::thread::Builder::new()
                .name("cor-aio-uring".into())
                .spawn(move || ring_thread(ring, fd, thread_shared, disk, stats, depth))
                .ok()?;
            Some(UringBackend {
                shared,
                thread: Some(thread),
            })
        }

        pub(super) fn backlog(&self) -> usize {
            self.shared.backlog.load(Ordering::Relaxed) as usize
        }

        pub(super) fn enqueue(&self, job: Job) {
            self.shared.backlog.fetch_add(1, Ordering::Relaxed);
            let mut q = self.shared.queue.lock().expect("aio uring queue");
            q.push_back(job);
            drop(q);
            self.shared.cv.notify_one();
        }
    }

    impl Drop for UringBackend {
        fn drop(&mut self) {
            self.shared.shutdown.store(true, Ordering::Relaxed);
            self.shared.cv.notify_all();
            if let Some(t) = self.thread.take() {
                let _ = t.join();
            }
        }
    }

    #[allow(clippy::needless_pass_by_value)]
    fn ring_thread(
        ring: Ring,
        fd: i32,
        shared: Arc<UringShared>,
        disk: Arc<dyn DiskManager>,
        stats: Arc<IoStats>,
        depth: usize,
    ) {
        let mut inflight: Vec<Option<Inflight>> = Vec::new();
        let mut inflight_count = 0usize;
        loop {
            // Admit queued runs while there is depth to spare.
            let mut submitted = 0u32;
            while inflight_count < depth {
                let job = {
                    let mut q = shared.queue.lock().expect("aio uring queue");
                    q.pop_front()
                };
                let Some(job) = job else { break };
                // Validate before any I/O, like FileDisk::read_pages: a
                // bad id fails the run with no bytes transferred.
                let end = disk.num_pages();
                if let Some(&bad) = job.ids.iter().find(|&&id| id >= end) {
                    shared.backlog.fetch_sub(1, Ordering::Relaxed);
                    stats.record_aio_completed(1);
                    job.slot.complete(Err(DiskError::BadPage(bad)));
                    continue;
                }
                let mut pages: Vec<PageBuf> = vec![[0u8; PAGE_SIZE]; job.ids.len()];
                let addr = pages.as_mut_ptr() as *mut u8;
                let len = (pages.len() * PAGE_SIZE) as u32;
                let off = job.ids[0] as u64 * PAGE_SIZE as u64;
                let token = inflight
                    .iter()
                    .position(Option::is_none)
                    .unwrap_or_else(|| {
                        inflight.push(None);
                        inflight.len() - 1
                    });
                ring.push_read(fd, off, addr, len, token as u64);
                inflight[token] = Some(Inflight { job, pages });
                inflight_count += 1;
                submitted += 1;
                stats.note_aio_in_flight(inflight_count as u64);
            }
            if submitted > 0 {
                ring.enter(submitted, 0, 0);
            }
            // Reap whatever has completed.
            let mut reaped = false;
            while let Some(cqe) = ring.pop_cqe() {
                reaped = true;
                let Some(op) = inflight
                    .get_mut(cqe.user_data as usize)
                    .and_then(Option::take)
                else {
                    continue;
                };
                inflight_count -= 1;
                shared.backlog.fetch_sub(1, Ordering::Relaxed);
                stats.record_aio_completed(1);
                let expected = (op.pages.len() * PAGE_SIZE) as i32;
                let result = if cqe.res == expected {
                    Ok(op.pages)
                } else if cqe.res < 0 {
                    Err(DiskError::io(
                        "read",
                        "io_uring",
                        std::io::Error::from_raw_os_error(-cqe.res),
                    ))
                } else {
                    Err(DiskError::io(
                        "read",
                        "io_uring",
                        std::io::Error::new(
                            std::io::ErrorKind::UnexpectedEof,
                            format!("short read: {} of {expected} bytes", cqe.res),
                        ),
                    ))
                };
                op.job.slot.complete(result);
            }
            if reaped || submitted > 0 {
                continue;
            }
            if inflight_count > 0 {
                // Nothing new to submit: block until a completion lands.
                ring.enter(0, 1, IORING_ENTER_GETEVENTS);
                continue;
            }
            // Idle: wait for work or shutdown.
            let q = shared.queue.lock().expect("aio uring queue");
            if shared.shutdown.load(Ordering::Relaxed) && q.is_empty() {
                return;
            }
            if q.is_empty() {
                let _unused = shared
                    .cv
                    .wait_timeout(q, std::time::Duration::from_millis(50))
                    .expect("aio uring queue");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn store(pages: usize) -> Arc<MemDisk> {
        let disk = Arc::new(MemDisk::new());
        for i in 0..pages {
            let pid = disk.allocate_page().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[0] = i as u8;
            buf[1] = (i >> 8) as u8;
            buf[PAGE_SIZE - 1] = 0xA5;
            disk.write_page(pid, &buf).unwrap();
        }
        disk
    }

    fn engine(disk: Arc<MemDisk>, depth: usize) -> AioEngine {
        AioEngine::new(disk, IoStats::new(), AioConfig::with_depth(depth))
    }

    #[test]
    fn split_runs_matches_coalescing() {
        let cases: &[(&[PageId], usize)] = &[
            (&[], 0),
            (&[5], 1),
            (&[1, 2, 3], 1),
            (&[1, 3, 5], 3),
            (&[1, 2, 2, 3], 2), // duplicate starts a new run, which continues
            (&[9, 4, 5, 6, 1], 3),
        ];
        for &(ids, want) in cases {
            assert_eq!(AioEngine::split_runs(ids).len(), want, "{ids:?}");
        }
    }

    #[test]
    fn depth_one_resolves_to_sync_and_matches_read_pages() {
        let disk = store(16);
        let eng = engine(Arc::clone(&disk), 1);
        assert_eq!(eng.backend(), AioBackend::Sync);
        let ids: Vec<PageId> = vec![0, 1, 2, 7, 9, 10];
        let ticket = eng.submit(&ids);
        assert_eq!(ticket.num_runs(), 3);
        assert_eq!(ticket.poll(), TicketStatus::Ready);
        let pages = ticket.wait_pages().unwrap();
        let mut expect: Vec<PageBuf> = vec![[0u8; PAGE_SIZE]; ids.len()];
        {
            let mut refs: Vec<&mut PageBuf> = expect.iter_mut().collect();
            disk.read_pages(&ids, &mut refs).unwrap();
        }
        assert_eq!(pages, expect);
    }

    #[test]
    fn threadpool_harvests_byte_identical_pages() {
        let disk = store(64);
        let eng = engine(Arc::clone(&disk), 4);
        assert_eq!(eng.backend(), AioBackend::ThreadPool);
        let ids: Vec<PageId> = vec![3, 4, 5, 6, 20, 21, 40, 0, 1, 2, 63];
        let ticket = eng.submit(&ids);
        ticket.wait().unwrap();
        let got = ticket.wait_pages().unwrap();
        for (i, &pid) in ids.iter().enumerate() {
            let mut want = [0u8; PAGE_SIZE];
            disk.read_page(pid, &mut want).unwrap();
            assert_eq!(got[i], want, "page {pid}");
        }
        let st = eng.stats.batch_snapshot();
        assert_eq!(st.aio_submitted, st.aio_completed);
        assert!(st.aio_in_flight_peak >= 1);
    }

    #[test]
    fn bad_page_poisons_only_its_run() {
        let disk = store(8);
        let eng = engine(disk, 4);
        // Runs: [0,1] ok, [99] bad, [4,5] ok.
        let ids: Vec<PageId> = vec![0, 1, 99, 4, 5];
        let ticket = eng.submit(&ids);
        assert!(matches!(ticket.wait(), Err(DiskError::BadPage(99))));
        assert_eq!(ticket.poll(), TicketStatus::Poisoned);
        // The poisoned batch yields no bytes at all.
        assert!(ticket.wait_pages().is_err());
        // Per-page: completions of the good runs still deliver, the bad
        // run's completion reports the error with the buffer untouched.
        let completions = ticket.into_completions();
        let mut buf = [0x77u8; PAGE_SIZE];
        assert!(matches!(
            completions[2].wait_into(&mut buf),
            Err(DiskError::BadPage(99))
        ));
        assert!(buf.iter().all(|&b| b == 0x77), "no partial bytes");
        completions[0].wait_into(&mut buf).unwrap();
        assert_eq!(buf[PAGE_SIZE - 1], 0xA5);
    }

    #[test]
    fn counters_track_runs_not_pages() {
        let disk = store(32);
        let stats = IoStats::new();
        let eng = AioEngine::new(disk, Arc::clone(&stats), AioConfig::with_depth(2));
        let ticket = eng.submit(&[0, 1, 2, 3, 10, 11, 30]);
        ticket.wait().unwrap();
        let b = stats.batch_snapshot();
        assert_eq!(b.aio_submitted, 3);
        assert_eq!(b.aio_completed, 3);
        assert!(b.aio_in_flight_peak <= 2, "bounded by queue depth");
        // Core transfer counters are untouched by the engine itself.
        assert_eq!(stats.reads(), 0);
        assert_eq!(b.batch_reads, 0);
    }

    #[test]
    fn empty_submission_is_trivially_ready() {
        let eng = engine(store(1), 4);
        let t = eng.submit(&[]);
        assert_eq!(t.num_runs(), 0);
        assert_eq!(t.poll(), TicketStatus::Ready);
        assert!(t.wait_pages().unwrap().is_empty());
    }

    /// Drives the io_uring backend against a real `FileDisk` (the only disk
    /// exposing `raw_read_fd`). If the kernel rejects `io_uring_setup` the
    /// engine resolves to the thread pool instead — the harvest must be
    /// byte-identical either way, so the assertion tolerates the fallback.
    #[cfg(all(
        feature = "io_uring",
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64")
    ))]
    #[test]
    fn io_uring_backend_harvests_byte_identical_pages() {
        use crate::disk::FileDisk;

        let dir = std::env::temp_dir().join(format!("cor-aio-uring-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.db");
        let disk = Arc::new(FileDisk::open(&path).unwrap());
        let mut images = Vec::new();
        for i in 0..32u32 {
            let pid = disk.allocate_page().unwrap();
            let mut buf = [0u8; PAGE_SIZE];
            buf[..4].copy_from_slice(&(i ^ 0xDEAD_BEEF).to_le_bytes());
            buf[PAGE_SIZE - 1] = 0x5C;
            disk.write_page(pid, &buf).unwrap();
            images.push((pid, buf));
        }
        let dyn_disk: Arc<dyn DiskManager> = disk.clone();
        let eng = AioEngine::new(dyn_disk, IoStats::new(), AioConfig::with_depth(4));
        assert!(
            matches!(eng.backend(), AioBackend::IoUring | AioBackend::ThreadPool),
            "FileDisk at depth > 1 must resolve to an async backend, got {:?}",
            eng.backend()
        );
        // Three separated runs, out-of-order start.
        let ids: Vec<PageId> = vec![20, 21, 22, 0, 1, 2, 3, 30, 31];
        let ticket = eng.submit(&ids);
        let got = ticket.wait_pages().unwrap();
        for (i, &pid) in ids.iter().enumerate() {
            assert_eq!(got[i], images[pid as usize].1, "page {pid}");
        }
        let b = eng.stats.batch_snapshot();
        assert_eq!(b.aio_submitted, 3);
        assert_eq!(b.aio_completed, 3);
        drop(eng);
        drop(disk);
        std::fs::remove_dir_all(&dir).ok();
    }
}
