//! LRU buffer pool.
//!
//! The paper fixes "a main memory buffer size of 100 INGRES data pages"
//! for every experiment; [`DEFAULT_POOL_PAGES`] mirrors that. All access
//! methods go through the pool, and every transfer between the pool and the
//! disk manager is counted in the shared [`IoStats`] — a read when a page is
//! faulted in, a write when a dirty page is evicted or flushed. That is the
//! exact quantity the paper reports as "average I/O".
//!
//! Access is closure-scoped: [`BufferPool::read`] and [`BufferPool::write`]
//! pin the page for the duration of the closure. Closures may nest (a B-tree
//! descent pins a parent while reading a child); pinning the *same* page for
//! write while it is already pinned deadlocks, and no access method in this
//! workspace does so.

use crate::disk::{DiskError, DiskManager};
use crate::page::{PageBuf, PageId, PageMut, PageView, PAGE_SIZE};
use crate::stats::IoStats;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Buffer size used throughout the paper's experiments (100 pages).
pub const DEFAULT_POOL_PAGES: usize = 100;

/// Frame replacement policy. The paper does not name INGRES 5.0's policy;
/// LRU is the era-appropriate default, and the alternatives exist for the
/// ablation bench (strategy orderings should not hinge on the policy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least recently used unpinned frame (default).
    #[default]
    Lru,
    /// Evict the earliest-loaded unpinned frame.
    Fifo,
    /// Second-chance clock over reference bits.
    Clock,
}

/// Errors from buffer-pool operations.
#[derive(Debug)]
pub enum BufferError {
    /// Every frame is pinned; no victim is available.
    NoFreeFrames,
    /// A page was freed while pinned.
    PagePinned(PageId),
    /// The underlying disk manager failed.
    Disk(DiskError),
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::NoFreeFrames => write!(f, "all buffer frames are pinned"),
            BufferError::PagePinned(p) => write!(f, "page {p} freed while pinned"),
            BufferError::Disk(e) => write!(f, "disk error: {e}"),
        }
    }
}

impl std::error::Error for BufferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BufferError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for BufferError {
    fn from(e: DiskError) -> Self {
        BufferError::Disk(e)
    }
}

struct FrameData {
    page_id: PageId,
    dirty: bool,
    data: Box<PageBuf>,
}

struct Frame {
    pin_count: AtomicUsize,
    state: RwLock<FrameData>,
}

struct Inner {
    /// page id -> frame index, for resident pages.
    page_table: HashMap<PageId, usize>,
    /// Freed pages available for reuse by `allocate_page`.
    free_list: Vec<PageId>,
    /// LRU: last-touch tick; FIFO: load tick (`0` = never used).
    last_used: Vec<u64>,
    /// Clock reference bits.
    ref_bits: Vec<bool>,
    /// Clock hand.
    hand: usize,
    tick: u64,
}

/// A bounded page cache with pluggable replacement and I/O accounting.
///
/// ```
/// use cor_pagestore::{BufferPool, IoStats, MemDisk};
///
/// let pool = BufferPool::new(Box::new(MemDisk::new()), 100, IoStats::new());
/// let pid = pool.allocate_page().unwrap();
/// pool.write(pid, |mut page| {
///     page.init();
///     page.insert(b"a tuple").unwrap();
/// })
/// .unwrap();
/// let n = pool.read(pid, |page| page.live_count()).unwrap();
/// assert_eq!(n, 1);
/// assert_eq!(pool.stats().reads(), 0); // everything stayed resident
/// ```
pub struct BufferPool {
    disk: Box<dyn DiskManager>,
    stats: Arc<IoStats>,
    frames: Vec<Frame>,
    policy: ReplacementPolicy,
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `disk`, counting I/O into
    /// `stats`.
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize, stats: Arc<IoStats>) -> Self {
        Self::with_policy(disk, capacity, stats, ReplacementPolicy::Lru)
    }

    /// Create a pool with an explicit replacement policy.
    pub fn with_policy(
        disk: Box<dyn DiskManager>,
        capacity: usize,
        stats: Arc<IoStats>,
        policy: ReplacementPolicy,
    ) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let frames = (0..capacity)
            .map(|_| Frame {
                pin_count: AtomicUsize::new(0),
                state: RwLock::new(FrameData {
                    page_id: PageId::MAX,
                    dirty: false,
                    data: Box::new([0u8; PAGE_SIZE]),
                }),
            })
            .collect();
        BufferPool {
            disk,
            stats,
            frames,
            policy,
            inner: Mutex::new(Inner {
                page_table: HashMap::new(),
                free_list: Vec::new(),
                last_used: vec![0; capacity],
                ref_bits: vec![false; capacity],
                hand: 0,
                tick: 0,
            }),
        }
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Number of frames.
    pub fn capacity(&self) -> usize {
        self.frames.len()
    }

    /// Number of pages in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// Allocate a zeroed page — recycling a previously freed page when one
    /// is available, extending the store otherwise. The page is brought
    /// into the pool dirty without a physical read (it has no prior
    /// contents worth fetching).
    pub fn allocate_page(&self) -> Result<PageId, BufferError> {
        let recycled = self.inner.lock().free_list.pop();
        let pid = match recycled {
            Some(pid) => pid,
            None => self.disk.allocate_page()?,
        };
        self.stats.record_allocation();
        let frame_idx = {
            let mut inner = self.inner.lock();
            let idx = self.acquire_frame(&mut inner)?;
            let mut st = self.frames[idx].state.write();
            st.page_id = pid;
            st.dirty = true;
            st.data.fill(0);
            inner.page_table.insert(pid, idx);
            inner.tick += 1;
            let tick = inner.tick;
            inner.last_used[idx] = tick;
            inner.ref_bits[idx] = true;
            idx
        };
        self.frames[frame_idx]
            .pin_count
            .fetch_sub(1, Ordering::Release);
        Ok(pid)
    }

    /// Read page `pid` under the closure. Counts a physical read iff the
    /// page was not resident.
    pub fn read<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(PageView<'_>) -> R,
    ) -> Result<R, BufferError> {
        let idx = self.pin(pid)?;
        let result = {
            let st = self.frames[idx].state.read();
            f(PageView::new(&st.data[..]))
        };
        self.frames[idx].pin_count.fetch_sub(1, Ordering::Release);
        Ok(result)
    }

    /// Mutate page `pid` under the closure; the page is marked dirty.
    /// Counts a physical read iff the page was not resident; the write is
    /// counted when the dirty page is later evicted or flushed.
    pub fn write<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(PageMut<'_>) -> R,
    ) -> Result<R, BufferError> {
        let idx = self.pin(pid)?;
        let result = {
            let mut st = self.frames[idx].state.write();
            st.dirty = true;
            f(PageMut::new(&mut st.data[..]))
        };
        self.frames[idx].pin_count.fetch_sub(1, Ordering::Release);
        Ok(result)
    }

    /// Pin `pid` into a frame, faulting it in if needed. Returns the frame
    /// index with `pin_count` already incremented.
    fn pin(&self, pid: PageId) -> Result<usize, BufferError> {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some(&idx) = inner.page_table.get(&pid) {
            self.frames[idx].pin_count.fetch_add(1, Ordering::Acquire);
            match self.policy {
                ReplacementPolicy::Lru => inner.last_used[idx] = tick,
                ReplacementPolicy::Fifo => {} // load time only
                ReplacementPolicy::Clock => inner.ref_bits[idx] = true,
            }
            return Ok(idx);
        }
        let idx = self.acquire_frame(&mut inner)?;
        {
            let mut st = self.frames[idx].state.write();
            if let Err(e) = self.disk.read_page(pid, &mut st.data) {
                st.page_id = PageId::MAX;
                drop(st);
                self.frames[idx].pin_count.fetch_sub(1, Ordering::Release);
                return Err(e.into());
            }
            self.stats.record_read();
            st.page_id = pid;
            st.dirty = false;
        }
        inner.page_table.insert(pid, idx);
        inner.last_used[idx] = tick;
        inner.ref_bits[idx] = true;
        Ok(idx)
    }

    /// Find a victim frame (unpinned, per the replacement policy), write it back if
    /// dirty, detach it from the page table, and return it pinned.
    fn acquire_frame(&self, inner: &mut Inner) -> Result<usize, BufferError> {
        let victim = match self.policy {
            // LRU and FIFO differ only in when `last_used` is stamped.
            ReplacementPolicy::Lru | ReplacementPolicy::Fifo => (0..self.frames.len())
                .filter(|&i| self.frames[i].pin_count.load(Ordering::Acquire) == 0)
                .min_by_key(|&i| inner.last_used[i])
                .ok_or(BufferError::NoFreeFrames)?,
            ReplacementPolicy::Clock => {
                let n = self.frames.len();
                let mut chosen = None;
                // Two full sweeps suffice: the first clears reference bits,
                // the second must find one unless everything is pinned.
                for _ in 0..2 * n {
                    let i = inner.hand;
                    inner.hand = (inner.hand + 1) % n;
                    if self.frames[i].pin_count.load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    if inner.ref_bits[i] {
                        inner.ref_bits[i] = false;
                        continue;
                    }
                    chosen = Some(i);
                    break;
                }
                chosen.ok_or(BufferError::NoFreeFrames)?
            }
        };
        // Pin immediately so a concurrent caller cannot also claim it.
        self.frames[victim]
            .pin_count
            .fetch_add(1, Ordering::Acquire);
        let mut st = self.frames[victim].state.write();
        if st.page_id != PageId::MAX {
            if st.dirty {
                if let Err(e) = self.disk.write_page(st.page_id, &st.data) {
                    drop(st);
                    self.frames[victim]
                        .pin_count
                        .fetch_sub(1, Ordering::Release);
                    return Err(e.into());
                }
                self.stats.record_write();
                st.dirty = false;
            }
            inner.page_table.remove(&st.page_id);
            st.page_id = PageId::MAX;
        }
        Ok(victim)
    }

    /// Return a page to the pool's free list for reuse by a later
    /// [`Self::allocate_page`]. The resident copy (if any) is discarded
    /// without a write-back — freed contents are garbage by definition.
    /// The free list is in-memory state, like the access methods' file
    /// metadata; a restart simply stops recycling (the pages leak in the
    /// store until it is rebuilt).
    pub fn free_page(&self, pid: PageId) -> Result<(), BufferError> {
        let mut inner = self.inner.lock();
        if let Some(&idx) = inner.page_table.get(&pid) {
            if self.frames[idx].pin_count.load(Ordering::Acquire) != 0 {
                return Err(BufferError::PagePinned(pid));
            }
            inner.page_table.remove(&pid);
            let mut st = self.frames[idx].state.write();
            st.page_id = PageId::MAX;
            st.dirty = false;
        }
        debug_assert!(!inner.free_list.contains(&pid), "double free of page {pid}");
        inner.free_list.push(pid);
        Ok(())
    }

    /// Number of pages currently on the free list.
    pub fn free_pages(&self) -> usize {
        self.inner.lock().free_list.len()
    }

    /// Write one page back to disk if it is resident and dirty (counting
    /// the write). Returns whether a write happened. Used to materialize
    /// temporary relations: the paper charges BFS for "forming the
    /// temporary relation" even when it is small enough to fit in the
    /// buffer.
    pub fn flush_page(&self, pid: PageId) -> Result<bool, BufferError> {
        let inner = self.inner.lock();
        let Some(&idx) = inner.page_table.get(&pid) else {
            return Ok(false);
        };
        let mut st = self.frames[idx].state.write();
        if !st.dirty {
            return Ok(false);
        }
        self.disk.write_page(st.page_id, &st.data)?;
        self.stats.record_write();
        st.dirty = false;
        Ok(true)
    }

    /// Write all dirty resident pages back to disk (counting the writes).
    pub fn flush_all(&self) -> Result<(), BufferError> {
        let inner = self.inner.lock();
        for &idx in inner.page_table.values() {
            let mut st = self.frames[idx].state.write();
            if st.dirty {
                self.disk.write_page(st.page_id, &st.data)?;
                self.stats.record_write();
                st.dirty = false;
            }
        }
        Ok(())
    }

    /// Flush and then forget every resident page, returning the pool to a
    /// cold state. Experiments call this so each strategy run starts with an
    /// empty buffer, as a fresh INGRES session would.
    pub fn flush_and_clear(&self) -> Result<(), BufferError> {
        let mut inner = self.inner.lock();
        for (_, idx) in inner.page_table.drain() {
            let mut st = self.frames[idx].state.write();
            debug_assert_eq!(self.frames[idx].pin_count.load(Ordering::Acquire), 0);
            if st.dirty {
                self.disk.write_page(st.page_id, &st.data)?;
                self.stats.record_write();
                st.dirty = false;
            }
            st.page_id = PageId::MAX;
        }
        inner.last_used.fill(0);
        inner.ref_bits.fill(false);
        inner.hand = 0;
        Ok(())
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().page_table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::MemDisk;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::new(Box::new(MemDisk::new()), capacity, IoStats::new())
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| {
            pg.init();
            pg.insert(b"payload").unwrap();
        })
        .unwrap();
        let rec = p.read(pid, |pg| pg.record(0).map(|r| r.to_vec())).unwrap();
        assert_eq!(rec.unwrap(), b"payload");
        // Everything stayed resident: no physical reads.
        assert_eq!(p.stats().reads(), 0);
    }

    #[test]
    fn eviction_counts_io() {
        let p = pool(2);
        let pids: Vec<_> = (0..4).map(|_| p.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.write(pid, |mut pg| {
                pg.init();
                pg.insert(&[i as u8; 8]).unwrap();
            })
            .unwrap();
        }
        // Capacity 2 < 4 pages: allocating/writing 4 dirty pages evicted at
        // least two dirty pages (each one physical write).
        assert!(p.stats().writes() >= 2, "writes = {}", p.stats().writes());
        // Touching the oldest page again faults it back in: a physical read.
        let before = p.stats().reads();
        let rec = p
            .read(pids[0], |pg| pg.record(0).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(rec.unwrap(), vec![0u8; 8]);
        assert_eq!(p.stats().reads(), before + 1);
    }

    #[test]
    fn resident_page_rereads_are_free() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| pg.init()).unwrap();
        let before = p.stats().snapshot();
        for _ in 0..10 {
            p.read(pid, |pg| pg.slot_count()).unwrap();
        }
        let delta = p.stats().snapshot().since(&before);
        assert_eq!(delta.total(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        let c = p.allocate_page().unwrap(); // evicts a (LRU)
                                            // b and c are resident; touching b must be free.
        let before = p.stats().reads();
        p.read(b, |_| ()).unwrap();
        p.read(c, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before);
        // a was evicted.
        p.read(a, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before + 1);
    }

    #[test]
    fn nested_reads_of_distinct_pages_work() {
        let p = pool(4);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.write(a, |mut pg| pg.init()).unwrap();
        p.write(b, |mut pg| pg.init()).unwrap();
        let n = p
            .read(a, |pa| {
                let inner = p.read(b, |pb| pb.slot_count()).unwrap();
                pa.slot_count() + inner
            })
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn exhausted_pool_reports_no_free_frames() {
        let p = pool(1);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Pin a, then try to touch b: the only frame is pinned.
        let err = p
            .read(a, |_| {
                matches!(p.read(b, |_| ()), Err(BufferError::NoFreeFrames))
            })
            .unwrap();
        assert!(err, "expected NoFreeFrames while the sole frame is pinned");
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let disk = MemDisk::new();
        let stats = IoStats::new();
        let p = BufferPool::new(Box::new(disk), 4, stats);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| {
            pg.init();
            pg.insert(b"durable").unwrap();
        })
        .unwrap();
        let w_before = p.stats().writes();
        p.flush_all().unwrap();
        assert_eq!(p.stats().writes(), w_before + 1);
        // Second flush is a no-op: nothing dirty.
        p.flush_all().unwrap();
        assert_eq!(p.stats().writes(), w_before + 1);
    }

    #[test]
    fn flush_and_clear_cold_starts_the_pool() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| pg.init()).unwrap();
        assert!(p.resident_pages() > 0);
        p.flush_and_clear().unwrap();
        assert_eq!(p.resident_pages(), 0);
        let before = p.stats().reads();
        p.read(pid, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before + 1, "page must be re-faulted");
    }

    #[test]
    fn allocation_does_not_count_a_read() {
        let p = pool(4);
        p.allocate_page().unwrap();
        assert_eq!(p.stats().reads(), 0);
        assert_eq!(p.stats().allocations(), 1);
    }

    #[test]
    fn freed_pages_are_recycled() {
        let p = pool(4);
        let a = p.allocate_page().unwrap();
        p.write(a, |mut pg| {
            pg.init();
            pg.insert(b"garbage").unwrap();
        })
        .unwrap();
        let total_before = p.num_pages();
        p.free_page(a).unwrap();
        assert_eq!(p.free_pages(), 1);
        // Next allocation reuses the freed page, zeroed, without growing
        // the store.
        let b = p.allocate_page().unwrap();
        assert_eq!(b, a);
        assert_eq!(p.num_pages(), total_before);
        assert_eq!(p.free_pages(), 0);
        let zeroed = p.read(b, |pg| pg.bytes().iter().all(|&x| x == 0)).unwrap();
        assert!(zeroed, "recycled page must come back zeroed");
    }

    #[test]
    fn freeing_a_pinned_page_is_an_error() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        let err = p
            .read(a, |_| {
                matches!(p.free_page(a), Err(BufferError::PagePinned(_)))
            })
            .unwrap();
        assert!(err);
        // Unpinned: fine.
        p.free_page(a).unwrap();
    }

    #[test]
    fn freed_dirty_page_is_not_written_back() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        p.write(a, |mut pg| pg.init()).unwrap();
        let w = p.stats().writes();
        p.free_page(a).unwrap();
        p.flush_all().unwrap();
        assert_eq!(
            p.stats().writes(),
            w,
            "freed contents are garbage; no write-back"
        );
    }

    fn pool_with(capacity: usize, policy: ReplacementPolicy) -> BufferPool {
        BufferPool::with_policy(Box::new(MemDisk::new()), capacity, IoStats::new(), policy)
    }

    #[test]
    fn fifo_evicts_by_load_order_despite_rereads() {
        let p = pool_with(2, ReplacementPolicy::Fifo);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Re-touch a repeatedly: FIFO must still evict it first.
        for _ in 0..5 {
            p.read(a, |_| ()).unwrap();
        }
        let _c = p.allocate_page().unwrap(); // evicts a (earliest load)
        let before = p.stats().reads();
        p.read(b, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before, "b stayed resident under FIFO");
        p.read(a, |_| ()).unwrap();
        assert_eq!(
            p.stats().reads(),
            before + 1,
            "a was evicted despite rereads"
        );
    }

    #[test]
    fn clock_gives_second_chances() {
        let p = pool_with(2, ReplacementPolicy::Clock);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.read(a, |_| ()).unwrap();
        let c = p.allocate_page().unwrap();
        // Exactly one of a/b was evicted; every page stays readable and
        // the pool stays at capacity.
        for pid in [a, b, c] {
            p.read(pid, |_| ()).unwrap();
        }
        assert_eq!(p.resident_pages(), 2);
    }

    #[test]
    fn all_policies_are_transparent_caches() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Clock,
        ] {
            let p = pool_with(3, policy);
            let pids: Vec<_> = (0..10).map(|_| p.allocate_page().unwrap()).collect();
            for (i, &pid) in pids.iter().enumerate() {
                p.write(pid, |mut pg| {
                    pg.init();
                    pg.set_flags(i as u32);
                })
                .unwrap();
            }
            for (i, &pid) in pids.iter().enumerate() {
                let flags = p.read(pid, |pg| pg.flags()).unwrap();
                assert_eq!(flags, i as u32, "{policy:?} corrupted page {pid}");
            }
            assert_eq!(p.policy(), policy);
        }
    }
}
