//! Sharded buffer pool.
//!
//! The paper fixes "a main memory buffer size of 100 INGRES data pages"
//! for every experiment; [`DEFAULT_POOL_PAGES`] mirrors that. All access
//! methods go through the pool, and every transfer between the pool and the
//! disk manager is counted in the shared [`IoStats`] — a read when a page is
//! faulted in, a write when a dirty page is evicted or flushed. That is the
//! exact quantity the paper reports as "average I/O".
//!
//! Access is closure-scoped: [`BufferPool::read`] and [`BufferPool::write`]
//! pin the page for the duration of the closure. Closures may nest (a B-tree
//! descent pins a parent while reading a child); pinning the *same* page for
//! write while it is already pinned deadlocks, and no access method in this
//! workspace does so.
//!
//! # Concurrency
//!
//! The pool is lock-striped: frames are partitioned into `shards` stripes
//! and a page id is deterministically homed to one stripe, so operations
//! on pages of different stripes never contend on a lock. With
//! `shards = 1` (the default) the pool makes exactly the same eviction
//! decisions, in the same order, as the original unsharded pool — the
//! paper's single-threaded I/O counts are preserved bit-for-bit. Larger
//! shard counts trade that global LRU order for parallelism: each shard
//! runs the replacement policy over its own frames, like per-stripe LRU
//! in a production cache. [`IoStats`] counters are atomic, so totals stay
//! exact under any thread count.

use crate::aio::{AioConfig, AioEngine};
use crate::disk::{DiskError, DiskManager, MemDisk};
use crate::page::{PageBuf, PageId, PageMut, PageView};
use crate::policy::ReplacementPolicy;
use crate::shard::Shard;
use crate::stats::IoStats;
use crate::telemetry::ShardTelemetrySnapshot;
use crate::wal::{Lsn, WalHook, NO_LSN};
use std::sync::Arc;

/// Buffer size used throughout the paper's experiments (100 pages).
pub const DEFAULT_POOL_PAGES: usize = 100;

/// Errors from buffer-pool operations.
#[derive(Debug)]
pub enum BufferError {
    /// Every candidate frame is pinned; no victim is available.
    NoFreeFrames {
        /// The page that needed a frame.
        pid: PageId,
        /// Index of the shard the page is homed to.
        shard: usize,
        /// How many frames of the page's shard were pinned.
        pinned: usize,
        /// The shard's hit ratio at failure time, when the pool was built
        /// with telemetry enabled.
        hit_ratio: Option<f64>,
        /// Total nanoseconds the shard stalled waiting for a concurrent
        /// unpin before giving up.
        waited_ns: u64,
    },
    /// A page was freed while pinned.
    PagePinned(PageId),
    /// The underlying disk manager failed.
    Disk(DiskError),
}

impl std::fmt::Display for BufferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BufferError::NoFreeFrames {
                pid,
                shard,
                pinned,
                hit_ratio,
                waited_ns,
            } => {
                write!(
                    f,
                    "no frame for page {pid} in shard {shard}: all {pinned} candidate frames are pinned"
                )?;
                if let Some(ratio) = hit_ratio {
                    write!(f, " (shard hit ratio {:.1}%)", ratio * 100.0)?;
                }
                write!(f, " after waiting {:.1}ms", *waited_ns as f64 / 1e6)?;
                Ok(())
            }
            BufferError::PagePinned(p) => write!(f, "page {p} freed while pinned"),
            BufferError::Disk(e) => write!(f, "disk error: {e}"),
        }
    }
}

impl std::error::Error for BufferError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BufferError::Disk(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DiskError> for BufferError {
    fn from(e: DiskError) -> Self {
        BufferError::Disk(e)
    }
}

/// Configures and creates a [`BufferPool`]; obtained from
/// [`BufferPool::builder`].
///
/// ```
/// use cor_pagestore::{BufferPool, ReplacementPolicy};
///
/// let pool = BufferPool::builder()
///     .capacity(100)
///     .shards(4)
///     .policy(ReplacementPolicy::Clock)
///     .build();
/// assert_eq!(pool.capacity(), 100);
/// assert_eq!(pool.shards(), 4);
/// ```
pub struct BufferPoolBuilder {
    disk: Option<Box<dyn DiskManager>>,
    capacity: usize,
    policy: ReplacementPolicy,
    shards: usize,
    stats: Option<Arc<IoStats>>,
    telemetry: bool,
    wal: Option<Arc<dyn WalHook>>,
    queue_depth: usize,
}

impl BufferPoolBuilder {
    /// Total number of frames across all shards (default
    /// [`DEFAULT_POOL_PAGES`]).
    pub fn capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Replacement policy (default LRU).
    pub fn policy(mut self, policy: ReplacementPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of lock stripes (default 1, which reproduces the paper's
    /// single global LRU exactly).
    pub fn shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// I/O counters to aggregate into (default: fresh [`IoStats`]).
    pub fn stats(mut self, stats: Arc<IoStats>) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Enable per-shard behaviour telemetry (hits, misses, evictions,
    /// write-backs, pin waits; default off). A disabled pool allocates no
    /// counters and performs no telemetry work at all — [`IoStats`] totals
    /// are identical either way.
    pub fn telemetry(mut self, telemetry: bool) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Disk manager backing the pool (default: a fresh in-memory
    /// [`MemDisk`]).
    pub fn disk(mut self, disk: Box<dyn DiskManager>) -> Self {
        self.disk = Some(disk);
        self
    }

    /// Attach a write-ahead log (default: none). With a hook attached
    /// the pool logs every page mutation, stamps page LSNs, and enforces
    /// WAL-before-data on every write-back (see [`crate::wal`]). Without
    /// one, every hot path is byte-for-byte the historical code: no
    /// pre-image copies, no stamping, identical [`IoStats`].
    pub fn wal(mut self, wal: Arc<dyn WalHook>) -> Self {
        self.wal = Some(wal);
        self
    }

    /// `cor-aio` submission queue depth (default 1). At depth 1 no
    /// engine is created at all and every path — prefetch, batched
    /// fetch, demand pin — is the exact synchronous code, so results
    /// *and* [`IoStats`] are byte-identical to a pool without the knob.
    /// At depth > 1 the pool routes `prefetch` speculation and batched
    /// demand fills through an [`AioEngine`](crate::aio::AioEngine)
    /// that keeps up to `queue_depth` coalesced runs in flight.
    pub fn queue_depth(mut self, queue_depth: usize) -> Self {
        self.queue_depth = queue_depth.max(1);
        self
    }

    /// Build the pool.
    ///
    /// # Panics
    ///
    /// If `capacity` is zero, `shards` is zero, or `capacity < shards`
    /// (every shard needs at least one frame).
    pub fn build(self) -> BufferPool {
        assert!(self.capacity > 0, "buffer pool needs at least one frame");
        assert!(self.shards > 0, "buffer pool needs at least one shard");
        assert!(
            self.capacity >= self.shards,
            "capacity {} cannot be split over {} shards",
            self.capacity,
            self.shards
        );
        let base = self.capacity / self.shards;
        let extra = self.capacity % self.shards;
        let shards: Vec<Shard> = (0..self.shards)
            .map(|i| Shard::new(base + usize::from(i < extra), i, self.telemetry))
            .collect();
        let disk: Arc<dyn DiskManager> =
            Arc::from(self.disk.unwrap_or_else(|| Box::new(MemDisk::new())));
        let stats = self.stats.unwrap_or_default();
        // Depth 1 creates no engine: the pool runs the exact synchronous
        // code paths (the byte-identity contract of the knob's default).
        let aio = (self.queue_depth > 1).then(|| {
            AioEngine::new(
                Arc::clone(&disk),
                Arc::clone(&stats),
                AioConfig::with_depth(self.queue_depth),
            )
        });
        BufferPool {
            disk,
            stats,
            policy: self.policy,
            shards,
            wal: self.wal,
            aio,
        }
    }
}

/// A bounded page cache with pluggable replacement, lock striping, and
/// I/O accounting.
///
/// ```
/// use cor_pagestore::BufferPool;
///
/// let pool = BufferPool::builder().capacity(100).build();
/// let pid = pool.allocate_page().unwrap();
/// pool.write(pid, |mut page| {
///     page.init();
///     page.insert(b"a tuple").unwrap();
/// })
/// .unwrap();
/// let n = pool.read(pid, |page| page.live_count()).unwrap();
/// assert_eq!(n, 1);
/// assert_eq!(pool.stats().reads(), 0); // everything stayed resident
/// ```
pub struct BufferPool {
    disk: Arc<dyn DiskManager>,
    stats: Arc<IoStats>,
    policy: ReplacementPolicy,
    shards: Vec<Shard>,
    wal: Option<Arc<dyn WalHook>>,
    /// The `cor-aio` submission engine; `Some` iff `queue_depth > 1`.
    aio: Option<AioEngine>,
}

impl BufferPool {
    /// Start configuring a pool.
    pub fn builder() -> BufferPoolBuilder {
        BufferPoolBuilder {
            disk: None,
            capacity: DEFAULT_POOL_PAGES,
            policy: ReplacementPolicy::default(),
            shards: 1,
            stats: None,
            telemetry: false,
            wal: None,
            queue_depth: 1,
        }
    }

    /// The backend the `cor-aio` engine resolved to:
    /// [`AioBackend::Sync`](crate::aio::AioBackend::Sync) when the pool
    /// runs at queue depth 1 (no engine).
    pub fn aio_backend(&self) -> crate::aio::AioBackend {
        self.aio
            .as_ref()
            .map_or(crate::aio::AioBackend::Sync, AioEngine::backend)
    }

    /// The effective `cor-aio` queue depth (1 = synchronous).
    pub fn queue_depth(&self) -> usize {
        self.aio.as_ref().map_or(1, AioEngine::queue_depth)
    }

    /// The attached WAL hook, if any.
    fn wal_ref(&self) -> Option<&dyn WalHook> {
        self.wal.as_deref()
    }

    /// Create a single-shard LRU pool of `capacity` frames over `disk`,
    /// counting I/O into `stats`.
    #[deprecated(since = "0.2.0", note = "use `BufferPool::builder()` instead")]
    pub fn new(disk: Box<dyn DiskManager>, capacity: usize, stats: Arc<IoStats>) -> Self {
        Self::builder()
            .disk(disk)
            .capacity(capacity)
            .stats(stats)
            .build()
    }

    /// Create a single-shard pool with an explicit replacement policy.
    #[deprecated(since = "0.2.0", note = "use `BufferPool::builder()` instead")]
    pub fn with_policy(
        disk: Box<dyn DiskManager>,
        capacity: usize,
        stats: Arc<IoStats>,
        policy: ReplacementPolicy,
    ) -> Self {
        Self::builder()
            .disk(disk)
            .capacity(capacity)
            .stats(stats)
            .policy(policy)
            .build()
    }

    /// The configured replacement policy.
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// The shared I/O counters.
    pub fn stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    /// Total number of frames across all shards.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(Shard::capacity).sum()
    }

    /// Number of lock stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard behaviour counters, one snapshot per stripe in index
    /// order; `None` when the pool was built without
    /// [`BufferPoolBuilder::telemetry`].
    pub fn telemetry(&self) -> Option<Vec<ShardTelemetrySnapshot>> {
        self.shards
            .iter()
            .map(Shard::telemetry_snapshot)
            .collect::<Option<Vec<_>>>()
    }

    /// Number of pages in the underlying store.
    pub fn num_pages(&self) -> u32 {
        self.disk.num_pages()
    }

    /// The shard a page id is homed to. With one shard this is free of
    /// arithmetic, keeping the single-shard pool on the unsharded code
    /// path.
    fn shard_of(&self, pid: PageId) -> &Shard {
        &self.shards[self.shard_index_of(pid)]
    }

    /// Index of the stripe a page id is homed to.
    fn shard_index_of(&self, pid: PageId) -> usize {
        let n = self.shards.len();
        if n == 1 {
            0
        } else {
            // Multiply-shift mixes the low bits of sequentially
            // allocated page ids before the modulo.
            let h = (pid as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
            (h % n as u64) as usize
        }
    }

    /// Allocate a zeroed page — recycling a previously freed page when one
    /// is available, extending the store otherwise. The page is brought
    /// into the pool dirty without a physical read (it has no prior
    /// contents worth fetching).
    pub fn allocate_page(&self) -> Result<PageId, BufferError> {
        let recycled = self.shards.iter().find_map(Shard::pop_free);
        let pid = match recycled {
            Some(pid) => pid,
            None => self.disk.allocate_page()?,
        };
        self.stats.record_allocation();
        let shard = self.shard_of(pid);
        let idx = shard.allocate_into(
            pid,
            self.policy,
            self.disk.as_ref(),
            &self.stats,
            self.wal_ref(),
        )?;
        // Log the zeroed page as a full image: the frame is dirty with no
        // log record behind it, and a recycled page id may carry stale
        // bytes in the store that redo must be able to overwrite.
        if let Some(wal) = self.wal_ref() {
            let mut st = shard.frame(idx).state.write();
            match wal.log_page_image(pid, &st.data) {
                Ok(lsn) => {
                    PageMut::new(&mut st.data[..]).set_lsn(lsn);
                    st.rec_lsn = lsn;
                }
                Err(e) => {
                    drop(st);
                    shard.unpin(idx);
                    return Err(e.into());
                }
            }
        }
        shard.unpin(idx);
        Ok(pid)
    }

    /// Read page `pid` under the closure. Counts a physical read iff the
    /// page was not resident.
    pub fn read<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(PageView<'_>) -> R,
    ) -> Result<R, BufferError> {
        let shard = self.shard_of(pid);
        let idx = shard.pin(
            pid,
            self.policy,
            self.disk.as_ref(),
            &self.stats,
            self.wal_ref(),
        )?;
        let result = {
            let st = shard.frame(idx).state.read();
            f(PageView::new(&st.data[..]))
        };
        shard.unpin(idx);
        Ok(result)
    }

    /// Mutate page `pid` under the closure; the page is marked dirty.
    /// Counts a physical read iff the page was not resident; the write is
    /// counted when the dirty page is later evicted or flushed.
    pub fn write<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(PageMut<'_>) -> R,
    ) -> Result<R, BufferError> {
        let shard = self.shard_of(pid);
        let idx = shard.pin(
            pid,
            self.policy,
            self.disk.as_ref(),
            &self.stats,
            self.wal_ref(),
        )?;
        let result = match self.wal_ref() {
            None => {
                let mut st = shard.frame(idx).state.write();
                st.dirty = true;
                f(PageMut::new(&mut st.data[..]))
            }
            Some(wal) => {
                // Capture the pre-image, run the closure, log the change,
                // then stamp the record's LSN into the page. Stamping
                // happens *after* the closure (init() zeroes the LSN
                // word) and after logging (the logged after-image must
                // match what redo reconstructs: redo re-stamps rec.lsn
                // the same way).
                let mut st = shard.frame(idx).state.write();
                let was_dirty = st.dirty;
                st.dirty = true;
                let pre: PageBuf = *st.data;
                let r = f(PageMut::new(&mut st.data[..]));
                if pre[..] != st.data[..] {
                    match wal.log_page_write(pid, &pre, &st.data) {
                        Ok(lsn) => {
                            PageMut::new(&mut st.data[..]).set_lsn(lsn);
                            if st.rec_lsn == NO_LSN {
                                st.rec_lsn = lsn;
                            }
                        }
                        Err(e) => {
                            // The mutation never made the log, so it must
                            // not stay in the pool either: a frame holding
                            // unlogged bytes would make every later delta
                            // unreconstructable at redo. Restore the
                            // pre-image (which the log fully describes)
                            // and the prior dirty state.
                            *st.data = pre;
                            st.dirty = was_dirty;
                            drop(st);
                            shard.unpin(idx);
                            return Err(e.into());
                        }
                    }
                }
                r
            }
        };
        shard.unpin(idx);
        Ok(result)
    }

    /// Pin a whole batch, partitioned by home shard: each shard serves
    /// its hits from resident frames and fills all its misses with one
    /// sorted, deduplicated `read_pages` call. Returns the unique pinned
    /// pages as `(page id, shard index, frame index)`; the caller owes
    /// one unpin per entry.
    ///
    /// On error, every pin this call took is released and every staged
    /// frame is detached (see `Shard::pin_many`); pages that earlier
    /// shard sub-batches already faulted in stay resident — they were
    /// admitted normally, exactly as a partially-completed loop of
    /// single fetches would leave them.
    fn pin_batch(
        &self,
        pids: &[PageId],
        prefetch: bool,
    ) -> Result<Vec<(PageId, usize, usize)>, BufferError> {
        let nshards = self.shards.len();
        let mut pinned: Vec<(PageId, usize, usize)> = Vec::with_capacity(pids.len());
        let pin_shard = |s: usize,
                         group: &[PageId],
                         pinned: &mut Vec<(PageId, usize, usize)>|
         -> Result<(), BufferError> {
            let got = self.shards[s].pin_many(
                group,
                self.policy,
                self.disk.as_ref(),
                &self.stats,
                self.wal_ref(),
                prefetch,
                self.aio.as_ref(),
            )?;
            pinned.extend(got.into_iter().map(|(pid, idx)| (pid, s, idx)));
            Ok(())
        };
        let outcome = if nshards == 1 {
            pin_shard(0, pids, &mut pinned)
        } else {
            let mut groups: Vec<Vec<PageId>> = vec![Vec::new(); nshards];
            for &pid in pids {
                groups[self.shard_index_of(pid)].push(pid);
            }
            groups
                .iter()
                .enumerate()
                .filter(|(_, g)| !g.is_empty())
                .try_for_each(|(s, g)| pin_shard(s, g, &mut pinned))
        };
        if let Err(e) = outcome {
            for &(_, s, idx) in &pinned {
                self.shards[s].unpin(idx);
            }
            return Err(e);
        }
        Ok(pinned)
    }

    /// Read a batch of pages under one closure call per request: the
    /// batch is partitioned by home shard, resident pages are served from
    /// their frames, and each shard's misses are faulted in by a single
    /// sorted, deduplicated multi-page read — so a sorted request over
    /// adjacent pages costs one physical submission instead of one per
    /// page.
    ///
    /// `f` is invoked once per element of `pids`, **in request order**
    /// (duplicates included); the returned vector is the closure results
    /// in the same order. Physical-read accounting is identical to a loop
    /// of [`read`](Self::read) whenever the batch's unique pages fit the
    /// pool: each missed page counts exactly one read, hits count none.
    ///
    /// On error no result is returned and no garbage frame stays behind;
    /// pages faulted in before the failing sub-batch remain resident,
    /// exactly as a partially-completed loop of single reads would leave
    /// them, but none of the failing sub-batch's reads are counted.
    ///
    /// The whole batch is pinned at once, so its unique pages must fit
    /// the frames of each home shard or the call fails with
    /// [`NoFreeFrames`](BufferError::NoFreeFrames) — callers chunk large
    /// requests to a window comfortably below `capacity / shards`.
    pub fn fetch_many<R>(
        &self,
        pids: &[PageId],
        mut f: impl FnMut(PageId, PageView<'_>) -> R,
    ) -> Result<Vec<R>, BufferError> {
        if pids.is_empty() {
            return Ok(Vec::new());
        }
        let pinned = self.pin_batch(pids, false)?;
        let by_pid: std::collections::HashMap<PageId, (usize, usize)> = pinned
            .iter()
            .map(|&(pid, s, idx)| (pid, (s, idx)))
            .collect();
        let mut out = Vec::with_capacity(pids.len());
        for &pid in pids {
            let &(s, idx) = by_pid
                .get(&pid)
                .expect("every requested page is pinned by pin_batch");
            let st = self.shards[s].frame(idx).state.read();
            out.push(f(pid, PageView::new(&st.data[..])));
        }
        for &(_, s, idx) in &pinned {
            self.shards[s].unpin(idx);
        }
        Ok(out)
    }

    /// Hint that `pids` will be demanded soon: fault the non-resident
    /// ones in through the batched read path and release them unpinned.
    /// Page ids at or past the end of the store are silently clipped
    /// (readahead is speculative by nature), so callers may over-request.
    ///
    /// Every page named (after clipping) counts toward
    /// `prefetch_issued`; the first later demand access of a frame a
    /// prefetch brought in counts one `prefetch_hit`. Pure hint: logical
    /// results never depend on it, only physical I/O timing does.
    pub fn prefetch(&self, pids: &[PageId]) -> Result<(), BufferError> {
        let end = self.disk.num_pages();
        let wanted: Vec<PageId> = pids.iter().copied().filter(|&p| p < end).collect();
        if wanted.is_empty() {
            return Ok(());
        }
        self.stats.record_prefetch_issued(wanted.len() as u64);
        // With an engine attached, speculation is genuinely asynchronous:
        // runs are submitted and parked as pending completions, nothing
        // blocks, no frame is consumed until the bytes are demanded, and
        // never-demanded pages never count as reads. Without one, the
        // historical blocking path faults the pages in now.
        if let Some(engine) = &self.aio {
            if self.shards.len() == 1 {
                self.shards[0].prefetch_async(&wanted, engine);
            } else {
                let mut groups: Vec<Vec<PageId>> = vec![Vec::new(); self.shards.len()];
                for &pid in &wanted {
                    groups[self.shard_index_of(pid)].push(pid);
                }
                for (s, group) in groups.iter().enumerate() {
                    if !group.is_empty() {
                        self.shards[s].prefetch_async(group, engine);
                    }
                }
            }
            return Ok(());
        }
        let pinned = self.pin_batch(&wanted, true)?;
        for &(_, s, idx) in &pinned {
            self.shards[s].unpin(idx);
        }
        Ok(())
    }

    /// Return a page to its home shard's free list for reuse by a later
    /// [`Self::allocate_page`]. The resident copy (if any) is discarded
    /// without a write-back — freed contents are garbage by definition.
    /// The free list is in-memory state, like the access methods' file
    /// metadata; a restart simply stops recycling (the pages leak in the
    /// store until it is rebuilt).
    pub fn free_page(&self, pid: PageId) -> Result<(), BufferError> {
        self.shard_of(pid).free_page(pid)
    }

    /// Number of pages currently on the free lists.
    pub fn free_pages(&self) -> usize {
        self.shards.iter().map(Shard::free_pages).sum()
    }

    /// The page ids currently on the free lists, sorted. Freed pages hold
    /// garbage by definition, so crash-recovery verification excludes
    /// them from byte comparisons.
    pub fn free_page_ids(&self) -> Vec<PageId> {
        let mut ids = Vec::new();
        for shard in &self.shards {
            shard.collect_free(&mut ids);
        }
        ids.sort_unstable();
        ids
    }

    /// Write one page back to disk if it is resident and dirty (counting
    /// the write). Returns whether a write happened. Used to materialize
    /// temporary relations: the paper charges BFS for "forming the
    /// temporary relation" even when it is small enough to fit in the
    /// buffer.
    pub fn flush_page(&self, pid: PageId) -> Result<bool, BufferError> {
        self.shard_of(pid)
            .flush_page(pid, self.disk.as_ref(), &self.stats, self.wal_ref())
    }

    /// Write all dirty resident pages back to disk (counting the writes).
    pub fn flush_all(&self) -> Result<(), BufferError> {
        for shard in &self.shards {
            shard.flush_all(self.disk.as_ref(), &self.stats, self.wal_ref())?;
        }
        Ok(())
    }

    /// Flush and then forget every resident page, returning the pool to a
    /// cold state. Experiments call this so each strategy run starts with an
    /// empty buffer, as a fresh INGRES session would.
    pub fn flush_and_clear(&self) -> Result<(), BufferError> {
        for shard in &self.shards {
            shard.flush_and_clear(self.disk.as_ref(), &self.stats, self.wal_ref())?;
        }
        Ok(())
    }

    /// The dirty-page table: `(page_id, recLSN)` for every dirty resident
    /// page, where recLSN is the log record that first dirtied the page
    /// since its last write-back. Captured into checkpoint records so
    /// recovery knows how far back redo must start. Pages dirtied without
    /// a WAL attached carry no recLSN and are omitted.
    pub fn dirty_page_table(&self) -> Vec<(PageId, Lsn)> {
        let mut dpt = Vec::new();
        for shard in &self.shards {
            shard.collect_dirty(&mut dpt);
        }
        dpt.sort_unstable();
        dpt
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(Shard::resident_pages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(capacity: usize) -> BufferPool {
        BufferPool::builder().capacity(capacity).build()
    }

    #[test]
    fn allocate_write_read_roundtrip() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| {
            pg.init();
            pg.insert(b"payload").unwrap();
        })
        .unwrap();
        let rec = p.read(pid, |pg| pg.record(0).map(|r| r.to_vec())).unwrap();
        assert_eq!(rec.unwrap(), b"payload");
        // Everything stayed resident: no physical reads.
        assert_eq!(p.stats().reads(), 0);
    }

    #[test]
    fn eviction_counts_io() {
        let p = pool(2);
        let pids: Vec<_> = (0..4).map(|_| p.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.write(pid, |mut pg| {
                pg.init();
                pg.insert(&[i as u8; 8]).unwrap();
            })
            .unwrap();
        }
        // Capacity 2 < 4 pages: allocating/writing 4 dirty pages evicted at
        // least two dirty pages (each one physical write).
        assert!(p.stats().writes() >= 2, "writes = {}", p.stats().writes());
        // Touching the oldest page again faults it back in: a physical read.
        let before = p.stats().reads();
        let rec = p
            .read(pids[0], |pg| pg.record(0).map(|r| r.to_vec()))
            .unwrap();
        assert_eq!(rec.unwrap(), vec![0u8; 8]);
        assert_eq!(p.stats().reads(), before + 1);
    }

    #[test]
    fn resident_page_rereads_are_free() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| pg.init()).unwrap();
        let before = p.stats().snapshot();
        for _ in 0..10 {
            p.read(pid, |pg| pg.slot_count()).unwrap();
        }
        let delta = p.stats().snapshot().since(&before);
        assert_eq!(delta.total(), 0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        let c = p.allocate_page().unwrap(); // evicts a (LRU)
                                            // b and c are resident; touching b must be free.
        let before = p.stats().reads();
        p.read(b, |_| ()).unwrap();
        p.read(c, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before);
        // a was evicted.
        p.read(a, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before + 1);
    }

    #[test]
    fn nested_reads_of_distinct_pages_work() {
        let p = pool(4);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.write(a, |mut pg| pg.init()).unwrap();
        p.write(b, |mut pg| pg.init()).unwrap();
        let n = p
            .read(a, |pa| {
                let inner = p.read(b, |pb| pb.slot_count()).unwrap();
                pa.slot_count() + inner
            })
            .unwrap();
        assert_eq!(n, 0);
    }

    #[test]
    fn exhausted_pool_reports_no_free_frames_with_context() {
        let p = pool(1);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Pin a, then try to touch b: the only frame is pinned.
        let err = p
            .read(a, |_| match p.read(b, |_| ()) {
                Err(BufferError::NoFreeFrames {
                    pid,
                    shard,
                    pinned,
                    hit_ratio,
                    waited_ns,
                }) => {
                    assert_eq!(pid, b, "error names the requesting page");
                    assert_eq!(shard, 0, "error names the page's home shard");
                    assert_eq!(pinned, 1, "error counts the pinned frames");
                    assert_eq!(hit_ratio, None, "telemetry is off by default");
                    assert!(waited_ns > 0, "error reports the stall duration");
                    true
                }
                other => panic!("expected NoFreeFrames, got {other:?}"),
            })
            .unwrap();
        assert!(err, "expected NoFreeFrames while the sole frame is pinned");
    }

    #[test]
    fn exhausted_telemetry_pool_reports_hit_ratio() {
        let p = BufferPool::builder().capacity(1).telemetry(true).build();
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.read(a, |_| ()).unwrap(); // a miss (faulted back after b's alloc evicted it)
        p.read(a, |_| ()).unwrap(); // a hit
        let msg = p
            .read(a, |_| {
                let err = p.read(b, |_| ()).unwrap_err();
                match &err {
                    BufferError::NoFreeFrames { hit_ratio, .. } => {
                        let r = hit_ratio.expect("telemetry pool reports a ratio");
                        assert!(r.is_finite() && (0.0..=1.0).contains(&r), "ratio {r}");
                    }
                    other => panic!("expected NoFreeFrames, got {other:?}"),
                }
                err.to_string()
            })
            .unwrap();
        assert!(
            msg.contains("shard 0") && msg.contains("hit ratio"),
            "diagnostic should carry shard and ratio: {msg}"
        );
    }

    #[test]
    fn telemetry_counts_pool_behaviour() {
        let p = BufferPool::builder().capacity(2).telemetry(true).build();
        let pids: Vec<_> = (0..3).map(|_| p.allocate_page().unwrap()).collect();
        for &pid in &pids {
            p.write(pid, |mut pg| pg.init()).unwrap();
        }
        // Touching the evicted page is a miss; re-touching it is a hit.
        p.read(pids[0], |_| ()).unwrap();
        p.read(pids[0], |_| ()).unwrap();
        let snaps = p.telemetry().expect("telemetry enabled");
        assert_eq!(snaps.len(), 1);
        let s = snaps[0];
        assert_eq!(s.shard, 0);
        assert!(s.misses >= 1, "fault after eviction counts a miss: {s:?}");
        assert!(s.hits >= 1, "resident re-read counts a hit: {s:?}");
        assert!(s.evictions >= 1, "capacity pressure evicts: {s:?}");
        assert!(s.writebacks >= 1, "dirty victims are written back: {s:?}");
        assert_eq!(s.pin_waits, 0);
        assert!(s.hit_ratio() > 0.0 && s.hit_ratio() < 1.0);
        // Flushes count write-backs too: dirty exactly one page on an
        // otherwise-clean pool and flush it.
        p.flush_all().unwrap();
        let wb = p.telemetry().unwrap()[0].writebacks;
        p.write(pids[0], |mut pg| pg.init()).unwrap();
        p.flush_all().unwrap();
        assert_eq!(p.telemetry().unwrap()[0].writebacks, wb + 1);
    }

    #[test]
    fn telemetry_does_not_change_io_accounting() {
        let run = |telemetry: bool| {
            let p = BufferPool::builder()
                .capacity(3)
                .telemetry(telemetry)
                .build();
            let pids: Vec<_> = (0..10).map(|_| p.allocate_page().unwrap()).collect();
            for &pid in &pids {
                p.write(pid, |mut pg| pg.init()).unwrap();
            }
            for &pid in &pids {
                p.read(pid, |_| ()).unwrap();
            }
            p.flush_and_clear().unwrap();
            p.stats().snapshot()
        };
        assert_eq!(run(false), run(true), "IoStats must be telemetry-blind");
    }

    #[test]
    fn disabled_telemetry_returns_none() {
        let p = pool(2);
        assert!(p.telemetry().is_none());
    }

    #[test]
    fn sharded_telemetry_reports_every_stripe() {
        let p = BufferPool::builder()
            .capacity(8)
            .shards(4)
            .telemetry(true)
            .build();
        let pids: Vec<_> = (0..32).map(|_| p.allocate_page().unwrap()).collect();
        for &pid in &pids {
            p.read(pid, |_| ()).unwrap();
        }
        let snaps = p.telemetry().unwrap();
        assert_eq!(snaps.len(), 4);
        for (i, s) in snaps.iter().enumerate() {
            assert_eq!(s.shard, i, "snapshots come back in stripe order");
        }
        let total: u64 = snaps.iter().map(|s| s.probes()).sum();
        assert_eq!(total, 32, "every pin probe lands in exactly one stripe");
    }

    #[test]
    fn flush_all_persists_dirty_pages() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| {
            pg.init();
            pg.insert(b"durable").unwrap();
        })
        .unwrap();
        let w_before = p.stats().writes();
        p.flush_all().unwrap();
        assert_eq!(p.stats().writes(), w_before + 1);
        // Second flush is a no-op: nothing dirty.
        p.flush_all().unwrap();
        assert_eq!(p.stats().writes(), w_before + 1);
    }

    #[test]
    fn flush_and_clear_cold_starts_the_pool() {
        let p = pool(4);
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| pg.init()).unwrap();
        assert!(p.resident_pages() > 0);
        p.flush_and_clear().unwrap();
        assert_eq!(p.resident_pages(), 0);
        let before = p.stats().reads();
        p.read(pid, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before + 1, "page must be re-faulted");
    }

    #[test]
    fn allocation_does_not_count_a_read() {
        let p = pool(4);
        p.allocate_page().unwrap();
        assert_eq!(p.stats().reads(), 0);
        assert_eq!(p.stats().allocations(), 1);
    }

    #[test]
    fn freed_pages_are_recycled() {
        let p = pool(4);
        let a = p.allocate_page().unwrap();
        p.write(a, |mut pg| {
            pg.init();
            pg.insert(b"garbage").unwrap();
        })
        .unwrap();
        let total_before = p.num_pages();
        p.free_page(a).unwrap();
        assert_eq!(p.free_pages(), 1);
        // Next allocation reuses the freed page, zeroed, without growing
        // the store.
        let b = p.allocate_page().unwrap();
        assert_eq!(b, a);
        assert_eq!(p.num_pages(), total_before);
        assert_eq!(p.free_pages(), 0);
        let zeroed = p.read(b, |pg| pg.bytes().iter().all(|&x| x == 0)).unwrap();
        assert!(zeroed, "recycled page must come back zeroed");
    }

    #[test]
    fn freeing_a_pinned_page_is_an_error() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        let err = p
            .read(a, |_| {
                matches!(p.free_page(a), Err(BufferError::PagePinned(_)))
            })
            .unwrap();
        assert!(err);
        // Unpinned: fine.
        p.free_page(a).unwrap();
    }

    #[test]
    fn freed_dirty_page_is_not_written_back() {
        let p = pool(2);
        let a = p.allocate_page().unwrap();
        p.write(a, |mut pg| pg.init()).unwrap();
        let w = p.stats().writes();
        p.free_page(a).unwrap();
        p.flush_all().unwrap();
        assert_eq!(
            p.stats().writes(),
            w,
            "freed contents are garbage; no write-back"
        );
    }

    fn pool_with(capacity: usize, policy: ReplacementPolicy) -> BufferPool {
        BufferPool::builder()
            .capacity(capacity)
            .policy(policy)
            .build()
    }

    #[test]
    fn fifo_evicts_by_load_order_despite_rereads() {
        let p = pool_with(2, ReplacementPolicy::Fifo);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        // Re-touch a repeatedly: FIFO must still evict it first.
        for _ in 0..5 {
            p.read(a, |_| ()).unwrap();
        }
        let _c = p.allocate_page().unwrap(); // evicts a (earliest load)
        let before = p.stats().reads();
        p.read(b, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before, "b stayed resident under FIFO");
        p.read(a, |_| ()).unwrap();
        assert_eq!(
            p.stats().reads(),
            before + 1,
            "a was evicted despite rereads"
        );
    }

    #[test]
    fn clock_gives_second_chances() {
        let p = pool_with(2, ReplacementPolicy::Clock);
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        p.read(a, |_| ()).unwrap();
        let c = p.allocate_page().unwrap();
        // Exactly one of a/b was evicted; every page stays readable and
        // the pool stays at capacity.
        for pid in [a, b, c] {
            p.read(pid, |_| ()).unwrap();
        }
        assert_eq!(p.resident_pages(), 2);
    }

    #[test]
    fn sieve_retains_rereferenced_pages_across_a_scan() {
        let p = pool_with(4, ReplacementPolicy::Sieve);
        let hot: Vec<_> = (0..2).map(|_| p.allocate_page().unwrap()).collect();
        // Establish reuse: the hot pages carry visited bits.
        for &pid in &hot {
            p.read(pid, |_| ()).unwrap();
        }
        let before = p.stats().reads();
        // A sustained one-touch scan flood interleaved with hot
        // re-references — the hand sweeps the scan pages out while every
        // lap's reprieve is renewed for the hot pair.
        for _ in 0..10 {
            for _ in 0..2 {
                p.allocate_page().unwrap();
            }
            for &pid in &hot {
                p.read(pid, |_| ()).unwrap();
            }
        }
        assert_eq!(
            p.stats().reads(),
            before,
            "SIEVE kept the re-referenced pages resident through the flood"
        );
    }

    #[test]
    fn two_q_scan_churns_probation_not_the_main_queue() {
        let p = pool_with(8, ReplacementPolicy::TwoQ);
        let hot: Vec<_> = (0..2).map(|_| p.allocate_page().unwrap()).collect();
        // Second touch promotes the hot pages into Am.
        for &pid in &hot {
            p.read(pid, |_| ()).unwrap();
        }
        // Flood with one-touch allocations: they cycle through A1in.
        for _ in 0..20 {
            p.allocate_page().unwrap();
        }
        let before = p.stats().reads();
        for &pid in &hot {
            p.read(pid, |_| ()).unwrap();
        }
        assert_eq!(
            p.stats().reads(),
            before,
            "2Q kept the promoted pages resident through the flood"
        );
    }

    #[test]
    fn all_policies_are_transparent_caches() {
        for policy in ReplacementPolicy::ALL {
            let p = pool_with(3, policy);
            let pids: Vec<_> = (0..10).map(|_| p.allocate_page().unwrap()).collect();
            for (i, &pid) in pids.iter().enumerate() {
                p.write(pid, |mut pg| {
                    pg.init();
                    pg.set_flags(i as u32);
                })
                .unwrap();
            }
            for (i, &pid) in pids.iter().enumerate() {
                let flags = p.read(pid, |pg| pg.flags()).unwrap();
                assert_eq!(flags, i as u32, "{policy:?} corrupted page {pid}");
            }
            assert_eq!(p.policy(), policy);
        }
    }

    #[test]
    fn deprecated_constructors_still_work() {
        #[allow(deprecated)]
        let p = BufferPool::new(Box::new(MemDisk::new()), 4, IoStats::new());
        assert_eq!(p.capacity(), 4);
        assert_eq!(p.shards(), 1);
        #[allow(deprecated)]
        let p = BufferPool::with_policy(
            Box::new(MemDisk::new()),
            4,
            IoStats::new(),
            ReplacementPolicy::Clock,
        );
        assert_eq!(p.policy(), ReplacementPolicy::Clock);
    }

    #[test]
    fn sharded_pool_is_a_transparent_cache() {
        for shards in [1, 2, 4, 8] {
            let p = BufferPool::builder().capacity(16).shards(shards).build();
            assert_eq!(p.shards(), shards);
            assert_eq!(p.capacity(), 16);
            let pids: Vec<_> = (0..64).map(|_| p.allocate_page().unwrap()).collect();
            for (i, &pid) in pids.iter().enumerate() {
                p.write(pid, |mut pg| {
                    pg.init();
                    pg.set_flags(i as u32);
                })
                .unwrap();
            }
            for (i, &pid) in pids.iter().enumerate() {
                let flags = p.read(pid, |pg| pg.flags()).unwrap();
                assert_eq!(flags, i as u32, "{shards} shards corrupted page {pid}");
            }
        }
    }

    #[test]
    fn sharded_capacity_split_covers_remainders() {
        let p = BufferPool::builder().capacity(10).shards(3).build();
        assert_eq!(p.capacity(), 10, "4 + 3 + 3 frames");
        // All three shards must be usable under pressure.
        let pids: Vec<_> = (0..40).map(|_| p.allocate_page().unwrap()).collect();
        for &pid in &pids {
            p.write(pid, |mut pg| pg.init()).unwrap();
        }
        for &pid in &pids {
            p.read(pid, |_| ()).unwrap();
        }
    }

    #[test]
    fn sharded_free_lists_recycle_to_home_shard() {
        let p = BufferPool::builder().capacity(8).shards(4).build();
        let pids: Vec<_> = (0..12).map(|_| p.allocate_page().unwrap()).collect();
        let grown = p.num_pages();
        for &pid in &pids {
            p.free_page(pid).unwrap();
        }
        assert_eq!(p.free_pages(), 12);
        // Reallocation drains the free lists before growing the store.
        for _ in 0..12 {
            p.allocate_page().unwrap();
        }
        assert_eq!(p.free_pages(), 0);
        assert_eq!(p.num_pages(), grown, "no growth while recycling");
    }

    /// A WAL hook that hands out sequential LSNs and can be told to fail
    /// its next page-write log call.
    struct FlakyHook {
        next: std::sync::atomic::AtomicU32,
        fail_writes: std::sync::atomic::AtomicBool,
    }

    impl FlakyHook {
        fn new() -> Self {
            FlakyHook {
                next: std::sync::atomic::AtomicU32::new(0),
                fail_writes: std::sync::atomic::AtomicBool::new(false),
            }
        }
    }

    use crate::wal::WalHook;
    use std::sync::atomic::Ordering;

    impl WalHook for FlakyHook {
        fn log_page_write(
            &self,
            _pid: PageId,
            _before: &PageBuf,
            _after: &PageBuf,
        ) -> Result<Lsn, DiskError> {
            if self.fail_writes.load(Ordering::SeqCst) {
                return Err(DiskError::io(
                    "wal append",
                    "flaky-hook",
                    std::io::Error::other("injected"),
                ));
            }
            Ok(self.next.fetch_add(1, Ordering::SeqCst) + 1)
        }
        fn log_page_image(&self, _pid: PageId, _image: &PageBuf) -> Result<Lsn, DiskError> {
            Ok(self.next.fetch_add(1, Ordering::SeqCst) + 1)
        }
        fn flush_to(&self, _lsn: Lsn) -> Result<(), DiskError> {
            Ok(())
        }
        fn page_flushed(&self, _pid: PageId) {}
    }

    #[test]
    fn failed_log_append_rolls_the_frame_back() {
        let hook = Arc::new(FlakyHook::new());
        let p = BufferPool::builder().capacity(4).wal(hook.clone()).build();
        let pid = p.allocate_page().unwrap();
        p.write(pid, |mut pg| {
            pg.init();
            pg.insert(b"logged").unwrap();
        })
        .unwrap();
        p.flush_page(pid).unwrap(); // frame clean, last state fully logged
        let before = p
            .read(pid, |v| {
                let mut b = [0u8; crate::PAGE_SIZE];
                b.copy_from_slice(v.bytes());
                b
            })
            .unwrap();

        hook.fail_writes.store(true, Ordering::SeqCst);
        let err = p.write(pid, |mut pg| {
            pg.insert(b"unlogged").unwrap();
        });
        assert!(matches!(err, Err(BufferError::Disk(_))));
        hook.fail_writes.store(false, Ordering::SeqCst);

        // The unlogged mutation must be gone and the frame clean again:
        // the pool never holds state the log cannot reconstruct.
        let after = p
            .read(pid, |v| {
                let mut b = [0u8; crate::PAGE_SIZE];
                b.copy_from_slice(v.bytes());
                b
            })
            .unwrap();
        assert_eq!(before[..], after[..], "mutation rolled back");
        let w = p.stats().writes();
        p.flush_all().unwrap();
        assert_eq!(p.stats().writes(), w, "frame restored to clean");
        assert!(p.dirty_page_table().is_empty());
    }

    /// Allocate `n` pages, each initialized with a distinguishing flag.
    fn seeded_pool(capacity: usize, shards: usize, n: u32) -> (BufferPool, Vec<PageId>) {
        let p = BufferPool::builder()
            .capacity(capacity)
            .shards(shards)
            .build();
        let pids: Vec<_> = (0..n).map(|_| p.allocate_page().unwrap()).collect();
        for (i, &pid) in pids.iter().enumerate() {
            p.write(pid, |mut pg| {
                pg.init();
                pg.set_flags(i as u32);
            })
            .unwrap();
        }
        p.flush_and_clear().unwrap();
        p.stats().reset();
        (p, pids)
    }

    #[test]
    fn fetch_many_matches_a_loop_of_reads() {
        for shards in [1, 4] {
            let (p, pids) = seeded_pool(32, shards, 12);
            let batch: Vec<PageId> = vec![
                pids[3], pids[4], pids[5], pids[0], pids[7], pids[3], pids[11],
            ];
            let flags = p.fetch_many(&batch, |_, pg| pg.flags()).unwrap();
            let batched = p.stats().snapshot();

            let (q, qids) = seeded_pool(32, shards, 12);
            let qbatch: Vec<PageId> = vec![
                qids[3], qids[4], qids[5], qids[0], qids[7], qids[3], qids[11],
            ];
            let mut loop_flags = Vec::new();
            for &pid in &qbatch {
                loop_flags.push(q.read(pid, |pg| pg.flags()).unwrap());
            }
            assert_eq!(flags, loop_flags, "same bytes ({shards} shards)");
            assert_eq!(flags, vec![3, 4, 5, 0, 7, 3, 11]);
            assert_eq!(
                batched,
                q.stats().snapshot(),
                "same IoStats totals ({shards} shards)"
            );
        }
    }

    #[test]
    fn fetch_many_counts_batch_accounting() {
        let (p, pids) = seeded_pool(8, 1, 6);
        // Six contiguous fresh pages: one coalesced run.
        p.fetch_many(&pids, |_, _| ()).unwrap();
        assert_eq!(p.stats().reads(), 6);
        assert_eq!(p.stats().batch_reads(), 6);
        assert_eq!(p.stats().coalesced_runs(), 1, "contiguous batch = 1 run");
        // All resident now: a second batch does no physical work.
        p.fetch_many(&pids, |_, _| ()).unwrap();
        assert_eq!(p.stats().reads(), 6);
        assert_eq!(p.stats().batch_reads(), 6);
        // The single-page path never touches batch counters.
        let (q, qids) = seeded_pool(8, 1, 6);
        for &pid in &qids {
            q.read(pid, |_| ()).unwrap();
        }
        assert_eq!(q.stats().batch_reads(), 0);
        assert_eq!(q.stats().coalesced_runs(), 0);
    }

    #[test]
    fn prefetch_then_demand_counts_hits_not_extra_io() {
        let (p, pids) = seeded_pool(8, 1, 6);
        p.prefetch(&pids).unwrap();
        assert_eq!(p.stats().prefetch_issued(), 6);
        assert_eq!(p.stats().prefetch_hits(), 0);
        assert_eq!(p.stats().reads(), 6, "prefetch faulted the pages in");
        for (i, &pid) in pids.iter().enumerate() {
            let f = p.read(pid, |pg| pg.flags()).unwrap();
            assert_eq!(f, i as u32);
        }
        assert_eq!(p.stats().reads(), 6, "demand reads all hit");
        assert_eq!(p.stats().prefetch_hits(), 6);
        // Second touch of the same frames: hits are counted once.
        p.read(pids[0], |_| ()).unwrap();
        assert_eq!(p.stats().prefetch_hits(), 6);
        // Out-of-range hints are clipped, not errors.
        p.prefetch(&[p.num_pages(), p.num_pages() + 10]).unwrap();
        assert_eq!(p.stats().prefetch_issued(), 6);
    }

    #[test]
    fn fetch_many_bad_page_leaves_no_garbage_frames() {
        let (p, pids) = seeded_pool(8, 1, 4);
        let bad: PageId = p.num_pages() + 5;
        let before = p.stats().snapshot();
        let err = p
            .fetch_many(&[pids[0], bad, pids[2]], |_, _| ())
            .unwrap_err();
        assert!(
            matches!(err, BufferError::Disk(DiskError::BadPage(b)) if b == bad),
            "got {err:?}"
        );
        // All-or-nothing: the failed batch admitted nothing, counted
        // nothing, and left every pin released.
        assert_eq!(p.stats().snapshot(), before, "no reads counted");
        assert_eq!(p.stats().batch_reads(), 0);
        assert_eq!(p.resident_pages(), 0, "no partially-admitted frames");
        // The pool is fully usable: every frame is unpinned and clean.
        let flags = p.fetch_many(&pids, |_, pg| pg.flags()).unwrap();
        assert_eq!(flags, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fetch_many_batch_larger_than_shard_errors_cleanly() {
        // 2 frames, 4 unique pages in one batch: admission must fail with
        // NoFreeFrames and roll everything back.
        let (p, pids) = seeded_pool(2, 1, 4);
        let err = p.fetch_many(&pids, |_, _| ()).unwrap_err();
        assert!(matches!(err, BufferError::NoFreeFrames { .. }), "{err:?}");
        // Pins all released: a full-capacity batch now succeeds.
        let flags = p.fetch_many(&pids[..2], |_, pg| pg.flags()).unwrap();
        assert_eq!(flags, vec![0, 1]);
    }

    #[test]
    fn single_shard_matches_legacy_eviction_order() {
        // The builder with shards(1) must reproduce the exact legacy
        // stamp sequence: see lru_evicts_least_recently_used, plus a
        // FIFO interleaving that is order-sensitive.
        let p = BufferPool::builder()
            .capacity(3)
            .shards(1)
            .policy(ReplacementPolicy::Fifo)
            .build();
        let a = p.allocate_page().unwrap();
        let b = p.allocate_page().unwrap();
        let c = p.allocate_page().unwrap();
        p.read(a, |_| ()).unwrap();
        p.read(c, |_| ()).unwrap();
        let _d = p.allocate_page().unwrap(); // FIFO evicts a
        let before = p.stats().reads();
        p.read(b, |_| ()).unwrap();
        p.read(c, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before, "b and c stayed resident");
        p.read(a, |_| ()).unwrap();
        assert_eq!(p.stats().reads(), before + 1, "a went out first");
    }
}
