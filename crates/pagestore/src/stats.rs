//! I/O statistics.
//!
//! The paper's performance yardstick is *average I/O traffic per query*,
//! measured through INGRES system counters. We reproduce the yardstick by
//! counting every physical page transfer that crosses the buffer pool
//! boundary: a read when a page is faulted in from the disk manager, a write
//! when a dirty page is evicted or flushed.
//!
//! Counters are atomic so that a single [`IoStats`] handle can be shared
//! between the buffer pool and a measurement driver, and so parallel
//! experiment sweeps can keep per-database statistics without locks.

use cor_obs::PhaseProfile;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Shared atomic counters for physical page I/O.
///
/// Optionally carries a per-phase [`PhaseProfile`]: once
/// [`enable_profile`](Self::enable_profile) is called, every
/// `record_read`/`record_write` *also* lands in the bucket of the
/// caller's current [`Phase`](cor_obs::Phase) — in the same call, so
/// phase sums always equal the totals exactly. Until then the profile
/// path is a single uncontended pointer load and the stats behave (and
/// cost) exactly as before.
///
/// When the recording thread is collecting a causal trace
/// (`cor_obs::tracetree`), the same calls also charge the innermost
/// trace node — again in the same call, so trace sums equal the totals
/// too. With no trace active (always, unless a query is being traced
/// on this thread) that path is one thread-local flag load.
#[derive(Debug, Default)]
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    allocations: AtomicU64,
    /// Pages faulted in through the batched `fetch_many`/prefetch path
    /// (a subset of `reads`; each such page is also counted there).
    batch_reads: AtomicU64,
    /// Physical read submissions those batched pages cost after adjacent
    /// pages were coalesced into runs (`<= batch_reads`).
    coalesced_runs: AtomicU64,
    /// Pages named in prefetch requests (resident or not).
    prefetch_issued: AtomicU64,
    /// Demand accesses served by a frame a prefetch brought in.
    prefetch_hits: AtomicU64,
    /// Runs handed to the `cor-aio` submission layer.
    aio_submitted: AtomicU64,
    /// Runs the `cor-aio` backend finished (successfully or not).
    aio_completed: AtomicU64,
    /// Peak number of runs simultaneously in flight on the backend.
    aio_in_flight_peak: AtomicU64,
    profile: OnceLock<Arc<PhaseProfile>>,
}

impl IoStats {
    /// Create a fresh, zeroed counter set behind an [`Arc`].
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Turn on per-phase attribution and return the profile. Idempotent:
    /// later calls return the same profile. Cannot be turned off — create
    /// fresh stats for an unprofiled run.
    pub fn enable_profile(&self) -> Arc<PhaseProfile> {
        self.profile
            .get_or_init(|| Arc::new(PhaseProfile::default()))
            .clone()
    }

    /// The phase profile, if [`enable_profile`](Self::enable_profile)
    /// has been called.
    pub fn profile(&self) -> Option<&Arc<PhaseProfile>> {
        self.profile.get()
    }

    /// Record one physical page read.
    #[inline]
    pub fn record_read(&self) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.profile.get() {
            p.record_read();
        }
        cor_obs::tracetree::charge_read();
    }

    /// Record one physical page write.
    #[inline]
    pub fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = self.profile.get() {
            p.record_write();
        }
        cor_obs::tracetree::charge_write();
    }

    /// Record one page allocation (page appended to the store).
    #[inline]
    pub fn record_allocation(&self) {
        self.allocations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a batched fault of `pages` pages that cost `runs` physical
    /// submissions after run coalescing. Only the batch bookkeeping lives
    /// here — each page of the batch is *also* counted via
    /// [`record_read`](Self::record_read), so `reads` totals are identical
    /// whether a page came in singly or batched.
    #[inline]
    pub fn record_batch(&self, pages: u64, runs: u64) {
        self.batch_reads.fetch_add(pages, Ordering::Relaxed);
        self.coalesced_runs.fetch_add(runs, Ordering::Relaxed);
    }

    /// Record `pages` pages named in a prefetch request.
    #[inline]
    pub fn record_prefetch_issued(&self, pages: u64) {
        self.prefetch_issued.fetch_add(pages, Ordering::Relaxed);
    }

    /// Record one demand access served by a prefetched frame.
    #[inline]
    pub fn record_prefetch_hit(&self) {
        self.prefetch_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `runs` runs handed to the async submission layer. Pure
    /// submission bookkeeping: the pages themselves are counted via
    /// [`record_read`](Self::record_read)/[`record_batch`](Self::record_batch)
    /// only when (and if) their bytes are harvested into a frame, so
    /// transfer totals stay comparable across queue depths.
    #[inline]
    pub fn record_aio_submitted(&self, runs: u64) {
        self.aio_submitted.fetch_add(runs, Ordering::Relaxed);
    }

    /// Record `runs` runs completed by the async backend.
    #[inline]
    pub fn record_aio_completed(&self, runs: u64) {
        self.aio_completed.fetch_add(runs, Ordering::Relaxed);
    }

    /// Note an observed in-flight depth of `now` runs, updating the peak.
    #[inline]
    pub fn note_aio_in_flight(&self, now: u64) {
        self.aio_in_flight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Physical page reads so far.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Physical page writes so far.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Pages allocated so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }

    /// Total I/O (reads + writes) — the paper's cost metric.
    pub fn total_io(&self) -> u64 {
        self.reads() + self.writes()
    }

    /// Pages faulted in through the batched path so far.
    pub fn batch_reads(&self) -> u64 {
        self.batch_reads.load(Ordering::Relaxed)
    }

    /// Physical submissions the batched pages cost after coalescing.
    pub fn coalesced_runs(&self) -> u64 {
        self.coalesced_runs.load(Ordering::Relaxed)
    }

    /// Pages named in prefetch requests so far.
    pub fn prefetch_issued(&self) -> u64 {
        self.prefetch_issued.load(Ordering::Relaxed)
    }

    /// Demand accesses served by prefetched frames so far.
    pub fn prefetch_hits(&self) -> u64 {
        self.prefetch_hits.load(Ordering::Relaxed)
    }

    /// Runs submitted to the async layer so far.
    pub fn aio_submitted(&self) -> u64 {
        self.aio_submitted.load(Ordering::Relaxed)
    }

    /// Runs completed by the async backend so far.
    pub fn aio_completed(&self) -> u64 {
        self.aio_completed.load(Ordering::Relaxed)
    }

    /// Peak runs simultaneously in flight so far.
    pub fn aio_in_flight_peak(&self) -> u64 {
        self.aio_in_flight_peak.load(Ordering::Relaxed)
    }

    /// Capture the batch/prefetch counters. Kept separate from
    /// [`IoSnapshot`] so the paper-facing transfer counts stay exactly
    /// three fields, byte-identical to the pre-batching layout.
    pub fn batch_snapshot(&self) -> BatchIoSnapshot {
        BatchIoSnapshot {
            batch_reads: self.batch_reads(),
            coalesced_runs: self.coalesced_runs(),
            prefetch_issued: self.prefetch_issued(),
            prefetch_hits: self.prefetch_hits(),
            aio_submitted: self.aio_submitted(),
            aio_completed: self.aio_completed(),
            aio_in_flight_peak: self.aio_in_flight_peak(),
        }
    }

    /// Capture the current counter values.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads(),
            writes: self.writes(),
            allocations: self.allocations(),
        }
    }

    /// Capture a *consistent* point-in-time copy of the counters.
    ///
    /// [`snapshot`](Self::snapshot) reads the three counters with three
    /// independent loads, so a reader racing [`reset`](Self::reset) (or a
    /// burst of writers) can observe a torn mix — e.g. pre-reset `reads`
    /// with post-reset `writes` (see the caveat on `reset`). This method
    /// closes that gap with a double-read protocol: take two snapshots
    /// back to back and accept only when they are equal, meaning no
    /// counter moved across the read window, so the values form one
    /// coherent cut. Under sustained concurrent traffic equality may
    /// keep failing; after a bounded number of attempts the last
    /// snapshot is returned — at that point the caller is measuring a
    /// moving target and no cut is more "correct" than another.
    ///
    /// Used by the crashtest harness and the explain profiler to take
    /// torn-free deltas around recovery and replay phases.
    pub fn snapshot_consistent(&self) -> IoSnapshot {
        const ATTEMPTS: usize = 64;
        let mut prev = self.snapshot();
        for _ in 0..ATTEMPTS {
            let cur = self.snapshot();
            if cur == prev {
                return cur;
            }
            prev = cur;
        }
        prev
    }

    /// Reset all counters to zero (between experiment phases).
    ///
    /// # Non-atomicity across counters
    ///
    /// The three counters are zeroed by three independent `store(0)`s,
    /// not one atomic transaction. A thread recording I/O concurrently
    /// with a reset can land its increment before, between, or after the
    /// stores, so a [`snapshot`](Self::snapshot) racing the reset may
    /// observe a mix of pre- and post-reset values (e.g. old `reads` with
    /// new `writes`). Each individual counter is still exact — nothing is
    /// lost or double-counted within one counter; only cross-counter
    /// consistency is relaxed. The experiment drivers only call `reset`
    /// at quiescent points (between strategy runs, with no worker threads
    /// in flight), where this cannot be observed. Callers that need a
    /// consistent cut while writers are active should use
    /// [`snapshot`](Self::snapshot) + [`IoSnapshot::since`] deltas
    /// against a baseline instead of resetting.
    pub fn reset(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
        self.allocations.store(0, Ordering::Relaxed);
        self.batch_reads.store(0, Ordering::Relaxed);
        self.coalesced_runs.store(0, Ordering::Relaxed);
        self.prefetch_issued.store(0, Ordering::Relaxed);
        self.prefetch_hits.store(0, Ordering::Relaxed);
        self.aio_submitted.store(0, Ordering::Relaxed);
        self.aio_completed.store(0, Ordering::Relaxed);
        self.aio_in_flight_peak.store(0, Ordering::Relaxed);
        if let Some(p) = self.profile.get() {
            p.reset();
        }
    }
}

/// A point-in-time copy of the batch/prefetch counters maintained by the
/// buffer pool's `fetch_many`/prefetch paths, plus the `cor-aio`
/// submission counters. All are zero when batching is off (batch size 1,
/// no readahead) — the byte-identity mode — and the `aio_*` trio is
/// additionally zero whenever `queue_depth <= 1` (no engine exists).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchIoSnapshot {
    /// Pages faulted in through the batched path (subset of `reads`).
    pub batch_reads: u64,
    /// Physical submissions those pages cost after run coalescing.
    pub coalesced_runs: u64,
    /// Pages named in prefetch requests.
    pub prefetch_issued: u64,
    /// Demand accesses served by prefetched frames.
    pub prefetch_hits: u64,
    /// Runs handed to the async submission layer.
    pub aio_submitted: u64,
    /// Runs the async backend finished (successfully or not).
    pub aio_completed: u64,
    /// Peak runs simultaneously in flight (a high-water mark, not a
    /// counter: `since` keeps the later value rather than subtracting).
    pub aio_in_flight_peak: u64,
}

impl BatchIoSnapshot {
    /// Counter movement since an earlier snapshot.
    pub fn since(&self, earlier: &BatchIoSnapshot) -> BatchIoSnapshot {
        BatchIoSnapshot {
            batch_reads: self.batch_reads.saturating_sub(earlier.batch_reads),
            coalesced_runs: self.coalesced_runs.saturating_sub(earlier.coalesced_runs),
            prefetch_issued: self.prefetch_issued.saturating_sub(earlier.prefetch_issued),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            aio_submitted: self.aio_submitted.saturating_sub(earlier.aio_submitted),
            aio_completed: self.aio_completed.saturating_sub(earlier.aio_completed),
            aio_in_flight_peak: self.aio_in_flight_peak,
        }
    }

    /// Pages saved per submission: how much the coalescer compressed the
    /// batched traffic (1.0 = no adjacency found; 0.0 before any batch).
    pub fn coalescing_factor(&self) -> f64 {
        if self.batch_reads == 0 {
            0.0
        } else {
            self.batch_reads as f64 / self.coalesced_runs.max(1) as f64
        }
    }
}

/// A point-in-time copy of the counters, used to attribute I/O to phases
/// (the paper splits query cost into `ParCost` and `ChildCost`, Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoSnapshot {
    /// Physical reads at snapshot time.
    pub reads: u64,
    /// Physical writes at snapshot time.
    pub writes: u64,
    /// Allocations at snapshot time.
    pub allocations: u64,
}

impl IoSnapshot {
    /// Total I/O at snapshot time.
    pub fn total_io(&self) -> u64 {
        self.reads + self.writes
    }

    /// I/O performed since an earlier snapshot.
    pub fn since(&self, earlier: &IoSnapshot) -> IoDelta {
        IoDelta {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
        }
    }
}

/// The difference between two snapshots: the I/O charged to one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoDelta {
    /// Reads in the interval.
    pub reads: u64,
    /// Writes in the interval.
    pub writes: u64,
}

impl IoDelta {
    /// Total I/O in the interval.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

impl std::ops::Add for IoDelta {
    type Output = IoDelta;
    fn add(self, rhs: IoDelta) -> IoDelta {
        IoDelta {
            reads: self.reads + rhs.reads,
            writes: self.writes + rhs.writes,
        }
    }
}

impl std::ops::AddAssign for IoDelta {
    fn add_assign(&mut self, rhs: IoDelta) {
        self.reads += rhs.reads;
        self.writes += rhs.writes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_read();
        s.record_read();
        s.record_write();
        s.record_allocation();
        assert_eq!(s.reads(), 2);
        assert_eq!(s.writes(), 1);
        assert_eq!(s.allocations(), 1);
        assert_eq!(s.total_io(), 3);
    }

    #[test]
    fn snapshot_delta_attributes_phase_io() {
        let s = IoStats::new();
        s.record_read();
        let before = s.snapshot();
        s.record_read();
        s.record_write();
        let after = s.snapshot();
        let delta = after.since(&before);
        assert_eq!(delta.reads, 1);
        assert_eq!(delta.writes, 1);
        assert_eq!(delta.total(), 2);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = IoStats::new();
        s.record_read();
        s.record_write();
        s.reset();
        assert_eq!(s.total_io(), 0);
        assert_eq!(s.allocations(), 0);
    }

    #[test]
    fn deltas_add() {
        let a = IoDelta {
            reads: 1,
            writes: 2,
        };
        let b = IoDelta {
            reads: 3,
            writes: 4,
        };
        let c = a + b;
        assert_eq!(c.reads, 4);
        assert_eq!(c.writes, 6);
        let mut d = a;
        d += b;
        assert_eq!(d, c);
    }

    #[test]
    fn concurrent_increments_during_snapshots_are_never_lost() {
        // Writers hammer the counters while a reader takes snapshots and
        // accumulates `since` deltas. Every snapshot must be monotone in
        // each counter, chained deltas must telescope exactly, and after
        // the writers join the totals must be exact — relaxed atomics may
        // skew *across* counters but never lose an increment.
        let s = IoStats::new();
        const WRITERS: u64 = 4;
        const PER_WRITER: u64 = 20_000;
        let (first, mid, acc) = std::thread::scope(|scope| {
            for _ in 0..WRITERS {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..PER_WRITER {
                        s.record_read();
                        s.record_write();
                        s.record_allocation();
                    }
                });
            }
            let first = s.snapshot();
            let mut prev = first;
            let mut acc = IoDelta::default();
            for _ in 0..1_000 {
                let cur = s.snapshot();
                assert!(cur.reads >= prev.reads, "reads went backwards");
                assert!(cur.writes >= prev.writes, "writes went backwards");
                assert!(
                    cur.allocations >= prev.allocations,
                    "allocations went backwards"
                );
                acc += cur.since(&prev);
                prev = cur;
            }
            (first, prev, acc)
        });
        // Chained deltas telescope: sum of per-interval deltas equals the
        // end-to-end delta.
        assert_eq!(acc, mid.since(&first));
        // All writers joined: the final snapshot is exact.
        let last = s.snapshot();
        assert_eq!(last.reads, WRITERS * PER_WRITER);
        assert_eq!(last.writes, WRITERS * PER_WRITER);
        assert_eq!(last.allocations, WRITERS * PER_WRITER);
        assert!(acc.total() <= last.since(&IoSnapshot::default()).total());
    }

    #[test]
    fn concurrent_increments_during_reset_keep_counters_individually_exact() {
        // A reset racing writers may interleave between counters, but
        // afterwards (at quiescence) each counter holds only increments
        // that landed after its own store(0) — always <= the number of
        // post-reset events, never negative garbage.
        let s = IoStats::new();
        std::thread::scope(|scope| {
            let writer = {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..50_000 {
                        s.record_read();
                        s.record_write();
                    }
                })
            };
            s.reset(); // races the writer
            writer.join().unwrap();
        });
        let snap = s.snapshot();
        assert!(snap.reads <= 50_000);
        assert!(snap.writes <= 50_000);
        // After quiescence, reset is exact.
        s.reset();
        assert_eq!(s.snapshot(), IoSnapshot::default());
    }

    #[test]
    fn snapshot_consistent_is_a_coherent_cut() {
        // Quiescent: trivially equal to snapshot().
        let s = IoStats::new();
        s.record_read();
        s.record_write();
        assert_eq!(s.snapshot_consistent(), s.snapshot());

        // Concurrent: writers keep all three counters in lock-step (one
        // increment of each per round). A torn read could observe
        // reads != writes; a consistent cut taken while each writer is
        // between rounds must satisfy the invariant reads == writes ==
        // allocations whenever the double-read accepted (two equal
        // consecutive snapshots mean no writer was mid-round with a
        // visible partial update across the window). We can't force
        // acceptance under contention, so assert the weaker — but still
        // load-bearing — properties: monotonicity against earlier cuts
        // and exactness at quiescence.
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..20_000 {
                        s.record_read();
                        s.record_write();
                        s.record_allocation();
                    }
                });
            }
            let mut prev = s.snapshot_consistent();
            for _ in 0..500 {
                let cur = s.snapshot_consistent();
                assert!(cur.reads >= prev.reads);
                assert!(cur.writes >= prev.writes);
                assert!(cur.allocations >= prev.allocations);
                prev = cur;
            }
        });
        // Quiescent again: the consistent cut is exact.
        let cut = s.snapshot_consistent();
        assert_eq!(cut.reads, 80_000);
        assert_eq!(cut.writes, 80_000);
        assert_eq!(cut.allocations, 80_000);
    }

    #[test]
    fn profile_buckets_sum_exactly_to_totals() {
        use cor_obs::{Phase, PhaseGuard};
        let s = IoStats::new();
        // Disabled: recording works, no profile exists.
        s.record_read();
        assert!(s.profile().is_none());
        let profile = s.enable_profile();
        assert!(Arc::ptr_eq(&profile, &s.enable_profile()), "idempotent");
        let base = profile.snapshot();
        {
            let _g = PhaseGuard::enter(Phase::Sort);
            s.record_read();
            s.record_read();
            s.record_write();
        }
        s.record_read(); // back to Other
        let snap = profile.snapshot().since(&base);
        assert_eq!(snap.reads_of(Phase::Sort), 2);
        assert_eq!(snap.writes_of(Phase::Sort), 1);
        assert_eq!(snap.reads_of(Phase::Other), 1);
        // Phase sums match the totals recorded while the profile was live.
        assert_eq!(snap.total_reads(), 3);
        assert_eq!(snap.total_writes(), 1);
        assert_eq!(s.reads(), 4, "pre-enable read still counted in totals");
        s.reset();
        assert_eq!(profile.snapshot().total_reads(), 0, "reset clears profile");
    }

    #[test]
    fn since_saturates_rather_than_underflowing() {
        let later = IoSnapshot {
            reads: 1,
            writes: 1,
            allocations: 0,
        };
        let earlier = IoSnapshot {
            reads: 5,
            writes: 5,
            allocations: 0,
        };
        let d = later.since(&earlier);
        assert_eq!(d.total(), 0);
    }
}
