//! # cor-pagestore
//!
//! Page-storage substrate for the complex-object representation study
//! (Jhingran & Stonebraker, ICDE 1990). The paper ran its experiments on
//! commercial INGRES, which it used purely as a page-I/O engine: 2 KB data
//! pages behind a 100-page main-memory buffer, with the *number of page
//! transfers* as the performance yardstick.
//!
//! This crate rebuilds exactly that substrate:
//!
//! * [`page`] — 2 KB slotted pages holding variable-length records;
//! * [`disk`] — page stores ([`disk::MemDisk`] for exact, noise-free
//!   transfer counting; [`disk::FileDisk`] for real files);
//! * [`buffer`] — a lock-striped buffer pool that counts every transfer
//!   crossing its boundary (single-shard mode reproduces the paper's
//!   global-LRU counts exactly; more shards serve concurrent streams);
//! * [`policy`] — the pluggable replacement policies (LRU/FIFO/CLOCK
//!   plus the scan-resistant SIEVE and 2Q), with O(1) eviction over an
//!   intrusive recency arena;
//! * [`stats`] — shared I/O counters with snapshot/delta support, used to
//!   split query cost into the paper's `ParCost` and `ChildCost`;
//! * [`telemetry`] — opt-in per-shard behaviour counters (hits, misses,
//!   evictions, write-backs, pin waits) that never perturb the [`stats`]
//!   transfer counts;
//! * [`wal`] — the write-ahead-log seam: per-page LSNs and the
//!   [`wal::WalHook`] through which the pool logs mutations and enforces
//!   WAL-before-data (the log implementation lives in `cor-wal`);
//! * [`aio`] — the `cor-aio` asynchronous submission layer: a
//!   completion-queue model over any [`disk::DiskManager`] with bounded
//!   in-flight queue depth, backing the pool's speculative readahead
//!   when `queue_depth > 1`.

#![warn(missing_docs)]

pub mod aio;
pub mod buffer;
pub mod disk;
pub mod page;
pub mod policy;
mod shard;
pub mod stats;
pub mod telemetry;
pub mod wal;

pub use aio::{
    AioBackend, AioBackendChoice, AioConfig, AioEngine, Completion, SubmissionTicket, TicketStatus,
};
pub use buffer::{BufferError, BufferPool, BufferPoolBuilder, DEFAULT_POOL_PAGES};
pub use disk::{DiskError, DiskManager, Durability, FaultMode, FaultyDisk, FileDisk, MemDisk};
pub use page::{
    PageBuf, PageError, PageId, PageMut, PageView, SlotId, MAX_RECORD, NO_PAGE, PAGE_SIZE,
};
pub use policy::ReplacementPolicy;
pub use stats::{BatchIoSnapshot, IoDelta, IoSnapshot, IoStats};
pub use telemetry::{ShardTelemetry, ShardTelemetrySnapshot};
pub use wal::{Lsn, WalHook, NO_LSN};
