//! Slotted pages.
//!
//! The paper ran on commercial INGRES with 2 KB data pages; we use the same
//! page size. Pages hold variable-length records behind a slot array — the
//! INGRES reference manuals call the analogous mechanism "compressed"
//! fixed-length attributes, i.e. variable-length records.
//!
//! Layout of a 2048-byte page:
//!
//! ```text
//! +--------------------------------------------------------------+
//! | header (16 B) | slot array (4 B each, grows ->) ... free ... |
//! |                      ... free ... (<- grows) records         |
//! +--------------------------------------------------------------+
//! ```
//!
//! * header: `slot_count: u16`, `free_end: u16` (start of the record area),
//!   `flags: u32` and `next: u32` (both owned by the access layer — heap
//!   files chain pages through `next`, B-trees mark leaf/internal in
//!   `flags`), plus `lsn: u32` — the page LSN, owned by the buffer pool's
//!   WAL hook (see [`crate::wal`]); zero on pools without a log attached.
//!   The B-tree's custom node layout leaves the same bytes (12..16)
//!   untouched, so the LSN word is valid for every page in the store.
//! * slot: `offset: u16`, `len: u16`. A dead slot has `offset == u16::MAX`.

/// Size of every page, matching the INGRES 2 KB data page of the paper.
pub const PAGE_SIZE: usize = 2048;

/// Byte offset where the slot array begins.
const HEADER_SIZE: usize = 16;
/// Bytes per slot entry.
const SLOT_SIZE: usize = 4;
/// Sentinel offset marking a dead (deleted) slot.
const DEAD: u16 = u16::MAX;
/// Byte offset of the page LSN in the header (the formerly reserved word).
const LSN_OFFSET: usize = 12;

/// An owned page buffer.
pub type PageBuf = [u8; PAGE_SIZE];

/// Identifier of a page within one page store.
pub type PageId = u32;

/// Sentinel for "no page" in `next` pointers.
pub const NO_PAGE: PageId = PageId::MAX;

/// Index of a record slot within a page.
pub type SlotId = u16;

/// Errors raised by slotted-page operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageError {
    /// The record does not fit in the remaining free space of this page.
    PageFull,
    /// The record is larger than any page can hold.
    RecordTooLarge,
    /// The slot id does not refer to a live record.
    BadSlot,
}

impl std::fmt::Display for PageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PageError::PageFull => write!(f, "page full"),
            PageError::RecordTooLarge => write!(f, "record larger than a page"),
            PageError::BadSlot => write!(f, "bad slot id"),
        }
    }
}

impl std::error::Error for PageError {}

/// Largest record a page can hold (one slot, empty page).
pub const MAX_RECORD: usize = PAGE_SIZE - HEADER_SIZE - SLOT_SIZE;

#[inline]
fn get_u16(data: &[u8], at: usize) -> u16 {
    u16::from_le_bytes([data[at], data[at + 1]])
}

#[inline]
fn put_u16(data: &mut [u8], at: usize, v: u16) {
    data[at..at + 2].copy_from_slice(&v.to_le_bytes());
}

#[inline]
fn get_u32(data: &[u8], at: usize) -> u32 {
    u32::from_le_bytes([data[at], data[at + 1], data[at + 2], data[at + 3]])
}

#[inline]
fn put_u32(data: &mut [u8], at: usize, v: u32) {
    data[at..at + 4].copy_from_slice(&v.to_le_bytes());
}

/// Read-only view of a slotted page.
#[derive(Clone, Copy)]
pub struct PageView<'a> {
    data: &'a [u8],
}

impl<'a> PageView<'a> {
    /// Wrap a raw page buffer. The buffer must be `PAGE_SIZE` long.
    pub fn new(data: &'a [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        PageView { data }
    }

    /// The raw page bytes, for access methods with custom node layouts
    /// (the B-tree manages its own sorted entry directory).
    pub fn bytes(&self) -> &'a [u8] {
        self.data
    }

    /// Number of slots, live or dead.
    pub fn slot_count(&self) -> u16 {
        get_u16(self.data, 0)
    }

    fn free_end(&self) -> usize {
        get_u16(self.data, 2) as usize
    }

    /// Access-layer flags word.
    pub fn flags(&self) -> u32 {
        get_u32(self.data, 4)
    }

    /// Access-layer `next` page pointer.
    pub fn next(&self) -> PageId {
        get_u32(self.data, 8)
    }

    /// The page LSN: the log record that produced this page version, or
    /// [`NO_LSN`](crate::wal::NO_LSN) if the page was never logged.
    /// Stamped by the buffer pool, never by access methods.
    pub fn lsn(&self) -> u32 {
        get_u32(self.data, LSN_OFFSET)
    }

    /// Bytes of a live record, or `None` for dead/out-of-range slots.
    pub fn record(&self, slot: SlotId) -> Option<&'a [u8]> {
        if slot >= self.slot_count() {
            return None;
        }
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        let off = get_u16(self.data, at);
        if off == DEAD {
            return None;
        }
        let len = get_u16(self.data, at + 2) as usize;
        Some(&self.data[off as usize..off as usize + len])
    }

    /// Iterate `(slot, record)` pairs over live slots, in slot order.
    pub fn records(&self) -> impl Iterator<Item = (SlotId, &'a [u8])> + '_ {
        let n = self.slot_count();
        let me = *self;
        (0..n).filter_map(move |s| me.record(s).map(|r| (s, r)))
    }

    /// Number of live records.
    pub fn live_count(&self) -> usize {
        self.records().count()
    }

    /// Contiguous free bytes between the slot array and the record area.
    pub fn contiguous_free(&self) -> usize {
        self.free_end() - (HEADER_SIZE + self.slot_count() as usize * SLOT_SIZE)
    }

    /// Total reclaimable free bytes (contiguous plus dead-record space).
    pub fn total_free(&self) -> usize {
        let live: usize = self.records().map(|(_, r)| r.len()).sum();
        PAGE_SIZE - HEADER_SIZE - self.slot_count() as usize * SLOT_SIZE - live
    }

    /// Would a record of `len` bytes fit (possibly after compaction),
    /// assuming it needs a fresh slot?
    pub fn fits(&self, len: usize) -> bool {
        // A dead slot can be reused without growing the slot array.
        let slot_cost = if self.first_dead_slot().is_some() {
            0
        } else {
            SLOT_SIZE
        };
        self.total_free() >= len + slot_cost
    }

    fn first_dead_slot(&self) -> Option<SlotId> {
        (0..self.slot_count())
            .find(|&s| get_u16(self.data, HEADER_SIZE + s as usize * SLOT_SIZE) == DEAD)
    }
}

/// Mutable view of a slotted page.
pub struct PageMut<'a> {
    data: &'a mut [u8],
}

impl<'a> PageMut<'a> {
    /// Wrap a raw page buffer. The buffer must be `PAGE_SIZE` long.
    pub fn new(data: &'a mut [u8]) -> Self {
        debug_assert_eq!(data.len(), PAGE_SIZE);
        PageMut { data }
    }

    /// The raw page bytes, for access methods with custom node layouts.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        self.data
    }

    /// Format the buffer as an empty page.
    pub fn init(&mut self) {
        self.data.fill(0);
        put_u16(self.data, 0, 0);
        put_u16(self.data, 2, PAGE_SIZE as u16);
        put_u32(self.data, 8, NO_PAGE);
    }

    /// Read-only view of the same page.
    pub fn view(&self) -> PageView<'_> {
        PageView::new(self.data)
    }

    /// Set the access-layer flags word.
    pub fn set_flags(&mut self, flags: u32) {
        put_u32(self.data, 4, flags);
    }

    /// Set the access-layer `next` page pointer.
    pub fn set_next(&mut self, next: PageId) {
        put_u32(self.data, 8, next);
    }

    /// Stamp the page LSN. Reserved for the buffer pool (after logging a
    /// mutation) and the recovery redo pass (after applying a record);
    /// access methods must leave the word alone.
    pub fn set_lsn(&mut self, lsn: u32) {
        put_u32(self.data, LSN_OFFSET, lsn);
    }

    /// Insert a record, compacting the page first if fragmentation requires
    /// it. Returns the slot the record was placed in.
    pub fn insert(&mut self, record: &[u8]) -> Result<SlotId, PageError> {
        if record.len() > MAX_RECORD {
            return Err(PageError::RecordTooLarge);
        }
        if !self.view().fits(record.len()) {
            return Err(PageError::PageFull);
        }
        let reuse = self.view().first_dead_slot();
        let slot_cost = if reuse.is_some() { 0 } else { SLOT_SIZE };
        if self.view().contiguous_free() < record.len() + slot_cost {
            self.compact();
        }
        debug_assert!(self.view().contiguous_free() >= record.len() + slot_cost);

        let slot = match reuse {
            Some(s) => s,
            None => {
                let n = self.view().slot_count();
                put_u16(self.data, 0, n + 1);
                n
            }
        };
        let free_end = self.view().free_end() - record.len();
        self.data[free_end..free_end + record.len()].copy_from_slice(record);
        put_u16(self.data, 2, free_end as u16);
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        put_u16(self.data, at, free_end as u16);
        put_u16(self.data, at + 2, record.len() as u16);
        Ok(slot)
    }

    /// Delete the record in `slot`.
    pub fn delete(&mut self, slot: SlotId) -> Result<(), PageError> {
        if self.view().record(slot).is_none() {
            return Err(PageError::BadSlot);
        }
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        put_u16(self.data, at, DEAD);
        put_u16(self.data, at + 2, 0);
        Ok(())
    }

    /// Replace the record in `slot` with `record`, preserving the slot id.
    ///
    /// Shrinking or same-size updates happen in place (the paper's updates
    /// modify ChildRel tuples in place); growing updates relocate the record
    /// within the page if space permits.
    pub fn update(&mut self, slot: SlotId, record: &[u8]) -> Result<(), PageError> {
        let old = self.view().record(slot).ok_or(PageError::BadSlot)?;
        let (old_off, old_len) = (
            old.as_ptr() as usize - self.data.as_ptr() as usize,
            old.len(),
        );
        if record.len() <= old_len {
            self.data[old_off..old_off + record.len()].copy_from_slice(record);
            let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
            put_u16(self.data, at + 2, record.len() as u16);
            return Ok(());
        }
        if record.len() > MAX_RECORD {
            return Err(PageError::RecordTooLarge);
        }
        // Grow: tombstone the old copy, then re-place. The slot id survives.
        let at = HEADER_SIZE + slot as usize * SLOT_SIZE;
        put_u16(self.data, at, DEAD);
        put_u16(self.data, at + 2, 0);
        if self.view().total_free() < record.len() {
            // Roll back the tombstone so the caller still sees the old value.
            put_u16(self.data, at, old_off as u16);
            put_u16(self.data, at + 2, old_len as u16);
            return Err(PageError::PageFull);
        }
        if self.view().contiguous_free() < record.len() {
            self.compact();
        }
        let free_end = self.view().free_end() - record.len();
        self.data[free_end..free_end + record.len()].copy_from_slice(record);
        put_u16(self.data, 2, free_end as u16);
        put_u16(self.data, at, free_end as u16);
        put_u16(self.data, at + 2, record.len() as u16);
        Ok(())
    }

    /// Rewrite all live records contiguously at the end of the page,
    /// reclaiming dead-record space. Slot ids are preserved.
    pub fn compact(&mut self) {
        let n = self.view().slot_count();
        let mut live: Vec<(SlotId, Vec<u8>)> = Vec::with_capacity(n as usize);
        for s in 0..n {
            if let Some(r) = self.view().record(s) {
                live.push((s, r.to_vec()));
            }
        }
        let mut free_end = PAGE_SIZE;
        for (s, r) in &live {
            free_end -= r.len();
            self.data[free_end..free_end + r.len()].copy_from_slice(r);
            let at = HEADER_SIZE + *s as usize * SLOT_SIZE;
            put_u16(self.data, at, free_end as u16);
            put_u16(self.data, at + 2, r.len() as u16);
        }
        put_u16(self.data, 2, free_end as u16);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh() -> PageBuf {
        let mut buf = [0u8; PAGE_SIZE];
        PageMut::new(&mut buf).init();
        buf
    }

    #[test]
    fn init_yields_empty_page() {
        let buf = fresh();
        let v = PageView::new(&buf);
        assert_eq!(v.slot_count(), 0);
        assert_eq!(v.live_count(), 0);
        assert_eq!(v.next(), NO_PAGE);
        assert_eq!(v.total_free(), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn insert_and_read_roundtrip() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s0 = p.insert(b"hello").unwrap();
        let s1 = p.insert(b"world!").unwrap();
        assert_ne!(s0, s1);
        assert_eq!(p.view().record(s0).unwrap(), b"hello");
        assert_eq!(p.view().record(s1).unwrap(), b"world!");
        assert_eq!(p.view().live_count(), 2);
    }

    #[test]
    fn empty_records_are_allowed() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s = p.insert(b"").unwrap();
        assert_eq!(p.view().record(s).unwrap(), b"");
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s0 = p.insert(b"aaa").unwrap();
        let _s1 = p.insert(b"bbb").unwrap();
        p.delete(s0).unwrap();
        assert!(p.view().record(s0).is_none());
        let s2 = p.insert(b"ccc").unwrap();
        assert_eq!(s2, s0, "dead slot should be reused");
        assert_eq!(p.view().record(s2).unwrap(), b"ccc");
    }

    #[test]
    fn delete_bad_slot_errors() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        assert_eq!(p.delete(0), Err(PageError::BadSlot));
        let s = p.insert(b"x").unwrap();
        p.delete(s).unwrap();
        assert_eq!(p.delete(s), Err(PageError::BadSlot));
    }

    #[test]
    fn page_fills_and_rejects_overflow() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let rec = [7u8; 100];
        let mut count = 0;
        while p.insert(&rec).is_ok() {
            count += 1;
        }
        // 2032 usable bytes / 104 per record = 19 records.
        assert_eq!(count, (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE));
        assert_eq!(p.insert(&rec), Err(PageError::PageFull));
        // A smaller record can still squeeze in.
        assert!(p.view().total_free() >= 8 + SLOT_SIZE);
        p.insert(&[1u8; 8]).unwrap();
    }

    #[test]
    fn record_too_large_is_rejected() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let rec = vec![0u8; MAX_RECORD + 1];
        assert_eq!(p.insert(&rec), Err(PageError::RecordTooLarge));
        let rec = vec![0u8; MAX_RECORD];
        assert!(p.insert(&rec).is_ok());
    }

    #[test]
    fn compaction_reclaims_dead_space() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let mut slots = Vec::new();
        let rec = [3u8; 100];
        while let Ok(s) = p.insert(&rec) {
            slots.push(s);
        }
        // Delete every other record, then insert records of a larger size
        // that only fit after compaction.
        for s in slots.iter().step_by(2) {
            p.delete(*s).unwrap();
        }
        let big = [9u8; 180];
        let s = p.insert(&big).unwrap();
        assert_eq!(p.view().record(s).unwrap(), &big[..]);
        // Untouched records survive compaction.
        for s in slots.iter().skip(1).step_by(2) {
            assert_eq!(p.view().record(*s).unwrap(), &rec[..]);
        }
    }

    #[test]
    fn update_in_place_same_size() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s = p.insert(b"abcdef").unwrap();
        p.update(s, b"ABCDEF").unwrap();
        assert_eq!(p.view().record(s).unwrap(), b"ABCDEF");
    }

    #[test]
    fn update_shrinking() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s = p.insert(b"abcdef").unwrap();
        p.update(s, b"xy").unwrap();
        assert_eq!(p.view().record(s).unwrap(), b"xy");
    }

    #[test]
    fn update_growing_preserves_slot() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s = p.insert(b"ab").unwrap();
        let other = p.insert(b"other").unwrap();
        p.update(s, b"abcdefghij").unwrap();
        assert_eq!(p.view().record(s).unwrap(), b"abcdefghij");
        assert_eq!(p.view().record(other).unwrap(), b"other");
    }

    #[test]
    fn update_growing_fails_cleanly_when_full() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let s = p.insert(&[1u8; 100]).unwrap();
        while p.insert(&[2u8; 100]).is_ok() {}
        let grown = vec![9u8; 1000];
        assert_eq!(p.update(s, &grown), Err(PageError::PageFull));
        // Old value still intact after the failed grow.
        assert_eq!(p.view().record(s).unwrap(), &[1u8; 100][..]);
    }

    #[test]
    fn flags_and_next_are_persisted() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        p.set_flags(0xDEAD_BEEF);
        p.set_next(42);
        assert_eq!(p.view().flags(), 0xDEAD_BEEF);
        assert_eq!(p.view().next(), 42);
    }

    #[test]
    fn lsn_word_roundtrips_and_is_independent_of_page_content() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        assert_eq!(p.view().lsn(), 0, "init zeroes the LSN word");
        let s = p.insert(b"payload").unwrap();
        p.set_lsn(0xABCD_1234);
        assert_eq!(p.view().lsn(), 0xABCD_1234);
        // Record operations never disturb the LSN word, and vice versa.
        p.update(s, b"PAYLOAD").unwrap();
        p.set_flags(7);
        p.set_next(9);
        assert_eq!(p.view().lsn(), 0xABCD_1234);
        assert_eq!(p.view().record(s).unwrap(), b"PAYLOAD");
        assert_eq!(p.view().flags(), 7);
        assert_eq!(p.view().next(), 9);
    }

    #[test]
    fn records_iterator_skips_dead_slots() {
        let mut buf = fresh();
        let mut p = PageMut::new(&mut buf);
        let a = p.insert(b"a").unwrap();
        let _b = p.insert(b"b").unwrap();
        let c = p.insert(b"c").unwrap();
        p.delete(a).unwrap();
        p.delete(c).unwrap();
        let live: Vec<_> = p.view().records().map(|(_, r)| r.to_vec()).collect();
        assert_eq!(live, vec![b"b".to_vec()]);
    }
}
