//! # cor-bench
//!
//! Benchmark harness: one binary per figure/table of the paper's
//! evaluation (see DESIGN.md's experiment index) plus criterion
//! microbenchmarks for the substrate.
//!
//! Every figure binary accepts:
//!
//! * `--scale F` — run at fraction `F` of the paper's database size
//!   (ParentRel, SizeCache, buffer and sequence length shrink together);
//!   default 0.2.
//! * `--full` — the paper's full scale (equivalent to `--scale 1.0`).
//! * `--seq N` — override the sequence length.
//! * `--seed S` — override the master seed.

#![warn(missing_docs)]

use cor_workload::Params;

/// Common command-line configuration for figure binaries.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Scale factor applied to the paper's database size.
    pub scale: f64,
    /// Sequence-length override.
    pub seq: Option<usize>,
    /// Seed override.
    pub seed: Option<u64>,
    /// Write the main table as CSV to this path.
    pub csv: Option<std::path::PathBuf>,
    /// Extra flags not consumed by the common parser.
    pub rest: Vec<String>,
}

impl BenchConfig {
    /// Parse `std::env::args`, exiting with usage on malformed input.
    pub fn from_args() -> Self {
        let mut cfg = BenchConfig {
            scale: 0.2,
            seq: None,
            seed: None,
            csv: None,
            rest: Vec::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--scale" => {
                    cfg.scale = args
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--scale needs a number in (0,1]"))
                }
                "--full" => cfg.scale = 1.0,
                "--seq" => {
                    cfg.seq = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--seq needs a positive integer")),
                    )
                }
                "--seed" => {
                    cfg.seed = Some(
                        args.next()
                            .and_then(|v| v.parse().ok())
                            .unwrap_or_else(|| usage("--seed needs an integer")),
                    )
                }
                "--csv" => {
                    cfg.csv = Some(
                        args.next()
                            .map(Into::into)
                            .unwrap_or_else(|| usage("--csv needs a path")),
                    )
                }
                "--help" | "-h" => usage(""),
                other => cfg.rest.push(other.to_string()),
            }
        }
        if !(cfg.scale > 0.0 && cfg.scale <= 1.0) {
            usage("--scale must be in (0, 1]");
        }
        cfg
    }

    /// Base parameters at the configured scale.
    pub fn base_params(&self) -> Params {
        let mut p = Params::scaled(self.scale);
        if let Some(n) = self.seq {
            p.sequence_len = n;
        }
        if let Some(s) = self.seed {
            p.seed = s;
        }
        p
    }

    /// Was an extra flag passed (e.g. `--faces`)?
    pub fn has_flag(&self, name: &str) -> bool {
        self.rest.iter().any(|a| a == name)
    }

    /// Write the figure's main table as CSV if `--csv` was given.
    pub fn maybe_write_csv(&self, headers: &[&str], rows: &[Vec<String>]) {
        if let Some(path) = &self.csv {
            match cor_workload::write_csv(path, headers, rows) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}");
    }
    eprintln!(
        "usage: <bench> [--scale F] [--full] [--seq N] [--seed S] [--csv FILE]\n\
         reproduces one figure of Jhingran & Stonebraker (ICDE 1990); see DESIGN.md"
    );
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}

/// NumTop sweep values used by several figures, scaled to the database
/// size, clipped and deduplicated.
pub fn num_top_sweep(parent_card: u64) -> Vec<u64> {
    let raw = [
        1u64, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000,
    ];
    let mut out: Vec<u64> = raw
        .iter()
        .map(|&n| ((n as f64 * parent_card as f64 / 10_000.0).round() as u64).clamp(1, parent_card))
        .collect();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_top_sweep_scales_and_dedups() {
        let s = num_top_sweep(10_000);
        assert_eq!(s.first(), Some(&1));
        assert_eq!(s.last(), Some(&10_000));
        let s = num_top_sweep(2_000);
        assert_eq!(s.last(), Some(&2_000));
        assert!(
            s.windows(2).all(|w| w[0] < w[1]),
            "sorted and unique: {s:?}"
        );
        let s = num_top_sweep(10);
        assert!(!s.is_empty());
        assert!(s.iter().all(|&n| (1..=10).contains(&n)));
    }
}
