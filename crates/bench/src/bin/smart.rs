//! Section 5.3: the SMART strategy under a mixed query workload.
//!
//! "If the queries against the database have a good mix (some low NumTop
//! queries, and some large NumTop queries), then the above solution will
//! make caching outperform BFS for most values of NumTop, provided
//! Pr(UPDATE) is not too high."
//!
//! One sequence mixes NumTop values; BFS, DFSCACHE and SMART each run the
//! identical sequence and the per-retrieve I/O is bucketed by NumTop.
//! Expected shape: SMART ≈ DFSCACHE at low NumTop (better than BFS), and
//! ≈ BFS at high NumTop (where plain DFSCACHE degrades) — i.e. SMART
//! tracks the better of the two everywhere.
//!
//! ```text
//! cargo run -p cor-bench --release --bin smart [--scale F]
//! ```

use complexobj::{ExecOptions, Strategy};
use cor_bench::BenchConfig;
use cor_workload::{fnum, format_table, generate, generate_mixed_sequence, Engine};
use std::collections::BTreeMap;

/// Find the NumTop band where DFSCACHE stops beating BFS and return a
/// threshold inside it (the paper's empirically chosen N).
fn calibrate_threshold(base: &cor_workload::Params, mix: &[u64]) -> u64 {
    use cor_workload::{run_point, Params};
    let probe = Params {
        sequence_len: (base.sequence_len / 3).max(30),
        pr_update: base.pr_update,
        ..base.clone()
    };
    let mut last_win = 0u64;
    let mut first_loss = *mix.last().expect("non-empty mix");
    for &n in mix {
        let p = Params {
            num_top: n,
            ..probe.clone()
        };
        let cache = run_point(&p, Strategy::DfsCache)
            .expect("probe runs")
            .avg_retrieve_io();
        let bfs = run_point(&p, Strategy::Bfs)
            .expect("probe runs")
            .avg_retrieve_io();
        if cache <= bfs {
            last_win = n;
        } else {
            first_loss = n;
            break;
        }
    }
    (last_win + first_loss).div_euclid(2).max(1)
}

fn main() {
    let cfg = BenchConfig::from_args();
    let mut base = cfg.base_params();
    if cfg.seq.is_none() {
        base.sequence_len = (base.sequence_len * 2).max(120); // enough of each bucket
    }
    base.pr_update = 0.05;
    let mix: Vec<u64> = [10u64, 50, 200, 1000, 5000]
        .iter()
        .map(|&n| ((n as f64 * cfg.scale).round() as u64).clamp(1, base.parent_card))
        .collect();

    // Calibrate SMART's threshold N the way the paper did ("N = 300 in our
    // experiments" — an empirical choice for their setup): probe where
    // DFSCACHE stops beating BFS and put N between that NumTop and the
    // next. At full scale this lands near the paper's 300.
    let smart_threshold = calibrate_threshold(&base, &mix);

    println!(
        "Section 5.3 — SMART vs BFS vs DFSCACHE under a NumTop mix {:?}\n\
         (scale {}, Pr(UPDATE)={}, SMART threshold N={})\n",
        mix, cfg.scale, base.pr_update, smart_threshold
    );

    let generated = generate(&base);
    let sequence = generate_mixed_sequence(&base, &mix);
    let opts = ExecOptions {
        smart_threshold,
        ..ExecOptions::default()
    };

    let strategies = [Strategy::Bfs, Strategy::DfsCache, Strategy::Smart];
    let mut buckets: Vec<BTreeMap<u64, (u64, u64)>> = vec![BTreeMap::new(); strategies.len()];
    let mut totals = Vec::new();
    for (j, &s) in strategies.iter().enumerate() {
        let engine = Engine::builder()
            .build_workload(&base, &generated, s)
            .expect("engine builds")
            .with_options(opts);
        let (result, trace) = engine.run_sequence_trace(s, &sequence).expect("run");
        for t in &trace {
            if !t.is_update {
                let e = buckets[j].entry(t.num_top).or_insert((0, 0));
                e.0 += t.io;
                e.1 += 1;
            }
        }
        totals.push(result.avg_io_per_query());
    }

    let mut rows = Vec::new();
    for &n in buckets[0].keys() {
        let cell = |j: usize| {
            let (io, cnt) = buckets[j][&n];
            fnum(io as f64 / cnt as f64)
        };
        rows.push(vec![n.to_string(), cell(0), cell(1), cell(2)]);
    }
    println!(
        "{}",
        format_table(&["NumTop", "BFS", "DFSCACHE", "SMART"], &rows)
    );
    println!(
        "overall avg I/O per query: BFS {} | DFSCACHE {} | SMART {}\n",
        fnum(totals[0]),
        fnum(totals[1]),
        fnum(totals[2])
    );

    // Threshold sensitivity: how much does the choice of N matter? The
    // paper fixes N = 300 without a sweep; this shows the cost surface is
    // flat-bottomed around any N that separates the DFSCACHE-wins band
    // from the BFS-wins band.
    let candidates: Vec<u64> = {
        let mut c: Vec<u64> = mix.to_vec();
        c.push(1);
        c.push(base.parent_card);
        c.sort_unstable();
        c.dedup();
        c
    };
    println!("threshold sensitivity (overall avg I/O per query under the same mix):");
    let mut sens_rows = Vec::new();
    for &n in &candidates {
        let engine = Engine::builder()
            .build_workload(&base, &generated, Strategy::Smart)
            .expect("engine builds")
            .with_options(ExecOptions {
                smart_threshold: n,
                ..ExecOptions::default()
            });
        let (result, _) = engine
            .run_sequence_trace(Strategy::Smart, &sequence)
            .expect("run");
        sens_rows.push(vec![n.to_string(), fnum(result.avg_io_per_query())]);
    }
    println!("{}", format_table(&["N", "avg I/O"], &sens_rows));

    // Headline checks: SMART within a modest factor of the best per bucket.
    let mut ok = true;
    for &n in buckets[0].keys() {
        let avg = |j: usize| {
            let (io, cnt) = buckets[j][&n];
            io as f64 / cnt as f64
        };
        let best = avg(0).min(avg(1));
        if avg(2) > best * 1.35 {
            ok = false;
            println!(
                "  NumTop={n}: SMART {} vs best {} — above tolerance",
                fnum(avg(2)),
                fnum(best)
            );
        }
    }
    println!(
        "SMART tracks the better of BFS/DFSCACHE in every bucket {}",
        if ok { "[OK]" } else { "[MISMATCH]" }
    );
    let overall_ok = totals[2] <= totals[0].min(totals[1]) * 1.1;
    println!(
        "SMART overall beats (or matches) both pure strategies {}",
        if overall_ok { "[OK]" } else { "[note]" }
    );
}
