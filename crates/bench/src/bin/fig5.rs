//! Figure 5: ParCost / ChildCost / TotCost as a function of ShareFactor,
//! for DFSCLUST (5a) and BFS (5b), at NumTop = 200.
//!
//! Paper's shape:
//! * DFSCLUST — ParCost **increases** as ShareFactor decreases (better
//!   clustering interleaves more subobjects between consecutive objects);
//!   ChildCost decreases; the total is dominated by ChildCost.
//! * BFS — ParCost is flat; ChildCost **decreases** as ShareFactor
//!   increases because |ChildRel| = 50,000/ShareFactor shrinks the merge
//!   join. A crossover ShareFactor exists beyond which BFS wins.
//!
//! ```text
//! cargo run -p cor-bench --release --bin fig5 [--scale F]
//! ```

use complexobj::Strategy;
use cor_bench::BenchConfig;
use cor_workload::{default_threads, fnum, format_table, parallel_map, run_point, Params};

fn main() {
    let cfg = BenchConfig::from_args();
    let base = cfg.base_params();
    let num_top = ((200.0 * cfg.scale).round() as u64).clamp(1, base.parent_card);
    let share_factors: Vec<u32> = (1..=10).collect();

    println!(
        "Figure 5 — cost breakup vs ShareFactor at NumTop={} (scale {})\n",
        num_top, cfg.scale
    );

    let strategies = [Strategy::DfsClust, Strategy::Bfs];
    let points: Vec<(u32, Strategy)> = share_factors
        .iter()
        .flat_map(|&sf| strategies.iter().map(move |&s| (sf, s)))
        .collect();
    let results = parallel_map(points, default_threads(), |&(sf, s)| {
        let p = Params {
            use_factor: sf,
            overlap_factor: 1,
            num_top,
            pr_update: 0.0,
            ..base.clone()
        };
        let r = run_point(&p, s).expect("point runs");
        (r.avg_par_cost(), r.avg_child_cost())
    });

    let mut all_rows: Vec<Vec<String>> = Vec::new();
    for (si, s) in strategies.iter().enumerate() {
        let label = if *s == Strategy::DfsClust {
            "Figure 5(a) DFSCLUST"
        } else {
            "Figure 5(b) BFS"
        };
        let mut rows = Vec::new();
        for (i, &sf) in share_factors.iter().enumerate() {
            let (par, child) = results[i * 2 + si];
            rows.push(vec![
                sf.to_string(),
                fnum(par),
                fnum(child),
                fnum(par + child),
            ]);
        }
        println!("{label}");
        println!(
            "{}",
            format_table(&["ShareFactor", "ParCost", "ChildCost", "TotCost"], &rows)
        );
        all_rows.extend(rows.iter().cloned().map(|mut r| {
            r.insert(0, s.name().to_string());
            r
        }));
    }
    cfg.maybe_write_csv(
        &["strategy", "ShareFactor", "ParCost", "ChildCost", "TotCost"],
        &all_rows,
    );

    // Headline checks.
    let clu = |i: usize| results[i * 2];
    let bfs = |i: usize| results[i * 2 + 1];
    let last = share_factors.len() - 1;

    let par_trend = clu(0).0 > clu(last).0;
    println!(
        "DFSCLUST ParCost falls as ShareFactor rises ({} -> {}) {}",
        fnum(clu(0).0),
        fnum(clu(last).0),
        if par_trend { "[OK]" } else { "[MISMATCH]" }
    );
    let child_trend = clu(0).1 < clu(last).1;
    println!(
        "DFSCLUST ChildCost rises with ShareFactor ({} -> {}) {}",
        fnum(clu(0).1),
        fnum(clu(last).1),
        if child_trend { "[OK]" } else { "[MISMATCH]" }
    );
    let bfs_child_trend = bfs(0).1 > bfs(last).1;
    println!(
        "BFS ChildCost falls with ShareFactor ({} -> {}) {}",
        fnum(bfs(0).1),
        fnum(bfs(last).1),
        if bfs_child_trend {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );
    let crossover = share_factors.iter().enumerate().find(|(i, _)| {
        let c = clu(*i);
        let b = bfs(*i);
        b.0 + b.1 < c.0 + c.1
    });
    match crossover {
        Some((_, sf)) => {
            println!("BFS beats DFSCLUST from ShareFactor {sf} (paper: crossover at ~4.7) [OK]")
        }
        None => println!("no crossover in 1..=10 (paper: crossover at ~4.7) [MISMATCH]"),
    }
}
