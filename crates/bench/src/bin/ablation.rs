//! Ablations of the design choices DESIGN.md calls out (not in the paper):
//!
//! 1. **Cache eviction policy** — the paper never specifies what happens
//!    when `SizeCache` is exceeded; we default to LRU. This compares LRU
//!    with random eviction under capacity pressure.
//! 2. **BFS join choice** — the paper's optimizer picks merge join or
//!    iterative substitution by cost; this runs both forced variants
//!    against the cost-based choice across NumTop to show the auto plan
//!    tracks the better one.
//!
//! ```text
//! cargo run -p cor-bench --release --bin ablation [--scale F]
//! ```

use complexobj::{CacheConfig, EvictionPolicy, ExecOptions, JoinChoice, Strategy};
use cor_bench::{num_top_sweep, BenchConfig};
use cor_workload::{
    default_threads, fnum, format_table, generate, generate_sequence, parallel_map, Engine, Params,
};

fn main() {
    let cfg = BenchConfig::from_args();
    let base = cfg.base_params();

    cache_policy_ablation(&cfg, &base);
    join_choice_ablation(&cfg, &base);
    buffer_policy_ablation(&cfg, &base);
}

/// Ablation 3 — buffer replacement policy. The paper never names INGRES's
/// policy; the claim to defend is that the *strategy ordering* (who wins)
/// does not hinge on our choice of LRU.
fn buffer_policy_ablation(cfg: &BenchConfig, base: &Params) {
    use cor_pagestore::ReplacementPolicy;

    println!(
        "\nAblation 3 — buffer replacement policy (scale {})\n",
        cfg.scale
    );
    let p = Params {
        num_top: (base.parent_card / 50).max(1),
        pr_update: 0.0,
        ..base.clone()
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);

    let mut rows = Vec::new();
    let mut winners = Vec::new();
    for (name, policy) in [
        ("LRU", ReplacementPolicy::Lru),
        ("FIFO", ReplacementPolicy::Fifo),
        ("Clock", ReplacementPolicy::Clock),
    ] {
        let mut costs = Vec::new();
        for strategy in [Strategy::Dfs, Strategy::Bfs] {
            let engine = Engine::builder()
                .pool_pages(p.buffer_pages)
                .policy(policy)
                .build(&generated.spec)
                .expect("engine builds");
            let r = engine.run_sequence(strategy, &sequence).expect("run");
            costs.push(r.avg_retrieve_io());
        }
        winners.push(if costs[0] < costs[1] { "DFS" } else { "BFS" });
        rows.push(vec![name.to_string(), fnum(costs[0]), fnum(costs[1])]);
    }
    println!("{}", format_table(&["policy", "DFS", "BFS"], &rows));
    let stable = winners.windows(2).all(|w| w[0] == w[1]);
    println!(
        "strategy ordering is policy-independent (winner: {}) {}",
        winners[0],
        if stable { "[OK]" } else { "[MISMATCH]" }
    );
}

fn cache_policy_ablation(cfg: &BenchConfig, base: &Params) {
    println!(
        "Ablation 1 — cache eviction policy under capacity pressure (scale {})\n",
        cfg.scale
    );
    // Cache sized to ~10% of the units touched, forcing constant eviction.
    let p = Params {
        num_top: (base.parent_card / 20).max(1),
        pr_update: 0.1,
        size_cache: (base.size_cache / 10).max(4),
        ..base.clone()
    };
    let generated = generate(&p);
    let sequence = generate_sequence(&p);

    let mut rows = Vec::new();
    for (name, policy) in [
        ("LRU", EvictionPolicy::Lru),
        ("Random", EvictionPolicy::Random),
    ] {
        let engine = Engine::builder()
            .pool_pages(p.buffer_pages)
            .shards(p.shards)
            .cache(CacheConfig {
                capacity: p.size_cache,
                policy,
                ..CacheConfig::default()
            })
            .build(&generated.spec)
            .expect("engine builds");
        let r = engine
            .run_sequence(Strategy::DfsCache, &sequence)
            .expect("run");
        let c = r.cache.expect("cache counters");
        let hit_rate = c.hits as f64 / (c.hits + c.misses).max(1) as f64;
        rows.push(vec![
            name.to_string(),
            fnum(r.avg_io_per_query()),
            format!("{:.1}%", 100.0 * hit_rate),
            c.evictions.to_string(),
            c.invalidations.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "policy",
                "avg I/O",
                "hit rate",
                "evictions",
                "invalidations"
            ],
            &rows
        )
    );
}

fn join_choice_ablation(cfg: &BenchConfig, base: &Params) {
    println!(
        "Ablation 2 — BFS join choice across NumTop (scale {})\n",
        cfg.scale
    );
    let sweep = num_top_sweep(base.parent_card);
    let choices = [
        ("auto", JoinChoice::Auto),
        ("merge", JoinChoice::ForceMerge),
        ("iterative", JoinChoice::ForceIterative),
    ];
    let mut points = Vec::new();
    for &n in &sweep {
        for &(_, c) in &choices {
            points.push((n, c));
        }
    }
    let base = base.clone();
    let costs = parallel_map(points, default_threads(), |&(n, c)| {
        let p = Params {
            num_top: n,
            pr_update: 0.0,
            ..base.clone()
        };
        let generated = generate(&p);
        let engine = Engine::builder()
            .build_workload(&p, &generated, Strategy::Bfs)
            .expect("engine builds")
            .with_options(ExecOptions {
                join: c,
                ..ExecOptions::default()
            });
        let sequence = generate_sequence(&p);
        engine
            .run_sequence(Strategy::Bfs, &sequence)
            .expect("run")
            .avg_retrieve_io()
    });

    let mut rows = Vec::new();
    let mut auto_ok = true;
    for (i, &n) in sweep.iter().enumerate() {
        let auto = costs[i * 3];
        let merge = costs[i * 3 + 1];
        let iterative = costs[i * 3 + 2];
        if auto > merge.min(iterative) * 1.25 {
            auto_ok = false;
        }
        rows.push(vec![
            n.to_string(),
            fnum(auto),
            fnum(merge),
            fnum(iterative),
        ]);
    }
    println!(
        "{}",
        format_table(&["NumTop", "auto", "force-merge", "force-iterative"], &rows)
    );
    println!(
        "cost-based choice tracks the better plan at every NumTop {}",
        if auto_ok { "[OK]" } else { "[MISMATCH]" }
    );
}
