//! The representation-matrix comparison — the "future study" the paper
//! defers in Sec. 2.4 ("compare points across the columns"), built on the
//! same workload machinery as the in-column figures.
//!
//! Nine systems (OID with BFS/DFSCACHE; procedural with every meaningful
//! cached representation, indexable and scan-bound; value-based) run the
//! identical query/update sequences while Pr(UPDATE) sweeps.
//!
//! Expected shape:
//! * value-based wins retrieve-only workloads (objects carry everything)
//!   and collapses under update-heavy sharing (replica maintenance);
//! * uncached procedural with non-indexable queries is the worst
//!   retriever (a relation scan per object), and caching rescues it;
//! * OID sits between, with its caching point tracking Fig. 4.
//!
//! ```text
//! cargo run -p cor-bench --release --bin matrix [--scale F]
//! ```

use cor_bench::BenchConfig;
use cor_workload::{
    default_threads, fnum, format_table, generate_matrix, parallel_map, run_matrix_point,
    MatrixSystem, Params,
};

fn main() {
    let cfg = BenchConfig::from_args();
    let mut base = cfg.base_params();
    base.num_top = ((50.0 * cfg.scale).round() as u64).clamp(1, base.parent_card);
    let pr_updates = [0.0, 0.2, 0.5, 0.8];

    println!(
        "Representation matrix — avg I/O per query, NumTop={}, UseFactor={} (scale {})\n",
        base.num_top, base.use_factor, cfg.scale
    );

    let mut points = Vec::new();
    for &pu in &pr_updates {
        for system in MatrixSystem::ALL {
            points.push((pu, system));
        }
    }
    let results = parallel_map(points, default_threads(), |&(pu, system)| {
        let p = Params {
            pr_update: pu,
            ..base.clone()
        };
        let spec = generate_matrix(&p);
        run_matrix_point(&p, &spec, system).expect("system runs")
    });

    let headers: Vec<String> = std::iter::once("system".to_string())
        .chain(pr_updates.iter().map(|p| format!("Pr(UPD)={p}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut rows = Vec::new();
    for (j, system) in MatrixSystem::ALL.iter().enumerate() {
        let mut row = vec![system.name().to_string()];
        for (i, _) in pr_updates.iter().enumerate() {
            row.push(fnum(
                results[i * MatrixSystem::ALL.len() + j].avg_io_per_query(),
            ));
        }
        rows.push(row);
    }
    println!("{}", format_table(&header_refs, &rows));
    cfg.maybe_write_csv(&header_refs, &rows);

    let at = |i_pu: usize, system: MatrixSystem| {
        let j = MatrixSystem::ALL.iter().position(|s| *s == system).unwrap();
        &results[i_pu * MatrixSystem::ALL.len() + j]
    };

    // Headline checks.
    let value0 = at(0, MatrixSystem::ValueBased).avg_io_per_query();
    let others0_min = MatrixSystem::ALL
        .iter()
        .filter(|s| **s != MatrixSystem::ValueBased)
        .map(|s| at(0, *s).avg_io_per_query())
        .fold(f64::INFINITY, f64::min);
    println!(
        "retrieve-only: VALUE {} vs best other {} (inlining wins reads) {}",
        fnum(value0),
        fnum(others0_min),
        if value0 <= others0_min {
            "[OK]"
        } else {
            "[note]"
        }
    );

    let hi = pr_updates.len() - 1;
    let value_upd = at(hi, MatrixSystem::ValueBased).avg_update_io();
    let oid_upd = at(hi, MatrixSystem::OidBfs).avg_update_io();
    println!(
        "update-heavy: VALUE update cost {} vs OID {} (replica maintenance x UseFactor) {}",
        fnum(value_upd),
        fnum(oid_upd),
        if value_upd > oid_upd {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );

    let scan_exec = at(0, MatrixSystem::ProcExecuteScan).avg_retrieve_io();
    let scan_cached = at(0, MatrixSystem::ProcScanOutsideValues).avg_retrieve_io();
    println!(
        "non-indexable procedural: exec {} vs cached {} (caching rescues scans) {}",
        fnum(scan_exec),
        fnum(scan_cached),
        if scan_cached < scan_exec {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );

    let inside = at(1, MatrixSystem::ProcInsideValues).avg_io_per_query();
    let outside = at(1, MatrixSystem::ProcOutsideValues).avg_io_per_query();
    println!(
        "sharing + updates: inside caching {} vs outside {} ([JHIN88]: outside wins) {}",
        fnum(inside),
        fnum(outside),
        if outside <= inside { "[OK]" } else { "[note]" }
    );
}
