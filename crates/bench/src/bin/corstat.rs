//! `corstat` — the observability roll-up: run every strategy over one
//! mixed workload with the full metrics layer enabled and report
//! per-strategy mean I/O, latency quantiles, pool hit ratios per shard,
//! and cache effectiveness, as a table and (optionally) JSON.
//!
//! ```text
//! cargo run -p cor-bench --release --bin corstat [--scale F | --full]
//!     [--json FILE]   also write the report as JSON
//!     [--smoke]       tiny database, validate every report, exit 1 on
//!                     any missing or non-finite metric (the CI gate)
//!     [--heat]        skew-detection leg: drive the same database with a
//!                     uniform and a Zipf stream and show the heat map
//!                     separating them (with --smoke: gate on separation)
//!     [--trace]       causal-trace leg: sample retrieves through the
//!                     trace-tree collector, gate every tree against the
//!                     PhaseProfile ledger, and export the deepest one as
//!                     Chrome trace-event JSON (with --json FILE: write it
//!                     there; load the file at ui.perfetto.dev)
//!     [--watch]       live mode: concurrent streams with a sliding-window
//!                     rate / p50 / p99 line per tick
//! ```
//!
//! Unlike the figure binaries this one measures the *measuring*: it is
//! the end-to-end exercise of `Engine::metrics()` and the exporters, and
//! the numbers double as a health check that instrumentation never
//! perturbs the paper's I/O accounting (see `docs/observability.md`).

use std::time::Duration;

use complexobj::{CacheCounters, ExecOptions, Query, Strategy};
use cor_bench::BenchConfig;
use cor_obs::{heat, MetricValue, SlidingWindow};
use cor_pagestore::ShardTelemetrySnapshot;
use cor_workload::{
    build_for_strategy, fnum, format_table, generate, generate_sequence, generate_stream_sequences,
    generate_zipf_sequence, run_concurrent_streams_observed, run_sequence, Engine, LiveTick,
    MetricsReport, Params, ENGINE_CATALOG_VERSION,
};

/// Everything the table and the JSON need for one strategy.
struct StrategyStat {
    strategy: Strategy,
    retrieves: u64,
    updates: u64,
    mean_retrieve_io: f64,
    latency_p50_ns: u64,
    latency_p99_ns: u64,
    latency_max_ns: u64,
    pool: Vec<ShardTelemetrySnapshot>,
    pool_total: ShardTelemetrySnapshot,
    cache: Option<CacheCounters>,
}

/// The counter sample of `name` whose labels contain every `(k, v)` pair.
fn counter(report: &MetricsReport, name: &str, want: &[(&str, &str)]) -> u64 {
    sample(report, name, want)
        .and_then(|v| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
        .unwrap_or(0)
}

fn sample<'a>(
    report: &'a MetricsReport,
    name: &str,
    want: &[(&str, &str)],
) -> Option<&'a MetricValue> {
    report
        .snapshot
        .family(name)?
        .samples
        .iter()
        .find(|s| {
            want.iter()
                .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|s| &s.value)
}

fn run_strategy(
    params: &Params,
    generated: &cor_workload::GeneratedDb,
    strategy: Strategy,
) -> (StrategyStat, MetricsReport) {
    let engine = Engine::builder()
        .metrics(true)
        .build_workload(params, generated, strategy)
        .expect("engine builds");
    engine.pool().flush_and_clear().expect("cold start");
    let sequence = generate_sequence(params);
    for q in &sequence {
        match q {
            Query::Retrieve(r) => {
                engine.retrieve(strategy, r).expect("retrieve runs");
            }
            Query::Update(u) => {
                engine.update(u).expect("update runs");
            }
        }
    }
    let report = engine.metrics().expect("observed engine reports");
    let lbls = [("strategy", strategy.name()), ("op", "retrieve")];
    let retrieves = counter(&report, "cor_query_total", &lbls);
    let io = counter(&report, "cor_query_reads_total", &lbls)
        + counter(&report, "cor_query_writes_total", &lbls);
    let lat = sample(&report, "cor_query_latency_ns", &lbls);
    let (p50, p99, max) = match lat {
        Some(MetricValue::Histogram(h)) => (h.quantile(0.5), h.quantile(0.99), h.max()),
        _ => (0, 0, 0),
    };
    let stat = StrategyStat {
        strategy,
        retrieves,
        updates: counter(&report, "cor_query_total", &[("op", "update")]),
        mean_retrieve_io: if retrieves > 0 {
            io as f64 / retrieves as f64
        } else {
            0.0
        },
        latency_p50_ns: p50,
        latency_p99_ns: p99,
        latency_max_ns: max,
        pool: report.pool.clone(),
        pool_total: report.pool_total(),
        cache: report.cache,
    };
    (stat, report)
}

fn us(ns: u64) -> String {
    fnum(ns as f64 / 1000.0)
}

fn pct(ratio: f64) -> String {
    format!("{:.1}", ratio * 100.0)
}

fn json_cache(c: &Option<CacheCounters>) -> String {
    match c {
        None => "null".into(),
        Some(c) => format!(
            "{{\"hits\":{},\"misses\":{},\"insertions\":{},\"invalidations\":{},\
             \"evictions\":{},\"hit_ratio\":{:.6}}}",
            c.hits,
            c.misses,
            c.insertions,
            c.invalidations,
            c.evictions,
            c.hit_ratio()
        ),
    }
}

fn json_shard(s: &ShardTelemetrySnapshot) -> String {
    format!(
        "{{\"shard\":{},\"hits\":{},\"misses\":{},\"evictions\":{},\"writebacks\":{},\
         \"pin_waits\":{},\"hit_ratio\":{:.6}}}",
        s.shard,
        s.hits,
        s.misses,
        s.evictions,
        s.writebacks,
        s.pin_waits,
        s.hit_ratio()
    )
}

fn json_report(scale: f64, params: &Params, stats: &[StrategyStat]) -> String {
    let strategies: Vec<String> = stats
        .iter()
        .map(|s| {
            let shards: Vec<String> = s.pool.iter().map(json_shard).collect();
            format!(
                "{{\"strategy\":\"{}\",\"retrieves\":{},\"updates\":{},\
                 \"mean_retrieve_io\":{:.6},\
                 \"latency_ns\":{{\"p50\":{},\"p99\":{},\"max\":{}}},\
                 \"pool\":{{\"hit_ratio\":{:.6},\"total\":{},\"shards\":[{}]}},\
                 \"cache\":{}}}",
                s.strategy.name(),
                s.retrieves,
                s.updates,
                s.mean_retrieve_io,
                s.latency_p50_ns,
                s.latency_p99_ns,
                s.latency_max_ns,
                s.pool_total.hit_ratio(),
                json_shard(&s.pool_total),
                shards.join(","),
                json_cache(&s.cache)
            )
        })
        .collect();
    format!(
        "{{\"schema_version\":1,\"catalog_version\":{ENGINE_CATALOG_VERSION},\"scale\":{scale},\
         \"params\":{{\"parent_card\":{},\"size_unit\":{},\"use_factor\":{},\
         \"overlap_factor\":{},\"num_top\":{},\"size_cache\":{},\"buffer_pages\":{},\
         \"sequence_len\":{},\"shards\":{},\"pr_update\":{},\"seed\":{},\
         \"policy\":\"{}\"}},\
         \"parent_card\":{},\"sequence_len\":{},\"shards\":{},\
         \"pr_update\":{},\"strategies\":[{}]}}\n",
        params.parent_card,
        params.size_unit,
        params.use_factor,
        params.overlap_factor,
        params.num_top,
        params.size_cache,
        params.buffer_pages,
        params.sequence_len,
        params.shards,
        params.pr_update,
        params.seed,
        cor_pagestore::ReplacementPolicy::default().name(),
        params.parent_card,
        params.sequence_len,
        params.shards,
        params.pr_update,
        strategies.join(",")
    )
}

/// Smoke gate: a metric that is missing, zero-where-it-cannot-be, or
/// non-finite fails the run.
fn smoke_check(stat: &StrategyStat, report: &MetricsReport) -> Result<(), String> {
    let s = stat.strategy;
    report.validate().map_err(|e| format!("{s}: {e}"))?;
    if stat.retrieves == 0 {
        return Err(format!("{s}: no retrieves recorded"));
    }
    if !stat.mean_retrieve_io.is_finite() || stat.mean_retrieve_io <= 0.0 {
        return Err(format!(
            "{s}: mean retrieve I/O {} not positive-finite",
            stat.mean_retrieve_io
        ));
    }
    if stat.latency_p50_ns == 0 || stat.latency_p50_ns > stat.latency_max_ns {
        return Err(format!("{s}: implausible latency quantiles"));
    }
    if stat.pool.is_empty() || stat.pool_total.probes() == 0 {
        return Err(format!("{s}: pool telemetry empty"));
    }
    if !stat.pool_total.hit_ratio().is_finite() {
        return Err(format!("{s}: pool hit ratio not finite"));
    }
    if s.needs_cache() && stat.cache.is_none() {
        return Err(format!("{s}: cache counters missing"));
    }
    Ok(())
}

/// The `--heat` leg: drive one database with a uniform and a Zipf-skewed
/// query stream and show the heat map telling them apart. With `smoke`,
/// gate on the separation (the CI check that the heat layer actually
/// detects skew, not just counts).
fn run_heat_leg(base: &Params, smoke: bool) -> i32 {
    const THETA: f64 = 1.2;
    const TOP_K: usize = 5;
    // num_top = 1 keys the Parent heat class directly on the generator's
    // rank distribution: each retrieve touches exactly parent `lo`, and
    // the Zipf generator's hot set is {0, 1, 2, ..} by construction.
    let params = Params {
        num_top: 1,
        pr_update: 0.0,
        sequence_len: base.sequence_len.max(400),
        ..base.clone()
    };
    println!(
        "corstat --heat — skew detection via the heat map{}\n\
         |ParentRel| = {}, {} queries per driver, Zipf theta = {THETA}, \
         decay half-life {:.0} tick(s)\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.sequence_len,
        heat::half_life_ticks(heat::DEFAULT_ALPHA_Q16),
    );

    let generated = generate(&params);
    let db = build_for_strategy(&params, &generated, Strategy::Dfs).expect("db builds");
    heat::enable(true);

    heat::global().reset();
    let uniform = generate_sequence(&params);
    run_sequence(&db, Strategy::Dfs, &uniform, &ExecOptions::default()).expect("uniform run");
    let uniform_report = heat::global().report();

    heat::global().reset();
    let skewed = generate_zipf_sequence(&params, THETA);
    run_sequence(&db, Strategy::Dfs, &skewed, &ExecOptions::default()).expect("zipf run");
    let zipf_report = heat::global().report();
    heat::enable(false);

    let mut rows = Vec::new();
    for (driver, report) in [("uniform", &uniform_report), ("zipf", &zipf_report)] {
        for (rank, e) in report
            .top_k(heat::HeatClass::Parent, TOP_K)
            .iter()
            .enumerate()
        {
            rows.push(vec![
                driver.to_string(),
                rank.to_string(),
                e.id.to_string(),
                e.count.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        format_table(&["Driver", "Rank", "Parent", "Heat"], &rows)
    );

    let u_share = uniform_report.top_share(heat::HeatClass::Parent, TOP_K);
    let z_share = zipf_report.top_share(heat::HeatClass::Parent, TOP_K);
    println!(
        "top-{TOP_K} parent heat share: uniform {}%, zipf {}%",
        pct(u_share),
        pct(z_share)
    );
    println!("other classes tracked under the zipf driver:");
    for class in heat::HeatClass::ALL {
        println!(
            "  {:<14} {:>10} heat across {} key(s)",
            class.name(),
            zipf_report.total(class),
            zipf_report.top_k(class, usize::MAX).len()
        );
    }

    if smoke {
        let mut failures: Vec<String> = Vec::new();
        if zipf_report.touches == 0 {
            failures.push("zipf run recorded no heat touches".into());
        }
        if z_share <= 0.4 {
            failures.push(format!("zipf top-{TOP_K} share {z_share:.3} not skewed"));
        }
        if z_share <= 2.0 * u_share {
            failures.push(format!(
                "no separation: zipf share {z_share:.3} vs uniform {u_share:.3}"
            ));
        }
        let top = zipf_report.top_k(heat::HeatClass::Parent, TOP_K);
        if top.len() < TOP_K {
            failures.push(format!("only {} hot parents tracked", top.len()));
        }
        for e in &top {
            if e.id >= 10 {
                failures.push(format!("hot parent {} outside the generator hot set", e.id));
            }
        }
        if !failures.is_empty() {
            for f in &failures {
                eprintln!("corstat heat smoke FAIL: {f}");
            }
            return 1;
        }
        println!("corstat heat smoke: OK (zipf/uniform separation verified)");
    }
    0
}

/// The `--trace` leg: run every strategy over the retrieve-only
/// workload, sample one retrieve in four through
/// [`Engine::trace_query`], and check each causal tree against the
/// authoritative [`PhaseProfile`](cor_obs::PhaseProfile) ledger: the
/// tree must be well-formed (rooted, parents before children, child
/// intervals inside their parents') and its per-phase read/write sums
/// must equal the profile deltas for that query *exactly* — both are
/// fed by the same `IoStats` calls, so any drift is a collector bug.
/// The deepest tree is exported as Chrome trace-event JSON.
fn run_trace_leg(base: &Params, smoke: bool, json_path: Option<&std::path::Path>) -> i32 {
    use cor_obs::{Phase, TraceTree};

    const SAMPLE_EVERY: usize = 4;
    let params = Params {
        pr_update: 0.0,
        ..base.clone()
    };
    println!(
        "corstat --trace — causal trace trees over sampled retrieves{}\n\
         |ParentRel| = {}, {} queries per strategy, 1 in {SAMPLE_EVERY} traced\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.sequence_len,
    );

    let generated = generate(&params);
    let mut failures: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut best: Option<TraceTree> = None;
    for strategy in Strategy::ALL {
        let engine = Engine::builder()
            .build_workload(&params, &generated, strategy)
            .expect("engine builds");
        let stats = engine.pool().stats().clone();
        let profile = stats.enable_profile();
        engine.pool().flush_and_clear().expect("cold start");
        let sequence = generate_sequence(&params);
        let mut traced = 0usize;
        for (i, q) in sequence.iter().enumerate() {
            let Query::Retrieve(r) = q else { continue };
            if i % SAMPLE_EVERY != 0 {
                engine.retrieve(strategy, r).expect("retrieve runs");
                continue;
            }
            let before = profile.snapshot();
            let (_, tree) = engine.trace_query(strategy, r).expect("traced retrieve");
            let delta = profile.snapshot().since(&before);
            let Some(tree) = tree else {
                failures.push(format!("{strategy}: sampled retrieve produced no trace"));
                continue;
            };
            traced += 1;
            if let Err(e) = tree.validate() {
                failures.push(format!("{strategy}: malformed trace tree: {e}"));
            }
            let (reads, writes) = (tree.reads_by_phase(), tree.writes_by_phase());
            for phase in Phase::ALL {
                let (tr, tw) = (reads[phase.index()], writes[phase.index()]);
                if tr != delta.reads_of(phase) || tw != delta.writes_of(phase) {
                    failures.push(format!(
                        "{strategy}: {} tree sums {tr}r/{tw}w != profile {}r/{}w",
                        phase.name(),
                        delta.reads_of(phase),
                        delta.writes_of(phase)
                    ));
                }
            }
            if smoke && tree.dropped > 0 {
                failures.push(format!(
                    "{strategy}: trace dropped {} node(s)",
                    tree.dropped
                ));
            }
            rows.push(vec![
                strategy.name().to_string(),
                tree.id.to_string(),
                tree.nodes.len().to_string(),
                tree.total_reads().to_string(),
                tree.total_writes().to_string(),
                us(tree.total_ns),
            ]);
            if best
                .as_ref()
                .is_none_or(|b| tree.nodes.len() > b.nodes.len())
            {
                best = Some(tree);
            }
        }
        if traced == 0 {
            failures.push(format!("{strategy}: no retrieves sampled"));
        }
    }

    println!(
        "{}",
        format_table(
            &["Strategy", "Trace", "Nodes", "Reads", "Writes", "Wall us"],
            &rows,
        )
    );

    if let Some(tree) = &best {
        let path = json_path
            .map(std::path::Path::to_path_buf)
            .unwrap_or_else(|| "corstat_trace.json".into());
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            let _ = std::fs::create_dir_all(dir);
        }
        match std::fs::write(&path, tree.to_chrome_json()) {
            Ok(()) => eprintln!(
                "wrote {} ({} nodes; load at ui.perfetto.dev)",
                path.display(),
                tree.nodes.len()
            ),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                return 1;
            }
        }
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!(
                "corstat trace{} FAIL: {f}",
                if smoke { " smoke" } else { "" }
            );
        }
        return 1;
    }
    if smoke {
        println!(
            "corstat trace smoke: OK ({} trees gated against the phase ledger)",
            rows.len()
        );
    }
    0
}

/// The `--watch` leg: concurrent streams with a live sliding-window view
/// (rate and latency quantiles over the last window, not since start).
fn run_watch_leg(base: &Params, smoke: bool) -> i32 {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let streams = 4;
    let (interval, span, params) = if smoke {
        (
            Duration::from_millis(1),
            Duration::from_millis(50),
            Params {
                sequence_len: base.sequence_len.max(400),
                ..base.clone()
            },
        )
    } else {
        (
            Duration::from_millis(250),
            Duration::from_secs(2),
            base.clone(),
        )
    };
    println!(
        "corstat --watch — live windowed view{}\n\
         {} streams x {} queries, tick every {:?}, window {:?}\n",
        if smoke { " (smoke)" } else { "" },
        streams,
        params.sequence_len,
        interval,
        span,
    );

    let generated = generate(&params);
    let db = build_for_strategy(&params, &generated, Strategy::Dfs).expect("db builds");
    let sequences = generate_stream_sequences(&params, streams);
    let window = Mutex::new(SlidingWindow::new(span));
    let views = AtomicU64::new(0);
    let callback = |tick: LiveTick| {
        let mut w = window.lock().expect("watch window");
        w.push(tick.latency_hist.clone());
        if let Some(view) = w.view() {
            views.fetch_add(1, Ordering::Relaxed);
            println!(
                "[watch {:7.3}s] {:>6} queries | last {:.3}s: {} q/s, \
                 p50 {} us, p99 {} us",
                tick.elapsed.as_secs_f64(),
                tick.queries_done,
                view.span.as_secs_f64(),
                fnum(view.rate_per_sec),
                us(view.delta.quantile(0.5)),
                us(view.delta.quantile(0.99)),
            );
        }
    };
    let result = run_concurrent_streams_observed(
        &db,
        Strategy::Dfs,
        &sequences,
        &ExecOptions::default(),
        Some((interval, &callback)),
    )
    .expect("watched run");
    println!(
        "\ndone: {} queries in {:?} ({} q/s overall, p50 {} us, p99 {} us)",
        result.queries,
        result.elapsed,
        fnum(result.queries_per_sec()),
        us(result.latency.p50.as_nanos() as u64),
        us(result.latency.p99.as_nanos() as u64),
    );

    if smoke && views.load(Ordering::Relaxed) == 0 {
        eprintln!("corstat watch smoke FAIL: no window view materialized");
        return 1;
    }
    if smoke {
        println!(
            "corstat watch smoke: OK ({} windowed ticks)",
            views.load(Ordering::Relaxed)
        );
    }
    0
}

fn main() {
    let cfg = BenchConfig::from_args();
    let smoke = cfg.has_flag("--smoke");
    let json_path: Option<std::path::PathBuf> =
        cfg.rest
            .iter()
            .position(|a| a == "--json")
            .map(|i| match cfg.rest.get(i + 1) {
                Some(p) if !p.starts_with("--") => p.into(),
                _ => {
                    eprintln!("error: --json needs a path");
                    std::process::exit(2);
                }
            });
    let unknown: Vec<&String> = cfg
        .rest
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            a.as_str() != "--smoke"
                && a.as_str() != "--json"
                && a.as_str() != "--heat"
                && a.as_str() != "--trace"
                && a.as_str() != "--watch"
                && !(*i > 0 && cfg.rest[i - 1] == "--json")
        })
        .map(|(_, a)| a)
        .collect();
    if !unknown.is_empty() {
        eprintln!("error: unknown flags {unknown:?}");
        std::process::exit(2);
    }

    let params = if smoke {
        Params {
            parent_card: 200,
            num_top: 10,
            sequence_len: 40,
            size_cache: 20,
            buffer_pages: 16,
            shards: 2,
            pr_update: 0.2,
            ..Params::paper_default()
        }
    } else {
        Params {
            shards: 4,
            pr_update: 0.1,
            ..cfg.base_params()
        }
    };

    if cfg.has_flag("--heat") {
        std::process::exit(run_heat_leg(&params, smoke));
    }
    if cfg.has_flag("--trace") {
        std::process::exit(run_trace_leg(&params, smoke, json_path.as_deref()));
    }
    if cfg.has_flag("--watch") {
        std::process::exit(run_watch_leg(&params, smoke));
    }

    println!(
        "corstat — per-strategy observability roll-up{}\n\
         |ParentRel| = {}, buffer = {} pages x {} shards, {} queries, Pr(UPDATE) = {}\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.buffer_pages,
        params.shards,
        params.sequence_len,
        params.pr_update
    );

    let generated = generate(&params);
    let mut stats = Vec::new();
    let mut failures = Vec::new();
    for strategy in Strategy::ALL {
        let (stat, report) = run_strategy(&params, &generated, strategy);
        if smoke {
            if let Err(e) = smoke_check(&stat, &report) {
                failures.push(e);
            }
        }
        stats.push(stat);
    }

    let rows: Vec<Vec<String>> = stats
        .iter()
        .map(|s| {
            vec![
                s.strategy.name().to_string(),
                s.retrieves.to_string(),
                s.updates.to_string(),
                fnum(s.mean_retrieve_io),
                us(s.latency_p50_ns),
                us(s.latency_p99_ns),
                us(s.latency_max_ns),
                pct(s.pool_total.hit_ratio()),
                s.cache
                    .map_or_else(|| "-".to_string(), |c| pct(c.hit_ratio())),
            ]
        })
        .collect();
    println!(
        "{}",
        format_table(
            &[
                "Strategy",
                "Retr",
                "Upd",
                "IO/retr",
                "p50 us",
                "p99 us",
                "max us",
                "pool hit%",
                "cache hit%",
            ],
            &rows,
        )
    );
    cfg.maybe_write_csv(
        &[
            "Strategy",
            "Retr",
            "Upd",
            "IO_per_retrieve",
            "p50_us",
            "p99_us",
            "max_us",
            "pool_hit_pct",
            "cache_hit_pct",
        ],
        &rows,
    );

    println!("per-shard pool telemetry (hits/misses/evictions/writebacks per stripe):");
    let shard_rows: Vec<Vec<String>> = stats
        .iter()
        .flat_map(|s| {
            s.pool.iter().map(|t| {
                vec![
                    s.strategy.name().to_string(),
                    t.shard.to_string(),
                    t.hits.to_string(),
                    t.misses.to_string(),
                    t.evictions.to_string(),
                    t.writebacks.to_string(),
                    pct(t.hit_ratio()),
                ]
            })
        })
        .collect();
    println!(
        "{}",
        format_table(
            &["Strategy", "Shard", "Hits", "Misses", "Evict", "WriteBk", "Hit%"],
            &shard_rows,
        )
    );

    if let Some(path) = &json_path {
        match std::fs::write(path, json_report(cfg.scale, &params, &stats)) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => {
                eprintln!("failed to write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    if smoke {
        if failures.is_empty() {
            println!("corstat smoke: OK ({} strategies validated)", stats.len());
        } else {
            for f in &failures {
                eprintln!("corstat smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
