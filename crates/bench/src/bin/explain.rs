//! `explain` — the per-query I/O profiler: run every strategy with phase
//! attribution on, print the per-phase breakdown beside the analytical
//! cost model's prediction, and capture the run as JSONL for
//! deterministic replay.
//!
//! ```text
//! cargo run -p cor-bench --release --bin explain [--scale F | --full]
//!     [--jsonl FILE]  trace path (default results/explain/explain.jsonl)
//!     [--replay FILE] re-run the captured configuration and verify the
//!                     deterministic fields (strategy, per-phase reads
//!                     and writes, totals) match exactly; exit 1 on drift
//!     [--smoke]       tiny database; assert every named phase shows up,
//!                     per-phase I/O sums to totals, and the prediction's
//!                     relative error is finite and loosely bounded (CI)
//! ```
//!
//! The capture file starts with one meta line holding the workload knobs
//! (`scale`, `seq`, `seed`), so `--replay` needs nothing but the file.

use complexobj::{ExecOptions, Strategy};
use cor_bench::BenchConfig;
use cor_obs::Phase;
use cor_workload::{
    generate, generate_sequence, Engine, ExplainReport, Params, ENGINE_CATALOG_VERSION,
};

/// Smoke bound on |relative error| of predicted vs measured average I/O.
/// Deliberately loose: the gate catches a broken model (sign flips,
/// order-of-magnitude drift), not calibration noise at tiny scale.
const SMOKE_REL_ERR_BOUND: f64 = 2.0;

fn params_for(cfg: &BenchConfig, smoke: bool) -> Params {
    if smoke {
        Params {
            parent_card: 400,
            num_top: 20,
            sequence_len: 40,
            size_cache: 40,
            buffer_pages: 32,
            pr_update: 0.0,
            ..Params::paper_default()
        }
    } else {
        Params {
            pr_update: 0.0, // the figures' setting: pure retrieves
            ..cfg.base_params()
        }
    }
}

fn exec_options(smoke: bool) -> ExecOptions {
    if smoke {
        // One page of sort memory forces the external sort to spill even
        // on the tiny smoke database, so the `sort` phase does real I/O.
        ExecOptions {
            sort_work_mem: cor_pagestore::PAGE_SIZE,
            ..ExecOptions::default()
        }
    } else {
        ExecOptions::default()
    }
}

fn run_all(params: &Params, opts: &ExecOptions) -> Vec<ExplainReport> {
    let generated = generate(params);
    let sequence = generate_sequence(params);
    Strategy::ALL
        .into_iter()
        .map(|strategy| {
            let engine = Engine::builder()
                .build_workload(params, &generated, strategy)
                .expect("engine builds")
                .with_options(*opts);
            engine
                .explain(strategy, &sequence, Some(params))
                .expect("explain runs")
        })
        .collect()
}

fn meta_line(params: &Params, opts: &ExecOptions, scale: f64) -> String {
    format!(
        "{{\"schema_version\":1,\"catalog_version\":{ENGINE_CATALOG_VERSION},\
         \"meta\":true,\"scale\":{scale},\"parent_card\":{},\
         \"num_top\":{},\"sequence_len\":{},\"size_cache\":{},\"buffer_pages\":{},\
         \"pr_update\":{},\"seed\":{},\"sort_work_mem\":{}}}",
        params.parent_card,
        params.num_top,
        params.sequence_len,
        params.size_cache,
        params.buffer_pages,
        params.pr_update,
        params.seed,
        opts.sort_work_mem
    )
}

fn capture(
    path: &std::path::Path,
    params: &Params,
    opts: &ExecOptions,
    scale: f64,
    reports: &[ExplainReport],
) {
    if let Some(dir) = path.parent() {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("failed to create {}: {e}", dir.display());
            std::process::exit(1);
        }
    }
    let mut out = meta_line(params, opts, scale);
    out.push('\n');
    for r in reports {
        out.push_str(&r.to_jsonl());
        out.push('\n');
    }
    match std::fs::write(path, out) {
        Ok(()) => eprintln!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}

/// Pull `"key":value` out of the meta line (numbers only).
fn meta_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn replay(path: &std::path::Path) -> Result<usize, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut lines = text.lines();
    let meta = lines.next().ok_or("empty capture")?;
    if !meta.contains("\"meta\":true") {
        return Err("first line is not a meta line".into());
    }
    // Captures made by a build with a different on-disk engine-catalog
    // layout are not comparable; fail loudly instead of diffing noise.
    // A capture without the stamp predates the stamp and is v1.
    let captured = meta_num(meta, "catalog_version").map_or(1, |v| v as u32);
    if captured != ENGINE_CATALOG_VERSION {
        return Err(format!(
            "capture was made under engine-catalog layout v{captured}, this build \
             writes v{ENGINE_CATALOG_VERSION} — re-capture with --jsonl"
        ));
    }
    let scale = meta_num(meta, "scale").ok_or("meta line lacks scale")?;
    let mut params = Params::scaled(scale);
    let mut opts = ExecOptions::default();
    let need = |key: &str| meta_num(meta, key).ok_or_else(|| format!("meta line lacks {key}"));
    params.parent_card = need("parent_card")? as u64;
    params.num_top = need("num_top")? as u64;
    params.sequence_len = need("sequence_len")? as usize;
    params.size_cache = need("size_cache")? as usize;
    params.buffer_pages = need("buffer_pages")? as usize;
    params.pr_update = need("pr_update")?;
    params.seed = need("seed")? as u64;
    opts.sort_work_mem = need("sort_work_mem")? as usize;

    let reports = run_all(&params, &opts);
    let mut checked = 0usize;
    for (line, report) in lines.zip(&reports) {
        let (strat, reads, writes, phases) =
            ExplainReport::parse_replay_line(line).ok_or_else(|| format!("bad line: {line}"))?;
        if strat != report.strategy.to_string() {
            return Err(format!(
                "strategy order drifted: captured {strat}, replayed {}",
                report.strategy
            ));
        }
        if (reads, writes) != (report.total.reads, report.total.writes) {
            return Err(format!(
                "{strat}: totals drifted: captured {reads}r/{writes}w, \
                 replayed {}r/{}w",
                report.total.reads, report.total.writes
            ));
        }
        for (row, (r, w)) in report.phases.iter().zip(&phases) {
            if (row.reads, row.writes) != (*r, *w) {
                return Err(format!(
                    "{strat}/{}: phase I/O drifted: captured {r}r/{w}w, \
                     replayed {}r/{}w",
                    row.phase.name(),
                    row.reads,
                    row.writes
                ));
            }
        }
        checked += 1;
    }
    if checked == 0 {
        return Err("capture held no strategy lines".into());
    }
    Ok(checked)
}

fn smoke_check(reports: &[ExplainReport]) -> Vec<String> {
    let mut failures = Vec::new();
    // Union coverage: every named phase must be exercised by some
    // strategy (`other` is the catch-all and may legitimately be empty).
    for phase in Phase::ALL {
        if phase == Phase::Other {
            continue;
        }
        if !reports.iter().any(|r| r.phases[phase.index()].io() > 0) {
            failures.push(format!("phase {} never observed", phase.name()));
        }
    }
    for r in reports {
        let s = r.strategy;
        if r.phase_io_sum() != r.total.total() {
            failures.push(format!(
                "{s}: phase sum {} != total {}",
                r.phase_io_sum(),
                r.total.total()
            ));
        }
        match r.rel_error {
            None => failures.push(format!("{s}: no relative error computed")),
            Some(e) if !e.is_finite() => failures.push(format!("{s}: relative error not finite")),
            Some(e) if e.abs() > SMOKE_REL_ERR_BOUND => failures.push(format!(
                "{s}: relative error {:.1}% beyond ±{:.0}%",
                100.0 * e,
                100.0 * SMOKE_REL_ERR_BOUND
            )),
            Some(_) => {}
        }
    }
    failures
}

fn main() {
    let cfg = BenchConfig::from_args();
    let smoke = cfg.has_flag("--smoke");
    let path_after = |flag: &str| -> Option<std::path::PathBuf> {
        cfg.rest
            .iter()
            .position(|a| a == flag)
            .map(|i| match cfg.rest.get(i + 1) {
                Some(p) if !p.starts_with("--") => p.into(),
                _ => {
                    eprintln!("error: {flag} needs a path");
                    std::process::exit(2);
                }
            })
    };
    let jsonl = path_after("--jsonl")
        .unwrap_or_else(|| std::path::PathBuf::from("results/explain/explain.jsonl"));
    let replay_path = path_after("--replay");
    let known = ["--smoke", "--jsonl", "--replay"];
    let unknown: Vec<&String> = cfg
        .rest
        .iter()
        .enumerate()
        .filter(|(i, a)| {
            !known.contains(&a.as_str())
                && !(*i > 0 && (cfg.rest[*i - 1] == "--jsonl" || cfg.rest[*i - 1] == "--replay"))
        })
        .map(|(_, a)| a)
        .collect();
    if !unknown.is_empty() {
        eprintln!("error: unknown flags {unknown:?}");
        std::process::exit(2);
    }

    if let Some(path) = replay_path {
        match replay(&path) {
            Ok(n) => {
                println!(
                    "explain replay: OK ({n} strategies re-ran byte-identical to {})",
                    path.display()
                );
                return;
            }
            Err(e) => {
                eprintln!("explain replay FAIL: {e}");
                std::process::exit(1);
            }
        }
    }

    let params = params_for(&cfg, smoke);
    let opts = exec_options(smoke);
    println!(
        "explain — per-phase I/O vs the analytical cost model{}\n\
         |ParentRel| = {}, buffer = {} pages, NumTop = {}, {} retrieves\n",
        if smoke { " (smoke)" } else { "" },
        params.parent_card,
        params.buffer_pages,
        params.num_top,
        params.sequence_len
    );
    let reports = run_all(&params, &opts);
    for r in &reports {
        println!("{}", r.render());
    }

    println!("measured vs predicted average I/O per retrieve:");
    println!(
        "{:<10} {:>10} {:>10} {:>9}",
        "strategy", "measured", "predicted", "rel err"
    );
    for r in &reports {
        let p = r.predicted.expect("params were supplied");
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>+8.1}%",
            r.strategy.to_string(),
            r.avg_retrieve_io,
            p.total(),
            100.0 * r.rel_error.unwrap_or(f64::NAN)
        );
    }

    capture(&jsonl, &params, &opts, cfg.scale, &reports);

    if smoke {
        let failures = smoke_check(&reports);
        if failures.is_empty() {
            println!(
                "\nexplain smoke: OK ({} strategies, every phase observed, \
                 rel err within ±{:.0}%)",
                reports.len(),
                100.0 * SMOKE_REL_ERR_BOUND
            );
        } else {
            for f in &failures {
                eprintln!("explain smoke FAIL: {f}");
            }
            std::process::exit(1);
        }
    }
}
