//! The procedural-representation study the paper builds on (\[JHIN88\],
//! summarized in Sec. 2.3/3.2): caching works for procedural attributes,
//! and outside caching beats inside caching — "especially true when the
//! size of the cache is limited and there is some sharing of subobjects."
//!
//! Two sweeps over the procedural column:
//! 1. Pr(UPDATE) sweep at the default cache size — shows where caching
//!    stops paying (the analogue of the OID column's Fig. 4 update axis);
//! 2. cache-size sweep at fixed sharing and update rate — shows outside
//!    caching's advantage growing as the cache shrinks (shared entries
//!    make better use of scarce capacity than per-object copies).
//!
//! ```text
//! cargo run -p cor-bench --release --bin jhin88 [--scale F]
//! ```

use cor_bench::BenchConfig;
use cor_workload::{
    default_threads, fnum, format_table, generate_matrix, parallel_map, run_matrix_point,
    MatrixSystem, Params,
};

// The scan-bound (non-indexable) procedural configurations: executing the
// stored query costs a relation scan, which is where [JHIN88]'s caching
// results live. (The indexable variants execute in a page or two and have
// nothing to cache away — see the `matrix` bench.)
const SYSTEMS: [MatrixSystem; 4] = [
    MatrixSystem::ProcExecuteScan,
    MatrixSystem::ProcScanOutsideValues,
    MatrixSystem::ProcScanOutsideOids,
    MatrixSystem::ProcScanInsideValues,
];

fn main() {
    let cfg = BenchConfig::from_args();
    let mut base = cfg.base_params();
    base.num_top = ((30.0 * cfg.scale).round() as u64).clamp(1, base.parent_card);
    base.use_factor = 5; // sharing: 5 objects store each query

    println!(
        "[JHIN88] procedural caching study — NumTop={}, UseFactor={} (scale {})\n",
        base.num_top, base.use_factor, cfg.scale
    );

    // --- sweep 1: update frequency ---
    let pr_updates = [0.0, 0.1, 0.3, 0.6, 0.9];
    let mut points = Vec::new();
    for &pu in &pr_updates {
        for s in SYSTEMS {
            points.push((pu, s));
        }
    }
    let results = parallel_map(points, default_threads(), |&(pu, s)| {
        let p = Params {
            pr_update: pu,
            ..base.clone()
        };
        let spec = generate_matrix(&p);
        run_matrix_point(&p, &spec, s)
            .expect("runs")
            .avg_io_per_query()
    });

    println!("sweep 1 — avg I/O per query vs Pr(UPDATE):");
    let mut rows = Vec::new();
    for (i, &pu) in pr_updates.iter().enumerate() {
        let mut row = vec![format!("{pu:.1}")];
        for j in 0..SYSTEMS.len() {
            row.push(fnum(results[i * SYSTEMS.len() + j]));
        }
        rows.push(row);
    }
    println!(
        "{}",
        format_table(&["Pr(UPD)", "exec", "out-val", "out-oid", "in-val"], &rows)
    );

    let cached_wins_at_0 = results[1] < results[0];
    println!(
        "caching works at Pr(UPDATE)=0: out-val {} vs exec {} {}",
        fnum(results[1]),
        fnum(results[0]),
        if cached_wins_at_0 {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );
    let last = (pr_updates.len() - 1) * SYSTEMS.len();
    let exec_wins_at_09 = results[last] <= results[last + 1];
    println!(
        "caching stops paying at high Pr(UPDATE): exec {} vs out-val {} {}",
        fnum(results[last]),
        fnum(results[last + 1]),
        if exec_wins_at_09 { "[OK]" } else { "[note]" }
    );

    // --- sweep 2: cache size (outside vs inside under a limited cache) ---
    let fractions: [(u64, &str); 3] = [(100, "100%"), (25, "25%"), (10, "10%")];
    let mut points = Vec::new();
    for &(pct, _) in &fractions {
        for s in [
            MatrixSystem::ProcScanOutsideValues,
            MatrixSystem::ProcScanInsideValues,
        ] {
            points.push((pct, s));
        }
    }
    let base2 = Params {
        pr_update: 0.15,
        ..base.clone()
    };
    let results2 = parallel_map(points, default_threads(), |&(pct, s)| {
        // SizeCache as a percentage of the number of distinct queries.
        let distinct = base2.num_units();
        let p = Params {
            size_cache: ((distinct * pct / 100).max(2)) as usize,
            ..base2.clone()
        };
        let spec = generate_matrix(&p);
        run_matrix_point(&p, &spec, s)
            .expect("runs")
            .avg_io_per_query()
    });

    println!("\nsweep 2 — avg I/O per query vs cache size (Pr(UPDATE)=0.15):");
    let mut rows = Vec::new();
    for (i, &(_, label)) in fractions.iter().enumerate() {
        rows.push(vec![
            label.to_string(),
            fnum(results2[i * 2]),
            fnum(results2[i * 2 + 1]),
        ]);
    }
    println!(
        "{}",
        format_table(&["cache size", "outside", "inside"], &rows)
    );

    let mut ok = true;
    for (i, &(_, label)) in fractions.iter().enumerate() {
        if results2[i * 2] > results2[i * 2 + 1] * 1.05 {
            ok = false;
            println!(
                "  at {label}: outside {} > inside {}",
                fnum(results2[i * 2]),
                fnum(results2[i * 2 + 1])
            );
        }
    }
    println!(
        "outside caching is never (materially) worse than inside {}",
        if ok { "[OK]" } else { "[MISMATCH]" }
    );
    let outside_gain = results2[4] / results2[0]; // 10% vs 100% cache
    let inside_gain = results2[5] / results2[1];
    println!(
        "shrinking the cache hurts inside more: outside degrades x{:.2}, inside x{:.2} {}",
        outside_gain,
        inside_gain,
        if inside_gain >= outside_gain * 0.95 {
            "[OK]"
        } else {
            "[note]"
        }
    );
}
