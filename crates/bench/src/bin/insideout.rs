//! Inside vs outside caching on the OID representation.
//!
//! Sec. 3.2 dismisses inside caching by carrying over \[JHIN88\]'s
//! procedural-column result: "the parameters that determine the relative
//! performance of inside and outside caching are the frequency of updates,
//! the level of sharing, and the size of the cache. None of these is
//! affected by the choice of the primary representation. Consequently,
//! inside caching should also lose to outside caching over most of the
//! parameter space when OID representation is used. Therefore we restrict
//! our attention in this study to outside caching."
//!
//! This bench tests that carried-over claim directly: DFSCACHE with both
//! placements over exactly those three parameters.
//!
//! ```text
//! cargo run -p cor-bench --release --bin insideout [--scale F]
//! ```

use complexobj::{CacheConfig, CachePlacement, Strategy};
use cor_bench::BenchConfig;
use cor_workload::{fnum, format_table, generate, generate_sequence, Engine, Params};

fn run(p: &Params, placement: CachePlacement, capacity: usize) -> f64 {
    let generated = generate(p);
    let engine = Engine::builder()
        .pool_pages(p.buffer_pages)
        .shards(p.shards)
        .cache(CacheConfig {
            capacity,
            placement,
            ..CacheConfig::default()
        })
        .build(&generated.spec)
        .expect("engine builds");
    let sequence = generate_sequence(p);
    engine
        .run_sequence(Strategy::DfsCache, &sequence)
        .expect("run")
        .avg_io_per_query()
}

fn main() {
    let cfg = BenchConfig::from_args();
    let mut base = cfg.base_params();
    base.num_top = (base.parent_card / 50).max(1);
    base.use_factor = 5;

    println!(
        "Inside vs outside caching, OID column (Sec. 3.2's carried-over claim)\n\
         NumTop={}, UseFactor={} (scale {})\n",
        base.num_top, base.use_factor, cfg.scale
    );

    // --- axis 1: update frequency ---
    let mut rows = Vec::new();
    let mut outside_wins = 0usize;
    let mut cells = 0usize;
    for pu in [0.0, 0.2, 0.5] {
        let p = Params {
            pr_update: pu,
            ..base.clone()
        };
        let o = run(&p, CachePlacement::Outside, p.size_cache);
        let i = run(&p, CachePlacement::Inside, p.size_cache);
        cells += 1;
        if o <= i * 1.02 {
            outside_wins += 1;
        }
        rows.push(vec![format!("Pr(UPD)={pu}"), fnum(o), fnum(i)]);
    }

    // --- axis 2: sharing ---
    for uf in [1u32, 5, 25] {
        let p = Params {
            use_factor: uf,
            pr_update: 0.1,
            ..base.clone()
        };
        let o = run(&p, CachePlacement::Outside, p.size_cache);
        let i = run(&p, CachePlacement::Inside, p.size_cache);
        cells += 1;
        if o <= i * 1.02 {
            outside_wins += 1;
        }
        rows.push(vec![format!("UseFactor={uf}"), fnum(o), fnum(i)]);
    }

    // --- axis 3: cache size ---
    for pct in [100u64, 25, 5] {
        let p = Params {
            pr_update: 0.1,
            ..base.clone()
        };
        let capacity = ((p.num_units() * pct / 100).max(2)) as usize;
        let o = run(&p, CachePlacement::Outside, capacity);
        let i = run(&p, CachePlacement::Inside, capacity);
        cells += 1;
        if o <= i * 1.02 {
            outside_wins += 1;
        }
        rows.push(vec![format!("cache={pct}% of units"), fnum(o), fnum(i)]);
    }

    println!("{}", format_table(&["point", "outside", "inside"], &rows));
    println!(
        "outside caching wins (or ties) {outside_wins}/{cells} points \
         (paper: 'inside caching should also lose ... over most of the parameter space') {}",
        if outside_wins * 2 > cells {
            "[OK]"
        } else {
            "[MISMATCH]"
        }
    );
    println!(
        "(Inside hits are free — the copy rides in the scanned tuple — but each\n\
         copy serves one object, invalidation fans out to every referencing\n\
         object, and a bounded cache covers UseFactor x fewer objects.)"
    );
}
