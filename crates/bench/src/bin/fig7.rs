//! Figure 7: the effect of OverlapFactor on clustering.
//! Plots Cost(DFSCLUST)/Cost(BFS) vs NumTop for two databases with the
//! same ShareFactor = 5 shared differently:
//!
//! * curve 1 — OverlapFactor = 1, UseFactor = 5 (whole units shared);
//! * curve 2 — OverlapFactor = 5, UseFactor = 1 (overlapping units).
//!
//! Paper's shape: the OverlapFactor = 5 curve lies "considerably above"
//! the OverlapFactor = 1 curve (clustering degrades because a unit's
//! subobjects scatter), and the NumTop where BFS overtakes DFSCLUST moves
//! left as OverlapFactor grows.
//!
//! ```text
//! cargo run -p cor-bench --release --bin fig7 [--scale F]
//! ```

use complexobj::Strategy;
use cor_bench::{num_top_sweep, BenchConfig};
use cor_workload::{
    default_threads, format_ascii_plot, format_table, parallel_map, run_point, Params,
};

fn main() {
    let cfg = BenchConfig::from_args();
    let base = cfg.base_params();
    let sweep = num_top_sweep(base.parent_card);
    let cases = [(1u32, 5u32, "OF=1,UF=5"), (5, 1, "OF=5,UF=1")];

    println!(
        "Figure 7 — Cost(DFSCLUST)/Cost(BFS) vs NumTop, ShareFactor=5 both ways (scale {})\n",
        cfg.scale
    );

    let mut points = Vec::new();
    for &(of, uf, _) in &cases {
        for &nt in &sweep {
            for s in [Strategy::DfsClust, Strategy::Bfs] {
                points.push((of, uf, nt, s));
            }
        }
    }
    let costs = parallel_map(points, default_threads(), |&(of, uf, nt, s)| {
        let p = Params {
            overlap_factor: of,
            use_factor: uf,
            num_top: nt,
            pr_update: 0.0,
            ..base.clone()
        };
        run_point(&p, s).expect("point runs").avg_retrieve_io()
    });

    let ratio = |case: usize, i: usize| -> f64 {
        let b = (case * sweep.len() + i) * 2;
        costs[b] / costs[b + 1]
    };

    let mut rows = Vec::new();
    for (i, &nt) in sweep.iter().enumerate() {
        rows.push(vec![
            nt.to_string(),
            format!("{:.2}", ratio(0, i)),
            format!("{:.2}", ratio(1, i)),
        ]);
    }
    println!(
        "{}",
        format_table(&["NumTop", "ratio OF=1,UF=5", "ratio OF=5,UF=1"], &rows)
    );
    cfg.maybe_write_csv(&["NumTop", "ratio_OF1_UF5", "ratio_OF5_UF1"], &rows);

    let series: Vec<(char, Vec<(f64, f64)>)> = vec![
        (
            '1',
            sweep
                .iter()
                .enumerate()
                .map(|(i, &n)| (n as f64, ratio(0, i)))
                .collect(),
        ),
        (
            '5',
            sweep
                .iter()
                .enumerate()
                .map(|(i, &n)| (n as f64, ratio(1, i)))
                .collect(),
        ),
    ];
    println!(
        "{}",
        format_ascii_plot(
            "Cost(DFSCLUST)/Cost(BFS) vs NumTop ('1'=OF1/UF5, '5'=OF5/UF1, *=overlap):",
            &series,
            true,
            false,
            60,
            14,
        )
    );

    // Headline checks.
    let mean0: f64 = (0..sweep.len()).map(|i| ratio(0, i)).sum::<f64>() / sweep.len() as f64;
    let mean1: f64 = (0..sweep.len()).map(|i| ratio(1, i)).sum::<f64>() / sweep.len() as f64;
    println!(
        "mean ratio: OF=1 {:.2} vs OF=5 {:.2} (paper: OF=5 considerably above) {}",
        mean0,
        mean1,
        if mean1 > mean0 { "[OK]" } else { "[MISMATCH]" }
    );
    let crossover = |case: usize| {
        sweep
            .iter()
            .enumerate()
            .find(|(i, _)| ratio(case, *i) > 1.0)
            .map(|(_, &n)| n)
    };
    match (crossover(0), crossover(1)) {
        (Some(a), Some(b)) => println!(
            "BFS overtakes DFSCLUST at NumTop {a} (OF=1) vs {b} (OF=5) \
             (paper: point B moves left to A) {}",
            if b <= a { "[OK]" } else { "[MISMATCH]" }
        ),
        (a, b) => {
            println!("crossovers: OF=1 {a:?}, OF=5 {b:?} (one side never crosses at this scale)")
        }
    }
}
