//! Multi-level (multi-dot) queries: duplicate elimination pays more the
//! deeper the exploration.
//!
//! Section 5.1 dismisses BFSNODUP for two-dot queries but predicts: "It
//! is clear that the benefits of BFSNODUP will increase with an increase
//! in the number of levels explored." This bench builds hierarchies of
//! depth 1–3 (the VLSI cells → paths → rectangles shape) with UseFactor
//! sharing at every level, and compares DFS / BFS / BFSNODUP on the same
//! multi-dot query. Shared references multiply through the levels, so the
//! BFSNODUP/BFS ratio should fall as depth grows.
//!
//! ```text
//! cargo run -p cor-bench --release --bin multilevel [--scale F]
//! ```

use complexobj::multilevel::MultiDotQuery;
use complexobj::{RetAttr, Strategy};
use cor_bench::BenchConfig;
use cor_workload::{
    build_hierarchy, fnum, format_table, snapshot_hierarchy, total_hierarchy_io, Engine,
    HierarchyParams,
};

fn main() {
    let cfg = BenchConfig::from_args();
    let top_card = ((4000.0 * cfg.scale).round() as u64).max(100);
    // Small NumTop: the per-level joins run as index probes, where
    // duplicate elimination translates directly into fewer probes. (At
    // large NumTop every plan is a merge scan and dedup only trims the
    // temporary.)
    let num_top = (top_card / 400).max(2);
    let queries = cfg.seq.unwrap_or(25);

    println!(
        "Multi-level queries — {} top objects, fan-out 5, UseFactor 5, NumTop {}, {} queries/point\n",
        top_card, num_top, queries
    );

    let strategies = [Strategy::Dfs, Strategy::Bfs, Strategy::BfsNoDup];
    let mut rows = Vec::new();
    let mut ratios = Vec::new();
    for levels in 1..=3usize {
        let hp = HierarchyParams {
            levels,
            top_card,
            fan_out: 5,
            use_factor: 5,
            seed: 7 + levels as u64,
            ..HierarchyParams::default()
        };
        let engine = Engine::builder().wrap_levels(build_hierarchy(&hp).expect("hierarchy builds"));

        let mut costs = Vec::new();
        for s in strategies {
            for db in engine.levels() {
                db.pool().flush_and_clear().expect("cold start");
            }
            let before = snapshot_hierarchy(engine.levels());
            let mut values = 0u64;
            for i in 0..queries as u64 {
                let lo = (i * 97) % (top_card - num_top);
                let q = MultiDotQuery {
                    lo,
                    hi: lo + num_top - 1,
                    attr: RetAttr::Ret1,
                };
                let out = engine.retrieve_multilevel(s, &q).expect("runs");
                values += out.values.len() as u64;
            }
            let io = total_hierarchy_io(engine.levels(), &before) as f64 / queries as f64;
            costs.push((io, values));
        }
        let ratio = costs[2].0 / costs[1].0;
        ratios.push(ratio);
        rows.push(vec![
            format!("{}", levels + 1),
            fnum(costs[0].0),
            fnum(costs[1].0),
            fnum(costs[2].0),
            format!("{ratio:.2}"),
            costs[1].1.to_string(),
            costs[2].1.to_string(),
        ]);
    }
    println!(
        "{}",
        format_table(
            &[
                "dots",
                "DFS",
                "BFS",
                "BFSNODUP",
                "NODUP/BFS",
                "values(BFS)",
                "values(NODUP)"
            ],
            &rows
        )
    );

    // Sec. 5.1's full claim: the benefit of BFSNODUP "will increase with
    // an increase in the number of levels explored. BUT our experiments
    // have shown that the benefit so obtained is marginal at best.
    // Consequently, BFSNODUP is not a strategy worth pursuing." The
    // reproduction target is therefore: duplicates demonstrably multiply
    // through the levels, the NODUP/BFS ratio drifts (at most) gently
    // below 1 with depth, and never becomes a decisive win.
    let non_increasing = ratios.windows(2).all(|w| w[1] <= w[0] + 0.02);
    let marginal = ratios.iter().all(|r| *r > 0.7 && *r < 1.05);
    println!(
        "NODUP/BFS ratios by depth: {:?} — non-increasing {} and marginal {} \
         (paper Sec. 5.1: benefit grows with levels but is 'marginal at best') {}",
        ratios.iter().map(|r| format!("{r:.2}")).collect::<Vec<_>>(),
        non_increasing,
        marginal,
        if non_increasing && marginal {
            "[OK]"
        } else {
            "[note]"
        }
    );
    println!(
        "(values(NODUP) < values(BFS) shows duplicate references multiplying through\n\
         the levels and being eliminated — yet the I/O saved stays small, because the\n\
         dominant costs are the per-level scans/probes, exactly as the paper found.)"
    );
}
