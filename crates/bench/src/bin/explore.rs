//! Free-form experiment runner: measure any single point of the paper's
//! parameter space under any strategy, or run a literal QUEL query.
//!
//! ```text
//! cargo run -p cor-bench --release --bin explore -- \
//!     --strategy DFSCACHE --num-top 100 --use-factor 5 --overlap-factor 1 \
//!     --pr-update 0.25 [--scale F] [--seq N] [--seed S]
//!
//! cargo run -p cor-bench --release --bin explore -- \
//!     --query "retrieve (ParentRel.children.ret2) where 100 <= ParentRel.OID <= 149"
//! ```

use complexobj::{parse_quel, QuelStatement, Strategy};
use cor_bench::BenchConfig;
use cor_workload::{fnum, generate, run_point, Engine};

fn main() {
    let cfg = BenchConfig::from_args();
    let mut params = cfg.base_params();
    let mut strategies: Vec<Strategy> = Vec::new();
    let mut query_text: Option<String> = None;

    let mut rest = cfg.rest.iter();
    while let Some(flag) = rest.next() {
        let mut take = |what: &str| -> String {
            rest.next()
                .unwrap_or_else(|| die(&format!("{flag} needs {what}")))
                .clone()
        };
        match flag.as_str() {
            "--strategy" => {
                let name = take("a strategy name").to_uppercase();
                let s = Strategy::ALL
                    .into_iter()
                    .find(|s| s.name() == name)
                    .unwrap_or_else(|| die(&format!("unknown strategy {name}; one of DFS, BFS, BFSNODUP, DFSCACHE, DFSCLUST, SMART")));
                strategies.push(s);
            }
            "--num-top" => params.num_top = parse(&take("a count"), flag),
            "--use-factor" => params.use_factor = parse(&take("a factor"), flag),
            "--overlap-factor" => params.overlap_factor = parse(&take("a factor"), flag),
            "--pr-update" => params.pr_update = parse(&take("a probability"), flag),
            "--num-child-rels" => params.num_child_rels = parse(&take("a count"), flag),
            "--size-cache" => params.size_cache = parse(&take("a count"), flag),
            "--buffer" => params.buffer_pages = parse(&take("a page count"), flag),
            "--update-batch" => params.update_batch = parse(&take("a count"), flag),
            "--query" => query_text = Some(take("a QUEL statement")),
            other => die(&format!("unknown flag {other}")),
        }
    }
    if strategies.is_empty() {
        strategies = Strategy::ALL.to_vec();
    }

    // QUEL mode: run one literal query across the strategies.
    if let Some(text) = query_text {
        match parse_quel(&text) {
            Ok(QuelStatement::Retrieve(q)) => {
                let q = complexobj::RetrieveQuery {
                    lo: q.lo.min(params.parent_card - 1),
                    hi: q.hi.min(params.parent_card - 1),
                    attr: q.attr,
                };
                println!(
                    "query: {text}\n(database: |ParentRel| = {}, ShareFactor {})\n",
                    params.parent_card,
                    params.share_factor()
                );
                let generated = generate(&params);
                println!("{:<10} {:>9} {:>9} {:>9}  values", "strategy", "ParCost", "ChildCost", "total");
                for s in strategies {
                    let engine = Engine::builder().build_workload(&params, &generated, s)
                        .unwrap_or_else(|e| die(&format!("{s} build failed: {e}")));
                    engine.pool().flush_and_clear().ok();
                    let out = engine
                        .retrieve(s, &q)
                        .unwrap_or_else(|e| die(&format!("{s} failed: {e}")));
                    println!(
                        "{:<10} {:>9} {:>9} {:>9}  {}",
                        s.name(),
                        out.par_io.total(),
                        out.child_io.total(),
                        out.total_io(),
                        out.values.len()
                    );
                }
                return;
            }
            Ok(other) => die(&format!(
                "explore runs two-dot retrieves; got {other:?} (use the library for replace/multi-dot)"
            )),
            Err(e) => die(&e.to_string()),
        }
    }

    params.num_top = params.num_top.clamp(1, params.parent_card);
    if let Err(e) = params.validate() {
        die(&e);
    }

    println!(
        "point: |ParentRel|={} SizeUnit={} UseFactor={} OverlapFactor={} (ShareFactor {})\n\
         NumTop={} Pr(UPDATE)={} SizeCache={} buffer={} pages, {} queries, seed {}\n",
        params.parent_card,
        params.size_unit,
        params.use_factor,
        params.overlap_factor,
        params.share_factor(),
        params.num_top,
        params.pr_update,
        params.size_cache,
        params.buffer_pages,
        params.sequence_len,
        params.seed,
    );

    println!(
        "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
        "strategy", "avg I/O", "retrieve", "ParCost", "ChildCost", "update", "hit rate"
    );
    for s in strategies {
        let r = run_point(&params, s).unwrap_or_else(|e| die(&format!("{s} failed: {e}")));
        let hit_rate = r
            .cache
            .map(|c| {
                let denom = (c.hits + c.misses).max(1);
                format!("{:.0}%", 100.0 * c.hits as f64 / denom as f64)
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{:<10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>8}",
            s.name(),
            fnum(r.avg_io_per_query()),
            fnum(r.avg_retrieve_io()),
            fnum(r.avg_par_cost()),
            fnum(r.avg_child_cost()),
            fnum(r.avg_update_io()),
            hit_rate,
        );
    }
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> T {
    v.parse()
        .unwrap_or_else(|_| die(&format!("bad value {v:?} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
