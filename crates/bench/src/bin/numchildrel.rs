//! Section 6.2: the effect of NumChildRel — subobjects drawn from several
//! relations.
//!
//! Paper's finding: "none of our algorithms is significantly affected by
//! NumChildRel, at least if it is much less than NumTop." DFS strategies
//! (and hence caching/clustering) are insensitive; BFS must run one join
//! per relation, but each ChildRel and temporary shrinks correspondingly,
//! "almost balancing out" — until NumChildRel approaches NumTop and each
//! temporary holds only one or two OIDs.
//!
//! ```text
//! cargo run -p cor-bench --release --bin numchildrel [--scale F]
//! ```

use complexobj::Strategy;
use cor_bench::BenchConfig;
use cor_workload::{default_threads, fnum, format_table, parallel_map, run_point, Params};

fn main() {
    let cfg = BenchConfig::from_args();
    let base = cfg.base_params();
    let num_top = ((100.0 * cfg.scale).round() as u64).clamp(2, base.parent_card);
    let rels: Vec<usize> = [1usize, 2, 5, 10, 20, 50]
        .into_iter()
        .filter(|&n| {
            let p = Params {
                num_child_rels: n,
                num_top,
                pr_update: 0.0,
                ..base.clone()
            };
            p.validate().is_ok()
        })
        .collect();
    let strategies = [Strategy::Dfs, Strategy::Bfs, Strategy::DfsCache];

    println!(
        "Section 6.2 — average retrieve I/O vs NumChildRel at NumTop={} (scale {})\n",
        num_top, cfg.scale
    );

    let mut points = Vec::new();
    for &n in &rels {
        for &s in &strategies {
            points.push((n, s));
        }
    }
    let costs = parallel_map(points, default_threads(), |&(n, s)| {
        let p = Params {
            num_child_rels: n,
            num_top,
            pr_update: 0.0,
            ..base.clone()
        };
        run_point(&p, s).expect("point runs").avg_retrieve_io()
    });

    let mut rows = Vec::new();
    for (i, &n) in rels.iter().enumerate() {
        rows.push(vec![
            n.to_string(),
            fnum(costs[i * 3]),
            fnum(costs[i * 3 + 1]),
            fnum(costs[i * 3 + 2]),
        ]);
    }
    println!(
        "{}",
        format_table(&["NumChildRel", "DFS", "BFS", "DFSCACHE"], &rows)
    );

    // Headline checks: relative spread of each strategy across NumChildRel
    // (excluding the regime NumChildRel ~ NumTop where BFS is expected to
    // deteriorate).
    for (j, s) in strategies.iter().enumerate() {
        let in_regime: Vec<f64> = rels
            .iter()
            .enumerate()
            .filter(|(_, &n)| (n as u64) * 4 <= num_top)
            .map(|(i, _)| costs[i * 3 + j])
            .collect();
        if in_regime.len() < 2 {
            continue;
        }
        let min = in_regime.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = in_regime.iter().cloned().fold(0.0, f64::max);
        let spread = max / min;
        println!(
            "{}: max/min = {:.2} across NumChildRel << NumTop (paper: little effect) {}",
            s.name(),
            spread,
            if spread < 1.8 { "[OK]" } else { "[note]" }
        );
    }
}
