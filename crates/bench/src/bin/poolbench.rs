//! `poolbench` — scan-resistant buffer replacement, measured end to end.
//!
//! Two layers of measurement, both written to `BENCH_pool.json`:
//!
//! 1. **Merge-scan flood legs** drive a [`BufferPool`] directly with the
//!    access shape that kills a recency policy: a hot set (the B-tree
//!    inner nodes every query descends through — probed twice per round,
//!    the way repeated descents touch them) interleaved with a
//!    sequential one-touch flood (a BFS merge scan). Every
//!    {policy × pool size} cell reports the hot-set hit ratio, the
//!    overall hit ratio, and its measured miss count next to the
//!    [`predict_policy_misses`] closed form with the relative error —
//!    the measured-vs-predicted bend points of the cost model's
//!    per-policy term.
//! 2. **Engine legs** run the batched-path strategies (BFS, DFSCLUST,
//!    DFSCACHE) over the same generated database for every
//!    {policy × pool size × thread count} cell, reporting throughput,
//!    p99 latency, pool hit ratio, and the per-page-class view from the
//!    observability layer: heat-map touches split internal/leaf and
//!    phase-attributed physical reads, giving *descent reads per probe*
//!    — how many inner-node pages each index descent had to re-fault.
//!
//! ```text
//! cargo run --release -p cor-bench --bin poolbench [--scale F | --full]
//!     [--json FILE]    output path (default BENCH_pool.json)
//!     [--threads LIST] engine-leg thread counts (default 1,4)
//!     [--smoke]        small database, gate cells only, exit 1 on:
//!                      a scan-resistant policy failing the retention
//!                      gate, the per-policy miss model missing its
//!                      exact cells, or any policy returning different
//!                      query results than LRU
//! ```
//!
//! Gates (checked on every run, enforced in `--smoke`):
//!
//! * **Flood retention** — at the 100-page pool, SIEVE and 2Q must keep
//!   a hot-set hit ratio at least 1.2x LRU's (and ≥ 0.5 absolutely).
//! * **Model sanity** — on the cells where the closed form is exact
//!   (LRU/SIEVE/2Q at 100 pages with the hot set resident), measured
//!   misses must be within 35% of predicted.
//! * **Results invariant** — replacement policy is a physical knob;
//!   every engine leg must return byte-identical query results.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

use complexobj::strategies::execute_retrieve;
use complexobj::{ExecOptions, Query, Strategy};
use cor_bench::BenchConfig;
use cor_obs::costmodel::{policy_miss_rel_error, predict_policy_misses, FloodWorkload};
use cor_obs::{heat, HeatClass, Phase, PAGE_CLASS_INTERNAL, PAGE_CLASS_LEAF};
use cor_pagestore::{BufferPool, PageId, ReplacementPolicy};
use cor_workload::{
    build_for_strategy_on, fnum, format_table, generate, generate_sequence,
    generate_stream_sequences, run_concurrent_streams, Params,
};

/// Hot-set pages in the flood legs (inner-node stand-ins).
const FLOOD_HOT: usize = 60;
/// One-touch flood pages per round.
const FLOOD_SCAN: usize = 300;
/// Rounds of (hot probes + flood).
const FLOOD_ROUNDS: usize = 10;
/// Pool sizes swept by both layers.
const POOL_SIZES: [usize; 4] = [25, 50, 100, 200];
/// The pool size the retention and model gates are pinned to.
const GATE_POOL: usize = 100;
/// Retention gates require this multiple of LRU's ratio.
const GATE_FACTOR: f64 = 1.2;

/// One flood-leg measurement.
struct FloodLeg {
    policy: ReplacementPolicy,
    pool_pages: usize,
    hot_probes: u64,
    hot_hits: u64,
    accesses: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    predicted_misses: f64,
    elapsed_us: u64,
}

impl FloodLeg {
    fn hot_ratio(&self) -> f64 {
        if self.hot_probes == 0 {
            0.0
        } else {
            self.hot_hits as f64 / self.hot_probes as f64
        }
    }

    fn hit_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    fn rel_error(&self) -> f64 {
        policy_miss_rel_error(self.misses as f64, self.predicted_misses)
    }
}

/// Sum the pool's telemetry counters into (hits, misses, evictions).
fn telemetry_sums(pool: &BufferPool) -> (u64, u64, u64) {
    let (mut h, mut m, mut e) = (0, 0, 0);
    for s in pool.telemetry().into_iter().flatten() {
        h += s.hits;
        m += s.misses;
        e += s.evictions;
    }
    (h, m, e)
}

/// Run one {policy, pool size} merge-scan flood cell.
fn run_flood_leg(policy: ReplacementPolicy, pool_pages: usize) -> FloodLeg {
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(pool_pages)
            .shards(1)
            .policy(policy)
            .telemetry(true)
            .build(),
    );
    let make_pages = |n: usize| -> Vec<PageId> {
        (0..n)
            .map(|i| {
                let pid = pool.allocate_page().expect("store extends");
                pool.write(pid, |mut p| {
                    p.init();
                    p.insert(&(i as u64).to_le_bytes()).expect("record fits");
                })
                .expect("page writes");
                pid
            })
            .collect()
    };
    let hot = make_pages(FLOOD_HOT);
    let scan = make_pages(FLOOD_SCAN);
    pool.flush_and_clear().expect("pool flushes");

    let (h0, m0, e0) = telemetry_sums(&pool);
    let (mut hot_probes, mut hot_hits) = (0u64, 0u64);
    let mut sink = 0u64;
    let t = Instant::now();
    for _ in 0..FLOOD_ROUNDS {
        // Two probe passes per round: a descent touches the same inner
        // pages every time it runs, so hot pages see quick re-references
        // — the pattern 2Q's probation and SIEVE's visited bit reward.
        let (hb, ..) = telemetry_sums(&pool);
        for _ in 0..2 {
            for &pid in &hot {
                sink ^= pool.read(pid, |p| p.bytes()[0] as u64).expect("hot read");
            }
        }
        let (ha, ..) = telemetry_sums(&pool);
        hot_probes += 2 * hot.len() as u64;
        hot_hits += ha - hb;
        for &pid in &scan {
            sink ^= pool.read(pid, |p| p.bytes()[0] as u64).expect("scan read");
        }
    }
    let elapsed_us = t.elapsed().as_micros() as u64;
    std::hint::black_box(sink);
    let (h1, m1, e1) = telemetry_sums(&pool);
    let w = FloodWorkload {
        hot_pages: FLOOD_HOT as f64,
        scan_pages: FLOOD_SCAN as f64,
        rounds: FLOOD_ROUNDS as f64,
        buffer_pages: pool_pages as f64,
    };
    FloodLeg {
        policy,
        pool_pages,
        hot_probes,
        hot_hits,
        accesses: (h1 - h0) + (m1 - m0),
        hits: h1 - h0,
        misses: m1 - m0,
        evictions: e1 - e0,
        predicted_misses: predict_policy_misses(policy.name(), &w).expect("known policy"),
        elapsed_us,
    }
}

/// One engine-leg measurement.
struct EngineLeg {
    policy: ReplacementPolicy,
    strategy: Strategy,
    pool_pages: usize,
    threads: usize,
    queries: usize,
    values_returned: u64,
    total_io: u64,
    qps: f64,
    p99_us: f64,
    hits: u64,
    misses: u64,
    /// Physical reads charged to the index-descent phase.
    descent_reads: u64,
    /// Physical reads charged to the heap-fetch phase.
    heap_reads: u64,
    /// Heat-map touches of the internal page class (≈ descents run).
    internal_probes: u64,
    /// Heat-map touches of the leaf page class.
    leaf_touches: u64,
}

impl EngineLeg {
    fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Inner-node pages physically re-faulted per index descent — the
    /// per-page-class retention signal: a policy that keeps the B-tree
    /// inner nodes resident drives this toward zero.
    fn descent_reads_per_probe(&self) -> f64 {
        if self.internal_probes == 0 {
            0.0
        } else {
            self.descent_reads as f64 / self.internal_probes as f64
        }
    }
}

/// Run the engine cells for one {policy, strategy, pool size} database
/// across every thread count (the build is paid once per database, not
/// once per thread count).
fn run_engine_cells(
    params: &Params,
    generated: &cor_workload::GeneratedDb,
    policy: ReplacementPolicy,
    strategy: Strategy,
    pool_pages: usize,
    thread_counts: &[usize],
) -> Vec<EngineLeg> {
    let leg_params = Params {
        buffer_pages: pool_pages,
        shards: 1,
        ..params.clone()
    };
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(pool_pages)
            .shards(1)
            .policy(policy)
            .telemetry(true)
            .build(),
    );
    let profile = pool.stats().enable_profile();
    let db =
        build_for_strategy_on(pool, &leg_params, generated, strategy).expect("database builds");
    let opts = ExecOptions {
        pool_policy: policy,
        ..ExecOptions::default()
    };

    thread_counts
        .iter()
        .map(|&threads| {
            let sequences = generate_stream_sequences(&leg_params, threads);
            heat::global().reset();
            let (h0, m0, _) = telemetry_sums(db.pool());
            let phase0 = profile.snapshot();
            let result = run_concurrent_streams(&db, strategy, &sequences, &opts)
                .expect("concurrent run completes");
            let phases = profile.snapshot().since(&phase0);
            let (h1, m1, _) = telemetry_sums(db.pool());
            let report = heat::global().report();
            let class_touches = |id: u64| {
                report
                    .entries
                    .iter()
                    .find(|e| e.class == HeatClass::PageClass && e.id == id)
                    .map(|e| e.count)
                    .unwrap_or(0)
            };

            let secs = result.elapsed.as_secs_f64();
            EngineLeg {
                policy,
                strategy,
                pool_pages,
                threads,
                queries: result.queries,
                values_returned: result.values_returned,
                total_io: result.total_io,
                qps: if secs > 0.0 {
                    result.queries as f64 / secs
                } else {
                    0.0
                },
                p99_us: result.latency.p99.as_nanos() as f64 / 1e3,
                hits: h1 - h0,
                misses: m1 - m0,
                descent_reads: phases.reads_of(Phase::IndexDescent),
                heap_reads: phases.reads_of(Phase::HeapFetch),
                internal_probes: class_touches(PAGE_CLASS_INTERNAL),
                leaf_touches: class_touches(PAGE_CLASS_LEAF),
            }
        })
        .collect()
}

/// How many point queries make up one probe phase of a retention leg.
const RETENTION_PROBES: usize = 6;
/// Measured probe/flood rounds after the cold round.
const RETENTION_ROUNDS: usize = 5;

/// One {policy, pool size} B-tree inner-node retention cell.
///
/// The leg interleaves a *fixed* set of DFS point queries (whose index
/// descents are the hot inner-node working set) with one BFS merge-scan
/// query (the flood, bigger than the pool). The cold round's
/// phase-attributed descent reads are the compulsory cost of the probe
/// phase; every descent read a later round repeats is an inner node the
/// flood evicted.
struct RetentionLeg {
    policy: ReplacementPolicy,
    pool_pages: usize,
    /// Descent reads of the cold probe phase (compulsory).
    cold_descent_reads: u64,
    /// Descent reads summed over the measured probe phases.
    steady_descent_reads: u64,
    /// Heat-map internal-class touches over the measured probe phases.
    internal_probes: u64,
    /// Pool misses of one flood query (how hard the scan pushes).
    flood_misses: u64,
    /// Values returned across all rounds (results invariant).
    values_returned: u64,
}

impl RetentionLeg {
    /// Fraction of the probe phase's inner-node working set that stayed
    /// resident through the floods (1 = fully retained, 0 = the flood
    /// evicts every inner node, every round).
    fn retention(&self) -> f64 {
        let compulsory = (RETENTION_ROUNDS as u64 * self.cold_descent_reads) as f64;
        if compulsory == 0.0 {
            return 1.0;
        }
        (1.0 - self.steady_descent_reads as f64 / compulsory).max(0.0)
    }
}

/// Run one probe/flood retention cell.
fn run_retention_leg(
    params: &Params,
    generated: &cor_workload::GeneratedDb,
    policy: ReplacementPolicy,
    pool_pages: usize,
) -> RetentionLeg {
    let leg_params = Params {
        buffer_pages: pool_pages,
        shards: 1,
        ..params.clone()
    };
    let pool = Arc::new(
        BufferPool::builder()
            .capacity(pool_pages)
            .shards(1)
            .policy(policy)
            .telemetry(true)
            .build(),
    );
    let profile = pool.stats().enable_profile();
    // BFS and DFS share the standard physical layout, so one build
    // serves both the probe and the flood side of the leg.
    let db = build_for_strategy_on(pool, &leg_params, generated, Strategy::Bfs)
        .expect("database builds");
    let opts = ExecOptions {
        pool_policy: policy,
        ..ExecOptions::default()
    };
    // The SAME point queries every round: their descents are the hot
    // set whose residency is under test.
    let probes: Vec<Query> = generate_sequence(&Params {
        num_top: 2,
        sequence_len: RETENTION_PROBES,
        pr_update: 0.0,
        ..leg_params.clone()
    });
    let flood: Vec<Query> = generate_sequence(&Params {
        sequence_len: 1,
        pr_update: 0.0,
        seed: leg_params.seed.wrapping_add(0xF100D),
        ..leg_params.clone()
    });
    db.pool().flush_and_clear().expect("pool flushes");

    let mut values_returned = 0u64;
    let mut run_phase = |queries: &[Query], strategy: Strategy| -> u64 {
        let before = profile.snapshot();
        for q in queries {
            let Query::Retrieve(r) = q else { continue };
            let out = execute_retrieve(&db, strategy, r, &opts).expect("retrieve runs");
            values_returned += out.values.len() as u64;
        }
        profile
            .snapshot()
            .since(&before)
            .reads_of(Phase::IndexDescent)
    };

    // Cold round: compulsory descent cost, then the first flood.
    let cold_descent_reads = run_phase(&probes, Strategy::Dfs);
    let (_, fm0, _) = telemetry_sums(db.pool());
    run_phase(&flood, Strategy::Bfs);
    let (_, fm1, _) = telemetry_sums(db.pool());

    heat::global().reset();
    let mut steady_descent_reads = 0u64;
    for _ in 0..RETENTION_ROUNDS {
        steady_descent_reads += run_phase(&probes, Strategy::Dfs);
        run_phase(&flood, Strategy::Bfs);
    }
    let report = heat::global().report();
    let internal_probes = report
        .entries
        .iter()
        .find(|e| e.class == HeatClass::PageClass && e.id == PAGE_CLASS_INTERNAL)
        .map(|e| e.count)
        .unwrap_or(0);

    RetentionLeg {
        policy,
        pool_pages,
        cold_descent_reads,
        steady_descent_reads,
        internal_probes,
        flood_misses: fm1 - fm0,
        values_returned,
    }
}

fn json_retention(l: &RetentionLeg) -> String {
    format!(
        "{{\"policy\":\"{}\",\"pool_pages\":{},\"retention\":{:.4},\
         \"cold_descent_reads\":{},\"steady_descent_reads\":{},\
         \"internal_probes\":{},\"flood_misses\":{}}}",
        l.policy.name(),
        l.pool_pages,
        l.retention(),
        l.cold_descent_reads,
        l.steady_descent_reads,
        l.internal_probes,
        l.flood_misses,
    )
}

fn json_flood(l: &FloodLeg) -> String {
    format!(
        "{{\"policy\":\"{}\",\"pool_pages\":{},\"hot_hit_ratio\":{:.4},\
         \"hit_ratio\":{:.4},\"accesses\":{},\"hits\":{},\"misses\":{},\
         \"evictions\":{},\"predicted_misses\":{:.1},\"rel_error\":{:.4},\
         \"elapsed_us\":{}}}",
        l.policy.name(),
        l.pool_pages,
        l.hot_ratio(),
        l.hit_ratio(),
        l.accesses,
        l.hits,
        l.misses,
        l.evictions,
        l.predicted_misses,
        l.rel_error(),
        l.elapsed_us,
    )
}

fn json_engine(l: &EngineLeg) -> String {
    format!(
        "{{\"policy\":\"{}\",\"strategy\":\"{}\",\"pool_pages\":{},\
         \"threads\":{},\"queries\":{},\"throughput_qps\":{:.3},\
         \"p99_us\":{:.3},\"hit_ratio\":{:.4},\"pool_hits\":{},\
         \"pool_misses\":{},\"total_io\":{},\"descent_reads\":{},\
         \"heap_reads\":{},\"internal_probes\":{},\"leaf_touches\":{},\
         \"descent_reads_per_probe\":{:.4}}}",
        l.policy.name(),
        l.strategy.name(),
        l.pool_pages,
        l.threads,
        l.queries,
        l.qps,
        l.p99_us,
        l.hit_ratio(),
        l.hits,
        l.misses,
        l.total_io,
        l.descent_reads,
        l.heap_reads,
        l.internal_probes,
        l.leaf_touches,
        l.descent_reads_per_probe(),
    )
}

fn main() {
    let cfg = BenchConfig::from_args();
    let smoke = cfg.has_flag("--smoke");
    let mut json_path = PathBuf::from("BENCH_pool.json");
    let mut threads: Vec<usize> = vec![1, 4];
    let mut it = cfg.rest.iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => {}
            "--json" => {
                json_path = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| {
                        eprintln!("error: --json needs a value");
                        std::process::exit(2);
                    })
                    .into()
            }
            "--threads" => {
                let list = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("error: --threads needs a comma-separated list");
                    std::process::exit(2);
                });
                threads = list
                    .split(',')
                    .map(|v| {
                        v.parse().unwrap_or_else(|_| {
                            eprintln!("error: --threads needs positive integers");
                            std::process::exit(2);
                        })
                    })
                    .collect();
            }
            other => {
                eprintln!("error: unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    // The flood layer is pure memory and always runs at full size; the
    // engine layer shrinks with --smoke.
    let params = if smoke {
        Params {
            // Large enough that one BFS merge scan floods the gate pool
            // several times over — the condition the retention gate is
            // about. A smaller database fits a 100-page pool outright
            // and every policy measures identically.
            parent_card: 2000,
            num_top: 200,
            sequence_len: 8,
            size_cache: 20,
            pr_update: 0.0,
            ..Params::paper_default()
        }
    } else {
        let base = cfg.base_params();
        Params {
            pr_update: 0.0,
            // Enough selected objects that BFS plans the merge join —
            // the scan flood this benchmark is about (same boost as
            // iobench).
            num_top: (base.parent_card / 10).max(base.num_top),
            ..base
        }
    };
    let (pool_sizes, strategies, thread_counts): (Vec<usize>, Vec<Strategy>, Vec<usize>) = if smoke
    {
        (vec![25, GATE_POOL], vec![Strategy::Bfs], vec![1])
    } else {
        (
            POOL_SIZES.to_vec(),
            vec![Strategy::Bfs, Strategy::DfsClust, Strategy::DfsCache],
            threads,
        )
    };
    println!(
        "poolbench — scan-resistant replacement policies{}\n\
         flood: {} hot + {} scan pages x {} rounds; engine: |ParentRel| = {}, \
         {} queries/stream, pools {:?}, threads {:?}\n",
        if smoke { " (smoke)" } else { "" },
        FLOOD_HOT,
        FLOOD_SCAN,
        FLOOD_ROUNDS,
        params.parent_card,
        params.sequence_len,
        pool_sizes,
        thread_counts,
    );

    let mut failures: Vec<String> = Vec::new();

    // ---- merge-scan flood legs -------------------------------------
    let mut flood_legs: Vec<FloodLeg> = Vec::new();
    for &pool_pages in POOL_SIZES.iter() {
        for policy in ReplacementPolicy::ALL {
            flood_legs.push(run_flood_leg(policy, pool_pages));
        }
    }
    let flood_rows: Vec<Vec<String>> = flood_legs
        .iter()
        .map(|l| {
            vec![
                l.policy.name().to_string(),
                l.pool_pages.to_string(),
                format!("{:.3}", l.hot_ratio()),
                format!("{:.3}", l.hit_ratio()),
                l.misses.to_string(),
                format!("{:.0}", l.predicted_misses),
                format!("{:.1}%", l.rel_error() * 100.0),
            ]
        })
        .collect();
    println!(
        "merge-scan flood (hot-set retention and model bend points)\n{}",
        format_table(
            &[
                "policy",
                "pool",
                "hot hit",
                "hit",
                "misses",
                "predicted",
                "err",
            ],
            &flood_rows,
        )
    );

    let flood_at = |policy: ReplacementPolicy, pool: usize| -> &FloodLeg {
        flood_legs
            .iter()
            .find(|l| l.policy == policy && l.pool_pages == pool)
            .expect("flood cell exists")
    };
    let lru_hot = flood_at(ReplacementPolicy::Lru, GATE_POOL).hot_ratio();
    for policy in [ReplacementPolicy::Sieve, ReplacementPolicy::TwoQ] {
        let leg = flood_at(policy, GATE_POOL);
        let ratio = leg.hot_ratio();
        if ratio < GATE_FACTOR * lru_hot || ratio < 0.5 {
            failures.push(format!(
                "flood retention: {} hot hit ratio {ratio:.3} at {GATE_POOL} pages \
                 (LRU {lru_hot:.3}, need >= {GATE_FACTOR}x and >= 0.5)",
                policy.name(),
            ));
        }
    }
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Sieve,
        ReplacementPolicy::TwoQ,
    ] {
        let leg = flood_at(policy, GATE_POOL);
        if leg.rel_error() > 0.35 {
            failures.push(format!(
                "miss model: {} at {GATE_POOL} pages measured {} vs predicted {:.0} \
                 (rel error {:.1}% > 35%)",
                policy.name(),
                leg.misses,
                leg.predicted_misses,
                leg.rel_error() * 100.0,
            ));
        }
    }

    // ---- engine legs ------------------------------------------------
    heat::enable(true);
    let generated = generate(&params);
    let mut engine_legs: Vec<EngineLeg> = Vec::new();
    for &strategy in &strategies {
        for &pool_pages in &pool_sizes {
            for policy in ReplacementPolicy::ALL {
                engine_legs.extend(run_engine_cells(
                    &params,
                    &generated,
                    policy,
                    strategy,
                    pool_pages,
                    &thread_counts,
                ));
            }
        }
    }
    let engine_rows: Vec<Vec<String>> = engine_legs
        .iter()
        .map(|l| {
            vec![
                l.strategy.name().to_string(),
                l.pool_pages.to_string(),
                l.threads.to_string(),
                l.policy.name().to_string(),
                fnum(l.qps),
                fnum(l.p99_us),
                format!("{:.3}", l.hit_ratio()),
                format!("{:.2}", l.descent_reads_per_probe()),
            ]
        })
        .collect();
    println!(
        "engine sweep (descent r/p = inner-node pages re-faulted per descent)\n{}",
        format_table(
            &[
                "Strategy",
                "pool",
                "thr",
                "policy",
                "q/s",
                "p99us",
                "hit",
                "descent r/p",
            ],
            &engine_rows,
        )
    );

    // Replacement is a physical knob: within one {strategy, pool,
    // threads} cell every policy must return the same values.
    for l in &engine_legs {
        let base = engine_legs
            .iter()
            .find(|b| {
                b.strategy == l.strategy
                    && b.pool_pages == l.pool_pages
                    && b.threads == l.threads
                    && b.policy == ReplacementPolicy::Lru
            })
            .expect("LRU baseline exists");
        if l.values_returned != base.values_returned || l.queries != base.queries {
            failures.push(format!(
                "results differ: {} {} at {} pages x{} returned {} values vs LRU's {}",
                l.strategy.name(),
                l.policy.name(),
                l.pool_pages,
                l.threads,
                l.values_returned,
                base.values_returned,
            ));
        }
    }
    // ---- B-tree inner-node retention legs ---------------------------
    let mut retention_legs: Vec<RetentionLeg> = Vec::new();
    for &pool_pages in &pool_sizes {
        for policy in ReplacementPolicy::ALL {
            retention_legs.push(run_retention_leg(&params, &generated, policy, pool_pages));
        }
    }
    let retention_rows: Vec<Vec<String>> = retention_legs
        .iter()
        .map(|l| {
            vec![
                l.policy.name().to_string(),
                l.pool_pages.to_string(),
                l.cold_descent_reads.to_string(),
                l.steady_descent_reads.to_string(),
                l.flood_misses.to_string(),
                format!("{:.3}", l.retention()),
            ]
        })
        .collect();
    println!(
        "inner-node retention (DFS probes x BFS merge-scan floods)\n{}",
        format_table(
            &[
                "policy",
                "pool",
                "cold descents",
                "steady descents",
                "flood miss",
                "retained",
            ],
            &retention_rows,
        )
    );
    for l in &retention_legs {
        let base = retention_legs
            .iter()
            .find(|b| b.pool_pages == l.pool_pages && b.policy == ReplacementPolicy::Lru)
            .expect("LRU baseline exists");
        if l.values_returned != base.values_returned {
            failures.push(format!(
                "results differ: retention leg {} at {} pages returned {} values vs LRU's {}",
                l.policy.name(),
                l.pool_pages,
                l.values_returned,
                base.values_returned,
            ));
        }
    }
    let retention_at = |policy: ReplacementPolicy| -> &RetentionLeg {
        retention_legs
            .iter()
            .find(|l| l.policy == policy && l.pool_pages == GATE_POOL)
            .expect("retention cell exists")
    };
    let lru_retention = retention_at(ReplacementPolicy::Lru).retention();
    for policy in [ReplacementPolicy::Sieve, ReplacementPolicy::TwoQ] {
        let r = retention_at(policy).retention();
        if r < (GATE_FACTOR * lru_retention).max(0.5) {
            failures.push(format!(
                "inner-node retention: {} retained {r:.3} of the descent working \
                 set at {GATE_POOL} pages (LRU {lru_retention:.3}, need >= \
                 {GATE_FACTOR}x and >= 0.5)",
                policy.name(),
            ));
        }
    }

    let json = format!(
        "{{\"schema_version\":1,\"catalog_version\":{},\
         \"metrics_schema_version\":{},\"scale\":{},\"smoke\":{},\
         \"gate\":{{\"pool_pages\":{GATE_POOL},\"factor\":{GATE_FACTOR},\
         \"lru_hot_hit_ratio\":{:.4},\
         \"sieve_hot_hit_ratio\":{:.4},\"two_q_hot_hit_ratio\":{:.4},\
         \"lru_inner_retention\":{:.4},\"sieve_inner_retention\":{:.4},\
         \"two_q_inner_retention\":{:.4}}},\
         \"params\":{{\"parent_card\":{},\"num_top\":{},\"sequence_len\":{},\
         \"seed\":{}}},\
         \"flood\":{{\"hot_pages\":{FLOOD_HOT},\"scan_pages\":{FLOOD_SCAN},\
         \"rounds\":{FLOOD_ROUNDS},\"legs\":[{}]}},\
         \"retention\":{{\"probe_queries\":{RETENTION_PROBES},\
         \"rounds\":{RETENTION_ROUNDS},\"legs\":[{}]}},\
         \"engine\":{{\"legs\":[{}]}}}}\n",
        cor_workload::ENGINE_CATALOG_VERSION,
        cor_workload::METRICS_SCHEMA_VERSION,
        cfg.scale,
        smoke,
        lru_hot,
        flood_at(ReplacementPolicy::Sieve, GATE_POOL).hot_ratio(),
        flood_at(ReplacementPolicy::TwoQ, GATE_POOL).hot_ratio(),
        lru_retention,
        retention_at(ReplacementPolicy::Sieve).retention(),
        retention_at(ReplacementPolicy::TwoQ).retention(),
        params.parent_card,
        params.num_top,
        params.sequence_len,
        params.seed,
        flood_legs
            .iter()
            .map(json_flood)
            .collect::<Vec<_>>()
            .join(","),
        retention_legs
            .iter()
            .map(json_retention)
            .collect::<Vec<_>>()
            .join(","),
        engine_legs
            .iter()
            .map(json_engine)
            .collect::<Vec<_>>()
            .join(","),
    );
    if let Some(dir) = json_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::write(&json_path, json) {
        Ok(()) => eprintln!("wrote {}", json_path.display()),
        Err(e) => {
            eprintln!("failed to write {}: {e}", json_path.display());
            std::process::exit(1);
        }
    }

    if failures.is_empty() {
        println!(
            "poolbench{}: OK ({} flood + {} retention + {} engine legs validated)",
            if smoke { " smoke" } else { "" },
            flood_legs.len(),
            retention_legs.len(),
            engine_legs.len(),
        );
    } else {
        for f in &failures {
            eprintln!("poolbench FAIL: {f}");
        }
        std::process::exit(1);
    }
}
