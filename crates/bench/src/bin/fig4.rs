//! Figure 4: the 3-D region plot — which of BFS / DFSCACHE / DFSCLUST is
//! best as a function of ShareFactor, NumTop and Pr(UPDATE).
//!
//! The paper sampled ~300 points of the enclosing cuboid and extrapolated
//! regions. We run a grid of the same order (5 ShareFactors × 5 NumTops ×
//! 5 update frequencies = 125 points, 3 strategies each), print the winner
//! per point, and with `--faces` render the 2-D projections the paper
//! walks through in Sec. 5.2.1–5.2.4.
//!
//! Expected shape: DFSCLUST wins only near ShareFactor = 1; DFSCACHE wins
//! at low Pr(UPDATE) and low NumTop; BFS wins the rest (large NumTop or
//! high update frequency).
//!
//! ```text
//! cargo run -p cor-bench --release --bin fig4 [--scale F] [--faces]
//! ```

use complexobj::Strategy;
use cor_bench::BenchConfig;
use cor_workload::{
    default_threads, format_region_map, format_table, parallel_map, run_point, Params,
};

const STRATEGIES: [Strategy; 3] = [Strategy::Bfs, Strategy::DfsCache, Strategy::DfsClust];

fn initial(s: Strategy) -> char {
    match s {
        Strategy::Bfs => 'B',
        Strategy::DfsCache => 'C',
        Strategy::DfsClust => 'L',
        _ => '?',
    }
}

fn main() {
    let cfg = BenchConfig::from_args();
    let mut base = cfg.base_params();
    // The full grid is 375 sequence runs; keep each sequence short unless
    // the caller overrode it.
    if cfg.seq.is_none() {
        base.sequence_len = (base.sequence_len / 4).max(40);
    }

    let share_factors: Vec<u32> = vec![1, 2, 5, 10, 25];
    let num_tops: Vec<u64> = [1u64, 10, 100, 1000, 10_000]
        .iter()
        .map(|&n| ((n as f64 * cfg.scale).round() as u64).clamp(1, base.parent_card))
        .collect();
    let pr_updates: Vec<f64> = vec![0.0, 0.25, 0.5, 0.75, 0.95];

    println!(
        "Figure 4 — best of BFS(B) / DFSCACHE(C) / DFSCLUST(L) over\n\
         ShareFactor x NumTop x Pr(UPDATE); scale {} => |ParentRel| = {}, {} queries/point\n",
        cfg.scale, base.parent_card, base.sequence_len
    );

    let mut points = Vec::new();
    for &sf in &share_factors {
        for &nt in &num_tops {
            for &pu in &pr_updates {
                for s in STRATEGIES {
                    points.push((sf, nt, pu, s));
                }
            }
        }
    }
    let costs = parallel_map(points.clone(), default_threads(), |&(sf, nt, pu, s)| {
        let p = Params {
            use_factor: sf,
            overlap_factor: 1,
            num_top: nt,
            pr_update: pu,
            ..base.clone()
        };
        run_point(&p, s).expect("point runs").avg_io_per_query()
    });

    // Winner per (sf, nt, pu).
    let idx = |i_sf: usize, i_nt: usize, i_pu: usize, i_s: usize| {
        ((i_sf * num_tops.len() + i_nt) * pr_updates.len() + i_pu) * STRATEGIES.len() + i_s
    };
    let winner = |i_sf: usize, i_nt: usize, i_pu: usize| -> Strategy {
        let mut best = STRATEGIES[0];
        let mut best_cost = f64::INFINITY;
        for (i_s, &s) in STRATEGIES.iter().enumerate() {
            let c = costs[idx(i_sf, i_nt, i_pu, i_s)];
            if c < best_cost {
                best_cost = c;
                best = s;
            }
        }
        best
    };

    let mut rows = Vec::new();
    for (i_sf, &sf) in share_factors.iter().enumerate() {
        for (i_nt, &nt) in num_tops.iter().enumerate() {
            for (i_pu, &pu) in pr_updates.iter().enumerate() {
                let w = winner(i_sf, i_nt, i_pu);
                let cells: Vec<String> = STRATEGIES
                    .iter()
                    .enumerate()
                    .map(|(i_s, _)| format!("{:.1}", costs[idx(i_sf, i_nt, i_pu, i_s)]))
                    .collect();
                rows.push(vec![
                    sf.to_string(),
                    nt.to_string(),
                    format!("{pu:.2}"),
                    cells[0].clone(),
                    cells[1].clone(),
                    cells[2].clone(),
                    w.name().to_string(),
                ]);
            }
        }
    }
    println!(
        "{}",
        format_table(
            &[
                "ShareFactor",
                "NumTop",
                "Pr(UPD)",
                "BFS",
                "DFSCACHE",
                "DFSCLUST",
                "winner"
            ],
            &rows
        )
    );
    cfg.maybe_write_csv(
        &[
            "ShareFactor",
            "NumTop",
            "PrUpdate",
            "BFS",
            "DFSCACHE",
            "DFSCLUST",
            "winner",
        ],
        &rows,
    );

    if cfg.has_flag("--faces") {
        // Sec. 5.2.1: Pr(UPDATE) -> 1 (last pr index).
        print_face(
            "face Pr(UPDATE)->1 (Sec 5.2.1: clustering only near ShareFactor=1, else BFS)",
            &share_factors,
            &num_tops,
            |i_sf, i_nt| winner(i_sf, i_nt, pr_updates.len() - 1),
        );
        // Sec. 5.2.2: Pr(UPDATE) -> 0.
        print_face(
            "face Pr(UPDATE)->0 (Sec 5.2.2: caching cuts into clustering and BFS)",
            &share_factors,
            &num_tops,
            |i_sf, i_nt| winner(i_sf, i_nt, 0),
        );
        // Sec. 5.2.3: very high ShareFactor (last sf index): NumTop x Pr.
        let i_sf = share_factors.len() - 1;
        let cells: Vec<Vec<char>> = pr_updates
            .iter()
            .enumerate()
            .map(|(i_pu, _)| {
                (0..num_tops.len())
                    .map(|i_nt| initial(winner(i_sf, i_nt, i_pu)))
                    .collect()
            })
            .collect();
        println!(
            "{}",
            format_region_map(
                "face ShareFactor high (Sec 5.2.3: clustering useless; cache wins low NumTop/Pr)",
                "NumTop",
                "Pr(UPD)",
                &num_tops.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
                &pr_updates
                    .iter()
                    .map(|p| format!("{p:.2}"))
                    .collect::<Vec<_>>(),
                &cells,
            )
        );
        // Sec. 5.2.4: NumTop -> 1 (first nt index): ShareFactor x Pr.
        let cells: Vec<Vec<char>> = share_factors
            .iter()
            .enumerate()
            .map(|(i_sf, _)| {
                (0..pr_updates.len())
                    .map(|i_pu| initial(winner(i_sf, 0, i_pu)))
                    .collect()
            })
            .collect();
        println!(
            "{}",
            format_region_map(
                "face NumTop->1 (Sec 5.2.4: BFS/DFSCLUST boundary independent of Pr(UPDATE))",
                "Pr(UPD)",
                "ShareFactor",
                &pr_updates
                    .iter()
                    .map(|p| format!("{p:.2}"))
                    .collect::<Vec<_>>(),
                &share_factors
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>(),
                &cells,
            )
        );
    }

    // Headline checks.
    let w_ideal = winner(0, 0, 0);
    println!(
        "ShareFactor=1, low NumTop, no updates -> {} (paper: clustering ideal at ShareFactor 1) {}",
        w_ideal.name(),
        if w_ideal == Strategy::DfsClust {
            "[OK]"
        } else {
            "[note]"
        }
    );
    // Use the second-largest NumTop: at NumTop = |ParentRel| (a full
    // scan) our compact ClusterRel wins legitimately — a documented
    // substrate divergence (EXPERIMENTS.md, E2).
    let w_hot = winner(
        share_factors.len() - 1,
        num_tops.len() - 2,
        pr_updates.len() - 1,
    );
    println!(
        "high sharing, large NumTop, heavy updates -> {} (paper: BFS region) {}",
        w_hot.name(),
        if w_hot == Strategy::Bfs {
            "[OK]"
        } else {
            "[note]"
        }
    );
    let w_cache = winner(share_factors.len() - 1, 0, 0);
    println!(
        "high sharing, low NumTop, no updates -> {} (paper: DFSCACHE region) {}",
        w_cache.name(),
        if w_cache == Strategy::DfsCache {
            "[OK]"
        } else {
            "[note]"
        }
    );
}

fn print_face(
    title: &str,
    share_factors: &[u32],
    num_tops: &[u64],
    winner: impl Fn(usize, usize) -> Strategy,
) {
    let cells: Vec<Vec<char>> = share_factors
        .iter()
        .enumerate()
        .map(|(i_sf, _)| {
            (0..num_tops.len())
                .map(|i_nt| initial(winner(i_sf, i_nt)))
                .collect()
        })
        .collect();
    println!(
        "{}",
        format_region_map(
            title,
            "NumTop",
            "ShareFactor",
            &num_tops.iter().map(|n| n.to_string()).collect::<Vec<_>>(),
            &share_factors
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>(),
            &cells,
        )
    );
}
