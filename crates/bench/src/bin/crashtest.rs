//! `crashtest` — the durability fault-injection harness.
//!
//! Runs a deterministic mixed retrieve/update/checkpoint workload on a
//! WAL-attached engine over a [`FaultyDisk`], kills the data disk at a
//! randomized injected write (clean drop or torn page), recovers the
//! surviving store from the log, and verifies every live page
//! byte-identically against an *oracle*: the identical run allowed to
//! finish the failing write, then flushed — the exact state the crashed
//! run would have reached. Recovery is then run a second time to prove
//! redo idempotence.
//!
//! ```text
//! cargo run -p cor-bench --release --bin crashtest [--points N]
//!     [--seed S]    workload + sampling seed (default 42)
//!     [--points N]  injected crash points (default 100)
//!     [--smoke]     fixed seed, 6 crash points — the CI gate
//! ```
//!
//! A report lands in `results/crashtest/report.{txt,json}`; exit status
//! is non-zero if any crash point fails verification.

use complexobj::{CacheConfig, Query, Strategy};
use cor_pagestore::{DiskManager, FaultMode, FaultyDisk, MemDisk, PAGE_SIZE};
use cor_wal::{recover, FsyncPolicy, MemLogStore, RecoveryStats, Wal, WalConfig};
use cor_workload::{generate, generate_sequence, Engine, GeneratedDb, Params};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Checkpoint every this many queries, so crash points land before,
/// between, and after checkpoints (exercising DPT redo horizons and
/// segment GC).
const CHECKPOINT_EVERY: usize = 16;

fn params(seed: u64) -> Params {
    Params {
        parent_card: 150,
        num_top: 5,
        sequence_len: 60,
        buffer_pages: 12,
        size_cache: 20,
        pr_update: 0.4,
        seed,
        ..Params::paper_default()
    }
}

struct Rig {
    faulty: Arc<FaultyDisk<Arc<MemDisk>>>,
    store: Arc<MemLogStore>,
    engine: Engine,
}

fn build_rig(generated: &GeneratedDb, p: &Params) -> Rig {
    let disk = Arc::new(MemDisk::new());
    let faulty = Arc::new(FaultyDisk::new(disk));
    let store = Arc::new(MemLogStore::new());
    let wal = Arc::new(Wal::new(
        store.clone(),
        WalConfig {
            fsync: FsyncPolicy::Always,
            segment_bytes: 64 * 1024,
        },
    ));
    let engine = Engine::open_durable(
        &generated.spec,
        Engine::builder()
            .pool_pages(p.buffer_pages)
            .cache(CacheConfig {
                capacity: p.size_cache,
                ..CacheConfig::default()
            })
            .disk(faulty.clone())
            .wal(wal),
    )
    .expect("durable engine builds on a fresh store");
    Rig {
        faulty,
        store,
        engine,
    }
}

thread_local! {
    static IN_WORKLOAD: Cell<bool> = const { Cell::new(false) };
}

/// Install a panic hook that stays silent for panics raised inside
/// [`run_workload`] and delegates to the default hook everywhere else.
/// Access-layer scan iterators `.expect()` their pool reads, so a disk
/// killed mid-query surfaces as a panic rather than an `Err` — for this
/// harness that panic *is* the simulated process death and should not
/// spam a backtrace per crash point.
fn install_quiet_hook() {
    let default = panic::take_hook();
    panic::set_hook(Box::new(move |info| {
        if !IN_WORKLOAD.with(|f| f.get()) {
            default(info);
        }
    }));
}

/// Run the workload until it finishes or the disk dies. Returns how many
/// queries completed. A query that panics (dead disk reached through an
/// infallible scan path) counts the same as one that returns `Err`: the
/// run stops there. The `.expect` sites fire on an already-returned
/// `Result`, after page guards are dropped, so the pool remains usable —
/// the oracle still flushes after its single injected failure.
fn run_workload(engine: &Engine, sequence: &[Query]) -> usize {
    IN_WORKLOAD.with(|f| f.set(true));
    let mut completed = sequence.len();
    for (i, q) in sequence.iter().enumerate() {
        let ok = panic::catch_unwind(AssertUnwindSafe(|| match q {
            Query::Retrieve(r) => engine.retrieve(Strategy::DfsCache, r).is_ok(),
            Query::Update(u) => engine.update(u).is_ok(),
        }))
        .unwrap_or(false);
        if !ok {
            completed = i;
            break;
        }
        if (i + 1) % CHECKPOINT_EVERY == 0 && engine.checkpoint().is_err() {
            completed = i + 1;
            break;
        }
    }
    IN_WORKLOAD.with(|f| f.set(false));
    completed
}

struct PointResult {
    nth_write: u64,
    mode: &'static str,
    queries_done: usize,
    stats: RecoveryStats,
    pages_compared: u32,
    pages_excluded: usize,
    failures: Vec<String>,
}

fn run_point(
    generated: &GeneratedDb,
    p: &Params,
    sequence: &[Query],
    nth: u64,
    mode: FaultMode,
    mode_name: &'static str,
) -> PointResult {
    // Oracle: the identical run, but the injected write *lands* before
    // the op fails (FailStop), so flushing afterwards materializes the
    // exact state the log describes at the crash instant.
    let oracle = build_rig(generated, p);
    oracle.faulty.arm(nth, FaultMode::FailStop);
    let oracle_done = run_workload(&oracle.engine, sequence);
    let freed = oracle.engine.pool().free_page_ids();
    oracle
        .engine
        .pool()
        .flush_all()
        .expect("oracle flush after disarmed fail-stop");
    let oracle_disk: Arc<MemDisk> = oracle.faulty.inner().clone();

    // Faulty run: same ops, same nth write, but the disk dies there.
    let rig = build_rig(generated, p);
    rig.faulty.arm(nth, mode);
    let queries_done = run_workload(&rig.engine, sequence);
    let Rig {
        faulty,
        store,
        engine,
    } = rig;
    drop(engine); // dirty frames are lost with the "process"
    store.crash(); // and so is the log's unsynced tail (none: fsync Always)

    let mut failures = Vec::new();
    if queries_done != oracle_done {
        failures.push(format!(
            "divergence: faulty run served {queries_done} queries, oracle {oracle_done}"
        ));
    }

    let disk: &Arc<MemDisk> = faulty.inner();
    let stats = match recover(disk, store.as_ref()) {
        Ok(s) => s,
        Err(e) => {
            failures.push(format!("recovery failed: {e}"));
            RecoveryStats::default()
        }
    };

    let mut pages_compared = 0;
    if failures.is_empty() {
        if disk.num_pages() != oracle_disk.num_pages() {
            failures.push(format!(
                "page count: recovered {} vs oracle {}",
                disk.num_pages(),
                oracle_disk.num_pages()
            ));
        }
        let mut a = [0u8; PAGE_SIZE];
        let mut b = [0u8; PAGE_SIZE];
        for pid in 0..disk.num_pages().min(oracle_disk.num_pages()) {
            // Pages on the free list at the crash instant hold garbage by
            // definition; every live page must match the oracle exactly.
            if freed.contains(&pid) {
                continue;
            }
            disk.read_page(pid, &mut a)
                .expect("recovered page readable");
            oracle_disk
                .read_page(pid, &mut b)
                .expect("oracle page readable");
            if a != b {
                failures.push(format!("page {pid} differs from oracle"));
            } else {
                pages_compared += 1;
            }
        }

        // Redo idempotence: a second recovery pass must be a no-op.
        let before: Vec<[u8; PAGE_SIZE]> = (0..disk.num_pages())
            .map(|pid| {
                let mut buf = [0u8; PAGE_SIZE];
                disk.read_page(pid, &mut buf).unwrap();
                buf
            })
            .collect();
        match recover(disk, store.as_ref()) {
            Ok(_) => {
                for (pid, prev) in before.iter().enumerate() {
                    disk.read_page(pid as u32, &mut a).unwrap();
                    if &a != prev {
                        failures.push(format!("double recovery changed page {pid}"));
                    }
                }
            }
            Err(e) => failures.push(format!("second recovery failed: {e}")),
        }
    }

    PointResult {
        nth_write: nth,
        mode: mode_name,
        queries_done,
        stats,
        pages_compared,
        pages_excluded: freed.len(),
        failures,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u64>().ok())
    };
    let seed = if smoke {
        42
    } else {
        flag("--seed").unwrap_or(42)
    };
    let points = if smoke {
        6
    } else {
        flag("--points").unwrap_or(100) as usize
    };

    install_quiet_hook();
    let p = params(seed);
    let generated = generate(&p);
    let sequence = generate_sequence(&p);

    // Dry run: how many data-page writes does the full workload issue?
    // Crash points are sampled from that budget (1-based, post-build).
    let dry = build_rig(&generated, &p);
    let base = dry.faulty.writes_observed();
    let done = run_workload(&dry.engine, &sequence);
    assert_eq!(done, sequence.len(), "dry run must complete");
    dry.engine.pool().flush_all().expect("dry run flush");
    let budget = dry.faulty.writes_observed() - base;
    assert!(budget > 0, "workload issues no writes — nothing to test");
    drop(dry);

    eprintln!(
        "crashtest: seed {seed}, {} queries, {budget} workload writes, {points} crash points",
        sequence.len()
    );

    let mut rng = StdRng::seed_from_u64(seed ^ 0xC4A5_47E5_7000_0001);
    let mut results: Vec<PointResult> = Vec::with_capacity(points);
    for i in 0..points {
        let nth = rng.random_range(1..=budget);
        // Alternate clean write loss with torn pages (a random prefix of
        // the new bytes lands over the old page).
        let (mode, name) = if i % 2 == 0 {
            (FaultMode::CrashDrop, "crash-drop")
        } else {
            (
                FaultMode::CrashTorn {
                    keep: rng.random_range(1..PAGE_SIZE),
                },
                "torn-page",
            )
        };
        let r = run_point(&generated, &p, &sequence, nth, mode, name);
        if !r.failures.is_empty() {
            eprintln!(
                "  point {i}: write {} ({}) FAILED: {}",
                r.nth_write,
                r.mode,
                r.failures.join("; ")
            );
        }
        results.push(r);
    }

    let failed: Vec<&PointResult> = results.iter().filter(|r| !r.failures.is_empty()).collect();
    let total_redo: u64 = results
        .iter()
        .map(|r| r.stats.images_applied + r.stats.deltas_applied)
        .sum();
    let total_skip: u64 = results.iter().map(|r| r.stats.deltas_skipped).sum();
    let torn_points = results.iter().filter(|r| r.mode == "torn-page").count();
    let with_ckpt = results
        .iter()
        .filter(|r| r.stats.checkpoint_lsn.is_some())
        .count();

    let mut txt = String::new();
    txt.push_str(&format!(
        "crashtest  seed={seed}  queries={}  workload_writes={budget}\n\
         points={}  crash_drop={}  torn_page={torn_points}\n\
         passed={}  failed={}\n\
         recovered_with_checkpoint={with_ckpt}\n\
         records_redone={total_redo}  deltas_skipped={total_skip}\n",
        sequence.len(),
        results.len(),
        results.len() - torn_points,
        results.len() - failed.len(),
        failed.len(),
    ));
    txt.push_str("\npoint  write  mode        queries  redo  compared  excluded  status\n");
    for (i, r) in results.iter().enumerate() {
        txt.push_str(&format!(
            "{:>5}  {:>5}  {:<10}  {:>7}  {:>4}  {:>8}  {:>8}  {}\n",
            i,
            r.nth_write,
            r.mode,
            r.queries_done,
            r.stats.images_applied + r.stats.deltas_applied,
            r.pages_compared,
            r.pages_excluded,
            if r.failures.is_empty() { "ok" } else { "FAIL" },
        ));
    }

    let json_points: Vec<String> = results
        .iter()
        .map(|r| {
            format!(
                "{{\"nth_write\":{},\"mode\":\"{}\",\"queries_done\":{},\
                 \"records_scanned\":{},\"images_applied\":{},\"deltas_applied\":{},\
                 \"deltas_skipped\":{},\"checkpoint_lsn\":{},\"pages_compared\":{},\
                 \"pages_excluded\":{},\"failures\":[{}]}}",
                r.nth_write,
                r.mode,
                r.queries_done,
                r.stats.records_scanned,
                r.stats.images_applied,
                r.stats.deltas_applied,
                r.stats.deltas_skipped,
                r.stats
                    .checkpoint_lsn
                    .map_or("null".into(), |l| l.to_string()),
                r.pages_compared,
                r.pages_excluded,
                r.failures
                    .iter()
                    .map(|f| format!("\"{}\"", f.replace('"', "'")))
                    .collect::<Vec<_>>()
                    .join(","),
            )
        })
        .collect();
    let json = format!(
        "{{\"schema_version\":1,\"seed\":{seed},\"queries\":{},\"workload_writes\":{budget},\
         \"points\":{},\"passed\":{},\"failed\":{},\"points_detail\":[{}]}}\n",
        sequence.len(),
        results.len(),
        results.len() - failed.len(),
        failed.len(),
        json_points.join(","),
    );

    std::fs::create_dir_all("results/crashtest").expect("results dir");
    std::fs::write("results/crashtest/report.txt", &txt).expect("write txt report");
    std::fs::write("results/crashtest/report.json", &json).expect("write json report");
    print!("{txt}");
    eprintln!("report: results/crashtest/report.{{txt,json}}");

    if !failed.is_empty() {
        std::process::exit(1);
    }
}
